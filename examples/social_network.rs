//! Social-network analysis — one of the PageRank application domains the
//! paper cites (Twitter-style influence ranking).
//!
//! Builds a follower graph with the perfect-power-law generator (celebrity
//! accounts have analytically known degree), ranks accounts by PageRank,
//! inspects the degree distribution, and uses the GraphBLAS boolean
//! semiring to measure "degrees of separation" from the top influencer —
//! the paper's Figure 2 "extend search / hop" operation.
//!
//! ```text
//! cargo run --release --example social_network
//! ```

use ppbench::gen::{degree, EdgeGenerator, GraphSpec, PerfectPowerLaw};
use ppbench::sparse::{graphblas, ops, Coo};

fn main() {
    // 4096 accounts, 16 follows each on average; PPL rank 0 is the biggest
    // celebrity by construction.
    let spec = GraphSpec::new(12, 16);
    let generator = PerfectPowerLaw::new(spec, 99);
    let follows = generator.edges(); // (follower, followee)
    let n = spec.num_vertices();
    println!(
        "follower graph: {} accounts, {} follow edges",
        n,
        follows.len()
    );

    // --- Degree structure: is it a power law? -----------------------------
    let din = degree::in_degrees(&follows, n);
    let stats = degree::DegreeStats::from_degrees(&din);
    let hist = degree::DegreeHistogram::from_degrees(&din);
    println!(
        "\nfollowers: max {}, mean {:.1}, never-followed accounts {}",
        stats.max, stats.mean, stats.zeros
    );
    match degree::fit_power_law_slope(&hist) {
        Some(gamma) => println!("log2-binned histogram slope ≈ {gamma:.2} (heavy tail)"),
        None => println!("histogram too narrow to fit (not a power law)"),
    }

    // --- Influence: PageRank over the follower graph ----------------------
    // Influence flows from follower to followee, so rank on the follow
    // direction; normalize rows = each account splits its attention.
    let mut coo = Coo::<u64>::new(n, n);
    for e in &follows {
        coo.push(e.u, e.v, 1);
    }
    let counts = coo.compress();
    // Keep dangling accounts stochastic via the §V diagonal repair.
    let repaired = ops::add_diagonal_where(&counts, |i| counts.row_nnz(i) == 0, 1);
    let a = ops::normalize_rows(&repaired);
    let ranks = ppbench::core::kernel3::pagerank(
        ppbench::core::kernel3::init_ranks(n, 1),
        |x| ppbench::sparse::spmv::vxm(x, &a),
        0.85,
        50,
    );
    let mut order: Vec<u64> = (0..n).collect();
    order.sort_by(|&x, &y| ranks[y as usize].partial_cmp(&ranks[x as usize]).unwrap());
    println!("\ntop influencers (account = PPL rank, low rank = built-in celebrity):");
    for &acct in order.iter().take(5) {
        println!(
            "  account {:>5}  pagerank {:.3e}  followers {}",
            acct, ranks[acct as usize], din[acct as usize]
        );
    }
    let top = order[0];
    assert!(top < 64, "a head account should win, got {top}");

    // --- Reachability: degrees of separation from the top influencer ------
    // Hop along *reverse* follow edges (who can the influencer reach via
    // their followers' feeds): boolean semiring BFS.
    let mut reach = Coo::<bool>::new(n, n);
    for e in &follows {
        reach.push(e.v, e.u, true); // followee → follower (message flow)
    }
    let reach = reach.compress();
    let levels = graphblas::bfs_levels(&reach, top);
    let mut by_hops = std::collections::BTreeMap::<u64, usize>::new();
    for &l in &levels {
        if l != u64::MAX {
            *by_hops.entry(l).or_default() += 1;
        }
    }
    println!("\nmessage reach of account {top} (hops → accounts):");
    for (hops, count) in &by_hops {
        println!("  {hops} hop(s): {count}");
    }
    let unreachable = levels.iter().filter(|&&l| l == u64::MAX).count();
    println!("  unreachable: {unreachable}");
    assert!(
        by_hops.get(&1).copied().unwrap_or(0) > 0,
        "the top influencer must have direct followers"
    );
}
