//! Distributed execution — the paper's parallel decomposition, simulated.
//!
//! Runs the pipeline on an in-process "cluster" of worker threads using the
//! row-block decomposition §IV describes, verifies the distributed result
//! against the serial pipeline, and reports the communication volume per
//! kernel — the quantity the paper's parallel-computation models are built
//! from ("this part of this kernel can characterize the relevant network
//! communication capabilities of a big-data system").
//!
//! ```text
//! cargo run --release --example distributed_cluster [scale] [workers]
//! ```

use ppbench::core::{Pipeline, PipelineConfig, ValidationLevel};
use ppbench::dist::{run_distributed, DistConfig};
use ppbench::io::tempdir::TempDir;
use ppbench::sparse::vector;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(12);
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    let cfg = PipelineConfig::builder()
        .scale(scale)
        .seed(99)
        .validation(ValidationLevel::None)
        .build();
    println!(
        "cluster of {workers} workers, {} ({} edges)\n",
        cfg.spec,
        cfg.spec.num_edges()
    );

    // Serial reference run.
    let td = TempDir::new("ppbench-dist-example").expect("temp dir");
    let serial = Pipeline::new(cfg.clone(), td.path())
        .run()
        .expect("serial pipeline");
    let serial_ranks = serial.kernel3.as_ref().unwrap().ranks.clone();

    // Distributed run.
    let out = run_distributed(&DistConfig {
        pipeline: cfg.clone(),
        workers,
    });

    let gap = vector::l1_distance(&out.ranks, &serial_ranks);
    println!("serial vs distributed rank agreement: L1 distance {gap:.3e}");
    assert!(gap < 1e-10, "distributed run diverged");

    let m = cfg.spec.num_edges();
    let fmt = |bytes: u64| format!("{:.2} MB", bytes as f64 / 1e6);
    println!("\ncommunication volume (what a real interconnect would carry):");
    println!(
        "  K1 shuffle:            {:>12}  ({:.1} bytes/edge — ~(W-1)/W of all edges move)",
        fmt(out.comm_k1.bytes),
        out.comm_k1.bytes as f64 / m as f64
    );
    println!(
        "  K2 degree aggregation: {:>12}  (all-reduce of N in-degrees + elimination mask)",
        fmt(out.comm_k2.bytes)
    );
    println!(
        "  K3 rank reductions:    {:>12}  (20 iterations x all-reduce of N ranks)",
        fmt(out.comm_k3.bytes)
    );
    println!(
        "\nK3 moves {:.1}x the bytes of K1 — \"likely to be limited by network \
         communication\", exactly as the paper predicts.",
        out.comm_k3.bytes as f64 / out.comm_k1.bytes.max(1) as f64
    );
}
