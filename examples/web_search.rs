//! Web-search ranking — PageRank's original application, run two ways:
//!
//! 1. A hand-built miniature web (named pages with links) pushed through
//!    the library's sparse kernels directly, with the ranking checked
//!    against the paper's eigenvector validation.
//! 2. A synthetic "web crawl" from the Graph500 generator pushed through
//!    the full four-kernel pipeline, exactly as the benchmark runs it.
//!
//! ```text
//! cargo run --release --example web_search
//! ```

use ppbench::core::{kernel3, validate, Pipeline, PipelineConfig, ValidationLevel};
use ppbench::io::tempdir::TempDir;
use ppbench::sparse::{spmv, Coo};

fn main() {
    part1_named_pages();
    part2_synthetic_crawl();
}

/// A tiny web whose ranking is humanly checkable: a popular hub, pages
/// linking to it, and a page nobody links to.
fn part1_named_pages() {
    println!("=== Part 1: a miniature web, ranked ===\n");
    let pages = [
        "home.example.com",   // 0: linked by everyone
        "docs.example.com",   // 1: linked by home and blog
        "blog.example.com",   // 2: linked by home
        "api.example.com",    // 3: linked by docs
        "orphan.example.com", // 4: links out, never linked
    ];
    let links = [
        (4, 0), // orphan → home
        (1, 0), // docs → home
        (2, 0), // blog → home
        (3, 0), // api → home
        (0, 1), // home → docs
        (0, 2), // home → blog
        (1, 3), // docs → api
        (2, 1), // blog → docs
        (3, 1), // api → docs
    ];
    let n = pages.len() as u64;
    let mut coo = Coo::<u64>::new(n, n);
    for &(u, v) in &links {
        coo.push(u, v, 1);
    }
    // Kernel-2 policy would delete the most-linked page (the "super-node");
    // for a real ranking we keep everything and only row-normalize, which
    // the library exposes as the degenerate filter with no max-degree tie.
    let a = ppbench::sparse::ops::normalize_rows(&coo.compress());

    let r0 = kernel3::init_ranks(n, 7);
    let ranks = kernel3::pagerank(r0, |x| spmv::vxm(x, &a), 0.85, 100);

    let mut order: Vec<usize> = (0..pages.len()).collect();
    order.sort_by(|&a_, &b_| ranks[b_].partial_cmp(&ranks[a_]).unwrap());
    for (place, &i) in order.iter().enumerate() {
        println!("  {}. {:<22} rank {:.4}", place + 1, pages[i], ranks[i]);
    }
    assert_eq!(order[0], 0, "the hub must rank first");
    assert_eq!(order[order.len() - 1], 4, "the orphan must rank last");

    // The paper's validation: the iterated ranks match the dominant
    // eigenvector of c·Aᵀ + (1−c)/N.
    let report = validate::check_eigenvector(&a, &ranks, 0.85, 100);
    println!("\n  eigenvector check: {}\n", report.summary_line());
    assert!(report.passed());
}

/// The benchmark proper, framed as ranking a crawled web snapshot.
fn part2_synthetic_crawl() {
    println!("=== Part 2: ranking a synthetic 130k-page crawl (full pipeline) ===\n");
    let cfg = PipelineConfig::builder()
        .scale(13) // 8192 "pages", 131072 "links"
        .seed(2016)
        .num_files(2)
        .add_diagonal_to_empty(true) // keep the chain stochastic (§V option)
        .validation(ValidationLevel::Eigenvector)
        .build();
    let work = TempDir::new("ppbench-web").expect("temp dir");
    let result = Pipeline::new(cfg, work.path()).run().expect("pipeline");
    print!("{}", result.summary());

    let k2 = result.kernel2.as_ref().unwrap();
    println!(
        "\n  crawl stats: {} distinct links, super-node column(s) removed: {}, \
         leaf columns removed: {}",
        k2.stats.nnz_before, k2.stats.supernode_columns, k2.stats.leaf_columns
    );
    let k3 = result.kernel3.as_ref().unwrap();
    println!("  top pages by rank:");
    for (v, r) in k3.top_k(5) {
        println!("    page#{v:<8} rank {r:.4e}");
    }
}
