//! Molecular-network analysis — the chemistry application the paper cites:
//! "in chemistry, this algorithm is used in conjunction with molecular
//! dynamics simulations […] the graph contains edges between the water
//! molecules and can be used to calculate whether the hydrogen bond
//! potential can act as a solvent."
//!
//! This example synthesizes a hydrogen-bond network from a toy molecular
//! dynamics snapshot (molecules on a jittered 3-D lattice, bonds between
//! near neighbors), writes it through the benchmark's *file* pipeline —
//! demonstrating how external data enters at kernel 1 — and ranks
//! molecules by PageRank to find the solvation hubs.
//!
//! ```text
//! cargo run --release --example molecular_solvent
//! ```

use ppbench::core::{PipelineConfig, Variant};
use ppbench::io::tempdir::TempDir;
use ppbench::io::{Edge, SortState};
use ppbench::prng::{Rng64, SeedableRng64, Xoshiro256pp};

/// Simulation box: SIDE³ molecules on a unit lattice with positional
/// jitter, periodic boundaries.
const SIDE: usize = 16; // 4096 molecules = 2^12
const BOND_RADIUS2: f64 = 1.44; // bond when squared distance < 1.2²

fn main() {
    // --- A toy MD snapshot -------------------------------------------------
    let mut rng = Xoshiro256pp::seed_from_u64(77);
    let n = SIDE * SIDE * SIDE;
    let mut pos = Vec::with_capacity(n);
    for z in 0..SIDE {
        for y in 0..SIDE {
            for x in 0..SIDE {
                let jitter = |r: &mut Xoshiro256pp| (r.next_f64() - 0.5) * 0.6;
                pos.push((
                    x as f64 + jitter(&mut rng),
                    y as f64 + jitter(&mut rng),
                    z as f64 + jitter(&mut rng),
                ));
            }
        }
    }

    // Hydrogen bonds: directed donor→acceptor edges between molecules
    // within the bond radius (checking lattice neighbors only — the usual
    // cell-list trick).
    let idx = |x: usize, y: usize, z: usize| ((z * SIDE + y) * SIDE + x) as u64;
    let wrap = |a: i64| ((a % SIDE as i64 + SIDE as i64) % SIDE as i64) as usize;
    let mut bonds: Vec<Edge> = Vec::new();
    let min_image = |d: f64| {
        let s = SIDE as f64;
        let d = d - (d / s).round() * s;
        d * d
    };
    for z in 0..SIDE {
        for y in 0..SIDE {
            for x in 0..SIDE {
                let a = idx(x, y, z);
                let pa = pos[a as usize];
                for (dx, dy, dz) in [
                    (1i64, 0i64, 0i64),
                    (0, 1, 0),
                    (0, 0, 1),
                    (1, 1, 0),
                    (1, 0, 1),
                    (0, 1, 1),
                ] {
                    let b = idx(
                        wrap(x as i64 + dx),
                        wrap(y as i64 + dy),
                        wrap(z as i64 + dz),
                    );
                    let pb = pos[b as usize];
                    let d2 =
                        min_image(pa.0 - pb.0) + min_image(pa.1 - pb.1) + min_image(pa.2 - pb.2);
                    if d2 < BOND_RADIUS2 {
                        // Donor is the molecule whose jitter put it closer:
                        // arbitrary but deterministic orientation.
                        if (a + b) % 2 == 0 {
                            bonds.push(Edge::new(a, b));
                        } else {
                            bonds.push(Edge::new(b, a));
                        }
                    }
                }
            }
        }
    }
    println!(
        "MD snapshot: {n} molecules, {} hydrogen bonds ({:.2} bonds/molecule)",
        bonds.len(),
        bonds.len() as f64 / n as f64
    );

    // --- External data enters the pipeline at kernel 1 ---------------------
    // Write the bond list in the benchmark's file format (this replaces
    // kernel 0), then run kernels 1–3 through a backend.
    let work = TempDir::new("ppbench-md").expect("temp dir");
    let k0 = work.join("k0");
    let k1 = work.join("k1");
    ppbench::io::write_edges(
        &k0,
        "bonds",
        2,
        &bonds,
        Some(12), // N = 2^12 molecules
        Some(n as u64),
        SortState::Unsorted,
    )
    .expect("write bond files");

    let cfg = PipelineConfig::builder()
        .scale(12)
        .edge_factor(1) // informational only; M comes from the files here
        .seed(5)
        .num_files(2)
        .add_diagonal_to_empty(true)
        .build();
    let backend = Variant::Optimized.backend();
    backend.kernel1(&cfg, &k0, &k1).expect("kernel 1");
    let k2 = backend.kernel2(&cfg, &k1).expect("kernel 2");
    println!(
        "bond matrix: {} entries after filtering (max in-degree {}, {} leaf columns removed)",
        k2.stats.nnz_after, k2.stats.max_in_degree, k2.stats.leaf_columns
    );
    let ranks = backend.kernel3(&cfg, &k2.matrix).expect("kernel 3").ranks;

    // --- Solvation hubs -----------------------------------------------------
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| ranks[b].partial_cmp(&ranks[a]).unwrap());
    println!("\nmost-central molecules in the hydrogen-bond network:");
    for &m in order.iter().take(5) {
        let (x, y, z) = pos[m];
        println!(
            "  molecule {m:>5} at ({x:5.2}, {y:5.2}, {z:5.2})  rank {:.3e}",
            ranks[m]
        );
    }
    let top_rank = ranks[order[0]];
    let median_rank = ranks[order[n / 2]];
    println!(
        "\ntop molecule is {:.1}x the median — local bond-density hotspots act as solvation centers",
        top_rank / median_rank
    );
    assert!(top_rank > median_rank);
}
