//! Quickstart: run the full PageRank pipeline benchmark at a laptop-friendly
//! scale and print the paper-style metrics.
//!
//! ```text
//! cargo run --release --example quickstart [scale]
//! ```

use ppbench::core::{Pipeline, PipelineConfig, ValidationLevel};
use ppbench::io::tempdir::TempDir;

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(14);

    // Scale S gives N = 2^S vertices and M = 16·N edges (the official edge
    // factor). Scale 14 ≈ 260k edges: a sub-second demonstration.
    let cfg = PipelineConfig::builder()
        .scale(scale)
        .seed(42)
        .num_files(4) // the spec's free parameter: spread edges over 4 files
        .validation(ValidationLevel::Invariants)
        .build();

    println!("running: {}\n", cfg.describe());

    let work = TempDir::new("ppbench-quickstart").expect("temp dir");
    let result = Pipeline::new(cfg, work.path()).run().expect("pipeline run");

    // The paper's reporting: seconds and edges/second per kernel.
    print!("{}", result.summary());

    let k3 = result.kernel3.as_ref().expect("kernel 3 ran");
    println!("\nhighest-ranked vertices:");
    for (vertex, rank) in k3.top_k(10) {
        println!("  vertex {vertex:>8}  rank {rank:.4e}");
    }

    // Kernel metrics are also available programmatically:
    let k1 = result.kernel1.as_ref().expect("kernel 1 ran");
    println!(
        "\nkernel 1 sorted {:.2} M edges/s; kernel 3 processed {:.2} M edge-visits/s",
        k1.timing.rate() / 1e6,
        k3.timing.rate() / 1e6,
    );
}
