//! Std-only stand-in for the subset of the `rand` API this workspace uses
//! (see `shims/` in the repository root for why these shims exist).
//!
//! The workspace uses `rand` in exactly one place: a distribution-level
//! cross-check that compares `ppbench-prng`'s uniform doubles against an
//! *independent* generator. This shim's [`rngs::StdRng`] is a SplitMix64 —
//! a different algorithm family from the xoshiro/PCG generators under
//! test — so the cross-check still compares two unrelated streams.

#![forbid(unsafe_code)]

/// Generators seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core 64-bit generation.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable uniformly from an RNG's raw output.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Convenience sampling methods, mirroring `rand::RngExt`.
pub trait RngExt: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn uniform_doubles_have_sane_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let (mut mean, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            mean += x;
            sq += x * x;
        }
        let mean = mean / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.01, "variance {var}");
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let (x, y): (f64, f64) = (a.random(), b.random());
        assert_eq!(x, y);
    }
}
