//! Std-only stand-in for the subset of the `crossbeam` API this workspace
//! uses: a bounded MPSC channel (see `shims/` in the repository root for
//! why these shims exist).
//!
//! `crossbeam::channel::bounded` maps directly onto
//! `std::sync::mpsc::sync_channel`: both block the sender when the buffer
//! is full, and dropping the sender closes the channel so the receiver's
//! iterator terminates. The workspace only ever moves one `Sender` into
//! one producer thread, so std's single-producer restriction is invisible
//! here (real crossbeam senders are clonable; this shim's are too, since
//! `SyncSender` is `Clone`).

#![forbid(unsafe_code)]

pub mod channel {
    //! Bounded channel shim mirroring `crossbeam::channel`.

    pub use std::sync::mpsc::{Receiver, SendError};

    /// Sending half of a bounded channel.
    pub type Sender<T> = std::sync::mpsc::SyncSender<T>;

    /// Creates a channel that buffers at most `cap` messages; sends block
    /// once the buffer is full (`cap == 0` is a rendezvous channel, as in
    /// crossbeam).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_channel_round_trips_and_closes() {
        let (tx, rx) = channel::bounded::<u32>(2);
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = rx.into_iter().collect();
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (tx, rx) = channel::bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
