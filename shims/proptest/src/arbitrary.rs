//! `any::<T>()` — full-range strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only, spread over a broad magnitude range.
        rng.unit_f64() * 2e9 - 1e9
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_small_types_quickly() {
        let mut rng = TestRng::from_name("any-tests");
        let mut seen_true = false;
        let mut seen_false = false;
        let mut bytes = std::collections::HashSet::new();
        for _ in 0..2000 {
            match bool::arbitrary(&mut rng) {
                true => seen_true = true,
                false => seen_false = true,
            }
            bytes.insert(u8::arbitrary(&mut rng));
        }
        assert!(seen_true && seen_false);
        assert!(bytes.len() > 200, "u8 should cover most values");
        let v = any::<u64>().sample(&mut rng);
        let w = any::<u64>().sample(&mut rng);
        assert_ne!(v, w, "consecutive draws almost surely differ");
    }
}
