//! The [`Strategy`] trait and its implementations for ranges and tuples.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Value`.
///
/// Unlike real proptest there is no value tree or shrinking: `sample`
/// draws one value directly from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = if span > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    rng.below(span as u64) as u128
                };
                (self.start as i128 + draw as i128) as $ty
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = if span > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    rng.below(span as u64) as u128
                };
                (lo as i128 + draw as i128) as $ty
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        // next_u64 / MAX covers both endpoints.
        lo + (rng.next_u64() as f64 / u64::MAX as f64) * (hi - lo)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! { (A, B) (A, B, C) (A, B, C, D) }

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::from_name("strategy-tests")
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut rng = rng();
        for _ in 0..1000 {
            let v = (3u64..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let w = (-5i32..5).sample(&mut rng);
            assert!((-5..5).contains(&w));
            let x = (0u64..=u64::MAX).sample(&mut rng);
            let _ = x; // full range: any value is in bounds
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = rng();
        for _ in 0..1000 {
            let v = (-2.0f64..3.0).sample(&mut rng);
            assert!((-2.0..3.0).contains(&v));
            let w = (0.0f64..=1.0).sample(&mut rng);
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = rng();
        let s = (0u64..10).prop_map(|x| x * 100);
        for _ in 0..50 {
            let v = s.sample(&mut rng);
            assert_eq!(v % 100, 0);
            assert!(v < 1000);
        }
    }

    #[test]
    fn tuples_sample_componentwise() {
        let mut rng = rng();
        let (a, b, c) = (0u64..4, 10u64..14, 0.0f64..1.0).sample(&mut rng);
        assert!(a < 4 && (10..14).contains(&b) && (0.0..1.0).contains(&c));
    }
}
