//! Deterministic case runner for the proptest shim.

/// How many cases each property test runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single case did not count as a pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is skipped, not failed.
    Reject,
}

/// SplitMix64 RNG used to sample strategies; deterministic per test name,
/// so failures reproduce run to run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub(crate) fn from_name(name: &str) -> Self {
        // FNV-1a over the test name gives each test its own stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is ≤ bound/2^64 — irrelevant for test sampling.
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runs a property test's cases.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
    name: &'static str,
}

impl TestRunner {
    /// Creates a runner for the named test.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        Self {
            config,
            rng: TestRng::from_name(name),
            name,
        }
    }

    /// Executes cases until `config.cases` have been accepted. Rejections
    /// (`prop_assume!`) retry with fresh inputs; failures panic out of the
    /// closure. Panics if rejections outnumber acceptances 20:1, like
    /// proptest's "too many global rejects".
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let target = self.config.cases;
        let max_attempts = (target as u64).saturating_mul(20).max(20);
        let mut accepted = 0u32;
        let mut attempts = 0u64;
        while accepted < target {
            if attempts >= max_attempts {
                panic!(
                    "property test {}: too many rejected cases ({} attempts, {} accepted)",
                    self.name, attempts, accepted
                );
            }
            attempts += 1;
            match case(&mut self.rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("t");
        let mut b = TestRng::from_name("t");
        let mut c = TestRng::from_name("u");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "too many rejected")]
    fn all_rejects_eventually_panic() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(4), "rejects");
        runner.run(|_| Err(TestCaseError::Reject));
    }

    #[test]
    fn runs_the_configured_case_count() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(17), "count");
        let mut n = 0;
        runner.run(|_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 17);
    }
}
