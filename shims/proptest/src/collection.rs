//! Collection strategies: `vec(element, size)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification for [`vec`]: an exact length or a half-open /
/// inclusive range, mirroring proptest's `SizeRange` conversions.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo
            + if span > 1 {
                rng.below(span) as usize
            } else {
                0
            };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Vectors of `element`-generated values with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_follow_the_size_spec() {
        let mut rng = TestRng::from_name("collection-tests");
        for _ in 0..200 {
            assert_eq!(vec(0u64..5, 7).sample(&mut rng).len(), 7);
            let l = vec(0u64..5, 2..6).sample(&mut rng).len();
            assert!((2..6).contains(&l));
            let m = vec(0u64..5, 0..=3).sample(&mut rng).len();
            assert!(m <= 3);
        }
    }

    #[test]
    fn elements_come_from_the_element_strategy() {
        let mut rng = TestRng::from_name("collection-tests-2");
        let v = vec(10u64..20, 64).sample(&mut rng);
        assert!(v.iter().all(|&x| (10..20).contains(&x)));
    }
}
