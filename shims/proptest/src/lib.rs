//! Std-only stand-in for the subset of the `proptest` API this workspace
//! uses (see `shims/` in the repository root for why these shims exist).
//!
//! Covered surface:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]`, `pat in
//!   strategy` parameters (including `mut` bindings) and `name: type`
//!   sugar for [`any`],
//! * [`Strategy`] with `prop_map`, implemented for integer and float
//!   ranges (half-open and inclusive), 2/3-tuples, and [`collection::vec`],
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`].
//!
//! Differences from real proptest, deliberate for a test shim: cases are
//! drawn from a fixed per-test deterministic RNG (seeded from the test
//! name), there is no shrinking — a failing case panics with the values
//! still derivable from the seed — and assertion macros panic directly
//! instead of routing a `TestCaseError::Fail` through the runner.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::any;
pub use strategy::Strategy;
pub use test_runner::{ProptestConfig, TestCaseError, TestRunner};

/// What proptest's prelude exports, restricted to what the workspace
/// needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(params) { body }` becomes a
/// `#[test]` that samples its parameters from the given strategies for the
/// configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut __runner =
                $crate::test_runner::TestRunner::new($cfg, stringify!($name));
            __runner.run(
                |__rng: &mut $crate::test_runner::TestRng|
                 -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $crate::__proptest_bind!(__rng; $($params)*);
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_tests! { @cfg($cfg) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: binds one parameter at a time.
/// `name: type` arms must precede `pat in expr` arms so the `:` form is
/// tried first; a `pat` fragment would otherwise consume the name and then
/// fail on the `:`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:expr;) => {};
    ($rng:expr; $bind:ident : $ty:ty, $($rest:tt)*) => {
        let $bind = $crate::strategy::Strategy::sample(&$crate::arbitrary::any::<$ty>(), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:expr; $bind:ident : $ty:ty) => {
        let $bind = $crate::strategy::Strategy::sample(&$crate::arbitrary::any::<$ty>(), $rng);
    };
    ($rng:expr; mut $bind:ident : $ty:ty, $($rest:tt)*) => {
        let mut $bind = $crate::strategy::Strategy::sample(&$crate::arbitrary::any::<$ty>(), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:expr; mut $bind:ident : $ty:ty) => {
        let mut $bind = $crate::strategy::Strategy::sample(&$crate::arbitrary::any::<$ty>(), $rng);
    };
    ($rng:expr; $bind:pat in $strategy:expr, $($rest:tt)*) => {
        let $bind = $crate::strategy::Strategy::sample(&($strategy), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:expr; $bind:pat in $strategy:expr) => {
        let $bind = $crate::strategy::Strategy::sample(&($strategy), $rng);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRunner;

    fn arb_pair() -> impl Strategy<Value = (u64, u64)> {
        (0u64..100, 0u64..100)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, y in -2.0f64..2.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn any_sugar_and_mut_bindings(seed: u64, mut v in crate::collection::vec(any::<i32>(), 0..20)) {
            let _ = seed;
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }

        #[test]
        fn prop_map_and_tuples(p in arb_pair().prop_map(|(a, b)| (a.min(b), a.max(b)))) {
            prop_assert!(p.0 <= p.1);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn inclusive_ranges_cover_the_top(b in 1u64..=u64::MAX, f in 0.0f64..=1.0) {
            prop_assert!(b >= 1);
            prop_assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn vec_exact_length() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(8), "vec_exact");
        runner.run(|rng| {
            let v = crate::collection::vec(0.0f64..1.0, 8).sample(rng);
            assert_eq!(v.len(), 8);
            Ok(())
        });
    }
}
