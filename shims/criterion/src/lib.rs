//! Std-only stand-in for the subset of the `criterion` API this workspace
//! uses (see `shims/` in the repository root for why these shims exist).
//!
//! The statistical machinery of real criterion is out of scope; this shim
//! keeps the *harness contract*: `criterion_group!`/`criterion_main!`
//! produce a `main` that runs every registered benchmark, `--test` mode
//! (what CI invokes via `cargo bench -- --test`) executes each routine
//! exactly once as a smoke test, and normal mode runs a short timed loop
//! and prints mean time per iteration plus throughput when configured.
//! Substring filters on the command line select benchmarks, as in real
//! criterion.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped; the shim runs one input per iteration
/// regardless, so the variants only exist for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Work-per-iteration declaration used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many items.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// A benchmark's identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
    filters: Vec<String>,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let test_mode = args.iter().any(|a| a == "--test");
        let filters = args.into_iter().filter(|a| !a.starts_with("--")).collect();
        Self {
            test_mode,
            filters,
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = id.label.clone();
        run_one(self, &label, None, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the shim's sample count is its
    /// timed-loop iteration count, derived from `measurement_time`.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Caps the timed-loop duration in normal mode.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        // The shim aims for quick feedback: honor the requested budget but
        // never spend more than a second per benchmark.
        self.criterion.measurement_time = d.min(Duration::from_secs(1));
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        let throughput = self.throughput;
        run_one(self.criterion, &label, throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F>(criterion: &Criterion, label: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if !criterion.filters.is_empty()
        && !criterion.filters.iter().any(|w| label.contains(w.as_str()))
    {
        return;
    }
    let mut bencher = Bencher {
        test_mode: criterion.test_mode,
        budget: criterion.measurement_time,
        iterations: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if bencher.iterations == 0 {
        println!("bench {label:<48} (no measurement)");
        return;
    }
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iterations as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", n as f64 / per_iter),
        Some(Throughput::Bytes(n)) => format!("  {:>12.0} B/s", n as f64 / per_iter),
        None => String::new(),
    };
    println!(
        "bench {label:<48} {:>12.3} ms/iter ({} iters){rate}",
        per_iter * 1e3,
        bencher.iterations
    );
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    test_mode: bool,
    budget: Duration,
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, once in `--test` mode, else in a loop bounded by
    /// the measurement budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        loop {
            black_box(routine());
            self.iterations += 1;
            self.elapsed = start.elapsed();
            if self.test_mode || self.elapsed >= self.budget {
                break;
            }
        }
    }

    /// Times `routine` on inputs built by `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iterations += 1;
            if self.test_mode || self.elapsed >= self.budget {
                break;
            }
        }
    }
}

/// Bundles benchmark functions into a group runner, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_routine_once() {
        let mut b = Bencher {
            test_mode: true,
            budget: Duration::from_secs(10),
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        let mut runs = 0;
        b.iter(|| runs += 1);
        assert_eq!(runs, 1);
        assert_eq!(b.iterations, 1);
    }

    #[test]
    fn normal_mode_loops_until_budget() {
        let mut b = Bencher {
            test_mode: false,
            budget: Duration::from_millis(10),
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        b.iter(|| std::hint::black_box(1 + 1));
        assert!(b.iterations > 1);
    }

    #[test]
    fn benchmark_ids_compose() {
        assert_eq!(BenchmarkId::new("sort", 512).label, "sort/512");
        assert_eq!(BenchmarkId::from_parameter("naive").label, "naive");
    }
}
