//! Std-only stand-in for the subset of the `parking_lot` API this
//! workspace uses: a `Mutex` whose `lock()` returns the guard directly
//! (see `shims/` in the repository root for why these shims exist).
//!
//! Poisoning — the one observable difference from `std::sync::Mutex` — is
//! deliberately ignored, matching parking_lot's semantics: a panic while
//! holding the lock leaves the data accessible to later lockers.

use std::sync::PoisonError;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Mutex with parking_lot's panic-transparent `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until available. Never panics on
    /// poisoning: the inner data is handed out regardless.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_serializes_concurrent_increments() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn lock_survives_a_poisoning_panic() {
        let m = Arc::new(Mutex::new(7u64));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7, "lock must still hand out the data");
    }
}
