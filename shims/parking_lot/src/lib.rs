//! Std-only stand-in for the subset of the `parking_lot` API this
//! workspace uses: a `Mutex` whose `lock()` returns the guard directly
//! (see `shims/` in the repository root for why these shims exist).
//!
//! Poisoning — the one observable difference from `std::sync::Mutex` — is
//! deliberately ignored, matching parking_lot's semantics: a panic while
//! holding the lock leaves the data accessible to later lockers.

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Mutex with parking_lot's panic-transparent `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until available. Never panics on
    /// poisoning: the inner data is handed out regardless.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Condition variable paired with [`Mutex`]. Like the mutex, it is
/// poison-transparent: a panic in another thread never turns a wait into
/// a panic here. One deliberate API deviation from the real parking_lot
/// (which takes `&mut MutexGuard`): `wait` consumes and returns the
/// guard, std-style, because that is implementable without unsafe code —
/// call sites read `state = cv.wait(state)`.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Atomically releases `guard` and blocks until notified, then
    /// reacquires the lock and returns the guard.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    /// Like [`Condvar::wait`] with a timeout; the flag reports whether
    /// the wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        match self.0.wait_timeout(guard, timeout) {
            Ok((g, res)) => (g, res.timed_out()),
            Err(poisoned) => {
                let (g, res) = poisoned.into_inner();
                (g, res.timed_out())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_serializes_concurrent_increments() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn lock_survives_a_poisoning_panic() {
        let m = Arc::new(Mutex::new(7u64));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7, "lock must still hand out the data");
    }
}
