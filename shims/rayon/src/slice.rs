//! Slice extension shim mirroring `rayon::slice::ParallelSliceMut`.

/// Parallel sorting methods on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Sorts by the key extracted by `f`.
    ///
    /// Delegates to `sort_unstable_by_key` (the same pdqsort real rayon
    /// runs on each fragment), so the result is deterministic and matches
    /// the sequential sorters bit for bit. A merging multi-threaded
    /// implementation is a contained future optimization.
    fn par_sort_unstable_by_key<K, F>(&mut self, f: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable_by_key<K, F>(&mut self, f: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        self.sort_unstable_by_key(f);
    }
}
