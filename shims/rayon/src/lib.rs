//! Std-only stand-in for the subset of the `rayon` API this workspace
//! uses.
//!
//! The build environment is offline — no crates.io registry — so the
//! workspace vendors minimal shims for its few third-party dependencies
//! (see `shims/` in the repository root). This one covers:
//!
//! * [`iter::IntoParallelIterator::into_par_iter`] on integer ranges and
//!   vectors,
//! * [`iter::IntoParallelRefIterator::par_iter`] on slices and vectors,
//! * [`iter::ParIter::map`] / [`iter::ParIter::flat_map_iter`] /
//!   [`iter::ParIter::collect`],
//! * [`slice::ParallelSliceMut::par_sort_unstable_by_key`].
//!
//! Map stages genuinely run in parallel on scoped `std::thread`s (one
//! contiguous chunk per available core, results concatenated in order, so
//! output ordering is identical to the sequential path). The parallel sort
//! currently delegates to `sort_unstable_by_key` — same pdqsort the real
//! rayon runs per fragment — which keeps results deterministic; a merging
//! parallel sort is a contained future optimization.

#![forbid(unsafe_code)]

pub mod iter;
pub mod slice;

use std::sync::atomic::{AtomicUsize, Ordering};

/// What rayon's prelude exports, restricted to what the workspace needs.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
    pub use crate::slice::ParallelSliceMut;
}

/// Explicit global pool size; 0 means "not set, use the core count".
static POOL_SIZE: AtomicUsize = AtomicUsize::new(0);

/// Mirror of `rayon::ThreadPoolBuilder` restricted to global-pool sizing.
///
/// Divergence from real rayon, deliberate for a shim: [`build_global`]
/// may be called more than once (later calls re-size the pool) because
/// the bench harness sweeps thread counts within one process. Real rayon
/// errors on the second call; code written against the real API still
/// behaves correctly here.
///
/// [`build_global`]: ThreadPoolBuilder::build_global
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with the default (core-count) sizing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests an explicit worker count; 0 restores the core-count
    /// default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Installs the sizing globally. Infallible in the shim; the
    /// `Result` matches the real signature.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        POOL_SIZE.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// Error type of [`ThreadPoolBuilder::build_global`]; never produced by
/// the shim, present for signature compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("global thread pool could not be built")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// The number of workers parallel stages run with: the explicit global
/// pool size when one was installed, otherwise the available core count.
pub fn current_num_threads() -> usize {
    threads()
}

/// Worker count for parallel stages: the explicitly configured pool size
/// if set, else the number of available cores.
pub(crate) fn threads() -> usize {
    let configured = POOL_SIZE.load(Ordering::Relaxed);
    if configured > 0 {
        return configured;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item on scoped threads, one contiguous chunk per
/// worker, preserving input order in the output.
pub(crate) fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let workers = threads().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut batches: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut items = items.into_iter();
    loop {
        let batch: Vec<T> = items.by_ref().take(chunk).collect();
        if batch.is_empty() {
            break;
        }
        batches.push(batch);
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = batches
            .into_iter()
            .map(|batch| scope.spawn(move || batch.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon-shim worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn into_par_iter_map_preserves_order() {
        let out: Vec<u64> = (0u64..10_000).into_par_iter().map(|x| x * 2).collect();
        let expected: Vec<u64> = (0..10_000).map(|x| x * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_iter_flat_map_iter_matches_sequential() {
        let chunks: Vec<(u64, u64)> = vec![(0, 3), (3, 7), (7, 8)];
        let out: Vec<u64> = chunks
            .par_iter()
            .flat_map_iter(|&(lo, hi)| lo..hi)
            .collect();
        assert_eq!(out, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn par_sort_unstable_by_key_sorts() {
        let mut v: Vec<u64> = (0..5000).map(|i| (i * 7919) % 5000).collect();
        v.par_sort_unstable_by_key(|&x| x);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn empty_inputs_work() {
        let out: Vec<u64> = Vec::<u64>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn global_pool_size_is_settable_and_resettable() {
        // Runs in one test so the global store is not racing a sibling.
        crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build_global()
            .unwrap();
        assert_eq!(crate::current_num_threads(), 3);
        // Parallel stages still produce ordered output under the override.
        let out: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, (1..=1000).collect::<Vec<u64>>());
        crate::ThreadPoolBuilder::new().build_global().unwrap();
        assert!(crate::current_num_threads() >= 1);
    }
}
