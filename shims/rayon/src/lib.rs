//! Std-only stand-in for the subset of the `rayon` API this workspace
//! uses.
//!
//! The build environment is offline — no crates.io registry — so the
//! workspace vendors minimal shims for its few third-party dependencies
//! (see `shims/` in the repository root). This one covers:
//!
//! * [`iter::IntoParallelIterator::into_par_iter`] on integer ranges and
//!   vectors,
//! * [`iter::IntoParallelRefIterator::par_iter`] on slices and vectors,
//! * [`iter::ParIter::map`] / [`iter::ParIter::flat_map_iter`] /
//!   [`iter::ParIter::collect`],
//! * [`slice::ParallelSliceMut::par_sort_unstable_by_key`].
//!
//! Map stages genuinely run in parallel on scoped `std::thread`s (one
//! contiguous chunk per available core, results concatenated in order, so
//! output ordering is identical to the sequential path). The parallel sort
//! currently delegates to `sort_unstable_by_key` — same pdqsort the real
//! rayon runs per fragment — which keeps results deterministic; a merging
//! parallel sort is a contained future optimization.

#![forbid(unsafe_code)]

pub mod iter;
pub mod slice;

/// What rayon's prelude exports, restricted to what the workspace needs.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
    pub use crate::slice::ParallelSliceMut;
}

/// Worker count for parallel stages: the number of available cores.
pub(crate) fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item on scoped threads, one contiguous chunk per
/// worker, preserving input order in the output.
pub(crate) fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let workers = threads().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut batches: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut items = items.into_iter();
    loop {
        let batch: Vec<T> = items.by_ref().take(chunk).collect();
        if batch.is_empty() {
            break;
        }
        batches.push(batch);
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = batches
            .into_iter()
            .map(|batch| scope.spawn(move || batch.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon-shim worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn into_par_iter_map_preserves_order() {
        let out: Vec<u64> = (0u64..10_000).into_par_iter().map(|x| x * 2).collect();
        let expected: Vec<u64> = (0..10_000).map(|x| x * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_iter_flat_map_iter_matches_sequential() {
        let chunks: Vec<(u64, u64)> = vec![(0, 3), (3, 7), (7, 8)];
        let out: Vec<u64> = chunks
            .par_iter()
            .flat_map_iter(|&(lo, hi)| lo..hi)
            .collect();
        assert_eq!(out, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn par_sort_unstable_by_key_sorts() {
        let mut v: Vec<u64> = (0..5000).map(|i| (i * 7919) % 5000).collect();
        v.par_sort_unstable_by_key(|&x| x);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn empty_inputs_work() {
        let out: Vec<u64> = Vec::<u64>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
