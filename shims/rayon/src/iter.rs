//! Parallel-iterator shim: an eager item list with rayon's method names.
//!
//! Unlike real rayon — which builds a lazy splittable computation — the
//! shim materializes the item list up front and executes each adaptor
//! eagerly on scoped threads. Every call site in this workspace is a
//! single `map`/`flat_map_iter` stage followed by `collect`, so eager
//! execution performs the same work with the same output order.

use crate::par_map;

/// A materialized parallel iterator over `T`.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Marker-and-methods trait mirroring `rayon::iter::ParallelIterator`.
///
/// The shim's adaptors are inherent methods on [`ParIter`]; this trait
/// exists so `use rayon::prelude::*` keeps importing a name of that
/// spelling (and so generic bounds like `I: ParallelIterator` still
/// compile if a future caller writes them).
pub trait ParallelIterator {
    /// Item type.
    type Item;
}

impl<T> ParallelIterator for ParIter<T> {
    type Item = T;
}

impl<T: Send> ParIter<T> {
    /// Parallel map, order preserving.
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParIter {
            items: par_map(self.items, f),
        }
    }

    /// Maps each item to a serial iterator and concatenates the results in
    /// input order (the iterators themselves run on the worker threads).
    pub fn flat_map_iter<U, I, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Sync,
    {
        let nested = par_map(self.items, |item| f(item).into_iter().collect::<Vec<U>>());
        ParIter {
            items: nested.into_iter().flatten().collect(),
        }
    }

    /// Collects the items (already in input order).
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Converts `self`.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! range_into_par_iter {
    ($($ty:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$ty> {
            type Item = $ty;
            fn into_par_iter(self) -> ParIter<$ty> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
range_into_par_iter!(u32, u64, usize, i32, i64);

/// Conversion into a parallel iterator over references, mirroring
/// `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// Reference item type.
    type Item: Send + 'a;
    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}
