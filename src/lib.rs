//! # ppbench — PageRank Pipeline Benchmark
//!
//! Facade crate for the PageRank Pipeline Benchmark workspace, a Rust
//! reproduction of Dreher et al., *"PageRank Pipeline Benchmark: Proposal for
//! a Holistic System Benchmark for Big-Data Platforms"* (IPPS 2016).
//!
//! The benchmark is four mathematically specified kernels run as a pipeline:
//!
//! | Kernel | Stage | Metric |
//! |---|---|---|
//! | K0 | generate a Graph500 power-law edge list and write it to files | untimed (measured for Fig. 4) |
//! | K1 | read, sort by start vertex, rewrite | edges/second |
//! | K2 | read, build sparse adjacency, filter, normalize | edges/second |
//! | K3 | 20 PageRank iterations via sparse matrix–vector multiply | 20·edges/second |
//!
//! This crate re-exports the whole substrate stack; see each sub-crate for
//! the details:
//!
//! * [`prng`] — deterministic random number generation
//! * [`gen`] — graph generators (Kronecker / perfect-power-law / Erdős–Rényi)
//! * [`io`] — tab-separated edge files, manifests, checksums
//! * [`sort`] — in-memory, external and parallel edge sorting
//! * [`frame`] — a minimal columnar dataframe (the "Pandas" execution style)
//! * [`sparse`] — sparse matrices, GraphBLAS-style ops, the eigensolver
//! * [`algo`] — GAP-style analytics workloads (BFS, CC, SSSP, TC)
//! * [`core`] — the four kernels, pipeline backends, timing and validation
//! * [`dist`] — simulated distributed-memory execution with communication accounting
//! * [`serve`] — benchmark-as-a-service: job queue, result cache, HTTP API
//!
//! # Quickstart
//!
//! ```
//! use ppbench::core::{Pipeline, PipelineConfig};
//!
//! let cfg = PipelineConfig::builder()
//!     .scale(8)          // 2^8 = 256 vertices, 4096 edges
//!     .seed(1)
//!     .build();
//! let tmp = std::env::temp_dir().join(format!("ppbench-doc-{}", std::process::id()));
//! let result = Pipeline::new(cfg, &tmp).run().unwrap();
//! println!("{}", result.summary());
//! assert_eq!(result.kernel3.as_ref().unwrap().ranks.len(), 256);
//! std::fs::remove_dir_all(&tmp).ok();
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub use ppbench_algo as algo;
pub use ppbench_core as core;
pub use ppbench_dist as dist;
pub use ppbench_frame as frame;
pub use ppbench_gen as gen;
pub use ppbench_io as io;
pub use ppbench_prng as prng;
pub use ppbench_serve as serve;
pub use ppbench_sort as sort;
pub use ppbench_sparse as sparse;
