//! LSD radix sort over 64-bit keys.
//!
//! Kernel 1 sorts by a 64-bit start vertex; an LSD radix sort with 8-bit
//! digits does it in at most 8 stable counting passes, each O(M), and skips
//! passes whose digit is constant across the input (at benchmark scales
//! only `scale/8 + 1` passes actually run). Stability is what lets the
//! (start, end) variant run as two phases: sort by `v`, then by `u`.

use ppbench_io::Edge;

use crate::SortKey;

const DIGIT_BITS: u32 = 8;
const BUCKETS: usize = 1 << DIGIT_BITS;

/// Sorts `edges` stably by `key(edge)` using LSD radix passes.
///
/// Buffers are swapped between passes; the function guarantees the final
/// result lands back in `edges`.
pub fn radix_sort_by_u64_key<K: Fn(&Edge) -> u64>(edges: &mut Vec<Edge>, key: K) {
    radix_sort_slice_by_u64_key(edges.as_mut_slice(), key);
}

/// Slice form of [`radix_sort_by_u64_key`] — what the parallel run sorter
/// uses to sort the contiguous per-thread chunks of one spill buffer in
/// place, without splitting the buffer into owned vectors.
pub fn radix_sort_slice_by_u64_key<K: Fn(&Edge) -> u64>(edges: &mut [Edge], key: K) {
    let len = edges.len();
    if len <= 1 {
        return;
    }
    // One histogram sweep for all 8 digits at once.
    let mut histograms = [[0u64; BUCKETS]; 8];
    let mut seen_or = 0u64;
    let mut seen_and = u64::MAX;
    for e in edges.iter() {
        let k = key(e);
        seen_or |= k;
        seen_and &= k;
        for (pass, hist) in histograms.iter_mut().enumerate() {
            hist[((k >> (pass as u32 * DIGIT_BITS)) & 0xFF) as usize] += 1;
        }
    }
    // A pass is trivial when that digit is identical across all keys.
    let varying = seen_or ^ seen_and;

    let mut scratch = edges.to_vec();
    // Ping-pong between the caller's slice and the scratch buffer; track
    // which currently holds the partially sorted data.
    let mut in_edges = true;
    for pass in 0..8u32 {
        if (varying >> (pass * DIGIT_BITS)) & 0xFF == 0 {
            continue;
        }
        let hist = &histograms[pass as usize];
        let mut offsets = [0u64; BUCKETS];
        let mut acc = 0u64;
        for (o, &h) in offsets.iter_mut().zip(hist.iter()) {
            *o = acc;
            acc += h;
        }
        let (src, dst): (&[Edge], &mut [Edge]) = if in_edges {
            (edges, &mut scratch)
        } else {
            (&scratch, edges)
        };
        for e in src {
            let digit = ((key(e) >> (pass * DIGIT_BITS)) & 0xFF) as usize;
            dst[offsets[digit] as usize] = *e;
            offsets[digit] += 1;
        }
        in_edges = !in_edges;
    }
    if !in_edges {
        edges.copy_from_slice(&scratch);
    }
}

/// Stable radix sort of edges under `key`.
pub fn radix_sort(edges: &mut Vec<Edge>, key: SortKey) {
    radix_sort_slice(edges.as_mut_slice(), key);
}

/// Stable radix sort of a slice under `key`.
pub fn radix_sort_slice(edges: &mut [Edge], key: SortKey) {
    match key {
        SortKey::Start => radix_sort_slice_by_u64_key(edges, |e| e.u),
        SortKey::StartEnd => {
            // LSD over the composite key: low component first, then high;
            // stability makes the second pass final.
            radix_sort_slice_by_u64_key(edges, |e| e.v);
            radix_sort_slice_by_u64_key(edges, |e| e.u);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppbench_prng::{Rng64, SeedableRng64, Xoshiro256pp};

    fn random_edges(n: usize, bound: u64, seed: u64) -> Vec<Edge> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        (0..n)
            .map(|_| Edge::new(rng.next_below(bound), rng.next_below(bound)))
            .collect()
    }

    #[test]
    fn matches_std_sort_small_keys() {
        let mut a = random_edges(10_000, 1 << 10, 1);
        let mut b = a.clone();
        radix_sort(&mut a, SortKey::StartEnd);
        b.sort_unstable_by_key(|e| (e.u, e.v));
        assert_eq!(a, b);
    }

    #[test]
    fn matches_std_sort_full_width_keys() {
        // Keys spanning all 64 bits force all 8 passes.
        let mut a = random_edges(5_000, u64::MAX, 2);
        let mut b = a.clone();
        radix_sort(&mut a, SortKey::StartEnd);
        b.sort_unstable_by_key(|e| (e.u, e.v));
        assert_eq!(a, b);
    }

    #[test]
    fn by_start_is_stable() {
        let edges: Vec<Edge> = (0..1000u64).map(|i| Edge::new(i % 7, i)).collect();
        let mut sorted = edges.clone();
        radix_sort(&mut sorted, SortKey::Start);
        for w in sorted.windows(2) {
            assert!(w[0].u <= w[1].u);
            if w[0].u == w[1].u {
                assert!(w[0].v < w[1].v, "stability violated: {w:?}");
            }
        }
    }

    #[test]
    fn constant_keys_are_a_noop() {
        let edges: Vec<Edge> = (0..100u64).map(|i| Edge::new(42, i)).collect();
        let mut sorted = edges.clone();
        radix_sort(&mut sorted, SortKey::Start);
        assert_eq!(sorted, edges, "all passes trivial: order must be untouched");
    }

    #[test]
    fn handles_empty_and_tiny() {
        let mut v: Vec<Edge> = vec![];
        radix_sort(&mut v, SortKey::Start);
        assert!(v.is_empty());
        let mut v = vec![Edge::new(2, 1), Edge::new(1, 2)];
        radix_sort(&mut v, SortKey::Start);
        assert_eq!(v[0].u, 1);
    }

    #[test]
    fn slice_sort_matches_vec_sort_on_subranges() {
        let edges = random_edges(4000, 1 << 20, 7);
        for chunk in [1, 3, 999, 4000] {
            let mut by_slices = edges.clone();
            for part in by_slices.chunks_mut(chunk) {
                radix_sort_slice(part, SortKey::StartEnd);
            }
            let mut expect = edges.clone();
            for part in expect.chunks_mut(chunk) {
                let mut v = part.to_vec();
                radix_sort(&mut v, SortKey::StartEnd);
                part.copy_from_slice(&v);
            }
            assert_eq!(by_slices, expect, "chunk size {chunk}");
        }
    }

    #[test]
    fn custom_key_sorts_descending() {
        let mut v = random_edges(1000, 100, 3);
        radix_sort_by_u64_key(&mut v, |e| u64::MAX - e.u);
        assert!(v.windows(2).all(|w| w[0].u >= w[1].u));
    }
}
