//! Edge sorting for kernel 1 of the PageRank Pipeline Benchmark.
//!
//! Kernel 1 "reads in the files generated in kernel 0, sorts the edges by
//! start vertex and writes the sorted edges to files". The paper notes that
//! the right algorithm depends on scale: "in the case where u and v fit into
//! the RAM of the system, an in-memory algorithm could be used. Likewise, if
//! u and v are too large to fit in memory, then an out-of-core algorithm
//! would be required." This crate provides both:
//!
//! In memory ([`Algorithm`]):
//! * [`radix_sort`] — LSD radix sort on the 64-bit start key (8-bit digits,
//!   trivial passes skipped), stable, O(M) — the `optimized` backend's choice;
//! * [`counting_sort`] — one-pass bucket sort exploiting the known vertex
//!   bound `N = 2^scale`, stable, O(M + N);
//! * [`std_sort`] — `slice::sort_unstable_by_key` (pdqsort), the baseline
//!   comparison sort;
//! * [`parallel_sort`] — rayon's parallel pdqsort (the paper's future-work
//!   parallel path).
//!
//! Out of core:
//! * [`ExternalSorter`] — classic run-generation + k-way merge with an
//!   explicit memory budget, spilling sorted runs as ordinary edge files via
//!   `ppbench-io` and merging them with a binary-heap [`kway`] merge;
//! * [`pipelined_sort`] — the same sorter with reading and run generation
//!   overlapped across threads through a bounded crossbeam channel.
//!
//! All sorts honor a [`SortKey`]: by start vertex only (the spec), or by
//! (start, end) — the paper's §V "should the end vertices also be sorted?"
//! option.

//!
//! # Example
//!
//! ```
//! use ppbench_io::Edge;
//! use ppbench_sort::{radix_sort, SortKey};
//!
//! let mut edges = vec![Edge::new(5, 0), Edge::new(1, 9), Edge::new(3, 2)];
//! radix_sort(&mut edges, SortKey::Start);
//! assert!(SortKey::Start.is_sorted(&edges));
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod external;
pub mod kway;
pub mod pipelined;
mod radix;

pub use external::{ExternalSorter, ExternalStats, MergeStream, RunSet, RunWriter};
pub use kway::{KWayMerge, TwoWayMerge};
pub use pipelined::pipelined_sort;
pub use radix::{radix_sort, radix_sort_by_u64_key, radix_sort_slice, radix_sort_slice_by_u64_key};

use ppbench_io::{Edge, SortState};

/// Which key kernel 1 sorts by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SortKey {
    /// Start vertex only (the benchmark spec). Stable algorithms preserve
    /// the relative order of equal start vertices.
    #[default]
    Start,
    /// Lexicographic (start, end) — the §V variant.
    StartEnd,
}

impl SortKey {
    /// True if `edges` is sorted under this key.
    pub fn is_sorted(self, edges: &[Edge]) -> bool {
        match self {
            SortKey::Start => edges.windows(2).all(|w| w[0].u <= w[1].u),
            SortKey::StartEnd => edges
                .windows(2)
                .all(|w| (w[0].u, w[0].v) <= (w[1].u, w[1].v)),
        }
    }

    /// Compares two edges under this key.
    #[inline]
    pub fn cmp(self, a: &Edge, b: &Edge) -> std::cmp::Ordering {
        match self {
            SortKey::Start => a.u.cmp(&b.u),
            SortKey::StartEnd => (a.u, a.v).cmp(&(b.u, b.v)),
        }
    }

    /// The manifest sort-state this key establishes.
    pub fn sort_state(self) -> SortState {
        match self {
            SortKey::Start => SortState::ByStart,
            SortKey::StartEnd => SortState::ByStartEnd,
        }
    }
}

/// Sorts with the standard library's unstable pattern-defeating quicksort.
pub fn std_sort(edges: &mut [Edge], key: SortKey) {
    match key {
        SortKey::Start => edges.sort_unstable_by_key(|e| e.u),
        SortKey::StartEnd => edges.sort_unstable_by_key(|e| (e.u, e.v)),
    }
}

/// Sorts with the standard library's stable merge sort (allocates).
pub fn std_stable_sort(edges: &mut [Edge], key: SortKey) {
    match key {
        SortKey::Start => edges.sort_by_key(|e| e.u),
        SortKey::StartEnd => edges.sort_by_key(|e| (e.u, e.v)),
    }
}

/// Sorts in parallel with rayon's parallel unstable sort.
pub fn parallel_sort(edges: &mut [Edge], key: SortKey) {
    use rayon::slice::ParallelSliceMut;
    match key {
        SortKey::Start => edges.par_sort_unstable_by_key(|e| e.u),
        SortKey::StartEnd => edges.par_sort_unstable_by_key(|e| (e.u, e.v)),
    }
}

/// Stable counting sort by start vertex, exploiting the known vertex bound.
///
/// O(M + N) time, O(M + N) extra space. Only supports [`SortKey::Start`]
/// (for (start, end) the bound on the composite key is too large to bucket).
///
/// # Panics
///
/// Panics if any start vertex is `>= num_vertices`.
pub fn counting_sort(edges: &mut Vec<Edge>, num_vertices: u64) {
    // ppbench: allow(panic, reason = "documented contract: counting_sort panics on out-of-range bounds, per the fn docs")
    let n = usize::try_from(num_vertices).expect("vertex bound fits usize");
    let mut counts = vec![0u64; n + 1];
    for e in edges.iter() {
        assert!(
            e.u < num_vertices,
            "edge start {} >= vertex bound {num_vertices}",
            e.u
        );
        counts[e.u as usize + 1] += 1;
    }
    for i in 0..n {
        counts[i + 1] += counts[i];
    }
    let mut out = vec![Edge::new(0, 0); edges.len()];
    for e in edges.iter() {
        let slot = &mut counts[e.u as usize];
        out[*slot as usize] = *e;
        *slot += 1;
    }
    *edges = out;
}

/// In-memory sort algorithm selector, used by pipeline backends and the
/// ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// LSD radix sort (stable).
    #[default]
    Radix,
    /// Counting sort by start vertex (stable; needs the vertex bound,
    /// falls back to radix for [`SortKey::StartEnd`]).
    Counting,
    /// `sort_unstable_by_key` comparison sort.
    Std,
    /// Stable standard-library sort.
    StdStable,
    /// rayon parallel unstable sort.
    Parallel,
}

impl Algorithm {
    /// Sorts `edges` in memory. `vertex_bound` is required by
    /// [`Algorithm::Counting`] and ignored by the others.
    pub fn sort(self, edges: &mut Vec<Edge>, key: SortKey, vertex_bound: Option<u64>) {
        match self {
            Algorithm::Radix => radix_sort(edges, key),
            Algorithm::Counting => match (key, vertex_bound) {
                (SortKey::Start, Some(n)) => counting_sort(edges, n),
                _ => radix_sort(edges, key),
            },
            Algorithm::Std => std_sort(edges, key),
            Algorithm::StdStable => std_stable_sort(edges, key),
            Algorithm::Parallel => parallel_sort(edges, key),
        }
    }

    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Radix => "radix",
            Algorithm::Counting => "counting",
            Algorithm::Std => "std",
            Algorithm::StdStable => "std-stable",
            Algorithm::Parallel => "parallel",
        }
    }

    /// All algorithms, for sweeps and tests.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::Radix,
        Algorithm::Counting,
        Algorithm::Std,
        Algorithm::StdStable,
        Algorithm::Parallel,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppbench_prng::{Rng64, SeedableRng64, Xoshiro256pp};

    fn random_edges(n: usize, vertex_bound: u64, seed: u64) -> Vec<Edge> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        (0..n)
            .map(|_| Edge::new(rng.next_below(vertex_bound), rng.next_below(vertex_bound)))
            .collect()
    }

    #[test]
    fn all_algorithms_sort_by_start() {
        let original = random_edges(5000, 256, 1);
        for alg in Algorithm::ALL {
            let mut edges = original.clone();
            alg.sort(&mut edges, SortKey::Start, Some(256));
            assert!(SortKey::Start.is_sorted(&edges), "{}", alg.name());
            let mut a = edges.clone();
            let mut b = original.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{} lost edges", alg.name());
        }
    }

    #[test]
    fn all_algorithms_sort_by_start_end() {
        let original = random_edges(3000, 64, 2);
        for alg in Algorithm::ALL {
            let mut edges = original.clone();
            alg.sort(&mut edges, SortKey::StartEnd, Some(64));
            assert!(SortKey::StartEnd.is_sorted(&edges), "{}", alg.name());
        }
    }

    #[test]
    fn stable_algorithms_preserve_equal_key_order() {
        // Tag each edge's v with its original index; after a stable sort by
        // start, v must be increasing within each start-vertex group.
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let original: Vec<Edge> = (0..4000)
            .map(|i| Edge::new(rng.next_below(16), i))
            .collect();
        for alg in [Algorithm::Radix, Algorithm::Counting, Algorithm::StdStable] {
            let mut edges = original.clone();
            alg.sort(&mut edges, SortKey::Start, Some(16));
            for w in edges.windows(2) {
                if w[0].u == w[1].u {
                    assert!(w[0].v < w[1].v, "{} is not stable", alg.name());
                }
            }
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        for alg in Algorithm::ALL {
            let mut empty: Vec<Edge> = vec![];
            alg.sort(&mut empty, SortKey::Start, Some(4));
            assert!(empty.is_empty());
            let mut one = vec![Edge::new(3, 1)];
            alg.sort(&mut one, SortKey::Start, Some(4));
            assert_eq!(one, vec![Edge::new(3, 1)]);
        }
    }

    #[test]
    fn counting_sort_rejects_out_of_bound() {
        let mut edges = vec![Edge::new(10, 0)];
        let result = std::panic::catch_unwind(move || counting_sort(&mut edges, 10));
        assert!(result.is_err());
    }

    #[test]
    fn is_sorted_distinguishes_keys() {
        let by_start_only = vec![Edge::new(1, 9), Edge::new(1, 2), Edge::new(3, 0)];
        assert!(SortKey::Start.is_sorted(&by_start_only));
        assert!(!SortKey::StartEnd.is_sorted(&by_start_only));
    }

    #[test]
    fn sort_key_maps_to_sort_state() {
        assert_eq!(SortKey::Start.sort_state(), SortState::ByStart);
        assert_eq!(SortKey::StartEnd.sort_state(), SortState::ByStartEnd);
    }
}
