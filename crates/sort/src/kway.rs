//! K-way merge of sorted edge streams.
//!
//! The merge phase of the out-of-core sorter: given `k` iterators that are
//! each sorted under a [`SortKey`], produce the globally sorted stream. Uses
//! a binary heap keyed on (edge key, run index); the run index tie-break
//! makes the merge stable across runs (earlier runs win ties), which
//! preserves the stability guarantee of the overall external sort.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use ppbench_io::Edge;

use crate::SortKey;

struct HeapItem {
    edge: Edge,
    run: usize,
    key: SortKey,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest first.
        self.key
            .cmp(&self.edge, &other.edge)
            .then(self.run.cmp(&other.run))
            .reverse()
    }
}

/// Merges sorted runs into one sorted iterator.
///
/// Each run must already be sorted under `key`; this is debug-asserted as
/// elements are drawn.
pub struct KWayMerge<I: Iterator<Item = Edge>> {
    runs: Vec<I>,
    heap: BinaryHeap<HeapItem>,
    key: SortKey,
    #[cfg(debug_assertions)]
    last: Option<Edge>,
}

impl<I: Iterator<Item = Edge>> KWayMerge<I> {
    /// Builds the merge over `runs`.
    pub fn new(mut runs: Vec<I>, key: SortKey) -> Self {
        let mut heap = BinaryHeap::with_capacity(runs.len());
        for (run, it) in runs.iter_mut().enumerate() {
            if let Some(edge) = it.next() {
                heap.push(HeapItem { edge, run, key });
            }
        }
        Self {
            runs,
            heap,
            key,
            #[cfg(debug_assertions)]
            last: None,
        }
    }
}

impl<I: Iterator<Item = Edge>> Iterator for KWayMerge<I> {
    type Item = Edge;

    fn next(&mut self) -> Option<Edge> {
        let item = self.heap.pop()?;
        if let Some(edge) = self.runs[item.run].next() {
            debug_assert!(
                self.key.cmp(&item.edge, &edge) != Ordering::Greater,
                "run {} is not sorted: {:?} before {:?}",
                item.run,
                item.edge,
                edge
            );
            self.heap.push(HeapItem {
                edge,
                run: item.run,
                key: self.key,
            });
        }
        #[cfg(debug_assertions)]
        {
            if let Some(last) = self.last {
                debug_assert!(self.key.cmp(&last, &item.edge) != Ordering::Greater);
            }
            self.last = Some(item.edge);
        }
        Some(item.edge)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let (mut lo, mut hi) = (self.heap.len(), Some(self.heap.len()));
        for r in &self.runs {
            let (l, h) = r.size_hint();
            lo += l;
            hi = match (hi, h) {
                (Some(a), Some(b)) => a.checked_add(b),
                _ => None,
            };
        }
        (lo, hi)
    }
}

/// Specialized merge of exactly two sorted runs: one comparison per
/// element instead of heap pop/push (each `O(log k)` with a branchy
/// sift). Two runs is the common case for both the parallel in-memory
/// chunk sort on small worker counts and lightly spilled external sorts,
/// so the fast path pays for itself exactly where the heap overhead hurt.
///
/// Ties prefer run `a` — the same "earlier run wins" rule as
/// [`KWayMerge`], so swapping one merge for the other never changes the
/// output of a stable sort.
pub struct TwoWayMerge<I: Iterator<Item = Edge>> {
    a: I,
    b: I,
    head_a: Option<Edge>,
    head_b: Option<Edge>,
    key: SortKey,
}

impl<I: Iterator<Item = Edge>> TwoWayMerge<I> {
    /// Builds the merge over two runs, each already sorted under `key`.
    pub fn new(mut a: I, mut b: I, key: SortKey) -> Self {
        let head_a = a.next();
        let head_b = b.next();
        Self {
            a,
            b,
            head_a,
            head_b,
            key,
        }
    }
}

impl<I: Iterator<Item = Edge>> Iterator for TwoWayMerge<I> {
    type Item = Edge;

    #[inline]
    fn next(&mut self) -> Option<Edge> {
        match (self.head_a, self.head_b) {
            (Some(x), Some(y)) => {
                if self.key.cmp(&x, &y) != Ordering::Greater {
                    self.head_a = self.a.next();
                    debug_assert!(self
                        .head_a
                        .is_none_or(|n| self.key.cmp(&x, &n) != Ordering::Greater));
                    Some(x)
                } else {
                    self.head_b = self.b.next();
                    debug_assert!(self
                        .head_b
                        .is_none_or(|n| self.key.cmp(&y, &n) != Ordering::Greater));
                    Some(y)
                }
            }
            (Some(x), None) => {
                self.head_a = self.a.next();
                Some(x)
            }
            (None, Some(y)) => {
                self.head_b = self.b.next();
                Some(y)
            }
            (None, None) => None,
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let pending = usize::from(self.head_a.is_some()) + usize::from(self.head_b.is_some());
        let (la, ha) = self.a.size_hint();
        let (lb, hb) = self.b.size_hint();
        let hi = match (ha, hb) {
            (Some(x), Some(y)) => x.checked_add(y).and_then(|s| s.checked_add(pending)),
            _ => None,
        };
        (la + lb + pending, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(u: u64, v: u64) -> Edge {
        Edge::new(u, v)
    }

    #[test]
    fn merges_three_runs() {
        let runs = vec![
            vec![e(0, 0), e(3, 0), e(9, 0)].into_iter(),
            vec![e(1, 0), e(4, 0)].into_iter(),
            vec![e(2, 0), e(2, 1), e(8, 0)].into_iter(),
        ];
        let merged: Vec<Edge> = KWayMerge::new(runs, SortKey::Start).collect();
        let starts: Vec<u64> = merged.iter().map(|x| x.u).collect();
        assert_eq!(starts, vec![0, 1, 2, 2, 3, 4, 8, 9]);
    }

    #[test]
    fn empty_runs_are_fine() {
        let runs: Vec<std::vec::IntoIter<Edge>> = vec![
            vec![].into_iter(),
            vec![e(1, 1)].into_iter(),
            vec![].into_iter(),
        ];
        let merged: Vec<Edge> = KWayMerge::new(runs, SortKey::Start).collect();
        assert_eq!(merged, vec![e(1, 1)]);
    }

    #[test]
    fn no_runs_yields_nothing() {
        let merged: Vec<Edge> =
            KWayMerge::new(Vec::<std::vec::IntoIter<Edge>>::new(), SortKey::Start).collect();
        assert!(merged.is_empty());
    }

    #[test]
    fn ties_prefer_earlier_runs() {
        // Stability across runs: on equal keys, run 0's element comes first.
        let runs = vec![vec![e(5, 100)].into_iter(), vec![e(5, 200)].into_iter()];
        let merged: Vec<Edge> = KWayMerge::new(runs, SortKey::Start).collect();
        assert_eq!(merged, vec![e(5, 100), e(5, 200)]);
    }

    #[test]
    fn start_end_key_orders_within_start() {
        let runs = vec![
            vec![e(1, 5), e(2, 0)].into_iter(),
            vec![e(1, 2), e(1, 9)].into_iter(),
        ];
        let merged: Vec<Edge> = KWayMerge::new(runs, SortKey::StartEnd).collect();
        assert_eq!(merged, vec![e(1, 2), e(1, 5), e(1, 9), e(2, 0)]);
    }

    #[test]
    fn size_hint_is_exact_for_vec_runs() {
        let runs = vec![
            vec![e(0, 0), e(1, 0)].into_iter(),
            vec![e(2, 0)].into_iter(),
        ];
        let merge = KWayMerge::new(runs, SortKey::Start);
        assert_eq!(merge.size_hint(), (3, Some(3)));
    }

    #[test]
    fn two_way_matches_kway_on_every_split() {
        // One sorted sequence cut at every point: the specialized merge
        // must reproduce the heap merge exactly, ties included.
        let all: Vec<Edge> = vec![
            e(0, 1),
            e(1, 0),
            e(1, 0),
            e(1, 2),
            e(3, 1),
            e(3, 1),
            e(7, 0),
        ];
        for cut in 0..=all.len() {
            let (a, b) = all.split_at(cut);
            for key in [SortKey::Start, SortKey::StartEnd] {
                let two: Vec<Edge> =
                    TwoWayMerge::new(a.iter().copied(), b.iter().copied(), key).collect();
                let heap: Vec<Edge> =
                    KWayMerge::new(vec![a.iter().copied(), b.iter().copied()], key).collect();
                assert_eq!(two, heap, "cut {cut} key {key:?}");
            }
        }
    }

    #[test]
    fn two_way_ties_prefer_first_run() {
        let a = vec![e(5, 100)];
        let b = vec![e(5, 200)];
        let merged: Vec<Edge> =
            TwoWayMerge::new(a.into_iter(), b.into_iter(), SortKey::Start).collect();
        assert_eq!(merged, vec![e(5, 100), e(5, 200)]);
    }

    #[test]
    fn two_way_handles_empty_sides() {
        let empty: Vec<Edge> = Vec::new();
        let one = vec![e(1, 1), e(2, 2)];
        let left: Vec<Edge> =
            TwoWayMerge::new(one.iter().copied(), empty.iter().copied(), SortKey::Start).collect();
        assert_eq!(left, one);
        let right: Vec<Edge> =
            TwoWayMerge::new(empty.iter().copied(), one.iter().copied(), SortKey::Start).collect();
        assert_eq!(right, one);
        let none: Vec<Edge> =
            TwoWayMerge::new(empty.iter().copied(), empty.iter().copied(), SortKey::Start)
                .collect();
        assert!(none.is_empty());
    }

    #[test]
    fn two_way_size_hint_is_exact_for_vec_runs() {
        let a = vec![e(0, 0), e(1, 0)];
        let b = vec![e(2, 0)];
        let merge = TwoWayMerge::new(a.into_iter(), b.into_iter(), SortKey::Start);
        assert_eq!(merge.size_hint(), (3, Some(3)));
    }
}
