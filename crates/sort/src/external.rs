//! Out-of-core edge sorting: run generation + k-way merge.
//!
//! The classic external merge sort the paper calls for when "u and v are too
//! large to fit in memory":
//!
//! 1. **Run generation** — fill a buffer of at most `budget_edges` edges
//!    from the input stream, sort it in memory (stable radix), and spill it
//!    as an ordinary edge file (`run-NNNNN.tsv`) via `ppbench-io`.
//! 2. **Merge** — stream all runs back through a stable merge and feed the
//!    globally sorted stream to the caller's sink.
//!
//! Spilled runs use the same TSV format as the benchmark's own files, so the
//! spill traffic exercises exactly the I/O path the benchmark measures.
//!
//! The two phases are exposed separately as [`RunWriter`] (push edges,
//! spill at the budget) and [`RunSet::into_stream`] (a [`MergeStream`]
//! iterator over the sorted order), so a consumer can build its output
//! **mid-merge** — kernel 2's fused path constructs CSR straight off this
//! stream without ever materializing the sorted edge list.
//! [`ExternalSorter::sort`] composes the two for callers that just want a
//! sink called in sorted order.
//!
//! Run sorting is parallel when the pool has more than one worker: the
//! buffer is split into per-thread contiguous chunks, each chunk is radix
//! sorted in place, and a stable merge (earlier chunks win ties) streams
//! the merged order straight into the run writer — the result is
//! byte-identical to a full stable sort for any thread count, and the merge
//! overlaps with the run file's buffered write. Two-run merges (the common
//! case for two workers or a single spill) skip the binary heap entirely:
//! [`TwoWayMerge`] costs one comparison per element where the heap costs a
//! pop and a push.

use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::rc::Rc;

use ppbench_io::checksum::EdgeDigest;
use ppbench_io::{Edge, EdgeReader, EdgeWriter, Error, Result};
use rayon::prelude::*;

use crate::kway::{KWayMerge, TwoWayMerge};
use crate::{radix_sort_slice, SortKey};

/// Statistics from an external sort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExternalStats {
    /// Number of edges sorted.
    pub edges: u64,
    /// Number of sorted runs spilled to disk (0 when the input was empty).
    pub runs: usize,
    /// Largest number of edges held in memory at once.
    pub peak_buffer: usize,
    /// Digest of the input stream as consumed, in arrival order. Callers
    /// that hold a manifest for the input verify it against this to catch
    /// truncated-but-parseable files.
    pub input_digest: EdgeDigest,
}

/// Below this buffer size a parallel chunk sort costs more in thread spawns
/// than it saves; sort serially instead. Radix sort moves ~250 MB/s of
/// edges per core, so a 2^18-edge run (~4 MB) sorts in milliseconds —
/// spawning and joining a pool for less than that is where the committed
/// 2-thread sweep numbers lost to 1-thread.
const PAR_SORT_MIN: usize = 1 << 18;

/// Stably sorts `buffer` under `key` and feeds the sorted order to `emit`.
///
/// With multiple workers the buffer is chunk-sorted in parallel and merged
/// stably on the fly (ties prefer earlier chunks, so the emitted order is
/// exactly the full stable sort's regardless of worker count); `buffer`
/// itself is left only chunk-sorted in that case — callers must consume the
/// emitted stream, not the buffer.
fn sort_stably_into<F>(buffer: &mut [Edge], key: SortKey, mut emit: F) -> Result<()>
where
    F: FnMut(Edge) -> Result<()>,
{
    let workers = rayon::current_num_threads().max(1);
    if workers <= 1 || buffer.len() < PAR_SORT_MIN {
        radix_sort_slice(buffer, key);
        for &e in buffer.iter() {
            emit(e)?;
        }
        return Ok(());
    }
    let chunk = buffer.len().div_ceil(workers);
    let parts: Vec<&mut [Edge]> = buffer.chunks_mut(chunk).collect();
    let _sorted: Vec<()> = parts
        .into_par_iter()
        .map(|part| radix_sort_slice(part, key))
        .collect();
    let mut head = buffer.chunks(chunk).map(|c| c.iter().copied());
    match (head.next(), head.next(), head.next()) {
        (Some(a), Some(b), None) => {
            for e in TwoWayMerge::new(a, b, key) {
                emit(e)?;
            }
        }
        _ => {
            let runs: Vec<_> = buffer.chunks(chunk).map(|c| c.iter().copied()).collect();
            for e in KWayMerge::new(runs, key) {
                emit(e)?;
            }
        }
    }
    Ok(())
}

/// Out-of-core sorter with an explicit memory budget.
#[derive(Debug)]
pub struct ExternalSorter {
    scratch_dir: PathBuf,
    budget_edges: usize,
    key: SortKey,
}

impl ExternalSorter {
    /// Creates a sorter spilling runs into `scratch_dir`, holding at most
    /// `budget_edges` edges in memory.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if `budget_edges == 0`.
    pub fn new(scratch_dir: &Path, budget_edges: usize, key: SortKey) -> Result<Self> {
        if budget_edges == 0 {
            return Err(Error::InvalidConfig(
                "external sort budget must be positive".into(),
            ));
        }
        Ok(Self {
            scratch_dir: scratch_dir.to_path_buf(),
            budget_edges,
            key,
        })
    }

    /// Begins an incremental sort: push edges into the returned
    /// [`RunWriter`], seal it with [`RunWriter::finish`], then merge with
    /// [`RunSet::into_stream`]. [`ExternalSorter::sort`] composes exactly
    /// this sequence; the split form exists so a consumer can take the
    /// sorted stream mid-merge (the fused kernel-2 path) or move the
    /// sealed [`RunSet`] to another thread before merging.
    pub fn run_writer(&self) -> Result<RunWriter> {
        std::fs::create_dir_all(&self.scratch_dir).map_err(|e| Error::io(&self.scratch_dir, e))?;
        Ok(RunWriter {
            scratch_dir: self.scratch_dir.clone(),
            budget_edges: self.budget_edges,
            key: self.key,
            buffer: Vec::with_capacity(self.budget_edges.min(1 << 20)),
            run_dirs: Vec::new(),
            stats: ExternalStats::default(),
        })
    }

    /// Sorts `input`, delivering the sorted stream to `sink` one edge at a
    /// time. Returns statistics. Scratch files are removed before returning.
    pub fn sort<I, F>(&self, input: I, mut sink: F) -> Result<ExternalStats>
    where
        I: IntoIterator<Item = Result<Edge>>,
        F: FnMut(Edge) -> Result<()>,
    {
        let mut writer = self.run_writer()?;
        for edge in input {
            writer.push(edge?)?;
        }
        let set = writer.finish()?;
        let stats = *set.stats();
        for edge in set.into_stream()? {
            sink(edge?)?;
        }
        Ok(stats)
    }
}

/// Accumulates edges for an out-of-core sort, spilling a sorted run
/// whenever the budget fills. Created by [`ExternalSorter::run_writer`];
/// sealed into a [`RunSet`] by [`RunWriter::finish`].
#[derive(Debug)]
pub struct RunWriter {
    scratch_dir: PathBuf,
    budget_edges: usize,
    key: SortKey,
    buffer: Vec<Edge>,
    run_dirs: Vec<PathBuf>,
    stats: ExternalStats,
}

impl RunWriter {
    /// Adds one edge, spilling a sorted run if the buffer is full.
    pub fn push(&mut self, edge: Edge) -> Result<()> {
        self.stats.input_digest.update(edge);
        self.buffer.push(edge);
        self.stats.edges += 1;
        if self.buffer.len() >= self.budget_edges {
            self.spill()?;
        }
        Ok(())
    }

    /// The statistics accumulated so far (digest, edge count, spills).
    pub fn stats(&self) -> &ExternalStats {
        &self.stats
    }

    /// Seals the run set. An unspilled buffer becomes a single fully
    /// sorted in-memory run (stable, thread-count invariant); otherwise
    /// the remaining buffer is spilled and the set holds only run
    /// directories, so it is cheap to move across threads.
    pub fn finish(mut self) -> Result<RunSet> {
        self.stats.peak_buffer = self.stats.peak_buffer.max(self.buffer.len());
        if self.run_dirs.is_empty() {
            self.stats.runs = usize::from(!self.buffer.is_empty());
            let workers = rayon::current_num_threads().max(1);
            let store = if workers <= 1 || self.buffer.len() < PAR_SORT_MIN {
                radix_sort_slice(&mut self.buffer, self.key);
                RunStore::Memory(self.buffer)
            } else {
                let mut sorted = Vec::with_capacity(self.buffer.len());
                sort_stably_into(&mut self.buffer, self.key, |e| {
                    sorted.push(e);
                    Ok(())
                })?;
                RunStore::Memory(sorted)
            };
            return Ok(RunSet {
                store,
                key: self.key,
                stats: self.stats,
            });
        }
        if !self.buffer.is_empty() {
            self.spill()?;
        }
        Ok(RunSet {
            store: RunStore::Disk(self.run_dirs),
            key: self.key,
            stats: self.stats,
        })
    }

    fn spill(&mut self) -> Result<()> {
        self.stats.peak_buffer = self.stats.peak_buffer.max(self.buffer.len());
        let dir = self
            .scratch_dir
            .join(format!("run-{:05}", self.run_dirs.len()));
        // Scratch runs are re-read immediately and deleted after the merge;
        // fsyncing them would only tax the spill path.
        let mut w = EdgeWriter::create(&dir, "run", 1, self.buffer.len() as u64)?.durable(false);
        sort_stably_into(&mut self.buffer, self.key, |e| w.write(e))?;
        w.finish(None, None, self.key.sort_state())?;
        self.run_dirs.push(dir);
        self.stats.runs += 1;
        self.buffer.clear();
        Ok(())
    }
}

/// A sealed set of sorted runs: either one fully sorted in-memory run or
/// the directories of spilled runs. `Send`, so a set written on one thread
/// can be merged on another — the fused kernel-2 path seals one set per
/// vertex-range bucket and opens each stream inside its own worker.
#[derive(Debug)]
pub struct RunSet {
    store: RunStore,
    key: SortKey,
    stats: ExternalStats,
}

#[derive(Debug)]
enum RunStore {
    Memory(Vec<Edge>),
    Disk(Vec<PathBuf>),
}

impl RunSet {
    /// Statistics accumulated while the runs were written.
    pub fn stats(&self) -> &ExternalStats {
        &self.stats
    }

    /// Opens the merge, yielding the globally sorted edge stream.
    pub fn into_stream(self) -> Result<MergeStream> {
        let err: Rc<RefCell<Option<Error>>> = Rc::new(RefCell::new(None));
        let (inner, run_dirs) = match self.store {
            RunStore::Memory(buffer) => (StreamInner::Mem(buffer.into_iter()), Vec::new()),
            RunStore::Disk(dirs) => {
                let mut runs: Vec<RunIter> = Vec::with_capacity(dirs.len());
                for dir in &dirs {
                    let (_, iter) = EdgeReader::open_dir(dir)?;
                    let cell = Rc::clone(&err);
                    runs.push(Box::new(iter.map_while(move |r| match r {
                        Ok(e) => Some(e),
                        Err(e) => {
                            *cell.borrow_mut() = Some(e);
                            None
                        }
                    })));
                }
                let mut drain = runs.into_iter();
                let inner = match (drain.next(), drain.next(), drain.next()) {
                    (Some(a), Some(b), None) => StreamInner::Two(TwoWayMerge::new(a, b, self.key)),
                    (first, second, third) => {
                        let rest: Vec<RunIter> = [first, second, third]
                            .into_iter()
                            .flatten()
                            .chain(drain)
                            .collect();
                        StreamInner::Heap(KWayMerge::new(rest, self.key))
                    }
                };
                (inner, dirs)
            }
        };
        Ok(MergeStream {
            inner,
            err,
            run_dirs,
            failed: false,
        })
    }
}

type RunIter = Box<dyn Iterator<Item = Edge>>;

enum StreamInner {
    Mem(std::vec::IntoIter<Edge>),
    Two(TwoWayMerge<RunIter>),
    Heap(KWayMerge<RunIter>),
}

/// The sorted output of a [`RunSet`], consumable one edge at a time while
/// the merge is still in flight. Read errors from spilled runs surface as
/// `Err` items (at most one edge late); after the first error the stream
/// fuses shut. Dropping the stream removes the spilled run files.
pub struct MergeStream {
    inner: StreamInner,
    err: Rc<RefCell<Option<Error>>>,
    run_dirs: Vec<PathBuf>,
    failed: bool,
}

impl Iterator for MergeStream {
    type Item = Result<Edge>;

    fn next(&mut self) -> Option<Result<Edge>> {
        if self.failed {
            return None;
        }
        if let Some(e) = self.err.borrow_mut().take() {
            self.failed = true;
            return Some(Err(e));
        }
        let item = match &mut self.inner {
            StreamInner::Mem(it) => it.next(),
            StreamInner::Two(m) => m.next(),
            StreamInner::Heap(m) => m.next(),
        };
        match item {
            Some(edge) => Some(Ok(edge)),
            None => {
                let parked = self.err.borrow_mut().take();
                if parked.is_some() {
                    self.failed = true;
                }
                parked.map(Err)
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.inner {
            StreamInner::Mem(it) => it.size_hint(),
            StreamInner::Two(m) => (0, m.size_hint().1),
            StreamInner::Heap(m) => (0, m.size_hint().1),
        }
    }
}

impl Drop for MergeStream {
    fn drop(&mut self) {
        for dir in &self.run_dirs {
            // ppbench: allow(discarded-result, reason = "best-effort scratch cleanup; the merge already succeeded or failed")
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppbench_io::tempdir::TempDir;
    use ppbench_prng::{Rng64, SeedableRng64, Xoshiro256pp};

    fn random_edges(n: usize, bound: u64, seed: u64) -> Vec<Edge> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        (0..n)
            .map(|_| Edge::new(rng.next_below(bound), rng.next_below(bound)))
            .collect()
    }

    fn run_external(edges: &[Edge], budget: usize, key: SortKey) -> (Vec<Edge>, ExternalStats) {
        let td = TempDir::new("ppbench-extsort").unwrap();
        let sorter = ExternalSorter::new(td.path(), budget, key).unwrap();
        let mut out = Vec::new();
        let stats = sorter
            .sort(edges.iter().map(|&e| Ok(e)), |e| {
                out.push(e);
                Ok(())
            })
            .unwrap();
        (out, stats)
    }

    #[test]
    fn tiny_budget_forces_many_runs_and_still_sorts() {
        let edges = random_edges(1000, 500, 1);
        let (out, stats) = run_external(&edges, 64, SortKey::Start);
        assert_eq!(out.len(), edges.len());
        assert!(SortKey::Start.is_sorted(&out));
        assert!(stats.runs >= 15, "expected many runs, got {}", stats.runs);
        assert!(stats.peak_buffer <= 64);
        let mut a = out.clone();
        let mut b = edges.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "external sort lost or invented edges");
    }

    #[test]
    fn in_memory_fast_path_single_run() {
        let edges = random_edges(100, 50, 2);
        let (out, stats) = run_external(&edges, 1_000_000, SortKey::Start);
        assert!(SortKey::Start.is_sorted(&out));
        assert_eq!(stats.runs, 1);
        assert_eq!(stats.edges, 100);
    }

    #[test]
    fn matches_in_memory_sort_exactly() {
        // Stability end-to-end: external (budget forcing spills) must equal
        // the stable in-memory radix sort byte for byte.
        let edges: Vec<Edge> = (0..2000u64).map(|i| Edge::new(i % 13, i)).collect();
        let (out, _) = run_external(&edges, 100, SortKey::Start);
        let mut expect = edges.clone();
        crate::radix_sort(&mut expect, SortKey::Start);
        assert_eq!(out, expect);
    }

    #[test]
    fn exactly_two_runs_take_the_two_way_path() {
        // A budget of exactly half forces two spilled runs, which the
        // merge serves through TwoWayMerge — the output must still equal
        // the stable in-memory sort byte for byte.
        let edges: Vec<Edge> = (0..1000u64).map(|i| Edge::new(i % 7, i)).collect();
        let (out, stats) = run_external(&edges, 500, SortKey::Start);
        assert_eq!(stats.runs, 2);
        let mut expect = edges.clone();
        crate::radix_sort(&mut expect, SortKey::Start);
        assert_eq!(out, expect);
    }

    #[test]
    fn input_digest_records_arrival_order() {
        let edges = random_edges(300, 64, 9);
        let (_, stats) = run_external(&edges, 50, SortKey::Start);
        let expect = ppbench_io::checksum::EdgeDigest::of_edges(&edges);
        assert!(stats.input_digest.same_stream(&expect));
    }

    #[test]
    fn parallel_chunk_sort_is_thread_count_invariant() {
        // The stable chunk merge must reproduce the serial stable sort
        // bit for bit for any worker count, including buffers above
        // PAR_SORT_MIN where the parallel path actually engages.
        let n = (PAR_SORT_MIN + 1234) as u64;
        let edges: Vec<Edge> = (0..n).map(|i| Edge::new(i % 97, i)).collect();
        let mut expect = edges.clone();
        crate::radix_sort(&mut expect, SortKey::Start);
        for workers in [1, 2, 5] {
            rayon::ThreadPoolBuilder::new()
                .num_threads(workers)
                .build_global()
                .unwrap();
            let mut buffer = edges.clone();
            let mut out = Vec::with_capacity(buffer.len());
            sort_stably_into(&mut buffer, SortKey::Start, |e| {
                out.push(e);
                Ok(())
            })
            .unwrap();
            assert_eq!(out, expect, "{workers} workers");
        }
        rayon::ThreadPoolBuilder::new().build_global().unwrap();
    }

    #[test]
    fn run_writer_stream_matches_sort() {
        // The split API (run_writer → finish → into_stream) is what sort()
        // composes; both must produce the identical stream and stats, with
        // and without spills.
        let edges = random_edges(2000, 300, 7);
        for budget in [150usize, 1 << 20] {
            let (via_sort, sort_stats) = run_external(&edges, budget, SortKey::StartEnd);
            let td = TempDir::new("ppbench-extsort").unwrap();
            let sorter = ExternalSorter::new(td.path(), budget, SortKey::StartEnd).unwrap();
            let mut writer = sorter.run_writer().unwrap();
            for &e in &edges {
                writer.push(e).unwrap();
            }
            let set = writer.finish().unwrap();
            let split_stats = *set.stats();
            let via_split: Vec<Edge> = set
                .into_stream()
                .unwrap()
                .collect::<Result<Vec<Edge>>>()
                .unwrap();
            assert_eq!(via_split, via_sort, "budget {budget}");
            assert_eq!(split_stats, sort_stats, "budget {budget}");
        }
    }

    #[test]
    fn run_set_is_send_and_merges_on_another_thread() {
        let edges = random_edges(600, 40, 11);
        let td = TempDir::new("ppbench-extsort").unwrap();
        let sorter = ExternalSorter::new(td.path(), 100, SortKey::Start).unwrap();
        let mut writer = sorter.run_writer().unwrap();
        for &e in &edges {
            writer.push(e).unwrap();
        }
        let set = writer.finish().unwrap();
        let out = std::thread::scope(|s| {
            s.spawn(move || {
                set.into_stream()
                    .unwrap()
                    .collect::<Result<Vec<Edge>>>()
                    .unwrap()
            })
            .join()
            .expect("merge thread panicked")
        });
        assert!(SortKey::Start.is_sorted(&out));
        assert_eq!(out.len(), edges.len());
    }

    #[test]
    fn dropping_the_stream_cleans_scratch() {
        let td = TempDir::new("ppbench-extsort").unwrap();
        let scratch = td.join("scratch");
        let sorter = ExternalSorter::new(&scratch, 8, SortKey::Start).unwrap();
        let mut writer = sorter.run_writer().unwrap();
        for &e in &random_edges(100, 50, 5) {
            writer.push(e).unwrap();
        }
        let stream = writer.finish().unwrap().into_stream().unwrap();
        // Abandon the merge after one edge; Drop must still clean up.
        drop(stream);
        let leftovers: Vec<_> = std::fs::read_dir(&scratch).unwrap().collect();
        assert!(
            leftovers.is_empty(),
            "scratch dir not cleaned: {leftovers:?}"
        );
    }

    #[test]
    fn empty_input() {
        let (out, stats) = run_external(&[], 10, SortKey::Start);
        assert!(out.is_empty());
        assert_eq!(stats.runs, 0);
        assert_eq!(stats.edges, 0);
    }

    #[test]
    fn start_end_key_respected() {
        let edges = random_edges(500, 8, 3);
        let (out, _) = run_external(&edges, 50, SortKey::StartEnd);
        assert!(SortKey::StartEnd.is_sorted(&out));
    }

    #[test]
    fn zero_budget_rejected() {
        let td = TempDir::new("ppbench-extsort").unwrap();
        assert!(ExternalSorter::new(td.path(), 0, SortKey::Start).is_err());
    }

    #[test]
    fn input_errors_propagate() {
        let td = TempDir::new("ppbench-extsort").unwrap();
        let sorter = ExternalSorter::new(td.path(), 4, SortKey::Start).unwrap();
        let input = vec![
            Ok(Edge::new(1, 1)),
            Err(Error::InvalidConfig("boom".into())),
        ];
        let result = sorter.sort(input, |_| Ok(()));
        assert!(result.is_err());
    }

    #[test]
    fn sink_errors_propagate() {
        let td = TempDir::new("ppbench-extsort").unwrap();
        let sorter = ExternalSorter::new(td.path(), 4, SortKey::Start).unwrap();
        let edges = random_edges(20, 10, 4);
        let mut n = 0;
        let result = sorter.sort(edges.iter().map(|&e| Ok(e)), |_| {
            n += 1;
            if n > 5 {
                Err(Error::InvalidConfig("sink full".into()))
            } else {
                Ok(())
            }
        });
        assert!(result.is_err());
    }

    #[test]
    fn scratch_files_cleaned_up() {
        let td = TempDir::new("ppbench-extsort").unwrap();
        let scratch = td.join("scratch");
        let sorter = ExternalSorter::new(&scratch, 8, SortKey::Start).unwrap();
        let edges = random_edges(100, 50, 5);
        sorter
            .sort(edges.iter().map(|&e| Ok(e)), |_| Ok(()))
            .unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&scratch).unwrap().collect();
        assert!(
            leftovers.is_empty(),
            "scratch dir not cleaned: {leftovers:?}"
        );
    }
}
