//! Out-of-core edge sorting: run generation + k-way merge.
//!
//! The classic external merge sort the paper calls for when "u and v are too
//! large to fit in memory":
//!
//! 1. **Run generation** — fill a buffer of at most `budget_edges` edges
//!    from the input stream, sort it in memory (stable radix), and spill it
//!    as an ordinary edge file (`run-NNNNN.tsv`) via `ppbench-io`.
//! 2. **Merge** — stream all runs back through a stable [`KWayMerge`] and
//!    feed the globally sorted stream to the caller's sink.
//!
//! Spilled runs use the same TSV format as the benchmark's own files, so the
//! spill traffic exercises exactly the I/O path the benchmark measures.
//!
//! Run sorting is parallel when the pool has more than one worker: the
//! buffer is split into per-thread contiguous chunks, each chunk is radix
//! sorted in place, and a stable k-way merge (earlier chunks win ties)
//! streams the merged order straight into the run writer — the result is
//! byte-identical to a full stable sort for any thread count, and the merge
//! overlaps with the run file's buffered write.

use std::path::{Path, PathBuf};

use ppbench_io::checksum::EdgeDigest;
use ppbench_io::{Edge, EdgeReader, EdgeWriter, Error, Result};
use rayon::prelude::*;

use crate::kway::KWayMerge;
use crate::{radix_sort_slice, SortKey};

/// Statistics from an external sort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExternalStats {
    /// Number of edges sorted.
    pub edges: u64,
    /// Number of sorted runs spilled to disk (0 when the input was empty).
    pub runs: usize,
    /// Largest number of edges held in memory at once.
    pub peak_buffer: usize,
    /// Digest of the input stream as consumed, in arrival order. Callers
    /// that hold a manifest for the input verify it against this to catch
    /// truncated-but-parseable files.
    pub input_digest: EdgeDigest,
}

/// Below this buffer size a parallel chunk sort costs more in thread spawns
/// than it saves; sort serially instead.
const PAR_SORT_MIN: usize = 1 << 16;

/// Stably sorts `buffer` under `key` and feeds the sorted order to `emit`.
///
/// With multiple workers the buffer is chunk-sorted in parallel and merged
/// stably on the fly (ties prefer earlier chunks, so the emitted order is
/// exactly the full stable sort's regardless of worker count); `buffer`
/// itself is left only chunk-sorted in that case — callers must consume the
/// emitted stream, not the buffer.
fn sort_stably_into<F>(buffer: &mut [Edge], key: SortKey, mut emit: F) -> Result<()>
where
    F: FnMut(Edge) -> Result<()>,
{
    let workers = rayon::current_num_threads().max(1);
    if workers <= 1 || buffer.len() < PAR_SORT_MIN {
        radix_sort_slice(buffer, key);
        for &e in buffer.iter() {
            emit(e)?;
        }
        return Ok(());
    }
    let chunk = buffer.len().div_ceil(workers);
    let parts: Vec<&mut [Edge]> = buffer.chunks_mut(chunk).collect();
    let _sorted: Vec<()> = parts
        .into_par_iter()
        .map(|part| radix_sort_slice(part, key))
        .collect();
    let runs: Vec<_> = buffer.chunks(chunk).map(|c| c.iter().copied()).collect();
    for e in KWayMerge::new(runs, key) {
        emit(e)?;
    }
    Ok(())
}

/// Out-of-core sorter with an explicit memory budget.
#[derive(Debug)]
pub struct ExternalSorter {
    scratch_dir: PathBuf,
    budget_edges: usize,
    key: SortKey,
}

impl ExternalSorter {
    /// Creates a sorter spilling runs into `scratch_dir`, holding at most
    /// `budget_edges` edges in memory.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if `budget_edges == 0`.
    pub fn new(scratch_dir: &Path, budget_edges: usize, key: SortKey) -> Result<Self> {
        if budget_edges == 0 {
            return Err(Error::InvalidConfig(
                "external sort budget must be positive".into(),
            ));
        }
        Ok(Self {
            scratch_dir: scratch_dir.to_path_buf(),
            budget_edges,
            key,
        })
    }

    /// Sorts `input`, delivering the sorted stream to `sink` one edge at a
    /// time. Returns statistics. Scratch files are removed before returning.
    pub fn sort<I, F>(&self, input: I, mut sink: F) -> Result<ExternalStats>
    where
        I: IntoIterator<Item = Result<Edge>>,
        F: FnMut(Edge) -> Result<()>,
    {
        let run_root = &self.scratch_dir;
        std::fs::create_dir_all(run_root).map_err(|e| Error::io(run_root, e))?;

        // Phase 1: run generation.
        let mut stats = ExternalStats::default();
        let mut run_dirs: Vec<PathBuf> = Vec::new();
        let mut buffer: Vec<Edge> = Vec::with_capacity(self.budget_edges.min(1 << 20));
        for edge in input {
            let edge = edge?;
            stats.input_digest.update(edge);
            buffer.push(edge);
            stats.edges += 1;
            if buffer.len() >= self.budget_edges {
                self.spill(&mut buffer, &mut run_dirs, &mut stats)?;
            }
        }

        // Fully in-memory fast path: one unspilled run.
        if run_dirs.is_empty() {
            stats.peak_buffer = stats.peak_buffer.max(buffer.len());
            stats.runs = usize::from(!buffer.is_empty());
            sort_stably_into(&mut buffer, self.key, sink)?;
            return Ok(stats);
        }
        if !buffer.is_empty() {
            self.spill(&mut buffer, &mut run_dirs, &mut stats)?;
        }
        drop(buffer);

        // Phase 2: k-way merge of the spilled runs.
        let mut runs = Vec::with_capacity(run_dirs.len());
        for dir in &run_dirs {
            let (_, iter) = EdgeReader::open_dir(dir)?;
            runs.push(iter);
        }
        // The merge consumes plain-edge iterators; read errors are parked in
        // a shared cell and re-raised after the merge loop.
        let read_error = std::rc::Rc::new(std::cell::RefCell::new(None::<Error>));
        let fallible_runs: Vec<_> = runs
            .into_iter()
            .map(|it| {
                let err = std::rc::Rc::clone(&read_error);
                it.map_while(move |r| match r {
                    Ok(e) => Some(e),
                    Err(e) => {
                        *err.borrow_mut() = Some(e);
                        None
                    }
                })
            })
            .collect();
        for edge in KWayMerge::new(fallible_runs, self.key) {
            sink(edge)?;
        }
        if let Some(e) = read_error.borrow_mut().take() {
            return Err(e);
        }

        for dir in &run_dirs {
            // ppbench: allow(discarded-result, reason = "best-effort scratch cleanup; the sort already succeeded")
            let _ = std::fs::remove_dir_all(dir);
        }
        Ok(stats)
    }

    fn spill(
        &self,
        buffer: &mut Vec<Edge>,
        run_dirs: &mut Vec<PathBuf>,
        stats: &mut ExternalStats,
    ) -> Result<()> {
        stats.peak_buffer = stats.peak_buffer.max(buffer.len());
        let dir = self.scratch_dir.join(format!("run-{:05}", run_dirs.len()));
        // Scratch runs are re-read immediately and deleted after the merge;
        // fsyncing them would only tax the spill path.
        let mut w = EdgeWriter::create(&dir, "run", 1, buffer.len() as u64)?.durable(false);
        sort_stably_into(buffer, self.key, |e| w.write(e))?;
        w.finish(None, None, self.key.sort_state())?;
        run_dirs.push(dir);
        stats.runs += 1;
        buffer.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppbench_io::tempdir::TempDir;
    use ppbench_prng::{Rng64, SeedableRng64, Xoshiro256pp};

    fn random_edges(n: usize, bound: u64, seed: u64) -> Vec<Edge> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        (0..n)
            .map(|_| Edge::new(rng.next_below(bound), rng.next_below(bound)))
            .collect()
    }

    fn run_external(edges: &[Edge], budget: usize, key: SortKey) -> (Vec<Edge>, ExternalStats) {
        let td = TempDir::new("ppbench-extsort").unwrap();
        let sorter = ExternalSorter::new(td.path(), budget, key).unwrap();
        let mut out = Vec::new();
        let stats = sorter
            .sort(edges.iter().map(|&e| Ok(e)), |e| {
                out.push(e);
                Ok(())
            })
            .unwrap();
        (out, stats)
    }

    #[test]
    fn tiny_budget_forces_many_runs_and_still_sorts() {
        let edges = random_edges(1000, 500, 1);
        let (out, stats) = run_external(&edges, 64, SortKey::Start);
        assert_eq!(out.len(), edges.len());
        assert!(SortKey::Start.is_sorted(&out));
        assert!(stats.runs >= 15, "expected many runs, got {}", stats.runs);
        assert!(stats.peak_buffer <= 64);
        let mut a = out.clone();
        let mut b = edges.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "external sort lost or invented edges");
    }

    #[test]
    fn in_memory_fast_path_single_run() {
        let edges = random_edges(100, 50, 2);
        let (out, stats) = run_external(&edges, 1_000_000, SortKey::Start);
        assert!(SortKey::Start.is_sorted(&out));
        assert_eq!(stats.runs, 1);
        assert_eq!(stats.edges, 100);
    }

    #[test]
    fn matches_in_memory_sort_exactly() {
        // Stability end-to-end: external (budget forcing spills) must equal
        // the stable in-memory radix sort byte for byte.
        let edges: Vec<Edge> = (0..2000u64).map(|i| Edge::new(i % 13, i)).collect();
        let (out, _) = run_external(&edges, 100, SortKey::Start);
        let mut expect = edges.clone();
        crate::radix_sort(&mut expect, SortKey::Start);
        assert_eq!(out, expect);
    }

    #[test]
    fn input_digest_records_arrival_order() {
        let edges = random_edges(300, 64, 9);
        let (_, stats) = run_external(&edges, 50, SortKey::Start);
        let expect = ppbench_io::checksum::EdgeDigest::of_edges(&edges);
        assert!(stats.input_digest.same_stream(&expect));
    }

    #[test]
    fn parallel_chunk_sort_is_thread_count_invariant() {
        // The stable chunk merge must reproduce the serial stable sort
        // bit for bit for any worker count, including buffers above
        // PAR_SORT_MIN where the parallel path actually engages.
        let n = (PAR_SORT_MIN + 1234) as u64;
        let edges: Vec<Edge> = (0..n).map(|i| Edge::new(i % 97, i)).collect();
        let mut expect = edges.clone();
        crate::radix_sort(&mut expect, SortKey::Start);
        for workers in [1, 2, 5] {
            rayon::ThreadPoolBuilder::new()
                .num_threads(workers)
                .build_global()
                .unwrap();
            let mut buffer = edges.clone();
            let mut out = Vec::with_capacity(buffer.len());
            sort_stably_into(&mut buffer, SortKey::Start, |e| {
                out.push(e);
                Ok(())
            })
            .unwrap();
            assert_eq!(out, expect, "{workers} workers");
        }
        rayon::ThreadPoolBuilder::new().build_global().unwrap();
    }

    #[test]
    fn empty_input() {
        let (out, stats) = run_external(&[], 10, SortKey::Start);
        assert!(out.is_empty());
        assert_eq!(stats.runs, 0);
        assert_eq!(stats.edges, 0);
    }

    #[test]
    fn start_end_key_respected() {
        let edges = random_edges(500, 8, 3);
        let (out, _) = run_external(&edges, 50, SortKey::StartEnd);
        assert!(SortKey::StartEnd.is_sorted(&out));
    }

    #[test]
    fn zero_budget_rejected() {
        let td = TempDir::new("ppbench-extsort").unwrap();
        assert!(ExternalSorter::new(td.path(), 0, SortKey::Start).is_err());
    }

    #[test]
    fn input_errors_propagate() {
        let td = TempDir::new("ppbench-extsort").unwrap();
        let sorter = ExternalSorter::new(td.path(), 4, SortKey::Start).unwrap();
        let input = vec![
            Ok(Edge::new(1, 1)),
            Err(Error::InvalidConfig("boom".into())),
        ];
        let result = sorter.sort(input, |_| Ok(()));
        assert!(result.is_err());
    }

    #[test]
    fn sink_errors_propagate() {
        let td = TempDir::new("ppbench-extsort").unwrap();
        let sorter = ExternalSorter::new(td.path(), 4, SortKey::Start).unwrap();
        let edges = random_edges(20, 10, 4);
        let mut n = 0;
        let result = sorter.sort(edges.iter().map(|&e| Ok(e)), |_| {
            n += 1;
            if n > 5 {
                Err(Error::InvalidConfig("sink full".into()))
            } else {
                Ok(())
            }
        });
        assert!(result.is_err());
    }

    #[test]
    fn scratch_files_cleaned_up() {
        let td = TempDir::new("ppbench-extsort").unwrap();
        let scratch = td.join("scratch");
        let sorter = ExternalSorter::new(&scratch, 8, SortKey::Start).unwrap();
        let edges = random_edges(100, 50, 5);
        sorter
            .sort(edges.iter().map(|&e| Ok(e)), |_| Ok(()))
            .unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&scratch).unwrap().collect();
        assert!(
            leftovers.is_empty(),
            "scratch dir not cleaned: {leftovers:?}"
        );
    }
}
