//! Pipelined out-of-core sorting: overlap parsing, sorting, and output.
//!
//! The plain [`crate::ExternalSorter`] alternates strictly between reading
//! input, sorting/spilling runs, and writing merged output, leaving the
//! storage device idle while the CPU sorts and vice versa. This variant
//! splits the work across three stages connected by bounded crossbeam
//! channels:
//!
//! 1. **Producer** (spawned thread): parses edges from the input stream
//!    into batches and sends them down the input channel.
//! 2. **Sorter** (spawned thread): feeds the external sorter from the input
//!    channel; the sorter's merged output is re-batched and sent down the
//!    output channel.
//! 3. **Sink** (calling thread): drains the output channel and applies the
//!    caller's sink, so output writing overlaps the tail of the merge.
//!
//! On hardware with independent I/O and compute resources the stages
//! overlap; the result is identical either way (both spill stable
//! radix-sorted runs and merge them stably).
//!
//! # Shutdown ordering
//!
//! Every failure mode must tear the pipeline down without deadlocking
//! against a full channel; the ordering is:
//!
//! * **Sink fails** (calling thread): the drain loop stops and drops the
//!   output receiver *before* joining the sorter thread. The sorter's next
//!   `send` then fails, aborting the merge; the sorter returns, dropping
//!   the input receiver, which unblocks the producer the same way. The
//!   sink's error takes precedence over the resulting hang-up errors.
//! * **Sort fails** (sorter thread): `ExternalSorter::sort` returns early
//!   (e.g. scratch-dir creation or a spill write failed) while the producer
//!   may still have arbitrarily many batches pending. The sorter thread
//!   returning drops the input receiver, so the producer's blocked `send`
//!   fails and it exits.
//! * **Producer fails**: the error is forwarded through the input channel
//!   and re-raised by the sorter after `sort` drains what it got.
//!
//! In all cases the calling thread joins the sorter thread only after
//! dropping the output receiver, so the join can never wait on a thread
//! that is itself blocked sending to us.

use std::path::Path;

use crossbeam::channel;
use ppbench_io::{Edge, Error, Result};

use crate::external::{ExternalSorter, ExternalStats};
use crate::SortKey;

/// Batch size flowing through the channels; big enough to amortize channel
/// overhead, small enough to bound pipeline memory.
const BATCH: usize = 1 << 14;

/// Channel depth: how many batches may be in flight between adjacent
/// stages.
const IN_FLIGHT: usize = 4;

/// The error a stage reports when the stage downstream of it disappeared.
/// It only surfaces if the downstream stage vanished *without* reporting
/// its own error, which no current teardown path does.
fn hangup() -> Error {
    Error::InvalidConfig("pipelined sort: output stage hung up before the merge finished".into())
}

/// Like [`ExternalSorter::sort`], with the input stream consumed and the
/// runs sorted/merged on separate threads so parsing, sorting, and output
/// writing overlap.
///
/// `input` must be `Send` (file iterators are); `sink` runs on the calling
/// thread.
pub fn pipelined_sort<I, F>(
    scratch_dir: &Path,
    budget_edges: usize,
    key: SortKey,
    input: I,
    mut sink: F,
) -> Result<ExternalStats>
where
    I: IntoIterator<Item = Result<Edge>> + Send,
    I::IntoIter: Send,
    F: FnMut(Edge) -> Result<()>,
{
    let sorter = ExternalSorter::new(scratch_dir, budget_edges, key)?;
    let (in_tx, in_rx) = channel::bounded::<Result<Vec<Edge>>>(IN_FLIGHT);
    let (out_tx, out_rx) = channel::bounded::<Vec<Edge>>(IN_FLIGHT);

    std::thread::scope(|scope| {
        // Stage 1: read + parse into batches.
        scope.spawn(move || {
            let mut batch = Vec::with_capacity(BATCH);
            for item in input {
                match item {
                    Ok(e) => {
                        batch.push(e);
                        if batch.len() >= BATCH
                            && in_tx
                                .send(Ok(std::mem::replace(&mut batch, Vec::with_capacity(BATCH))))
                                .is_err()
                        {
                            return; // sorter gone (error path)
                        }
                    }
                    Err(e) => {
                        // ppbench: allow(discarded-result, reason = "a failed send means the sorter hung up; the producer just stops")
                        let _ = in_tx.send(Err(e));
                        return;
                    }
                }
            }
            if !batch.is_empty() {
                // ppbench: allow(discarded-result, reason = "a failed send means the sorter hung up; the producer just stops")
                let _ = in_tx.send(Ok(batch));
            }
            // Dropping in_tx closes the channel.
        });

        // Stage 2: feed the external sorter; re-batch its merged output.
        let sorter_thread = scope.spawn(move || -> Result<ExternalStats> {
            let mut channel_error: Option<Error> = None;
            let mut pending: Vec<Edge> = Vec::with_capacity(BATCH);
            let sorted = {
                let channel_error = &mut channel_error;
                let edge_stream = in_rx
                    .into_iter()
                    .map_while(move |batch| match batch {
                        Ok(edges) => Some(edges),
                        Err(e) => {
                            *channel_error = Some(e);
                            None
                        }
                    })
                    .flatten()
                    .map(Ok);
                let pending = &mut pending;
                let out_tx = &out_tx;
                sorter.sort(edge_stream, move |e| {
                    pending.push(e);
                    if pending.len() >= BATCH {
                        out_tx
                            .send(std::mem::replace(pending, Vec::with_capacity(BATCH)))
                            .map_err(|_| hangup())?;
                    }
                    Ok(())
                })
            };
            match sorted {
                Ok(stats) => {
                    if let Some(e) = channel_error {
                        return Err(e);
                    }
                    if !pending.is_empty() {
                        out_tx.send(pending).map_err(|_| hangup())?;
                    }
                    Ok(stats)
                }
                // A producer error surfaced mid-sort trumps the sorter's
                // own (usually derivative) failure.
                Err(e) => Err(channel_error.take().unwrap_or(e)),
            }
            // Dropping out_tx closes the output channel.
        });

        // Stage 3 (this thread): drain the merged output into the sink.
        let mut sink_error: Option<Error> = None;
        'recv: for batch in out_rx.iter() {
            for e in batch {
                if let Err(e) = sink(e) {
                    sink_error = Some(e);
                    break 'recv;
                }
            }
        }
        // Drop the receiver BEFORE joining: if the sorter is blocked on a
        // full output channel, this is what unblocks it.
        drop(out_rx);
        let joined = match sorter_thread.join() {
            Ok(result) => result,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        match sink_error {
            Some(e) => Err(e),
            None => joined,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppbench_io::tempdir::TempDir;
    use ppbench_prng::{Rng64, SeedableRng64, Xoshiro256pp};

    fn random_edges(n: usize, bound: u64, seed: u64) -> Vec<Edge> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        (0..n)
            .map(|_| Edge::new(rng.next_below(bound), rng.next_below(bound)))
            .collect()
    }

    #[test]
    fn pipelined_equals_plain_external_sort() {
        let edges = random_edges(50_000, 1 << 12, 1);
        let td = TempDir::new("pipe-sort").unwrap();
        let mut plain = Vec::new();
        ExternalSorter::new(&td.join("plain"), 4096, SortKey::Start)
            .unwrap()
            .sort(edges.iter().map(|&e| Ok(e)), |e| {
                plain.push(e);
                Ok(())
            })
            .unwrap();
        let mut piped = Vec::new();
        let stats = pipelined_sort(
            &td.join("piped"),
            4096,
            SortKey::Start,
            edges.iter().map(|&e| Ok(e)),
            |e| {
                piped.push(e);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(piped, plain, "pipelining must not change the stable result");
        assert_eq!(stats.edges, edges.len() as u64);
        assert!(stats.runs > 1, "budget should force spilling");
    }

    #[test]
    fn pipelined_handles_small_inputs() {
        let td = TempDir::new("pipe-sort").unwrap();
        let edges = random_edges(10, 8, 2);
        let mut out = Vec::new();
        let stats = pipelined_sort(
            td.path(),
            1000,
            SortKey::Start,
            edges.iter().map(|&e| Ok(e)),
            |e| {
                out.push(e);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(out.len(), 10);
        assert!(SortKey::Start.is_sorted(&out));
        assert_eq!(stats.edges, 10);
    }

    #[test]
    fn pipelined_empty_input() {
        let td = TempDir::new("pipe-sort").unwrap();
        let stats = pipelined_sort(
            td.path(),
            100,
            SortKey::Start,
            std::iter::empty::<Result<Edge>>(),
            |_| Ok(()),
        )
        .unwrap();
        assert_eq!(stats.edges, 0);
    }

    #[test]
    fn producer_errors_propagate() {
        let td = TempDir::new("pipe-sort").unwrap();
        let input: Vec<Result<Edge>> = vec![
            Ok(Edge::new(1, 1)),
            Err(Error::InvalidConfig("mid-stream failure".into())),
            Ok(Edge::new(2, 2)),
        ];
        let result = pipelined_sort(td.path(), 100, SortKey::Start, input, |_| Ok(()));
        assert!(result.is_err());
    }

    #[test]
    fn sink_errors_propagate() {
        let td = TempDir::new("pipe-sort").unwrap();
        let edges = random_edges(100, 16, 3);
        let mut n = 0;
        let result = pipelined_sort(
            td.path(),
            10,
            SortKey::Start,
            edges.iter().map(|&e| Ok(e)),
            |_| {
                n += 1;
                if n > 3 {
                    Err(Error::InvalidConfig("sink full".into()))
                } else {
                    Ok(())
                }
            },
        );
        let err = result.unwrap_err();
        assert!(err.to_string().contains("sink full"), "{err}");
    }

    /// Pins the sink-failure teardown: the sink fails on the very first
    /// merged edge while the merge still has far more than
    /// `IN_FLIGHT * BATCH` edges to deliver, so the sorter thread WILL
    /// block on the full output channel. Dropping the output receiver
    /// before joining is what keeps this from deadlocking; the test
    /// completing (and returning the sink's own error) is the assertion.
    #[test]
    fn sink_failure_mid_merge_does_not_deadlock() {
        let td = TempDir::new("pipe-sort").unwrap();
        let n = 2 * IN_FLIGHT * BATCH + 123;
        let edges = random_edges(n, 1 << 20, 4);
        let result = pipelined_sort(
            td.path(),
            n / 8,
            SortKey::Start,
            edges.iter().map(|&e| Ok(e)),
            |_| Err(Error::InvalidConfig("sink rejects everything".into())),
        );
        let err = result.unwrap_err();
        assert!(err.to_string().contains("sink rejects everything"), "{err}");
    }

    /// Pins the sort-failure teardown: the scratch path is a regular file,
    /// so `ExternalSorter::sort` fails creating its run directory while the
    /// producer still has far more than `IN_FLIGHT` batches pending. The
    /// sorter thread returning must drop the input receiver and unblock the
    /// producer; the test completing with the I/O error is the assertion.
    #[test]
    fn sort_failure_with_pending_producer_batches_does_not_deadlock() {
        let td = TempDir::new("pipe-sort").unwrap();
        let scratch = td.join("not-a-dir");
        std::fs::write(&scratch, b"occupied").unwrap();
        let n = 2 * IN_FLIGHT * BATCH + 7;
        let edges = random_edges(n, 1 << 20, 5);
        let result = pipelined_sort(
            &scratch,
            1000,
            SortKey::Start,
            edges.iter().map(|&e| Ok(e)),
            |_| Ok(()),
        );
        assert!(result.is_err());
    }
}
