//! Pipelined out-of-core sorting: overlap reading with run generation.
//!
//! The plain [`crate::ExternalSorter`] alternates strictly between reading
//! input and sorting/spilling runs, leaving the storage device idle while
//! the CPU sorts and vice versa. This variant splits the two phases across
//! threads connected by a bounded crossbeam channel: the producer parses
//! edges from the input stream while the consumer sorts and spills the
//! previous batch. On hardware with independent I/O and compute resources
//! the phases overlap; the result is identical either way (both spill
//! stable radix-sorted runs and merge them stably).

use std::path::Path;

use crossbeam::channel;
use ppbench_io::{Edge, Error, Result};

use crate::external::{ExternalSorter, ExternalStats};
use crate::SortKey;

/// Batch size flowing through the channel; big enough to amortize channel
/// overhead, small enough to bound pipeline memory.
const BATCH: usize = 1 << 14;

/// Channel depth: how many batches may be in flight between the reader and
/// the sorter.
const IN_FLIGHT: usize = 4;

/// Like [`ExternalSorter::sort`], with the input stream consumed on a
/// separate thread so parsing overlaps sorting and spilling.
///
/// `input` must be `Send` (file iterators are); `sink` runs on the calling
/// thread.
pub fn pipelined_sort<I, F>(
    scratch_dir: &Path,
    budget_edges: usize,
    key: SortKey,
    input: I,
    sink: F,
) -> Result<ExternalStats>
where
    I: IntoIterator<Item = Result<Edge>> + Send,
    I::IntoIter: Send,
    F: FnMut(Edge) -> Result<()>,
{
    let sorter = ExternalSorter::new(scratch_dir, budget_edges, key)?;
    let (tx, rx) = channel::bounded::<Result<Vec<Edge>>>(IN_FLIGHT);

    std::thread::scope(|scope| {
        // Producer: read + parse into batches.
        scope.spawn(move || {
            let mut batch = Vec::with_capacity(BATCH);
            for item in input {
                match item {
                    Ok(e) => {
                        batch.push(e);
                        if batch.len() >= BATCH
                            && tx
                                .send(Ok(std::mem::replace(&mut batch, Vec::with_capacity(BATCH))))
                                .is_err()
                        {
                            return; // consumer gone (error path)
                        }
                    }
                    Err(e) => {
                        // ppbench: allow(discarded-result, reason = "a failed send means the consumer hung up; the producer just stops")
                        let _ = tx.send(Err(e));
                        return;
                    }
                }
            }
            if !batch.is_empty() {
                // ppbench: allow(discarded-result, reason = "a failed send means the consumer hung up; the producer just stops")
                let _ = tx.send(Ok(batch));
            }
            // Dropping tx closes the channel.
        });

        // Consumer (this thread): feed the external sorter from the channel.
        let mut channel_error: Option<Error> = None;
        let stats = {
            let channel_error = &mut channel_error;
            let edge_stream = rx
                .into_iter()
                .map_while(move |batch| match batch {
                    Ok(edges) => Some(edges),
                    Err(e) => {
                        *channel_error = Some(e);
                        None
                    }
                })
                .flatten()
                .map(Ok);
            sorter.sort(edge_stream, sink)
        }?;
        if let Some(e) = channel_error {
            return Err(e);
        }
        Ok(stats)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppbench_io::tempdir::TempDir;
    use ppbench_prng::{Rng64, SeedableRng64, Xoshiro256pp};

    fn random_edges(n: usize, bound: u64, seed: u64) -> Vec<Edge> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        (0..n)
            .map(|_| Edge::new(rng.next_below(bound), rng.next_below(bound)))
            .collect()
    }

    #[test]
    fn pipelined_equals_plain_external_sort() {
        let edges = random_edges(50_000, 1 << 12, 1);
        let td = TempDir::new("pipe-sort").unwrap();
        let mut plain = Vec::new();
        ExternalSorter::new(&td.join("plain"), 4096, SortKey::Start)
            .unwrap()
            .sort(edges.iter().map(|&e| Ok(e)), |e| {
                plain.push(e);
                Ok(())
            })
            .unwrap();
        let mut piped = Vec::new();
        let stats = pipelined_sort(
            &td.join("piped"),
            4096,
            SortKey::Start,
            edges.iter().map(|&e| Ok(e)),
            |e| {
                piped.push(e);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(piped, plain, "pipelining must not change the stable result");
        assert_eq!(stats.edges, edges.len() as u64);
        assert!(stats.runs > 1, "budget should force spilling");
    }

    #[test]
    fn pipelined_handles_small_inputs() {
        let td = TempDir::new("pipe-sort").unwrap();
        let edges = random_edges(10, 8, 2);
        let mut out = Vec::new();
        let stats = pipelined_sort(
            td.path(),
            1000,
            SortKey::Start,
            edges.iter().map(|&e| Ok(e)),
            |e| {
                out.push(e);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(out.len(), 10);
        assert!(SortKey::Start.is_sorted(&out));
        assert_eq!(stats.edges, 10);
    }

    #[test]
    fn pipelined_empty_input() {
        let td = TempDir::new("pipe-sort").unwrap();
        let stats = pipelined_sort(
            td.path(),
            100,
            SortKey::Start,
            std::iter::empty::<Result<Edge>>(),
            |_| Ok(()),
        )
        .unwrap();
        assert_eq!(stats.edges, 0);
    }

    #[test]
    fn producer_errors_propagate() {
        let td = TempDir::new("pipe-sort").unwrap();
        let input: Vec<Result<Edge>> = vec![
            Ok(Edge::new(1, 1)),
            Err(Error::InvalidConfig("mid-stream failure".into())),
            Ok(Edge::new(2, 2)),
        ];
        let result = pipelined_sort(td.path(), 100, SortKey::Start, input, |_| Ok(()));
        assert!(result.is_err());
    }

    #[test]
    fn sink_errors_propagate() {
        let td = TempDir::new("pipe-sort").unwrap();
        let edges = random_edges(100, 16, 3);
        let mut n = 0;
        let result = pipelined_sort(
            td.path(),
            10,
            SortKey::Start,
            edges.iter().map(|&e| Ok(e)),
            |_| {
                n += 1;
                if n > 3 {
                    Err(Error::InvalidConfig("sink full".into()))
                } else {
                    Ok(())
                }
            },
        );
        assert!(result.is_err());
    }
}
