//! Property-based tests for the sorting substrate.

use ppbench_io::{tempdir::TempDir, Edge};
use ppbench_sort::{Algorithm, ExternalSorter, SortKey};
use proptest::prelude::*;

fn arb_edges(max_len: usize, bound: u64) -> impl Strategy<Value = Vec<Edge>> {
    proptest::collection::vec(
        (0..bound, 0..bound).prop_map(|(u, v)| Edge::new(u, v)),
        0..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every in-memory algorithm produces a sorted permutation of its input
    /// under both keys.
    #[test]
    fn in_memory_algorithms_sort(edges in arb_edges(300, 64)) {
        for key in [SortKey::Start, SortKey::StartEnd] {
            for alg in Algorithm::ALL {
                let mut v = edges.clone();
                alg.sort(&mut v, key, Some(64));
                prop_assert!(key.is_sorted(&v), "{} under {:?}", alg.name(), key);
                let mut a = v;
                let mut b = edges.clone();
                a.sort_unstable();
                b.sort_unstable();
                prop_assert_eq!(a, b, "{} changed the multiset", alg.name());
            }
        }
    }

    /// Radix sort by (start, end) agrees element-for-element with the
    /// standard library on arbitrary full-width keys.
    #[test]
    fn radix_equals_std(edges in proptest::collection::vec(
        (any::<u64>(), any::<u64>()).prop_map(|(u, v)| Edge::new(u, v)), 0..200))
    {
        let mut a = edges.clone();
        let mut b = edges;
        ppbench_sort::radix_sort(&mut a, SortKey::StartEnd);
        b.sort_unstable_by_key(|e| (e.u, e.v));
        prop_assert_eq!(a, b);
    }

    /// The external sorter equals the stable in-memory sort for any memory
    /// budget, including budgets that force heavy spilling.
    #[test]
    fn external_equals_in_memory(edges in arb_edges(400, 32), budget in 1usize..64) {
        let td = TempDir::new("ppbench-sort-prop").unwrap();
        let sorter = ExternalSorter::new(td.path(), budget, SortKey::Start).unwrap();
        let mut out = Vec::new();
        sorter.sort(edges.iter().map(|&e| Ok(e)), |e| { out.push(e); Ok(()) }).unwrap();
        let mut expect = edges.clone();
        ppbench_sort::radix_sort(&mut expect, SortKey::Start);
        prop_assert_eq!(out, expect);
    }
}
