//! Degree statistics and power-law diagnostics.
//!
//! Used by tests to check that generated graphs actually have the
//! "approximately power-law" shape the spec requires, and by examples to
//! report graph structure.

use ppbench_io::Edge;

/// In-degree of every vertex (number of edges ending at it).
pub fn in_degrees(edges: &[Edge], num_vertices: u64) -> Vec<u64> {
    let mut d = vec![0u64; num_vertices as usize];
    for e in edges {
        d[e.v as usize] += 1;
    }
    d
}

/// Out-degree of every vertex (number of edges starting at it).
pub fn out_degrees(edges: &[Edge], num_vertices: u64) -> Vec<u64> {
    let mut d = vec![0u64; num_vertices as usize];
    for e in edges {
        d[e.u as usize] += 1;
    }
    d
}

/// Log2-binned degree histogram: `bins[b]` counts vertices whose degree `d`
/// satisfies `2^b <= d < 2^(b+1)`; vertices of degree 0 are counted
/// separately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegreeHistogram {
    /// Number of degree-0 vertices.
    pub zeros: u64,
    /// Counts per log2 bin.
    pub bins: Vec<u64>,
}

impl DegreeHistogram {
    /// Builds the histogram from a degree vector.
    pub fn from_degrees(degrees: &[u64]) -> Self {
        let mut zeros = 0u64;
        let mut bins: Vec<u64> = Vec::new();
        for &d in degrees {
            if d == 0 {
                zeros += 1;
                continue;
            }
            let b = 63 - d.leading_zeros() as usize; // floor(log2 d)
            if bins.len() <= b {
                bins.resize(b + 1, 0);
            }
            bins[b] += 1;
        }
        Self { zeros, bins }
    }

    /// Total vertices folded in.
    pub fn total(&self) -> u64 {
        self.zeros + self.bins.iter().sum::<u64>()
    }
}

/// Summary statistics of a degree vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Largest degree.
    pub max: u64,
    /// Mean degree.
    pub mean: f64,
    /// Number of degree-0 vertices.
    pub zeros: u64,
    /// Number of degree-1 vertices (kernel 2's "leaves").
    pub ones: u64,
}

impl DegreeStats {
    /// Computes the summary.
    pub fn from_degrees(degrees: &[u64]) -> Self {
        let max = degrees.iter().copied().max().unwrap_or(0);
        let sum: u64 = degrees.iter().sum();
        let mean = if degrees.is_empty() {
            0.0
        } else {
            sum as f64 / degrees.len() as f64
        };
        let zeros = degrees.iter().filter(|&&d| d == 0).count() as u64;
        let ones = degrees.iter().filter(|&&d| d == 1).count() as u64;
        Self {
            max,
            mean,
            zeros,
            ones,
        }
    }
}

/// Estimates the power-law slope of a degree histogram by least-squares on
/// the log2-binned counts: returns the fitted exponent `gamma` in
/// `count(bin) ∝ 2^(-gamma·bin)`, or `None` if fewer than 3 nonempty bins.
///
/// A genuinely heavy-tailed distribution fits with `gamma` roughly in
/// 0.5–3; a concentrated (uniform/Poisson) distribution has too few bins to
/// fit at all, which is itself the diagnostic.
pub fn fit_power_law_slope(hist: &DegreeHistogram) -> Option<f64> {
    let points: Vec<(f64, f64)> = hist
        .bins
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(b, &c)| (b as f64, (c as f64).log2()))
        .collect();
    if points.len() < 3 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < f64::EPSILON {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    Some(-slope)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdgeGenerator, ErdosRenyi, GraphSpec, Kronecker};

    #[test]
    fn degrees_count_correctly() {
        let edges = [
            Edge::new(0, 1),
            Edge::new(0, 2),
            Edge::new(1, 2),
            Edge::new(2, 2),
        ];
        assert_eq!(out_degrees(&edges, 3), vec![2, 1, 1]);
        assert_eq!(in_degrees(&edges, 3), vec![0, 1, 3]);
    }

    #[test]
    fn histogram_bins_are_log2() {
        let degs = [0u64, 1, 1, 2, 3, 4, 7, 8, 100];
        let h = DegreeHistogram::from_degrees(&degs);
        assert_eq!(h.zeros, 1);
        assert_eq!(h.bins[0], 2); // degree 1
        assert_eq!(h.bins[1], 2); // degrees 2..3
        assert_eq!(h.bins[2], 2); // degrees 4..7
        assert_eq!(h.bins[3], 1); // degree 8
        assert_eq!(h.bins[6], 1); // degree 100 (64..127)
        assert_eq!(h.total(), degs.len() as u64);
    }

    #[test]
    fn stats_summary() {
        let s = DegreeStats::from_degrees(&[0, 1, 1, 4]);
        assert_eq!(s.max, 4);
        assert_eq!(s.zeros, 1);
        assert_eq!(s.ones, 2);
        assert!((s.mean - 1.5).abs() < 1e-12);
        let empty = DegreeStats::from_degrees(&[]);
        assert_eq!(empty.max, 0);
        assert_eq!(empty.mean, 0.0);
    }

    #[test]
    fn kronecker_fits_power_law_erdos_does_not() {
        let spec = GraphSpec::new(12, 16);
        let kron = Kronecker::new(spec, 5).edges();
        let er = ErdosRenyi::new(spec, 5).edges();
        let h_kron = DegreeHistogram::from_degrees(&in_degrees(&kron, spec.num_vertices()));
        let h_er = DegreeHistogram::from_degrees(&in_degrees(&er, spec.num_vertices()));
        let slope = fit_power_law_slope(&h_kron).expect("kronecker should have a wide histogram");
        assert!(slope > 0.2, "kronecker slope {slope} not decaying");
        // The Poisson-like ER histogram spans far fewer bins.
        assert!(
            h_er.bins.len() < h_kron.bins.len(),
            "ER bins {} !< Kronecker bins {}",
            h_er.bins.len(),
            h_kron.bins.len()
        );
    }

    #[test]
    fn slope_fit_requires_enough_bins() {
        let h = DegreeHistogram::from_degrees(&[1, 1, 1]);
        assert_eq!(fit_power_law_slope(&h), None);
    }
}
