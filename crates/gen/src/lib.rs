//! Graph generators for kernel 0 of the PageRank Pipeline Benchmark.
//!
//! The benchmark's kernel 0 generates "a list of edges from an approximately
//! power-law graph using the Graph500 graph generator". This crate ports
//! that generator and the two alternatives the paper names as candidates for
//! easier validation (§IV.A and §V):
//!
//! * [`Kronecker`] — the Graph500 kernel-0 stochastic Kronecker (R-MAT)
//!   generator with the official initiator probabilities A = 0.57, B = 0.19,
//!   C = 0.19, including vertex-label permutation and edge shuffling, plus a
//!   deterministic [rayon]-parallel path whose output is identical to the
//!   serial one for any thread count.
//! * [`PerfectPowerLaw`] — a deterministic-degree-sequence power-law
//!   generator in the spirit of Kepner's PPL graphs; degrees are an exact
//!   analytic function of the vertex rank, which makes downstream kernels
//!   easy to validate.
//! * [`ErdosRenyi`] — uniform random G(N, M) with replacement, useful as a
//!   no-hotspot control in tests and ablations.
//!
//! All generators implement [`EdgeGenerator`] and share a [`GraphSpec`]
//! (scale + edge factor) from which vertex counts, edge counts and the
//! paper's Table II memory estimates are derived.

//!
//! # Example
//!
//! ```
//! use ppbench_gen::{EdgeGenerator, GraphSpec, Kronecker};
//!
//! // Scale 8, 4 edges per vertex: 256 vertices, 1024 edges.
//! let gen = Kronecker::new(GraphSpec::new(8, 4), 42);
//! let edges = gen.edges();
//! assert_eq!(edges.len(), 1024);
//! // Deterministic: the same seed always yields the same graph.
//! assert_eq!(edges, Kronecker::new(GraphSpec::new(8, 4), 42).edges());
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

mod bter;
pub mod degree;
mod erdos;
mod feistel;
mod kronecker;
mod linear;
mod ppl;
mod spec;
pub mod validate;

pub use bter::Bter;
pub use erdos::ErdosRenyi;
pub use feistel::FeistelPermutation;
pub use kronecker::{Kronecker, KroneckerProbs};
pub use linear::{LinearKronecker, DEFAULT_BLOCK_BITS};
pub use ppl::PerfectPowerLaw;
pub use spec::{GraphSpec, DEFAULT_EDGE_FACTOR};

use ppbench_io::Edge;

/// Splits the half-open stream range `lo..hi` into consecutive `(lo, hi)`
/// chunks of at most `chunk` edges, in stream order. The shared chunking
/// vocabulary of every streaming consumer (kernel 0's writers,
/// [`EdgeGenerator::edges_parallel`]): identical chunk boundaries are what
/// keep their outputs bit-identical to a serial pass.
///
/// # Panics
///
/// Panics if `chunk == 0` or `lo > hi`.
pub fn chunk_ranges(lo: u64, hi: u64, chunk: u64) -> impl Iterator<Item = (u64, u64)> {
    assert!(chunk > 0, "chunk size must be positive");
    assert!(lo <= hi, "invalid range {lo}..{hi}");
    (lo..hi)
        .step_by(usize::try_from(chunk).unwrap_or(usize::MAX))
        .map(move |start| (start, start.saturating_add(chunk).min(hi)))
}

/// A deterministic edge-list generator.
///
/// Generators are pure functions of their configuration (including the
/// seed): `edges()` always returns the same list, and
/// `edges_chunk(lo, hi)` returns exactly `edges()[lo..hi]`, which is what
/// makes order-preserving parallel generation possible.
pub trait EdgeGenerator {
    /// The graph size specification.
    fn spec(&self) -> GraphSpec;

    /// Generates edges `lo..hi` of the stream (end-exclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi > self.spec().num_edges()`.
    fn edges_chunk(&self, lo: u64, hi: u64) -> Vec<Edge>;

    /// Generates edges `lo..hi` into `out`, reusing its allocation.
    ///
    /// `out` is cleared first; afterwards it holds exactly
    /// `edges()[lo..hi]`. Streaming consumers (kernel 0's writers) call this
    /// once per chunk with one long-lived buffer instead of allocating a
    /// fresh `Vec` via [`EdgeGenerator::edges_chunk`] each time.
    ///
    /// The default implementation delegates to `edges_chunk`; generators
    /// with a hot path override it to write in place.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi > self.spec().num_edges()`.
    fn edges_into(&self, out: &mut Vec<Edge>, lo: u64, hi: u64) {
        out.clear();
        out.append(&mut self.edges_chunk(lo, hi));
    }

    /// Generates the complete edge list serially.
    fn edges(&self) -> Vec<Edge> {
        self.edges_chunk(0, self.spec().num_edges())
    }

    /// Generates the complete edge list with rayon, chunked so the result
    /// is bit-identical to [`EdgeGenerator::edges`] regardless of thread
    /// count.
    fn edges_parallel(&self, chunk_size: u64) -> Vec<Edge>
    where
        Self: Sync,
    {
        use rayon::prelude::*;
        let m = self.spec().num_edges();
        let chunks: Vec<(u64, u64)> = chunk_ranges(0, m, chunk_size).collect();
        chunks
            .par_iter()
            .flat_map_iter(|&(lo, hi)| self.edges_chunk(lo, hi))
            .collect()
    }
}

impl<G: EdgeGenerator + ?Sized> EdgeGenerator for Box<G> {
    fn spec(&self) -> GraphSpec {
        (**self).spec()
    }

    fn edges_chunk(&self, lo: u64, hi: u64) -> Vec<Edge> {
        (**self).edges_chunk(lo, hi)
    }

    // Forward explicitly so a generator's native `edges_into` override is
    // not lost behind the box (the default impl would round-trip through
    // `edges_chunk` and re-allocate).
    fn edges_into(&self, out: &mut Vec<Edge>, lo: u64, hi: u64) {
        (**self).edges_into(out, lo, hi)
    }
}

/// Which generator kernel 0 should use; the paper's §V suggests more
/// deterministic generators "to facilitate validation of all kernels".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GeneratorKind {
    /// Graph500 stochastic Kronecker (the spec's default).
    #[default]
    Kronecker,
    /// Deterministic-degree power-law graph.
    PerfectPowerLaw,
    /// Uniform Erdős–Rényi control.
    ErdosRenyi,
    /// Block two-level Erdős–Rényi: power law + community structure.
    Bter,
}

impl GeneratorKind {
    /// Instantiates the chosen generator for `spec` and `seed`.
    pub fn build(self, spec: GraphSpec, seed: u64) -> Box<dyn EdgeGenerator + Send + Sync> {
        match self {
            GeneratorKind::Kronecker => Box::new(Kronecker::new(spec, seed)),
            GeneratorKind::PerfectPowerLaw => Box::new(PerfectPowerLaw::new(spec, seed)),
            GeneratorKind::ErdosRenyi => Box::new(ErdosRenyi::new(spec, seed)),
            GeneratorKind::Bter => Box::new(Bter::new(spec, seed)),
        }
    }

    /// Stable name used in CLI flags and reports.
    pub fn name(self) -> &'static str {
        match self {
            GeneratorKind::Kronecker => "kronecker",
            GeneratorKind::PerfectPowerLaw => "ppl",
            GeneratorKind::ErdosRenyi => "erdos-renyi",
            GeneratorKind::Bter => "bter",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "kronecker" => Some(Self::Kronecker),
            "ppl" => Some(Self::PerfectPowerLaw),
            "erdos-renyi" | "er" => Some(Self::ErdosRenyi),
            "bter" => Some(Self::Bter),
            _ => None,
        }
    }

    /// All kinds, for sweeps and tests.
    pub const ALL: [GeneratorKind; 4] = [
        GeneratorKind::Kronecker,
        GeneratorKind::PerfectPowerLaw,
        GeneratorKind::ErdosRenyi,
        GeneratorKind::Bter,
    ];
}

/// Which R-MAT sampling algorithm realizes the Kronecker generator.
///
/// Both are deterministic in the seed and draw from the same initiator
/// probabilities, but they consume their PRNG streams differently, so the
/// two variants emit *different* (equally distributed) edge streams for the
/// same seed. The choice is therefore part of a pipeline's canonical
/// configuration. It only affects [`GeneratorKind::Kronecker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RmatSampler {
    /// The faithful Graph500 port: `scale` coin-flip pairs per edge
    /// ([`Kronecker`]).
    #[default]
    Faithful,
    /// The linear-work block sampler: `ceil(scale/8)` table lookups per
    /// edge ([`LinearKronecker`]), after Hübschle-Schneider & Sanders.
    Linear,
}

impl RmatSampler {
    /// Stable name used in CLI flags, canonical configs and reports.
    pub fn name(self) -> &'static str {
        match self {
            RmatSampler::Faithful => "faithful",
            RmatSampler::Linear => "linear",
        }
    }

    /// Parses a CLI/config name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "faithful" => Some(Self::Faithful),
            "linear" => Some(Self::Linear),
            _ => None,
        }
    }

    /// All samplers, for sweeps and tests.
    pub const ALL: [RmatSampler; 2] = [RmatSampler::Faithful, RmatSampler::Linear];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_name_parse_roundtrip() {
        for k in GeneratorKind::ALL {
            assert_eq!(GeneratorKind::parse(k.name()), Some(k));
        }
        assert_eq!(GeneratorKind::parse("nope"), None);
    }

    #[test]
    fn build_produces_right_sizes() {
        let spec = GraphSpec::new(6, 4);
        for k in GeneratorKind::ALL {
            let g = k.build(spec, 7);
            let edges = g.edges();
            assert_eq!(edges.len() as u64, spec.num_edges(), "{}", k.name());
            assert!(
                edges
                    .iter()
                    .all(|e| e.u < spec.num_vertices() && e.v < spec.num_vertices()),
                "{} emitted out-of-range vertices",
                k.name()
            );
        }
    }

    #[test]
    fn parallel_equals_serial_for_all_kinds() {
        let spec = GraphSpec::new(7, 8);
        for k in GeneratorKind::ALL {
            let g = k.build(spec, 3);
            assert_eq!(g.edges(), g.edges_parallel(100), "{}", k.name());
        }
    }

    #[test]
    fn chunks_tile_the_stream() {
        let spec = GraphSpec::new(6, 4);
        for k in GeneratorKind::ALL {
            let g = k.build(spec, 11);
            let all = g.edges();
            let m = spec.num_edges();
            let mut tiled = Vec::new();
            let mut lo = 0;
            while lo < m {
                let hi = (lo + 37).min(m);
                tiled.extend(g.edges_chunk(lo, hi));
                lo = hi;
            }
            assert_eq!(tiled, all, "{}", k.name());
        }
    }

    #[test]
    fn chunk_ranges_tile_exactly() {
        for (lo, hi, chunk) in [(0, 10, 4), (0, 10, 10), (0, 10, 100), (3, 17, 5), (7, 7, 1)] {
            let ranges: Vec<(u64, u64)> = chunk_ranges(lo, hi, chunk).collect();
            // Consecutive, non-empty, exactly covering lo..hi.
            let mut at = lo;
            for &(a, b) in &ranges {
                assert_eq!(a, at, "{lo}..{hi} by {chunk}");
                assert!(b > a && b - a <= chunk, "{lo}..{hi} by {chunk}");
                at = b;
            }
            assert_eq!(at, hi.max(lo), "{lo}..{hi} by {chunk}");
            if lo == hi {
                assert!(ranges.is_empty());
            }
        }
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn chunk_ranges_reject_zero_chunk() {
        let _ = chunk_ranges(0, 5, 0).count();
    }
}
