//! Uniform Erdős–Rényi G(N, M) generator (with replacement).
//!
//! Not part of the benchmark spec, but invaluable as a *control*: it has the
//! same N and M as the Kronecker graph with none of the skew, so ablation
//! benches can separate "cost of the data volume" from "cost of the
//! power-law hotspots".

use ppbench_io::Edge;
use ppbench_prng::{Rng64, SplitMix64};

use crate::spec::GraphSpec;
use crate::EdgeGenerator;

/// Uniform random edges: both endpoints i.i.d. uniform over `0..N`.
#[derive(Debug, Clone, Copy)]
pub struct ErdosRenyi {
    spec: GraphSpec,
    seed: u64,
}

impl ErdosRenyi {
    /// Creates the generator.
    pub fn new(spec: GraphSpec, seed: u64) -> Self {
        Self { spec, seed }
    }
}

impl EdgeGenerator for ErdosRenyi {
    fn spec(&self) -> GraphSpec {
        self.spec
    }

    fn edges_chunk(&self, lo: u64, hi: u64) -> Vec<Edge> {
        assert!(
            lo <= hi && hi <= self.spec.num_edges(),
            "bad chunk [{lo}, {hi})"
        );
        let n = self.spec.num_vertices();
        let mut out = Vec::with_capacity((hi - lo) as usize);
        for idx in lo..hi {
            let mut rng = SplitMix64::new(SplitMix64::mix(self.seed ^ SplitMix64::mix(!idx)));
            let u = rng.next_below(n);
            let v = rng.next_below(n);
            out.push(Edge::new(u, v));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree;

    #[test]
    fn uniformity_no_heavy_hub() {
        let spec = GraphSpec::new(12, 16);
        let edges = ErdosRenyi::new(spec, 1).edges();
        let din = degree::in_degrees(&edges, spec.num_vertices());
        let max = *din.iter().max().unwrap();
        // Poisson(16) tail: max over 4096 vertices stays well under 64.
        assert!(
            max < 4 * spec.edge_factor(),
            "uniform graph has hub of degree {max}"
        );
    }

    #[test]
    fn both_endpoints_cover_range() {
        let spec = GraphSpec::new(6, 16);
        let edges = ErdosRenyi::new(spec, 2).edges();
        let n = spec.num_vertices();
        let mut seen_u = vec![false; n as usize];
        let mut seen_v = vec![false; n as usize];
        for e in &edges {
            seen_u[e.u as usize] = true;
            seen_v[e.v as usize] = true;
        }
        // 1024 edges over 64 vertices: overwhelmingly likely all touched.
        assert!(seen_u.iter().filter(|&&b| b).count() > 60);
        assert!(seen_v.iter().filter(|&&b| b).count() > 60);
    }

    #[test]
    fn deterministic_chunks() {
        let spec = GraphSpec::new(5, 8);
        let g = ErdosRenyi::new(spec, 77);
        let all = g.edges();
        assert_eq!(&all[32..64], &g.edges_chunk(32, 64)[..]);
    }
}
