//! BTER-style generator: block two-level Erdős–Rényi.
//!
//! The paper's §IV.A lists "block two-level Erdos-Rényi (BTER) [Seshadhri
//! et al 2012]" among the generators worth investigating. BTER reproduces
//! both a heavy-tailed degree distribution *and* community structure
//! (high clustering), which plain Kronecker graphs lack.
//!
//! This implementation keeps the two BTER phases but restructures them so
//! each edge is a pure function of `(seed, edge index)` — the workspace's
//! determinism/chunkability contract:
//!
//! 1. **Affinity blocks.** Vertices are grouped into contiguous blocks
//!    whose size tracks the power-law head (hub vertices sit in small,
//!    dense blocks). A configurable fraction of edges is *intra-block*
//!    Erdős–Rényi, allocated to blocks proportionally to their internal
//!    pair count.
//! 2. **Chung–Lu background.** The remaining edges pick both endpoints
//!    from a power-law weight distribution by inverse-CDF sampling,
//!    providing the global heavy tail.

use ppbench_io::Edge;
use ppbench_prng::{Rng64, SplitMix64};

use crate::spec::GraphSpec;
use crate::EdgeGenerator;

/// Default fraction of edges placed inside affinity blocks.
pub(crate) const DEFAULT_INTRA_FRACTION: f64 = 0.5;

/// Default power-law exponent for block sizes and background weights.
pub(crate) const DEFAULT_ALPHA: f64 = 1.2;

/// BTER-style generator.
#[derive(Debug, Clone)]
pub struct Bter {
    spec: GraphSpec,
    seed: u64,
    /// Block boundaries: block b spans vertices `blocks[b] .. blocks[b+1]`.
    blocks: Vec<u64>,
    /// Number of intra-block edges (stream indices `0 .. intra_edges`).
    intra_edges: u64,
    /// Cumulative intra-pair weight per block, for index → block lookup.
    intra_prefix: Vec<f64>,
    /// Cumulative Chung–Lu endpoint weights.
    cum_weights: Vec<f64>,
}

impl Bter {
    /// Creates a BTER generator with default parameters.
    pub fn new(spec: GraphSpec, seed: u64) -> Self {
        Self::with_params(spec, seed, DEFAULT_INTRA_FRACTION, DEFAULT_ALPHA)
    }

    /// Creates a BTER generator with explicit intra-block edge fraction
    /// (`0..=1`) and power-law exponent (`> 0`).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range parameters.
    pub fn with_params(spec: GraphSpec, seed: u64, intra_fraction: f64, alpha: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&intra_fraction),
            "intra_fraction must be within [0, 1], got {intra_fraction}"
        );
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
        let n = spec.num_vertices();

        // Affinity blocks grow geometrically: the head of the degree
        // distribution lives in many tiny blocks, the tail in a few huge
        // ones (mirroring BTER's degree-grouped construction).
        let mut blocks = vec![0u64];
        let mut size = 2u64;
        let mut last = 0u64;
        while last < n {
            let next = (last + size).min(n);
            blocks.push(next);
            last = next;
            // Grow by ~1.6x each block, capped so a block never exceeds
            // n/4 (keeps several communities even at tiny scales).
            size = ((size as f64 * 1.6) as u64).clamp(2, (n / 4).max(2));
        }

        // Intra-block capacity ∝ ordered pairs excluding self loops.
        let mut intra_prefix = Vec::with_capacity(blocks.len() - 1);
        let mut acc = 0.0;
        for w in blocks.windows(2) {
            let s = (w[1] - w[0]) as f64;
            acc += s * (s - 1.0);
            intra_prefix.push(acc);
        }

        let intra_edges = (spec.num_edges() as f64 * intra_fraction).round() as u64;

        // Chung–Lu background weights: power law over vertex rank.
        let mut cum_weights = Vec::with_capacity(n as usize);
        let mut cw = 0.0;
        for i in 0..n {
            cw += ((i + 1) as f64).powf(-alpha);
            cum_weights.push(cw);
        }

        Self {
            spec,
            seed,
            blocks,
            intra_edges,
            intra_prefix,
            cum_weights,
        }
    }

    /// Number of affinity blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len() - 1
    }

    /// The block index containing vertex `v`.
    pub fn block_of(&self, v: u64) -> usize {
        debug_assert!(v < self.spec.num_vertices());
        self.blocks.partition_point(|&b| b <= v) - 1
    }

    fn sample_intra<R: Rng64>(&self, block: usize, rng: &mut R) -> Edge {
        let lo = self.blocks[block];
        let hi = self.blocks[block + 1];
        let size = hi - lo;
        let u = lo + rng.next_below(size);
        // Avoid self loops inside blocks by drawing the offset from 1..size.
        let off = 1 + rng.next_below(size - 1);
        let v = lo + (u - lo + off) % size;
        Edge::new(u, v)
    }

    fn sample_background<R: Rng64>(&self, rng: &mut R) -> Edge {
        let total = self.cum_weights.last().copied().unwrap_or(0.0);
        let draw = |rng: &mut R| {
            let x = rng.next_f64() * total;
            self.cum_weights.partition_point(|&c| c < x) as u64
        };
        Edge::new(draw(rng), draw(rng))
    }
}

impl EdgeGenerator for Bter {
    fn spec(&self) -> GraphSpec {
        self.spec
    }

    fn edges_chunk(&self, lo: u64, hi: u64) -> Vec<Edge> {
        assert!(
            lo <= hi && hi <= self.spec.num_edges(),
            "bad chunk [{lo}, {hi})"
        );
        let total_weight = self.intra_prefix.last().copied().unwrap_or(0.0);
        let mut out = Vec::with_capacity((hi - lo) as usize);
        for idx in lo..hi {
            let mut rng =
                SplitMix64::new(SplitMix64::mix(self.seed ^ SplitMix64::mix(idx << 1 | 1)));
            let e = if idx < self.intra_edges && total_weight > 0.0 {
                // Pick the block proportionally to its pair capacity.
                let x = rng.next_f64() * total_weight;
                let block = self.intra_prefix.partition_point(|&c| c < x);
                let block = block.min(self.num_blocks() - 1);
                self.sample_intra(block, &mut rng)
            } else {
                self.sample_background(&mut rng)
            };
            out.push(e);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree;

    fn spec() -> GraphSpec {
        GraphSpec::new(10, 16)
    }

    #[test]
    fn contract_edge_count_and_range() {
        let g = Bter::new(spec(), 7);
        let edges = g.edges();
        assert_eq!(edges.len() as u64, spec().num_edges());
        assert!(edges
            .iter()
            .all(|e| e.u < spec().num_vertices() && e.v < spec().num_vertices()));
    }

    #[test]
    fn deterministic_and_chunkable() {
        let g = Bter::new(spec(), 3);
        let all = g.edges();
        assert_eq!(all, Bter::new(spec(), 3).edges());
        assert_eq!(&all[100..300], &g.edges_chunk(100, 300)[..]);
        assert_eq!(all, g.edges_parallel(97));
    }

    #[test]
    fn blocks_partition_the_vertices() {
        let g = Bter::new(spec(), 1);
        assert!(
            g.num_blocks() >= 4,
            "want several communities, got {}",
            g.num_blocks()
        );
        let n = spec().num_vertices();
        for v in [0u64, 1, 5, 100, n - 1] {
            let b = g.block_of(v);
            assert!(g.blocks[b] <= v && v < g.blocks[b + 1]);
        }
    }

    #[test]
    fn has_community_structure() {
        // The fraction of intra-block edges must far exceed what uniform
        // endpoints would produce.
        let g = Bter::new(spec(), 5);
        let edges = g.edges();
        let intra = edges
            .iter()
            .filter(|e| g.block_of(e.u) == g.block_of(e.v))
            .count() as f64
            / edges.len() as f64;
        // Uniform baseline: sum over blocks of (size/n)^2 — tiny.
        let n = spec().num_vertices() as f64;
        let baseline: f64 = g
            .blocks
            .windows(2)
            .map(|w| {
                let s = (w[1] - w[0]) as f64 / n;
                s * s
            })
            .sum();
        assert!(
            intra > 2.5 * baseline && intra > 0.3,
            "intra fraction {intra:.3} vs baseline {baseline:.3}"
        );
    }

    #[test]
    fn heavy_tail_from_background_phase() {
        let g = Bter::new(spec(), 9);
        let edges = g.edges();
        let din = degree::in_degrees(&edges, spec().num_vertices());
        let stats = degree::DegreeStats::from_degrees(&din);
        assert!(
            stats.max as f64 > 4.0 * stats.mean,
            "max {} vs mean {:.1}: no heavy tail",
            stats.max,
            stats.mean
        );
    }

    #[test]
    fn no_intra_fraction_degenerates_to_chung_lu() {
        let g = Bter::with_params(spec(), 2, 0.0, 1.2);
        let edges = g.edges();
        assert_eq!(edges.len() as u64, spec().num_edges());
        // With alpha = 1.2 the low ranks dominate endpoints.
        let low = edges.iter().filter(|e| e.v < 64).count() as f64 / edges.len() as f64;
        assert!(low > 0.3, "head share {low}");
    }

    #[test]
    fn intra_edges_have_no_self_loops() {
        let g = Bter::with_params(spec(), 4, 1.0, 1.2);
        let edges = g.edges();
        assert!(
            edges.iter().all(|e| !e.is_loop()),
            "intra phase must avoid loops"
        );
    }

    #[test]
    #[should_panic(expected = "intra_fraction")]
    fn rejects_bad_fraction() {
        let _ = Bter::with_params(spec(), 0, 1.5, 1.2);
    }
}
