//! Perfect-power-law generator: a deterministic-degree alternative to the
//! Kronecker generator.
//!
//! The paper (§IV.A, §V) suggests that generators such as Kepner's perfect
//! power law (PPL) graphs "may make the validation of subsequent kernels
//! easier" because their structure is analytic rather than stochastic. This
//! implementation fixes the *out-degree sequence* exactly:
//!
//! * vertex `i` (in rank order) gets out-degree proportional to
//!   `(i+1)^(-alpha)`, apportioned by largest remainder so the degrees sum
//!   to exactly `M`;
//! * edge endpoints are drawn from the same power-law distribution by
//!   inverse-CDF sampling, so in-degrees follow the same law in expectation.
//!
//! Because the out-degree of every vertex is a known function of its rank,
//! kernel-2 invariants (who the super-node is, how many leaves exist) can be
//! predicted in closed form — exactly the validation property the paper
//! asks for. The stream is emitted sorted by start vertex, which also makes
//! PPL inputs a useful identity-check for kernel 1.

use ppbench_io::Edge;
use ppbench_prng::{Rng64, SplitMix64};

use crate::spec::GraphSpec;
use crate::EdgeGenerator;

/// Default power-law exponent; 1.3 is within the range observed for web
/// graphs and keeps the head heavy without starving the tail at benchmark
/// scales.
pub(crate) const DEFAULT_ALPHA: f64 = 1.3;

/// Deterministic-degree power-law generator.
#[derive(Debug, Clone)]
pub struct PerfectPowerLaw {
    spec: GraphSpec,
    seed: u64,
    alpha: f64,
    /// `deg_prefix[i]` = number of edges whose start vertex rank is < i;
    /// length N+1, last element == M.
    deg_prefix: Vec<u64>,
    /// Cumulative endpoint weights for inverse-CDF sampling; length N,
    /// last element == total weight.
    cum_weights: Vec<f64>,
}

impl PerfectPowerLaw {
    /// Creates a PPL generator with the default exponent.
    pub fn new(spec: GraphSpec, seed: u64) -> Self {
        Self::with_alpha(spec, seed, DEFAULT_ALPHA)
    }

    /// Creates a PPL generator with an explicit exponent `alpha > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not finite and positive.
    pub fn with_alpha(spec: GraphSpec, seed: u64, alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "alpha must be positive, got {alpha}"
        );
        let n = spec.num_vertices();
        let m = spec.num_edges();
        let weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-alpha)).collect();
        let total: f64 = weights.iter().sum();

        // Exact apportionment of M edges to N vertices (largest remainder).
        let mut degrees: Vec<u64> = Vec::with_capacity(n as usize);
        let mut remainders: Vec<(f64, usize)> = Vec::with_capacity(n as usize);
        let mut assigned: u64 = 0;
        for (i, &w) in weights.iter().enumerate() {
            let ideal = w / total * m as f64;
            let floor = ideal.floor() as u64;
            degrees.push(floor);
            assigned += floor;
            remainders.push((ideal - floor as f64, i));
        }
        // Hand the leftover edges to the largest remainders (ties broken by
        // rank for determinism).
        let leftover = (m - assigned) as usize;
        remainders.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        for &(_, i) in remainders.iter().take(leftover) {
            degrees[i] += 1;
        }

        let mut deg_prefix = Vec::with_capacity(n as usize + 1);
        deg_prefix.push(0u64);
        let mut acc = 0u64;
        for &d in &degrees {
            acc += d;
            deg_prefix.push(acc);
        }
        debug_assert_eq!(acc, m);

        let mut cum_weights = Vec::with_capacity(n as usize);
        let mut cw = 0.0;
        for &w in &weights {
            cw += w;
            cum_weights.push(cw);
        }

        Self {
            spec,
            seed,
            alpha,
            deg_prefix,
            cum_weights,
        }
    }

    /// The power-law exponent.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The exact out-degree assigned to vertex rank `i`.
    pub fn out_degree_of(&self, i: u64) -> u64 {
        self.deg_prefix[i as usize + 1] - self.deg_prefix[i as usize]
    }

    /// Start vertex of edge `idx`: the rank whose degree range contains it.
    #[inline]
    fn source_of(&self, idx: u64) -> u64 {
        // partition_point returns the first rank whose prefix exceeds idx.
        (self.deg_prefix.partition_point(|&p| p <= idx) - 1) as u64
    }

    /// Endpoint sampled by inverse CDF of the power-law weights.
    #[inline]
    fn sample_endpoint<R: Rng64>(&self, rng: &mut R) -> u64 {
        let total = self.cum_weights.last().copied().unwrap_or(0.0);
        let x = rng.next_f64() * total;
        self.cum_weights.partition_point(|&c| c < x) as u64
    }
}

impl EdgeGenerator for PerfectPowerLaw {
    fn spec(&self) -> GraphSpec {
        self.spec
    }

    fn edges_chunk(&self, lo: u64, hi: u64) -> Vec<Edge> {
        assert!(
            lo <= hi && hi <= self.spec.num_edges(),
            "bad chunk [{lo}, {hi})"
        );
        let mut out = Vec::with_capacity((hi - lo) as usize);
        for idx in lo..hi {
            let u = self.source_of(idx);
            let mut rng = SplitMix64::new(SplitMix64::mix(self.seed ^ SplitMix64::mix(idx)));
            let v = self.sample_endpoint(&mut rng);
            out.push(Edge::new(u, v));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_sum_to_m_exactly() {
        for (scale, k) in [(4u32, 3u64), (8, 16), (10, 5)] {
            let spec = GraphSpec::new(scale, k);
            let g = PerfectPowerLaw::new(spec, 1);
            let total: u64 = (0..spec.num_vertices()).map(|i| g.out_degree_of(i)).sum();
            assert_eq!(total, spec.num_edges());
        }
    }

    #[test]
    fn degrees_are_nonincreasing_in_rank() {
        let spec = GraphSpec::new(8, 16);
        let g = PerfectPowerLaw::new(spec, 1);
        let degs: Vec<u64> = (0..spec.num_vertices())
            .map(|i| g.out_degree_of(i))
            .collect();
        // Largest-remainder apportionment can perturb by at most 1, so allow
        // a slack of 1 between consecutive ranks.
        for w in degs.windows(2) {
            assert!(w[1] <= w[0] + 1, "degree sequence increases: {w:?}");
        }
        assert!(degs[0] > degs[spec.num_vertices() as usize - 1]);
    }

    #[test]
    fn stream_is_sorted_by_start_vertex() {
        let spec = GraphSpec::new(7, 8);
        let edges = PerfectPowerLaw::new(spec, 9).edges();
        assert!(edges.windows(2).all(|w| w[0].u <= w[1].u));
    }

    #[test]
    fn out_degrees_in_stream_match_declared() {
        let spec = GraphSpec::new(6, 8);
        let g = PerfectPowerLaw::new(spec, 2);
        let edges = g.edges();
        let mut counts = vec![0u64; spec.num_vertices() as usize];
        for e in &edges {
            counts[e.u as usize] += 1;
        }
        for i in 0..spec.num_vertices() {
            assert_eq!(counts[i as usize], g.out_degree_of(i), "vertex {i}");
        }
    }

    #[test]
    fn endpoints_favor_low_ranks() {
        let spec = GraphSpec::new(10, 16);
        let edges = PerfectPowerLaw::new(spec, 3).edges();
        let n = spec.num_vertices();
        let low = edges.iter().filter(|e| e.v < n / 16).count();
        // With alpha = 1.3 the first 1/16th of ranks carries far more than
        // 1/16th of the endpoint mass.
        assert!(
            low as f64 > edges.len() as f64 * 0.3,
            "only {low}/{} endpoints in the low-rank head",
            edges.len()
        );
    }

    #[test]
    fn deterministic_and_chunkable() {
        let spec = GraphSpec::new(6, 4);
        let g = PerfectPowerLaw::new(spec, 8);
        let all = g.edges();
        assert_eq!(all, PerfectPowerLaw::new(spec, 8).edges());
        let mid = g.edges_chunk(10, 50);
        assert_eq!(&all[10..50], &mid[..]);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn rejects_bad_alpha() {
        let _ = PerfectPowerLaw::with_alpha(GraphSpec::new(4, 2), 0, -1.0);
    }
}
