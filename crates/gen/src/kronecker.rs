//! The Graph500 stochastic Kronecker (R-MAT) generator — kernel 0's
//! reference generator.
//!
//! Faithful port of the octave `kronecker_generator(SCALE, edgefactor)` from
//! graph500.org, restructured so each edge is a pure function of
//! `(seed, edge_index)`:
//!
//! ```text
//! ab = A + B;  c_norm = C/(1 - (A+B));  a_norm = A/(A+B);
//! for each of SCALE bit levels:
//!     ii_bit = rand > ab
//!     jj_bit = rand > (c_norm if ii_bit else a_norm)
//!     u |= ii_bit << level;  v |= jj_bit << level
//! ```
//!
//! followed by a vertex-label permutation (the reference's `randperm(N)`,
//! realized here as an O(1)-memory [`FeistelPermutation`]) and an optional
//! edge-order shuffle (the reference's `randperm(M)`, realized as an index
//! permutation with cycle-walking). Both are deterministic in the seed, so
//! serial and parallel generation produce identical streams.

use ppbench_io::Edge;
use ppbench_prng::{derive_stream_seed, fill_indexed, Rng64, SplitMix64};

use crate::feistel::FeistelPermutation;
use crate::spec::GraphSpec;
use crate::EdgeGenerator;

/// Initiator probabilities of the 2×2 Kronecker seed matrix.
///
/// `d` is implied: `d = 1 - a - b - c`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KroneckerProbs {
    /// Probability of the (0,0) quadrant.
    pub a: f64,
    /// Probability of the (0,1) quadrant.
    pub b: f64,
    /// Probability of the (1,0) quadrant.
    pub c: f64,
}

impl Default for KroneckerProbs {
    /// The official Graph500 initiator: A = 0.57, B = 0.19, C = 0.19.
    fn default() -> Self {
        Self {
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }
}

impl KroneckerProbs {
    /// Validates and returns the derived per-level thresholds.
    fn thresholds(&self) -> Thresholds {
        assert!(
            self.a > 0.0 && self.b >= 0.0 && self.c >= 0.0,
            "probabilities must be non-negative (a positive)"
        );
        assert!(
            self.a + self.b + self.c < 1.0,
            "a + b + c must be < 1 so quadrant d has positive probability"
        );
        Thresholds {
            ab: self.a + self.b,
            c_norm: self.c / (1.0 - (self.a + self.b)),
            a_norm: self.a / (self.a + self.b),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Thresholds {
    ab: f64,
    c_norm: f64,
    a_norm: f64,
}

/// The Graph500 Kronecker edge generator.
#[derive(Debug, Clone)]
pub struct Kronecker {
    spec: GraphSpec,
    seed: u64,
    thresholds: Thresholds,
    vertex_perm: Option<FeistelPermutation>,
    shuffle_edges: bool,
    edge_perm: FeistelPermutation,
}

impl Kronecker {
    /// Creates the generator with default probabilities, vertex permutation
    /// on and edge shuffling off.
    ///
    /// Edge shuffling defaults to off because per-index sampling already
    /// makes the stream exchangeable; turn it on with
    /// [`Kronecker::with_edge_shuffle`] to mimic the reference's `randperm(M)`
    /// exactly.
    pub fn new(spec: GraphSpec, seed: u64) -> Self {
        Self::with_probs(spec, seed, KroneckerProbs::default())
    }

    /// Creates the generator with explicit initiator probabilities.
    pub fn with_probs(spec: GraphSpec, seed: u64, probs: KroneckerProbs) -> Self {
        let thresholds = probs.thresholds();
        let vertex_perm = if spec.scale() >= 1 {
            Some(FeistelPermutation::new(
                spec.scale(),
                derive_seed(seed, 0xF00D),
            ))
        } else {
            None
        };
        // Edge-index permutation over the next power of two >= M
        // (cycle-walked in `shuffled_index`).
        let edge_bits = 64 - spec.num_edges().max(2).next_power_of_two().leading_zeros() - 1;
        let edge_perm = FeistelPermutation::new(edge_bits.max(1), derive_seed(seed, 0xCAFE));
        Self {
            spec,
            seed,
            thresholds,
            vertex_perm,
            shuffle_edges: false,
            edge_perm,
        }
    }

    /// Disables the vertex-label permutation (the raw R-MAT labelling, where
    /// low-numbered vertices are the hubs). Useful for validation because
    /// the super-node is then vertex 0 with overwhelming probability.
    pub fn without_vertex_permutation(mut self) -> Self {
        self.vertex_perm = None;
        self
    }

    /// Enables the reference's edge-order shuffle (`randperm(M)`).
    pub fn with_edge_shuffle(mut self) -> Self {
        self.shuffle_edges = true;
        self
    }

    /// Samples the raw (unpermuted) edge for stream position `idx`.
    #[inline]
    fn sample_raw(&self, idx: u64) -> Edge {
        let mut rng = SplitMix64::new(derive_seed(self.seed, idx));
        let t = self.thresholds;
        let mut u = 0u64;
        let mut v = 0u64;
        for level in 0..self.spec.scale() {
            let ii = rng.next_f64() > t.ab;
            let threshold = if ii { t.c_norm } else { t.a_norm };
            let jj = rng.next_f64() > threshold;
            u |= (ii as u64) << level;
            v |= (jj as u64) << level;
        }
        Edge::new(u, v)
    }

    /// Maps a stream position through the edge shuffle (cycle-walking the
    /// power-of-two Feistel until it lands below M).
    #[inline]
    fn shuffled_index(&self, idx: u64) -> u64 {
        self.edge_perm.apply_below(idx, self.spec.num_edges())
    }

    /// Decodes one edge from its `2·scale` pre-drawn uniforms.
    ///
    /// Must consume `draws` in exactly the order [`Kronecker::sample_raw`]
    /// pulls them (ii then jj per level) to stay bit-identical to the
    /// per-edge path.
    #[inline]
    fn decode_raw(&self, draws: &[u64]) -> Edge {
        // Same u64 → [0, 1) conversion as Rng64::next_f64.
        let to_f64 = |x: u64| (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let t = self.thresholds;
        let mut u = 0u64;
        let mut v = 0u64;
        for level in 0..self.spec.scale() {
            let i = 2 * level as usize;
            let ii = to_f64(draws[i]) > t.ab;
            let threshold = if ii { t.c_norm } else { t.a_norm };
            let jj = to_f64(draws[i + 1]) > threshold;
            u |= (ii as u64) << level;
            v |= (jj as u64) << level;
        }
        Edge::new(u, v)
    }
}

/// Derives an independent SplitMix seed from (seed, tweak).
///
/// Delegates to the prng crate's [`derive_stream_seed`] so the batched fill
/// ([`fill_indexed`]) and this generator share one definition by
/// construction.
#[inline]
fn derive_seed(seed: u64, tweak: u64) -> u64 {
    derive_stream_seed(seed, tweak)
}

impl EdgeGenerator for Kronecker {
    fn spec(&self) -> GraphSpec {
        self.spec
    }

    fn edges_chunk(&self, lo: u64, hi: u64) -> Vec<Edge> {
        let mut out = Vec::new();
        self.edges_into(&mut out, lo, hi);
        out
    }

    fn edges_into(&self, out: &mut Vec<Edge>, lo: u64, hi: u64) {
        assert!(
            lo <= hi && hi <= self.spec.num_edges(),
            "bad chunk [{lo}, {hi})"
        );
        out.clear();
        out.reserve((hi - lo) as usize);
        let draws_per_edge = 2 * self.spec.scale() as usize;
        if self.shuffle_edges || draws_per_edge == 0 {
            // Shuffled source indices are scattered (and scale 0 consumes no
            // randomness), so batching contiguous index streams buys nothing.
            for idx in lo..hi {
                let src_idx = if self.shuffle_edges {
                    self.shuffled_index(idx)
                } else {
                    idx
                };
                let mut e = self.sample_raw(src_idx);
                if let Some(p) = &self.vertex_perm {
                    e = Edge::new(p.apply(e.u), p.apply(e.v));
                }
                out.push(e);
            }
            return;
        }
        // Unshuffled hot path: fill the per-edge streams in strides, then
        // decode — bit-identical to sample_raw (same seeding, same draw
        // order) but without a seed derivation + constructor per edge.
        const STRIDE: usize = 512;
        let mut buf = vec![0u64; STRIDE.min((hi - lo) as usize) * draws_per_edge];
        let mut idx = lo;
        while idx < hi {
            let n = STRIDE.min((hi - idx) as usize);
            let fill = &mut buf[..n * draws_per_edge];
            fill_indexed(self.seed, idx, draws_per_edge, fill);
            for draws in fill.chunks_exact(draws_per_edge) {
                let mut e = self.decode_raw(draws);
                if let Some(p) = &self.vertex_perm {
                    e = Edge::new(p.apply(e.u), p.apply(e.v));
                }
                out.push(e);
            }
            idx += n as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree;

    #[test]
    fn deterministic_in_seed() {
        let spec = GraphSpec::new(8, 8);
        let a = Kronecker::new(spec, 5).edges();
        let b = Kronecker::new(spec, 5).edges();
        let c = Kronecker::new(spec, 6).edges();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn emits_exactly_m_edges_in_range() {
        let spec = GraphSpec::new(10, 4);
        let edges = Kronecker::new(spec, 1).edges();
        assert_eq!(edges.len() as u64, spec.num_edges());
        assert!(edges
            .iter()
            .all(|e| e.u < spec.num_vertices() && e.v < spec.num_vertices()));
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // A power-law-ish graph must concentrate edges: the max in-degree
        // should far exceed the mean (which is the edge factor).
        let spec = GraphSpec::new(12, 16);
        let edges = Kronecker::new(spec, 42).edges();
        let din = degree::in_degrees(&edges, spec.num_vertices());
        let max = *din.iter().max().unwrap();
        assert!(
            max > 10 * spec.edge_factor(),
            "max in-degree {max} not >> edge factor {}",
            spec.edge_factor()
        );
        // And many vertices should be untouched (heavy tail at zero).
        let zeros = din.iter().filter(|&&d| d == 0).count();
        assert!(
            zeros > (spec.num_vertices() / 10) as usize,
            "only {zeros} empty vertices"
        );
    }

    #[test]
    fn unpermuted_hub_is_vertex_zero() {
        let spec = GraphSpec::new(12, 16);
        let edges = Kronecker::new(spec, 7).without_vertex_permutation().edges();
        let din = degree::in_degrees(&edges, spec.num_vertices());
        let argmax = (0..din.len()).max_by_key(|&i| din[i]).unwrap();
        assert_eq!(
            argmax, 0,
            "raw R-MAT labelling should make vertex 0 the hub"
        );
    }

    #[test]
    fn vertex_permutation_moves_the_hub() {
        let spec = GraphSpec::new(12, 16);
        let edges = Kronecker::new(spec, 7).edges();
        let din = degree::in_degrees(&edges, spec.num_vertices());
        let argmax = (0..din.len()).max_by_key(|&i| din[i]).unwrap();
        assert_ne!(argmax, 0, "permuted labelling should hide the hub");
    }

    #[test]
    fn edge_shuffle_permutes_the_stream() {
        let spec = GraphSpec::new(8, 8);
        let plain = Kronecker::new(spec, 3).edges();
        let shuffled = Kronecker::new(spec, 3).with_edge_shuffle().edges();
        assert_ne!(plain, shuffled, "shuffle should reorder");
        let mut a = plain.clone();
        let mut b = shuffled.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "shuffle must preserve the multiset of edges");
    }

    #[test]
    fn shuffle_parallel_equals_serial() {
        let spec = GraphSpec::new(8, 4);
        let g = Kronecker::new(spec, 3).with_edge_shuffle();
        assert_eq!(g.edges(), g.edges_parallel(64));
    }

    #[test]
    fn custom_probs_uniform_looks_uniform() {
        // With a = b = c = 0.25 the generator degenerates to uniform ids;
        // the max in-degree should then be close to the mean.
        let spec = GraphSpec::new(12, 16);
        let probs = KroneckerProbs {
            a: 0.25,
            b: 0.25,
            c: 0.25,
        };
        let edges = Kronecker::with_probs(spec, 11, probs).edges();
        let din = degree::in_degrees(&edges, spec.num_vertices());
        let max = *din.iter().max().unwrap();
        assert!(
            max < 4 * spec.edge_factor(),
            "uniform probs gave max in-degree {max}"
        );
    }

    #[test]
    #[should_panic(expected = "must be < 1")]
    fn rejects_probabilities_summing_past_one() {
        let spec = GraphSpec::new(4, 2);
        let _ = Kronecker::with_probs(
            spec,
            0,
            KroneckerProbs {
                a: 0.6,
                b: 0.3,
                c: 0.2,
            },
        );
    }

    #[test]
    #[should_panic(expected = "bad chunk")]
    fn rejects_out_of_range_chunk() {
        let spec = GraphSpec::new(4, 2);
        let g = Kronecker::new(spec, 0);
        let _ = g.edges_chunk(0, spec.num_edges() + 1);
    }

    /// Known-answer digests of the faithful stream, captured from the
    /// per-edge (pre-batching) implementation. These pin the batched
    /// `fill_indexed` path bit-identical to the historical stream: any
    /// change to seeding, draw order or the f64 conversion fails here.
    #[test]
    fn stream_is_pinned_to_the_pre_batching_reference() {
        use ppbench_io::checksum::EdgeDigest;
        let cases: [(u32, u64, u64, u64); 4] = [
            (10, 8, 12345, 0x76e5_edbe_c63a_8400),
            (8, 8, 5, 0x8896_6918_f0e7_3ade),
            (14, 16, 1, 0x3ec7_eeef_ed2d_e051),
            (12, 4, 99, 0x7423_86f2_30a7_6c5d),
        ];
        for (scale, ef, seed, chain) in cases {
            let edges = Kronecker::new(GraphSpec::new(scale, ef), seed).edges();
            let d = EdgeDigest::of_edges(&edges);
            assert_eq!(
                d.chain, chain,
                "faithful stream drifted at scale {scale} ef {ef} seed {seed}"
            );
        }
        // First edges of the (10, 8, 12345) stream, for a human-readable
        // failure when the digest moves.
        let edges = Kronecker::new(GraphSpec::new(10, 8), 12345).edges();
        assert_eq!(
            &edges[..4],
            &[
                Edge::new(780, 5),
                Edge::new(109, 397),
                Edge::new(60, 348),
                Edge::new(292, 760)
            ]
        );
        // Toggle variants are pinned too.
        let raw = Kronecker::new(GraphSpec::new(10, 8), 12345)
            .without_vertex_permutation()
            .edges();
        assert_eq!(EdgeDigest::of_edges(&raw).chain, 0x980f_32d7_4422_545f);
        let sh = Kronecker::new(GraphSpec::new(10, 8), 12345)
            .with_edge_shuffle()
            .edges();
        assert_eq!(EdgeDigest::of_edges(&sh).chain, 0x81f1_51ac_e914_22fc);
    }

    /// The batched `edges_into` path must agree with per-edge `sample_raw`
    /// (which the shuffle path still uses) edge for edge.
    #[test]
    fn batched_fill_matches_per_edge_sampling() {
        let spec = GraphSpec::new(9, 8);
        let g = Kronecker::new(spec, 77).without_vertex_permutation();
        let batched = g.edges();
        for (idx, &e) in batched.iter().enumerate() {
            assert_eq!(e, g.sample_raw(idx as u64), "edge {idx}");
        }
    }

    #[test]
    fn edges_into_reuses_the_buffer_across_chunks() {
        let spec = GraphSpec::new(8, 4);
        let g = Kronecker::new(spec, 2);
        let all = g.edges();
        let mut buf = Vec::new();
        let mut tiled = Vec::new();
        for (lo, hi) in crate::chunk_ranges(0, spec.num_edges(), 100) {
            g.edges_into(&mut buf, lo, hi);
            tiled.extend_from_slice(&buf);
        }
        assert_eq!(tiled, all);
    }
}
