//! Graph size specification: the paper's (scale, edge-factor) parameters.

/// The two parameters of the Graph500 generator as used by the benchmark:
/// the integer scale factor `S` and the average number of edges per vertex
/// `k` (16 in the official configuration).
///
/// * `N = 2^S` — maximum vertex label (exclusive bound)
/// * `M = k·N` — total number of edges
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GraphSpec {
    scale: u32,
    edge_factor: u64,
}

/// The official Graph500 / paper edge factor.
pub const DEFAULT_EDGE_FACTOR: u64 = 16;

impl GraphSpec {
    /// Creates a spec with an explicit edge factor.
    ///
    /// # Panics
    ///
    /// Panics if `scale >= 58` (edge counts would overflow the generator's
    /// index arithmetic) or `edge_factor == 0`.
    pub fn new(scale: u32, edge_factor: u64) -> Self {
        assert!(scale < 58, "scale {scale} too large");
        assert!(edge_factor > 0, "edge_factor must be positive");
        let n = 1u64 << scale;
        assert!(
            n.checked_mul(edge_factor).is_some(),
            "scale {scale} x edge_factor {edge_factor} overflows"
        );
        Self { scale, edge_factor }
    }

    /// Creates a spec with the official edge factor k = 16.
    pub fn with_scale(scale: u32) -> Self {
        Self::new(scale, DEFAULT_EDGE_FACTOR)
    }

    /// The integer scale factor `S`.
    pub fn scale(&self) -> u32 {
        self.scale
    }

    /// The average edges per vertex `k`.
    pub fn edge_factor(&self) -> u64 {
        self.edge_factor
    }

    /// `N = 2^S`, the exclusive upper bound on vertex labels.
    pub fn num_vertices(&self) -> u64 {
        1u64 << self.scale
    }

    /// `M = k·N`, the number of generated edges.
    pub fn num_edges(&self) -> u64 {
        self.edge_factor * self.num_vertices()
    }

    /// Approximate in-memory footprint of the edge list, at `bytes_per_edge`
    /// bytes per edge. The paper's Table II prints this at 24 bytes/edge
    /// (despite the surrounding text saying 16 — see EXPERIMENTS.md).
    pub fn memory_bytes(&self, bytes_per_edge: u64) -> u64 {
        self.num_edges() * bytes_per_edge
    }

    /// Scale whose edge list occupies roughly `fraction` of `ram_bytes`
    /// (the paper suggests targeting ~25% of available RAM).
    pub fn scale_for_memory(ram_bytes: u64, fraction: f64, bytes_per_edge: u64) -> u32 {
        let budget = (ram_bytes as f64 * fraction).max(1.0);
        let mut scale = 0u32;
        while scale < 57 {
            let next = Self::new(scale + 1, DEFAULT_EDGE_FACTOR);
            if next.memory_bytes(bytes_per_edge) as f64 > budget {
                break;
            }
            scale += 1;
        }
        scale
    }
}

impl std::fmt::Display for GraphSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scale {} (N={}, M={})",
            self.scale,
            self.num_vertices(),
            self.num_edges()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_match() {
        // Values from the paper's §IV.A: S = 30 gives N = 1,073,741,824 and
        // M = 17,179,869,184.
        let spec = GraphSpec::with_scale(30);
        assert_eq!(spec.num_vertices(), 1_073_741_824);
        assert_eq!(spec.num_edges(), 17_179_869_184);
    }

    #[test]
    fn table2_scale_16_and_22() {
        let s16 = GraphSpec::with_scale(16);
        assert_eq!(s16.num_vertices(), 65_536);
        assert_eq!(s16.num_edges(), 1_048_576);
        let s22 = GraphSpec::with_scale(22);
        assert_eq!(s22.num_vertices(), 4_194_304);
        assert_eq!(s22.num_edges(), 67_108_864);
        // Table II memory column at 24 B/edge, decimal megabytes.
        assert_eq!(s16.memory_bytes(24) / 1_000_000, 25);
        assert_eq!(s22.memory_bytes(24) / 1_000_000, 1610);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn huge_scale_rejected() {
        let _ = GraphSpec::new(60, 16);
    }

    #[test]
    #[should_panic(expected = "edge_factor must be positive")]
    fn zero_edge_factor_rejected() {
        let _ = GraphSpec::new(10, 0);
    }

    #[test]
    fn scale_for_memory_targets_quarter_of_ram() {
        // 64 GB RAM, 25%, 16 B/edge: biggest S with 16·16·2^S <= 16e9
        // is S = 25 (2^25·256 = 8.6e9), S = 26 gives 17.2e9 > 16e9.
        let s = GraphSpec::scale_for_memory(64_000_000_000, 0.25, 16);
        assert_eq!(s, 25);
    }

    #[test]
    fn display_is_informative() {
        let s = GraphSpec::new(4, 2).to_string();
        assert!(s.contains("scale 4"), "{s}");
        assert!(s.contains("N=16"), "{s}");
        assert!(s.contains("M=32"), "{s}");
    }
}
