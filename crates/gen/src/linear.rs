//! Linear-work R-MAT sampling: kernel 0's generator at table-lookup speed.
//!
//! The faithful Graph500 port ([`crate::Kronecker`]) spends `SCALE` sequential
//! coin-flip pairs per edge. Following Hübschle-Schneider & Sanders ("Linear
//! Work Generation of R-MAT Graphs"), this module collapses `b` consecutive
//! bit levels into one table draw: a *block table* enumerates all `4^b`
//! quadrant paths of length `b`, stores each path's probability (the product
//! of its per-level initiator probabilities) and its pre-assembled `(u, v)`
//! bit contributions, and turns sampling a whole block into a single uniform
//! draw resolved through an alias table in O(1). An edge then costs
//! `ceil(SCALE / b)` draws instead of `SCALE` — with `b = 8`, a scale-24 edge
//! needs 3 lookups instead of 24 coin-flip pairs.
//!
//! Determinism is by construction: the sampler addresses one SplitMix64
//! stream by *absolute draw position* (`edge_index · draws_per_edge + j`)
//! via [`SplitMix64::at`]'s O(1) jump, so there is no generator state to
//! carry across chunk boundaries, and any chunk/thread/shard tiling of the
//! stream reproduces the serial output bit for bit. The alias method is used
//! rather than binary search over a CDF because it consumes a *fixed* number
//! of uniforms per block (exactly one) — rejection-free draws are what keep
//! absolute positioning possible.
//!
//! Note the linear sampler consumes randomness differently from the faithful
//! port, so for one seed the two emit different (equally distributed) edge
//! streams; agreement is distributional, checked by [`crate::validate`].

use ppbench_io::Edge;
use ppbench_prng::{derive_stream_seed, Rng64, SplitMix64};

use crate::feistel::FeistelPermutation;
use crate::spec::GraphSpec;
use crate::{EdgeGenerator, KroneckerProbs};

/// Default number of bit levels folded into one block-table draw.
///
/// `b = 8` puts the table at `4^8 = 65536` entries — ~768 KiB including the
/// alias and path-bit arrays, which still fits in a typical L2 cache — while
/// cutting per-edge work by 8×. `b = 9` would octuple the table to ~6 MiB
/// (spilling to L3, where lookup latency eats the saving) for only a 12%
/// further reduction in draws; smaller `b` shrinks the table but pays a draw
/// per block. Powers up to 8 also keep the path-bit arrays in `u8`.
pub const DEFAULT_BLOCK_BITS: u32 = 8;

/// Stream tweak keying the per-edge draw stream (distinct from the vertex
/// permutation's `0xF00D` and the edge shuffle's `0xCAFE`).
const DRAW_STREAM_TWEAK: u64 = 0xB10C;

/// An alias-method sampler over all quadrant paths of `levels` bit levels.
///
/// Entry `p` encodes the path taking quadrant `(p >> 2t) & 3` at level `t`;
/// its probability is the product of the initiator probabilities along the
/// path. `upath[p]`/`vpath[p]` hold the pre-assembled source/target bits.
#[derive(Debug, Clone)]
struct BlockTable {
    /// Bits of a draw used as the uniform fraction (64 − 2·levels).
    frac_bits: u32,
    /// Alias-method stay thresholds in `frac_bits` fixed point.
    thresh: Vec<u64>,
    /// Alias-method redirect targets.
    alias: Vec<u16>,
    /// Source-vertex bits contributed by each path.
    upath: Vec<u8>,
    /// Target-vertex bits contributed by each path.
    vpath: Vec<u8>,
}

impl BlockTable {
    fn new(probs: &KroneckerProbs, levels: u32) -> Self {
        assert!(
            (1..=8).contains(&levels),
            "block table supports 1..=8 levels, got {levels}"
        );
        // Quadrant probabilities indexed by (ubit << 1) | vbit. Derived from
        // the faithful port's conditional thresholds: P(ubit=0) = a + b,
        // P(vbit=1 | ubit=0) = b/(a+b), etc. — the joint is exactly
        // [a, b, c, d].
        let quad = [probs.a, probs.b, probs.c, 1.0 - probs.a - probs.b - probs.c];
        assert!(
            quad.iter().all(|&q| q >= 0.0) && probs.a > 0.0 && quad[3] > 0.0,
            "initiator probabilities out of range"
        );

        // Path probabilities by dynamic programming: extend every path of
        // t levels with each of the 4 quadrants at level t.
        let mut path_prob = vec![1.0f64];
        for t in 0..levels {
            let mut next = vec![0.0f64; path_prob.len() * 4];
            for (path, &p) in path_prob.iter().enumerate() {
                for (q, &qp) in quad.iter().enumerate() {
                    next[path | (q << (2 * t))] = p * qp;
                }
            }
            path_prob = next;
        }
        let n = path_prob.len();

        let mut upath = vec![0u8; n];
        let mut vpath = vec![0u8; n];
        for (p, (up, vp)) in upath.iter_mut().zip(vpath.iter_mut()).enumerate() {
            let mut u = 0u8;
            let mut v = 0u8;
            for t in 0..levels {
                let q = (p >> (2 * t)) & 3;
                u |= (q as u8 >> 1) << t;
                v |= (q as u8 & 1) << t;
            }
            *up = u;
            *vp = v;
        }

        // Vose's alias construction, in fixed index order so the table (and
        // with it the emitted stream) is identical on every platform.
        let frac_bits = 64 - 2 * levels;
        let full = 1u64 << frac_bits;
        let to_fixed = |p: f64| ((p * full as f64).round() as u64).min(full);
        let mut thresh = vec![full; n];
        let mut alias: Vec<u16> = (0..n).map(|i| i as u16).collect();
        let mut scaled: Vec<f64> = path_prob.iter().map(|&p| p * n as f64).collect();
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            thresh[s] = to_fixed(scaled[s]);
            alias[s] = l as u16;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers on either list have weight 1 up to rounding error: they
        // keep their full column (thresh = full, alias = self).

        Self {
            frac_bits,
            thresh,
            alias,
            upath,
            vpath,
        }
    }

    /// Resolves one uniform draw to a path's `(u bits, v bits)`.
    ///
    /// The top `2·levels` bits of `r` pick the column, the remaining
    /// `frac_bits` are the uniform fraction deciding stay-vs-alias — one
    /// draw, no rejection.
    #[inline]
    fn sample(&self, r: u64) -> (u8, u8) {
        let idx = (r >> self.frac_bits) as usize;
        let frac = r & ((1u64 << self.frac_bits) - 1);
        let k = if frac < self.thresh[idx] {
            idx
        } else {
            self.alias[idx] as usize
        };
        (self.upath[k], self.vpath[k])
    }
}

/// The linear-work R-MAT generator: block-table sampling with absolute
/// stream positioning. Drop-in peer of [`crate::Kronecker`] behind
/// [`EdgeGenerator`]; selected by `RmatSampler::Linear`.
#[derive(Debug, Clone)]
pub struct LinearKronecker {
    spec: GraphSpec,
    block_bits: u32,
    full_blocks: u32,
    /// Table for the `block_bits`-level blocks (absent when `scale < block_bits`).
    full: Option<BlockTable>,
    /// Table for the `scale % block_bits` trailing levels (absent when the
    /// scale divides evenly).
    rem: Option<BlockTable>,
    draws_per_edge: u64,
    stream_seed: u64,
    vertex_perm: Option<FeistelPermutation>,
    shuffle_edges: bool,
    edge_perm: FeistelPermutation,
}

impl LinearKronecker {
    /// Creates the generator with default probabilities and block size,
    /// vertex permutation on and edge shuffling off (same defaults as
    /// [`crate::Kronecker::new`]).
    pub fn new(spec: GraphSpec, seed: u64) -> Self {
        Self::with_probs(spec, seed, KroneckerProbs::default())
    }

    /// Creates the generator with explicit initiator probabilities.
    pub fn with_probs(spec: GraphSpec, seed: u64, probs: KroneckerProbs) -> Self {
        Self::with_block_bits(spec, seed, probs, DEFAULT_BLOCK_BITS)
    }

    /// Creates the generator with an explicit block size `b` (1..=8 levels
    /// per table draw). Exposed for tests and ablations; the emitted stream
    /// depends on `b`, so sweeps must hold it fixed (the pipeline always
    /// uses [`DEFAULT_BLOCK_BITS`]).
    pub fn with_block_bits(spec: GraphSpec, seed: u64, probs: KroneckerProbs, b: u32) -> Self {
        assert!((1..=8).contains(&b), "block_bits must be in 1..=8, got {b}");
        let scale = spec.scale();
        let full_blocks = scale / b;
        let rem_levels = scale % b;
        let full = (full_blocks > 0).then(|| BlockTable::new(&probs, b));
        let rem = (rem_levels > 0).then(|| BlockTable::new(&probs, rem_levels));
        let draws_per_edge = u64::from(full_blocks) + u64::from(rem_levels > 0);
        // Same auxiliary permutations (and tweaks) as the faithful port, so
        // toggling samplers changes only how raw bits are drawn.
        let vertex_perm =
            (scale >= 1).then(|| FeistelPermutation::new(scale, derive_stream_seed(seed, 0xF00D)));
        let edge_bits = 64 - spec.num_edges().max(2).next_power_of_two().leading_zeros() - 1;
        let edge_perm = FeistelPermutation::new(edge_bits.max(1), derive_stream_seed(seed, 0xCAFE));
        Self {
            spec,
            block_bits: b,
            full_blocks,
            full,
            rem,
            draws_per_edge,
            stream_seed: derive_stream_seed(seed, DRAW_STREAM_TWEAK),
            vertex_perm,
            shuffle_edges: false,
            edge_perm,
        }
    }

    /// Disables the vertex-label permutation (raw R-MAT labelling; vertex 0
    /// is the hub). Useful for validation.
    pub fn without_vertex_permutation(mut self) -> Self {
        self.vertex_perm = None;
        self
    }

    /// Enables the reference's edge-order shuffle (`randperm(M)`).
    pub fn with_edge_shuffle(mut self) -> Self {
        self.shuffle_edges = true;
        self
    }

    /// Assembles one edge from the next `draws_per_edge` outputs of `rng`.
    #[inline]
    fn assemble(&self, rng: &mut SplitMix64) -> Edge {
        let mut u = 0u64;
        let mut v = 0u64;
        let mut shift = 0u32;
        if let Some(t) = &self.full {
            for _ in 0..self.full_blocks {
                let (ub, vb) = t.sample(rng.next_u64());
                u |= u64::from(ub) << shift;
                v |= u64::from(vb) << shift;
                shift += self.block_bits;
            }
        }
        if let Some(t) = &self.rem {
            let (ub, vb) = t.sample(rng.next_u64());
            u |= u64::from(ub) << shift;
            v |= u64::from(vb) << shift;
        }
        match &self.vertex_perm {
            Some(p) => Edge::new(p.apply(u), p.apply(v)),
            None => Edge::new(u, v),
        }
    }

    /// Positions a generator at stream index `idx`'s first draw.
    ///
    /// Draw positions are taken mod 2^64 (`wrapping_mul`) — irrelevant below
    /// the spec's scale ceiling, and still a pure function of the index.
    #[inline]
    fn rng_at(&self, idx: u64) -> SplitMix64 {
        SplitMix64::at(self.stream_seed, idx.wrapping_mul(self.draws_per_edge))
    }
}

impl EdgeGenerator for LinearKronecker {
    fn spec(&self) -> GraphSpec {
        self.spec
    }

    fn edges_chunk(&self, lo: u64, hi: u64) -> Vec<Edge> {
        let mut out = Vec::new();
        self.edges_into(&mut out, lo, hi);
        out
    }

    fn edges_into(&self, out: &mut Vec<Edge>, lo: u64, hi: u64) {
        assert!(
            lo <= hi && hi <= self.spec.num_edges(),
            "bad chunk [{lo}, {hi})"
        );
        out.clear();
        out.reserve((hi - lo) as usize);
        if self.draws_per_edge == 0 {
            // scale 0: the single vertex self-loop, no randomness consumed.
            out.resize((hi - lo) as usize, Edge::new(0, 0));
        } else if self.shuffle_edges {
            // Shuffled source indices are scattered, so each edge jumps to
            // its own absolute position.
            for idx in lo..hi {
                let src = self.edge_perm.apply_below(idx, self.spec.num_edges());
                let mut rng = self.rng_at(src);
                out.push(self.assemble(&mut rng));
            }
        } else {
            // Contiguous range: one jump, then a straight sequential walk.
            let mut rng = self.rng_at(lo);
            for _ in lo..hi {
                out.push(self.assemble(&mut rng));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree;

    #[test]
    fn deterministic_in_seed() {
        let spec = GraphSpec::new(10, 8);
        let a = LinearKronecker::new(spec, 5).edges();
        let b = LinearKronecker::new(spec, 5).edges();
        let c = LinearKronecker::new(spec, 6).edges();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn emits_exactly_m_edges_in_range() {
        for (scale, ef) in [(0u32, 1u64), (3, 2), (7, 4), (8, 4), (10, 8), (16, 2)] {
            let spec = GraphSpec::new(scale, ef);
            let edges = LinearKronecker::new(spec, 1).edges();
            assert_eq!(edges.len() as u64, spec.num_edges(), "scale {scale}");
            assert!(
                edges
                    .iter()
                    .all(|e| e.u < spec.num_vertices() && e.v < spec.num_vertices()),
                "scale {scale} emitted out-of-range vertices"
            );
        }
    }

    #[test]
    fn any_chunk_tiling_is_bit_identical() {
        let spec = GraphSpec::new(10, 8);
        let g = LinearKronecker::new(spec, 42);
        let all = g.edges();
        for chunk in [1u64, 7, 64, 1000, 1 << 13, u64::MAX] {
            let mut tiled = Vec::new();
            let mut buf = Vec::new();
            for (lo, hi) in crate::chunk_ranges(0, spec.num_edges(), chunk) {
                g.edges_into(&mut buf, lo, hi);
                tiled.extend_from_slice(&buf);
            }
            assert_eq!(tiled, all, "chunk size {chunk}");
        }
    }

    #[test]
    fn scattered_single_edge_chunks_match_the_stream() {
        let spec = GraphSpec::new(12, 4);
        let g = LinearKronecker::new(spec, 9);
        let all = g.edges();
        for idx in [0u64, 1, 17, 1000, spec.num_edges() - 1] {
            assert_eq!(g.edges_chunk(idx, idx + 1), &all[idx as usize..][..1]);
        }
    }

    #[test]
    fn parallel_equals_serial_for_any_chunk_size() {
        let spec = GraphSpec::new(9, 8);
        for g in [
            LinearKronecker::new(spec, 3),
            LinearKronecker::new(spec, 3).with_edge_shuffle(),
        ] {
            let serial = g.edges();
            for chunk in [37u64, 256, 5000] {
                assert_eq!(serial, g.edges_parallel(chunk), "chunk {chunk}");
            }
        }
    }

    #[test]
    fn block_size_changes_the_stream_but_not_the_contract() {
        let spec = GraphSpec::new(11, 4);
        let probs = KroneckerProbs::default();
        let default_stream = LinearKronecker::new(spec, 8).edges();
        for b in 1..=8u32 {
            let g = LinearKronecker::with_block_bits(spec, 8, probs, b);
            let edges = g.edges();
            assert_eq!(edges.len() as u64, spec.num_edges(), "b={b}");
            assert!(
                edges
                    .iter()
                    .all(|e| e.u < spec.num_vertices() && e.v < spec.num_vertices()),
                "b={b} out of range"
            );
            assert_eq!(edges, g.edges_parallel(100), "b={b} parallel mismatch");
            if b == DEFAULT_BLOCK_BITS {
                assert_eq!(
                    edges, default_stream,
                    "default b must be {DEFAULT_BLOCK_BITS}"
                );
            }
        }
    }

    #[test]
    fn unpermuted_hub_is_vertex_zero() {
        let spec = GraphSpec::new(12, 16);
        let edges = LinearKronecker::new(spec, 7)
            .without_vertex_permutation()
            .edges();
        let din = degree::in_degrees(&edges, spec.num_vertices());
        let argmax = (0..din.len()).max_by_key(|&i| din[i]).unwrap();
        assert_eq!(
            argmax, 0,
            "raw R-MAT labelling should make vertex 0 the hub"
        );
    }

    #[test]
    fn vertex_permutation_moves_the_hub() {
        let spec = GraphSpec::new(12, 16);
        let edges = LinearKronecker::new(spec, 7).edges();
        let din = degree::in_degrees(&edges, spec.num_vertices());
        let argmax = (0..din.len()).max_by_key(|&i| din[i]).unwrap();
        assert_ne!(argmax, 0, "permuted labelling should hide the hub");
    }

    #[test]
    fn edge_shuffle_permutes_the_stream() {
        let spec = GraphSpec::new(8, 8);
        let plain = LinearKronecker::new(spec, 3).edges();
        let shuffled = LinearKronecker::new(spec, 3).with_edge_shuffle().edges();
        assert_ne!(plain, shuffled, "shuffle should reorder");
        let mut a = plain;
        let mut b = shuffled;
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "shuffle must preserve the multiset of edges");
    }

    #[test]
    fn uniform_probs_give_uniform_degrees() {
        let spec = GraphSpec::new(12, 16);
        let probs = KroneckerProbs {
            a: 0.25,
            b: 0.25,
            c: 0.25,
        };
        let edges = LinearKronecker::with_probs(spec, 11, probs).edges();
        let din = degree::in_degrees(&edges, spec.num_vertices());
        let max = *din.iter().max().unwrap();
        assert!(
            max < 4 * spec.edge_factor(),
            "uniform probs gave max in-degree {max}"
        );
    }

    #[test]
    fn block_table_matches_path_probabilities() {
        // Sampling frequencies over many uniform draws must track the DP
        // path probabilities; spot-check levels 1..=3 exhaustively.
        let probs = KroneckerProbs::default();
        let quad = [probs.a, probs.b, probs.c, 1.0 - probs.a - probs.b - probs.c];
        for levels in 1..=3u32 {
            let t = BlockTable::new(&probs, levels);
            let n = 1usize << (2 * levels);
            let mut counts = vec![0u64; n];
            let mut rng = SplitMix64::new(99);
            let draws = 200_000;
            for _ in 0..draws {
                let (u, v) = t.sample(rng.next_u64());
                let mut path = 0usize;
                for lvl in 0..levels {
                    let q = ((u as usize >> lvl & 1) << 1) | (v as usize >> lvl & 1);
                    path |= q << (2 * lvl);
                }
                counts[path] += 1;
            }
            for (p, &c) in counts.iter().enumerate() {
                let mut expect = 1.0;
                for lvl in 0..levels {
                    expect *= quad[(p >> (2 * lvl)) & 3];
                }
                let got = c as f64 / draws as f64;
                assert!(
                    (got - expect).abs() < 0.01,
                    "levels {levels} path {p:#x}: got {got:.4}, expected {expect:.4}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "block_bits")]
    fn rejects_block_size_zero() {
        let _ =
            LinearKronecker::with_block_bits(GraphSpec::new(8, 2), 0, KroneckerProbs::default(), 0);
    }

    #[test]
    #[should_panic(expected = "bad chunk")]
    fn rejects_out_of_range_chunk() {
        let spec = GraphSpec::new(4, 2);
        let g = LinearKronecker::new(spec, 0);
        let _ = g.edges_chunk(0, spec.num_edges() + 1);
    }
}
