//! A format-preserving pseudorandom permutation on `0..2^bits`.
//!
//! Kernel 0 of the Graph500 generator applies `randperm(N)` to vertex labels
//! so that vertex id carries no information about degree. Materializing that
//! permutation costs `8N` bytes and a serial shuffle; a balanced Feistel
//! network gives the same statistical effect as an O(1)-memory bijection
//! that can be evaluated independently (and thus in parallel) for every
//! edge. Four rounds with a SplitMix-style round function are plenty for
//! benchmark-grade mixing.

/// A bijection on `0..2^bits` built from a 4-round Feistel network.
#[derive(Debug, Clone, Copy)]
pub struct FeistelPermutation {
    bits: u32,
    half_lo: u32, // bits in the low half
    keys: [u64; FeistelPermutation::ROUNDS],
}

impl FeistelPermutation {
    const ROUNDS: usize = 4;

    /// Creates the permutation on `0..2^bits` determined by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 63.
    pub fn new(bits: u32, seed: u64) -> Self {
        assert!(
            (1..=63).contains(&bits),
            "bits must be in 1..=63, got {bits}"
        );
        let mut keys = [0u64; Self::ROUNDS];
        let mut s = seed;
        for k in &mut keys {
            s = mix(s.wrapping_add(0xA076_1D64_78BD_642F));
            *k = s;
        }
        Self {
            bits,
            half_lo: bits / 2,
            keys,
        }
    }

    /// Domain size `2^bits`.
    pub fn domain(&self) -> u64 {
        1u64 << self.bits
    }

    /// Applies the permutation.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `x` is outside the domain.
    #[inline]
    pub fn apply(&self, x: u64) -> u64 {
        debug_assert!(
            x < self.domain(),
            "input {x} outside domain 2^{}",
            self.bits
        );
        if self.bits == 1 {
            // Degenerate domain {0,1}: swap or identity based on the key.
            return x ^ (self.keys[0] & 1);
        }
        let lo_bits = self.half_lo;
        let hi_bits = self.bits - lo_bits;
        let lo_mask = (1u64 << lo_bits) - 1;
        let hi_mask = (1u64 << hi_bits) - 1;
        let mut lo = x & lo_mask;
        let mut hi = (x >> lo_bits) & hi_mask;
        // Unbalanced-tolerant Feistel: alternate which half is keyed.
        for (round, &key) in self.keys.iter().enumerate() {
            if round % 2 == 0 {
                lo ^= mix(hi ^ key) & lo_mask;
            } else {
                hi ^= mix(lo ^ key) & hi_mask;
            }
        }
        (hi << lo_bits) | lo
    }

    /// Applies the permutation restricted to `0..bound` by cycle-walking:
    /// re-applies the power-of-two permutation until the image lands below
    /// `bound`. Because the permutation is a bijection on its domain, the
    /// walk terminates and the restriction is itself a bijection on
    /// `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `x >= bound` or `bound` exceeds the
    /// permutation's domain.
    #[inline]
    pub fn apply_below(&self, x: u64, bound: u64) -> u64 {
        debug_assert!(x < bound, "input {x} outside restricted domain {bound}");
        debug_assert!(
            bound <= self.domain(),
            "bound {bound} exceeds domain 2^{}",
            self.bits
        );
        let mut y = self.apply(x);
        while y >= bound {
            y = self.apply(y);
        }
        y
    }

    /// Applies the inverse permutation.
    #[inline]
    pub fn invert(&self, y: u64) -> u64 {
        debug_assert!(
            y < self.domain(),
            "input {y} outside domain 2^{}",
            self.bits
        );
        if self.bits == 1 {
            return y ^ (self.keys[0] & 1);
        }
        let lo_bits = self.half_lo;
        let hi_bits = self.bits - lo_bits;
        let lo_mask = (1u64 << lo_bits) - 1;
        let hi_mask = (1u64 << hi_bits) - 1;
        let mut lo = y & lo_mask;
        let mut hi = (y >> lo_bits) & hi_mask;
        for (round, &key) in self.keys.iter().enumerate().rev() {
            if round % 2 == 0 {
                lo ^= mix(hi ^ key) & lo_mask;
            } else {
                hi ^= mix(lo ^ key) & hi_mask;
            }
        }
        (hi << lo_bits) | lo
    }
}

/// SplitMix64 finalizer (duplicated here to keep this module free-standing;
/// the canonical copy lives in `ppbench-prng`).
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_a_bijection_for_various_widths() {
        for bits in [1u32, 2, 3, 8, 11] {
            let p = FeistelPermutation::new(bits, 42);
            let n = p.domain();
            let mut seen = vec![false; n as usize];
            for x in 0..n {
                let y = p.apply(x);
                assert!(y < n, "bits={bits}: output {y} out of range");
                assert!(!seen[y as usize], "bits={bits}: collision at {y}");
                seen[y as usize] = true;
            }
        }
    }

    #[test]
    fn invert_roundtrips() {
        for bits in [1u32, 5, 16, 33, 63] {
            let p = FeistelPermutation::new(bits, 1234);
            for i in 0..1000u64 {
                let x = mix(i) & (p.domain() - 1);
                assert_eq!(p.invert(p.apply(x)), x, "bits={bits}, x={x}");
                assert_eq!(p.apply(p.invert(x)), x, "bits={bits}, x={x}");
            }
        }
    }

    #[test]
    fn different_seeds_give_different_permutations() {
        let a = FeistelPermutation::new(16, 1);
        let b = FeistelPermutation::new(16, 2);
        let differs = (0..1000u64).any(|x| a.apply(x) != b.apply(x));
        assert!(differs);
    }

    #[test]
    fn actually_scrambles() {
        // The permutation should not be close to the identity: over a sample,
        // nearly all points should move.
        let p = FeistelPermutation::new(20, 7);
        let moved = (0..10_000u64).filter(|&x| p.apply(x) != x).count();
        assert!(moved > 9_990, "only {moved}/10000 points moved");
    }

    #[test]
    fn output_spreads_across_domain() {
        // Consecutive inputs should map across the whole domain, not cluster:
        // check the top-3-bit bucket histogram of the first 8192 outputs.
        let p = FeistelPermutation::new(30, 99);
        let mut buckets = [0u32; 8];
        for x in 0..8192u64 {
            let y = p.apply(x);
            buckets[(y >> 27) as usize] += 1;
        }
        for (i, &c) in buckets.iter().enumerate() {
            assert!(
                (c as f64 - 1024.0).abs() < 300.0,
                "bucket {i} has {c} of 8192 (expected ~1024)"
            );
        }
    }

    #[test]
    #[should_panic(expected = "bits must be in")]
    fn zero_bits_rejected() {
        let _ = FeistelPermutation::new(0, 1);
    }
}
