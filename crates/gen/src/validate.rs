//! Statistical validation of generated edge lists.
//!
//! The paper's §V asks whether a "more deterministic generator \[should\] be
//! used in kernel 0 to facilitate validation of all kernels". Until then,
//! the stochastic Kronecker output can at least be checked *statistically*:
//! this module verifies that an edge list is plausibly the output of the
//! configured generator — counts, ranges, and the marginal bit
//! probabilities the R-MAT recursion implies.

use ppbench_io::Edge;

use crate::kronecker::KroneckerProbs;
use crate::spec::GraphSpec;

/// One validation finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// What was checked.
    pub check: &'static str,
    /// Whether it held.
    pub passed: bool,
    /// Measured-vs-expected detail.
    pub detail: String,
}

/// Outcome of a validation pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GeneratorReport {
    /// Individual findings.
    pub findings: Vec<Finding>,
}

impl GeneratorReport {
    /// True when every finding passed.
    pub fn passed(&self) -> bool {
        self.findings.iter().all(|f| f.passed)
    }

    fn push(&mut self, check: &'static str, passed: bool, detail: String) {
        self.findings.push(Finding {
            check,
            passed,
            detail,
        });
    }

    /// Multi-line rendering.
    pub fn detail(&self) -> String {
        self.findings
            .iter()
            .map(|f| {
                format!(
                    "[{}] {}: {}",
                    if f.passed { "ok" } else { "FAIL" },
                    f.check,
                    f.detail
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Structural checks every generator must satisfy: exactly `M` edges, all
/// endpoints inside `0..N`.
pub fn check_structure(spec: &GraphSpec, edges: &[Edge]) -> GeneratorReport {
    let mut report = GeneratorReport::default();
    report.push(
        "edge-count",
        edges.len() as u64 == spec.num_edges(),
        format!("{} edges vs M = {}", edges.len(), spec.num_edges()),
    );
    let n = spec.num_vertices();
    let out_of_range = edges.iter().filter(|e| e.u >= n || e.v >= n).count();
    report.push(
        "vertex-range",
        out_of_range == 0,
        format!("{out_of_range} endpoints outside 0..{n}"),
    );
    report
}

/// Statistical checks specific to the (unpermuted!) Kronecker generator:
/// the marginal probability that any given vertex-label bit is 0 equals
/// `A + B` for start vertices and `A + C` for end vertices, independently
/// per level. A vertex permutation destroys this structure by design —
/// validate on a generator built with
/// [`crate::Kronecker::without_vertex_permutation`].
///
/// `tolerance` is the allowed absolute deviation of each measured marginal
/// (0.01 is comfortable at benchmark sizes: the standard error at
/// M = 2^20 is ≈ 0.0004).
pub fn check_kronecker_marginals(
    spec: &GraphSpec,
    probs: &KroneckerProbs,
    edges: &[Edge],
    tolerance: f64,
) -> GeneratorReport {
    let mut report = GeneratorReport::default();
    if edges.is_empty() {
        report.push("marginals", false, "no edges to test".into());
        return report;
    }
    let m = edges.len() as f64;
    let expect_u0 = probs.a + probs.b; // P(start bit = 0) per level
    let expect_v0 = probs.a + probs.c; // P(end bit = 0) per level
    let mut worst_u: f64 = 0.0;
    let mut worst_v: f64 = 0.0;
    for level in 0..spec.scale() {
        let zeros_u = edges.iter().filter(|e| (e.u >> level) & 1 == 0).count() as f64;
        let zeros_v = edges.iter().filter(|e| (e.v >> level) & 1 == 0).count() as f64;
        worst_u = worst_u.max((zeros_u / m - expect_u0).abs());
        worst_v = worst_v.max((zeros_v / m - expect_v0).abs());
    }
    report.push(
        "start-bit-marginals",
        worst_u <= tolerance,
        format!("worst |P(u bit=0) − {expect_u0:.3}| = {worst_u:.4} (tol {tolerance})"),
    );
    report.push(
        "end-bit-marginals",
        worst_v <= tolerance,
        format!("worst |P(v bit=0) − {expect_v0:.3}| = {worst_v:.4} (tol {tolerance})"),
    );
    report
}

/// Statistical check that (unpermuted!) edges take each R-MAT quadrant with
/// the initiator probabilities, per bit level: the joint distribution of
/// `(u bit, v bit)` at every level must be `[a, b, c, d]`. Stronger than
/// [`check_kronecker_marginals`] (which only tests the two marginals), this
/// is the natural cross-check between the faithful coin-flip port and the
/// linear-work block sampler — both must agree with the same quadrant law
/// even though their streams differ.
///
/// `tolerance` bounds the absolute deviation of each measured quadrant
/// frequency (standard error is ≈ `0.5/sqrt(M)`).
pub fn check_kronecker_quadrants(
    spec: &GraphSpec,
    probs: &KroneckerProbs,
    edges: &[Edge],
    tolerance: f64,
) -> GeneratorReport {
    let mut report = GeneratorReport::default();
    if edges.is_empty() {
        report.push("quadrant-counts", false, "no edges to test".into());
        return report;
    }
    let m = edges.len() as f64;
    let expect = [probs.a, probs.b, probs.c, 1.0 - probs.a - probs.b - probs.c];
    let mut worst: f64 = 0.0;
    let mut worst_at = (0u32, 0usize);
    for level in 0..spec.scale() {
        let mut counts = [0u64; 4];
        for e in edges {
            let q = (((e.u >> level) & 1) << 1) | ((e.v >> level) & 1);
            counts[q as usize] += 1;
        }
        for (q, &c) in counts.iter().enumerate() {
            let dev = (c as f64 / m - expect[q]).abs();
            if dev > worst {
                worst = dev;
                worst_at = (level, q);
            }
        }
    }
    report.push(
        "quadrant-counts",
        worst <= tolerance,
        format!(
            "worst quadrant deviation {worst:.4} at level {} quadrant {} (tol {tolerance})",
            worst_at.0, worst_at.1
        ),
    );
    report
}

/// Checks that two edge lists have matching degree distributions — the
/// acceptance test for swapping one sampler for another (faithful vs
/// linear-work R-MAT): their streams differ edge for edge, but the
/// distribution of vertex degrees must agree.
///
/// Compares the in- and out-degree CCDFs (fraction of vertices with degree
/// ≥ 2^k) at every power of two; `tolerance` bounds the worst absolute gap.
/// Label permutations do not matter, so this check works on permuted output.
pub fn check_degree_agreement(
    spec: &GraphSpec,
    reference: &[Edge],
    candidate: &[Edge],
    tolerance: f64,
) -> GeneratorReport {
    let mut report = GeneratorReport::default();
    let n = spec.num_vertices();
    if reference.is_empty() || candidate.is_empty() {
        report.push("degree-agreement", false, "no edges to test".into());
        return report;
    }
    let ccdf = |degs: &[u64]| -> Vec<f64> {
        // ccdf[k] = fraction of vertices with degree >= 2^k.
        let mut out = Vec::new();
        let mut threshold = 1u64;
        loop {
            let frac = degs.iter().filter(|&&d| d >= threshold).count() as f64 / n as f64;
            out.push(frac);
            if frac == 0.0 || threshold > u64::MAX / 2 {
                break;
            }
            threshold *= 2;
        }
        out
    };
    let mut worst: f64 = 0.0;
    let mut worst_side = "in";
    for (side, degrees) in [
        (
            "in",
            crate::degree::in_degrees as fn(&[Edge], u64) -> Vec<u64>,
        ),
        (
            "out",
            crate::degree::out_degrees as fn(&[Edge], u64) -> Vec<u64>,
        ),
    ] {
        let a = ccdf(&degrees(reference, n));
        let b = ccdf(&degrees(candidate, n));
        for k in 0..a.len().max(b.len()) {
            let fa = a.get(k).copied().unwrap_or(0.0);
            let fb = b.get(k).copied().unwrap_or(0.0);
            if (fa - fb).abs() > worst {
                worst = (fa - fb).abs();
                worst_side = side;
            }
        }
    }
    report.push(
        "degree-agreement",
        worst <= tolerance,
        format!("worst CCDF gap {worst:.4} on {worst_side}-degrees (tol {tolerance})"),
    );
    report
}

/// Checks that the duplicate-edge fraction is in the ballpark the
/// birthday-style collision estimate for an R-MAT distribution predicts —
/// very loose (a factor-of-covers band), intended to catch gross generator
/// bugs like constant outputs, not to certify the distribution.
pub fn check_duplicate_fraction(spec: &GraphSpec, edges: &[Edge]) -> GeneratorReport {
    let mut report = GeneratorReport::default();
    // ppbench: allow(hash-iteration, reason = "membership-only set: only insert() return values are observed, never iteration order")
    let mut seen = std::collections::HashSet::with_capacity(edges.len());
    let mut dupes = 0usize;
    for e in edges {
        if !seen.insert((e.u, e.v)) {
            dupes += 1;
        }
    }
    let frac = dupes as f64 / edges.len().max(1) as f64;
    // Power-law concentration makes collisions common but never dominant
    // at k = 16 and benchmark scales: expect single-digit to low-double-
    // digit percentages.
    let plausible = frac < 0.8;
    report.push(
        "duplicate-fraction",
        plausible,
        format!(
            "{dupes} duplicates of {} edges ({:.1}%) at {}",
            edges.len(),
            frac * 100.0,
            spec
        ),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdgeGenerator, Kronecker};

    fn spec() -> GraphSpec {
        GraphSpec::new(12, 16)
    }

    #[test]
    fn real_kronecker_output_passes_all_checks() {
        let g = Kronecker::new(spec(), 5).without_vertex_permutation();
        let edges = g.edges();
        let s = check_structure(&spec(), &edges);
        assert!(s.passed(), "{}", s.detail());
        let m = check_kronecker_marginals(&spec(), &KroneckerProbs::default(), &edges, 0.01);
        assert!(m.passed(), "{}", m.detail());
        let d = check_duplicate_fraction(&spec(), &edges);
        assert!(d.passed(), "{}", d.detail());
    }

    #[test]
    fn truncated_edge_list_fails_structure() {
        let g = Kronecker::new(spec(), 5);
        let mut edges = g.edges();
        edges.truncate(100);
        assert!(!check_structure(&spec(), &edges).passed());
    }

    #[test]
    fn out_of_range_vertex_detected() {
        let mut edges = Kronecker::new(spec(), 5).edges();
        edges[0] = Edge::new(spec().num_vertices(), 0);
        let report = check_structure(&spec(), &edges);
        assert!(!report.passed());
        assert!(
            report.detail().contains("vertex-range"),
            "{}",
            report.detail()
        );
    }

    #[test]
    fn uniform_edges_fail_the_marginal_check() {
        // An Erdős–Rényi list has P(bit = 0) = 0.5 per level, far from the
        // Kronecker 0.76.
        let edges = crate::ErdosRenyi::new(spec(), 5).edges();
        let report = check_kronecker_marginals(&spec(), &KroneckerProbs::default(), &edges, 0.01);
        assert!(!report.passed(), "{}", report.detail());
    }

    #[test]
    fn permuted_labels_fail_the_marginal_check() {
        // The vertex permutation deliberately destroys bit structure; the
        // validator must notice (which is why it documents the
        // no-permutation requirement).
        let edges = Kronecker::new(spec(), 5).edges();
        let report = check_kronecker_marginals(&spec(), &KroneckerProbs::default(), &edges, 0.01);
        assert!(!report.passed());
    }

    #[test]
    fn linear_sampler_agrees_with_faithful_at_scales_8_to_14() {
        // The acceptance suite for the linear-work sampler: at every scale
        // in 8..=14 its quadrant counts must match the initiator law and its
        // degree distribution must match the faithful port's. Tolerances
        // scale with 1/sqrt(M).
        use crate::LinearKronecker;
        for scale in (8..=14u32).step_by(2) {
            let s = GraphSpec::new(scale, 16);
            let seed = 1000 + scale as u64;
            let faithful_raw = Kronecker::new(s, seed).without_vertex_permutation().edges();
            let linear_raw = LinearKronecker::new(s, seed)
                .without_vertex_permutation()
                .edges();
            let tol = (3.0 / (s.num_edges() as f64).sqrt()).max(0.01);
            for (name, edges) in [("faithful", &faithful_raw), ("linear", &linear_raw)] {
                let q = check_kronecker_quadrants(&s, &KroneckerProbs::default(), edges, tol);
                assert!(q.passed(), "scale {scale} {name}: {}", q.detail());
                let m = check_kronecker_marginals(&s, &KroneckerProbs::default(), edges, tol);
                assert!(m.passed(), "scale {scale} {name}: {}", m.detail());
            }
            // Degree agreement holds on the permuted (production) output too.
            let faithful = Kronecker::new(s, seed).edges();
            let linear = LinearKronecker::new(s, seed).edges();
            let d = check_degree_agreement(&s, &faithful, &linear, 2.5 * tol);
            assert!(d.passed(), "scale {scale}: {}", d.detail());
            let st = check_structure(&s, &linear);
            assert!(st.passed(), "scale {scale}: {}", st.detail());
        }
    }

    #[test]
    fn quadrant_check_rejects_uniform_edges() {
        let edges = crate::ErdosRenyi::new(spec(), 5).edges();
        let report = check_kronecker_quadrants(&spec(), &KroneckerProbs::default(), &edges, 0.01);
        assert!(!report.passed(), "{}", report.detail());
    }

    #[test]
    fn degree_agreement_rejects_a_different_distribution() {
        // Erdős–Rényi degrees are binomial — nothing like the R-MAT tail.
        let kron = Kronecker::new(spec(), 5).edges();
        let er = crate::ErdosRenyi::new(spec(), 5).edges();
        let report = check_degree_agreement(&spec(), &kron, &er, 0.02);
        assert!(!report.passed(), "{}", report.detail());
    }

    #[test]
    fn degree_agreement_accepts_identical_lists() {
        let edges = Kronecker::new(spec(), 5).edges();
        let report = check_degree_agreement(&spec(), &edges, &edges, 1e-12);
        assert!(report.passed(), "{}", report.detail());
    }

    #[test]
    fn quadrant_and_degree_checks_handle_empty_input() {
        assert!(
            !check_kronecker_quadrants(&spec(), &KroneckerProbs::default(), &[], 0.01).passed()
        );
        let edges = Kronecker::new(spec(), 5).edges();
        assert!(!check_degree_agreement(&spec(), &edges, &[], 0.01).passed());
    }

    #[test]
    fn constant_generator_fails_duplicate_check() {
        let edges = vec![Edge::new(1, 2); 1000];
        assert!(!check_duplicate_fraction(&spec(), &edges).passed());
    }

    #[test]
    fn empty_edge_list_handled() {
        let report = check_kronecker_marginals(&spec(), &KroneckerProbs::default(), &[], 0.01);
        assert!(!report.passed());
    }
}
