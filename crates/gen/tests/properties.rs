//! Property-based tests for the graph generators.

use ppbench_gen::{EdgeGenerator, FeistelPermutation, GeneratorKind, GraphSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generator respects the (scale, edge factor) contract for
    /// arbitrary small specs and seeds.
    #[test]
    fn generator_contract(scale in 1u32..8, k in 1u64..8, seed: u64) {
        let spec = GraphSpec::new(scale, k);
        for kind in GeneratorKind::ALL {
            let g = kind.build(spec, seed);
            let edges = g.edges();
            prop_assert_eq!(edges.len() as u64, spec.num_edges());
            prop_assert!(edges.iter().all(|e| e.u < spec.num_vertices()
                && e.v < spec.num_vertices()));
        }
    }

    /// Chunked generation tiles the full stream for arbitrary chunk cuts.
    #[test]
    fn chunking_tiles(scale in 1u32..7, seed: u64, cut in 1u64..64) {
        let spec = GraphSpec::new(scale, 4);
        let m = spec.num_edges();
        let cut = cut.min(m);
        for kind in GeneratorKind::ALL {
            let g = kind.build(spec, seed);
            let all = g.edges();
            let mut tiled = g.edges_chunk(0, cut);
            tiled.extend(g.edges_chunk(cut, m));
            prop_assert_eq!(tiled, all);
        }
    }

    /// The Feistel permutation is a bijection with a working inverse on
    /// arbitrary widths and seeds.
    #[test]
    fn feistel_bijection(bits in 1u32..12, seed: u64) {
        let p = FeistelPermutation::new(bits, seed);
        let n = p.domain();
        let mut seen = vec![false; n as usize];
        for x in 0..n {
            let y = p.apply(x);
            prop_assert!(y < n);
            prop_assert!(!seen[y as usize]);
            seen[y as usize] = true;
            prop_assert_eq!(p.invert(y), x);
        }
    }

    /// Generation is a pure function of (kind, spec, seed).
    #[test]
    fn generation_deterministic(seed: u64) {
        let spec = GraphSpec::new(5, 4);
        for kind in GeneratorKind::ALL {
            let a = kind.build(spec, seed).edges();
            let b = kind.build(spec, seed).edges();
            prop_assert_eq!(a, b);
        }
    }
}
