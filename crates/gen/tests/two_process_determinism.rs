//! Cross-process determinism: the same `(spec, seed)` must produce the
//! identical edge stream in a *different OS process*, not just a different
//! call. This is the property the serving layer's cache identity and the
//! benchmark's digest gates lean on — any hidden dependence on process
//! state (ASLR-derived hashes, global RNG seeding, iteration order of a
//! runtime map) would pass every in-process test and still break it.
//!
//! The test re-executes its own test binary with a marker environment
//! variable; the child prints a digest of the streams it generates and the
//! parent compares it against the digest it computed itself.

use ppbench_gen::{EdgeGenerator, GraphSpec, Kronecker, LinearKronecker};
use ppbench_io::Edge;

const SCALE: u32 = 12;
const EDGE_FACTOR: u64 = 8;
const SEED: u64 = 0xD1CE;
const CHILD_MARKER: &str = "PPBENCH_TWO_PROCESS_CHILD";

/// FNV-1a over the little-endian edge words, chunk size deliberately not a
/// divisor of the edge count so chunk-boundary handling is exercised too.
fn stream_digest<G: EdgeGenerator>(generator: &G, num_edges: u64) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut step = |word: u64| {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    };
    let mut chunk: Vec<Edge> = Vec::new();
    let mut lo = 0;
    while lo < num_edges {
        let hi = (lo + 1000).min(num_edges);
        generator.edges_into(&mut chunk, lo, hi);
        for e in &chunk {
            step(e.u);
            step(e.v);
        }
        lo = hi;
    }
    hash
}

/// Digest over both samplers, permuted and unpermuted, so the child
/// certifies the faithful path, the linear path, and the Feistel layer.
fn combined_digest() -> u64 {
    let spec = GraphSpec::new(SCALE, EDGE_FACTOR);
    let m = spec.num_edges();
    let mut hash = 0u64;
    let faithful = Kronecker::new(spec, SEED);
    let linear = LinearKronecker::new(spec, SEED);
    let faithful_plain = Kronecker::new(spec, SEED).without_vertex_permutation();
    let linear_plain = LinearKronecker::new(spec, SEED).without_vertex_permutation();
    for d in [
        stream_digest(&faithful, m),
        stream_digest(&linear, m),
        stream_digest(&faithful_plain, m),
        stream_digest(&linear_plain, m),
    ] {
        hash = hash.rotate_left(17) ^ d;
    }
    hash
}

#[test]
fn same_seed_in_a_separate_process_reproduces_the_stream() {
    if std::env::var_os(CHILD_MARKER).is_some() {
        // Child mode: emit the digest on a marked line and stop.
        println!("PPBENCH_DIGEST={:#018x}", combined_digest());
        return;
    }

    let exe = std::env::current_exe().expect("test binary path");
    let output = std::process::Command::new(exe)
        .args([
            "same_seed_in_a_separate_process_reproduces_the_stream",
            "--exact",
            "--nocapture",
        ])
        .env(CHILD_MARKER, "1")
        .output()
        .expect("re-running the test binary");
    assert!(
        output.status.success(),
        "child process failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    // Libtest prints its own `test <name> ...` prefix on the same line as
    // the child's first println, so search within lines rather than
    // anchoring at the start.
    let stdout = String::from_utf8_lossy(&output.stdout);
    let child_digest = stdout
        .lines()
        .find_map(|l| {
            let at = l.find("PPBENCH_DIGEST=")?;
            l[at + "PPBENCH_DIGEST=".len()..].split_whitespace().next()
        })
        .unwrap_or_else(|| panic!("no digest line in child output:\n{stdout}"));
    let child_digest = u64::from_str_radix(child_digest.trim_start_matches("0x"), 16)
        .expect("digest line parses as hex");
    assert_eq!(
        child_digest,
        combined_digest(),
        "a fresh process produced a different edge stream for the same seed"
    );
}
