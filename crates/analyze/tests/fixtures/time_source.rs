//! Fixture: wall-clock reads outside the sanctioned timing module.

use std::time::Instant;

fn stamp() -> f64 {
    let t = Instant::now();
    t.elapsed().as_secs_f64()
}

fn wall() -> u64 {
    match std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}
