//! Negative fixture for `condvar-wait`: every wait shape that must stay
//! silent — loop-wrapped waits, predicate forms, and non-Condvar `.wait`.

pub fn take_job(&self) -> Job {
    let mut guard = self.inner.lock();
    while guard.queue.is_empty() {
        guard = self.ready.wait(guard);
    }
    guard.queue.pop()
}

pub fn take_job_loop(&self) -> Job {
    let mut guard = self.inner.lock();
    loop {
        if let Some(job) = guard.queue.pop() {
            return job;
        }
        guard = self.ready.wait(guard);
    }
}

pub fn take_job_predicate(&self) -> Job {
    let mut guard = self.inner.lock();
    // The predicate forms re-check internally; no loop needed.
    guard = self.ready.wait_while(guard, |s| s.queue.is_empty());
    let (mut guard, _) =
        self.ready
            .wait_timeout_while(guard, TICK, |s| s.queue.is_empty());
    guard.queue.pop()
}

pub fn rendezvous(&self) {
    // Zero-arg wait is `Barrier::wait`, not a Condvar.
    self.barrier.wait();
}

pub fn drain(&self, deadline: Instant) -> bool {
    let guard = self.inner.lock();
    // Two-arg wait is a helper method, not `Condvar::wait`.
    self.service.wait(guard, deadline)
}
