//! Positive fixture for `bench-schema`: both consts drifted from the
//! emitter — `ROW_KEYS` declares `gflops` that `to_json` never sets, and
//! the emitter sets a top-level `hostname` that `TOP_KEYS` misses.

pub const TOP_KEYS: &[&str] = &["benchmark", "results"];
pub const ROW_KEYS: &[&str] = &["gflops", "scale", "seconds"];

pub fn to_json(cfg: &SweepConfig, rows: &[SweepRow]) -> String {
    let mut results = JsonArray::new();
    for row in rows {
        let mut entry = JsonObject::new();
        entry
            .set_u64("scale", row.scale)
            .set_f64("seconds", row.seconds);
        results.push_obj(&entry);
    }
    let mut obj = JsonObject::new();
    obj.set_str("benchmark", VERSION)
        .set_str("hostname", cfg.hostname)
        .set_raw("results", results.render());
    obj.render()
}
