//! Fixture: half of a lock-order cycle — acquires `alpha` then `beta`.

fn forward(s: &super::Shared) {
    let a = s.alpha.lock();
    let b = s.beta.lock();
    drop(b);
    drop(a);
}
