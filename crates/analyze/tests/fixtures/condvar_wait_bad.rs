//! Positive fixture for `condvar-wait`: single-guard waits outside any
//! loop miss spurious wakeups and wake-before-wait races.

pub fn take_job(&self) -> Job {
    let mut guard = self.inner.lock();
    if guard.queue.is_empty() {
        // Wrong: a spurious wakeup returns with the queue still empty.
        guard = self.ready.wait(guard);
    }
    guard.queue.pop()
}

pub fn take_job_with_deadline(&self, deadline: Duration) -> Option<Job> {
    let guard = self.inner.lock();
    // Wrong for the same reason, timeout form.
    let (guard, timed_out) = self.ready.wait_timeout(guard, deadline);
    if timed_out.timed_out() {
        return None;
    }
    Some(guard.queue.pop())
}
