//! Fixture for `stale-waiver`: one waiver that still earns its keep, one
//! that suppresses nothing and must be deleted.

pub fn startup(path: &Path) -> Config {
    // ppbench: allow(panic, reason = "startup-only; a missing config file is fatal by design")
    let text = std::fs::read_to_string(path).unwrap();
    parse(&text)
}

pub fn steady_state(cfg: &Config) -> u64 {
    // ppbench: allow(panic, reason = "left behind after the unwrap below was fixed")
    cfg.iterations.max(1)
}
