//! Fixture: machine-dependent inputs on the kernel result path.

fn threads() -> usize {
    match std::env::var("PPBENCH_THREADS") {
        Ok(v) => v.parse().unwrap_or(1),
        Err(_) => std::thread::available_parallelism().map(usize::from).unwrap_or(1),
    }
}
