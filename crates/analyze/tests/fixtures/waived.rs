//! Fixture: real violations, each covered by a well-formed waiver.

fn covered(a: Option<u64>) -> u64 {
    // ppbench: allow(panic, reason = "fixture: proved Some by the caller")
    let x = a.unwrap();
    // ppbench: allow(discarded-result, reason = "fixture: best-effort cleanup")
    let _ = std::fs::remove_file("scratch.tmp");
    x
}
