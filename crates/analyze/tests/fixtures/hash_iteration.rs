//! Fixture: randomized-order containers in a hashed-output crate.

use std::collections::HashMap;

fn tally(keys: &[u64]) -> HashMap<u64, u64> {
    let mut counts = HashMap::new();
    for &k in keys {
        *counts.entry(k).or_insert(0) += 1;
    }
    counts
}

fn dedup(keys: &[u64]) -> usize {
    let set: std::collections::HashSet<u64> = keys.iter().copied().collect();
    set.len()
}
