//! Negative fixture for `shared-accumulator`: the patterns the kernels
//! actually use — serial accumulation, and chunk-local scalars inside
//! parallel closures that write disjoint ranges once at the end.

pub fn degree_histogram_serial(edges: &[Edge], counts: &mut [u64]) {
    for e in edges {
        counts[e.start as usize] += 1;
    }
}

pub fn accumulate_ranks_chunked(contrib: &[f64], ranks: &mut [f64]) {
    ranks.par_chunks_mut(4096).enumerate().for_each(|(c, out)| {
        let mut local = 0.0f64;
        for (i, slot) in out.iter_mut().enumerate() {
            local += contrib[c * 4096 + i];
            *slot = local;
        }
    });
}

pub fn compare_counts(counts: &[u64], expect: &[u64]) -> bool {
    // `==` after an index is a comparison, not a compound assign.
    counts[0] == expect[0]
}
