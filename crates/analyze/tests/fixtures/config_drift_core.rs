//! Core half of the cross-crate `config-drift` fixture pair: a miniature
//! `canonical_fields` / `canonical_hash`, mirroring the real shape in
//! `crates/core/src/config.rs` (including a format-string value that must
//! not be mistaken for a key).

impl PipelineConfig {
    pub fn canonical_fields(&self) -> Vec<(&'static str, String)> {
        let mut fields = vec![
            ("damping", format!("f64:{:016x}", self.damping.to_bits())),
            ("scale", self.scale.to_string()),
            ("seed", self.seed.to_string()),
        ];
        fields.sort_by_key(|(k, _)| *k);
        fields
    }

    pub fn canonical_hash(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for (key, value) in self.canonical_fields() {
            h = mix(h, key.as_bytes(), value.as_bytes());
        }
        h
    }
}
