//! Negative fixture for `join-order`: endpoints dropped (or moved) before
//! the join — the shutdown protocol the sort pipeline actually uses.

pub fn run_sorter(edges: Vec<Edge>) -> Vec<Edge> {
    let (tx, rx) = bounded::<Vec<Edge>>(4);
    let sorter = thread::spawn(move || sort_worker(rx));
    for chunk in edges.chunks(1024) {
        tx.send(chunk.to_vec());
    }
    // Right order: disconnect first, then wait.
    drop(tx);
    sorter.join()
}

pub fn run_fanout(edges: Vec<Edge>) -> Vec<Edge> {
    let (tx, rx) = channel::unbounded();
    let (out_tx, out_rx) = channel::bounded(2);
    let worker = thread::spawn(move || relay(rx, out_tx));
    feed(&tx, edges);
    drop(tx);
    drop(out_rx);
    worker.join()
}
