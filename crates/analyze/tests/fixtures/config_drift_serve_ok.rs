//! Serve half (negative): `ACCEPTED_FIELDS` in lockstep with the core
//! fixture's canonical set.

pub const ACCEPTED_FIELDS: [&str; 3] = ["damping", "scale", "seed"];
