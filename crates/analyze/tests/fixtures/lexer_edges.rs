//! Lexer edge-case fixture: every construct here once confused (or could
//! confuse) a token-level scanner. The whole file must produce zero
//! diagnostics — every `unwrap`/`panic!` below is quoted, commented, or
//! inside cfg(test).

pub fn raw_strings() -> &'static str {
    // Raw strings with hashes: the quote before the final hash does not
    // end the literal.
    let a = r"plain raw with \ backslash and unwrap()";
    let b = r#"one hash: "inner quotes" and panic!("x")"#;
    let c = r##"two hashes: r#"nested-looking"# and .unwrap()"##;
    let d = br#"byte raw: x.unwrap()"#;
    concat_all(a, b, c, d)
}

pub fn lifetimes_vs_chars(x: &'static str) -> char {
    // 'static and 'a are lifetimes; 'a' and '\'' are chars.
    let quote: char = '\'';
    let newline = '\n';
    let letter = 'a';
    fold::<'_, char>(x, quote, newline, letter)
}

/* Nested /* block /* comments */ close */ properly: x.unwrap() here is
   commented out. */
pub fn after_nested_comment() -> u32 {
    0
}

pub fn strings_with_escapes() -> String {
    let s = "escaped quote \" then unwrap() inside a string";
    let t = "trailing backslash is an escaped newline \
              continuing here with panic!(never)";
    format!("{s}{t}")
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_here() {
        super::raw_strings().to_string().pop().unwrap();
        panic!("assertion mechanism");
    }
}
