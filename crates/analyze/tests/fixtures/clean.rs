//! Fixture: code that must produce ZERO diagnostics — the false-positive
//! gauntlet. Panicky names appear only in strings, comments, doc text,
//! non-panicking method families, and `#[cfg(test)]` code.

/// Doc comment mentioning x.unwrap() and panic!() — prose, not code.
pub fn fallbacks(a: Option<u64>, b: Result<u64, String>) -> u64 {
    // A line comment with y.expect("ignored") inside.
    let msg = "strings can say v[i].unwrap() without tripping the lexer";
    let x = a.unwrap_or(0);
    let y = a.unwrap_or_else(|| msg.len() as u64);
    let z = b.unwrap_or_default();
    x + y + z
}

pub fn handled(v: &[u64], i: usize) -> u64 {
    v.get(i).copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        let v: Vec<u64> = vec![1, 2, 3];
        assert_eq!(v[0], 1);
        let first = v.first().unwrap();
        assert_eq!(*first, 1);
        if *first == 99 {
            panic!("tests are exempt");
        }
    }
}
