//! Positive fixture for `join-order`: joining a consumer thread while
//! this side still holds a live channel endpoint. If the consumer loops
//! on `recv()`, it never sees disconnect and the join deadlocks.

pub fn run_sorter(edges: Vec<Edge>) -> Vec<Edge> {
    let (tx, rx) = bounded::<Vec<Edge>>(4);
    let sorter = thread::spawn(move || sort_worker(rx));
    for chunk in edges.chunks(1024) {
        tx.send(chunk.to_vec());
    }
    // Wrong order: the worker blocks in recv() until tx drops, but we
    // block in join() first.
    let sorted = sorter.join();
    drop(tx);
    sorted
}
