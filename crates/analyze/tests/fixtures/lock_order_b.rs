//! Fixture: other half of the cycle — acquires `beta` then `alpha`.

fn backward(s: &super::Shared) {
    let b = s.beta.lock();
    let a = s.alpha.lock();
    drop(a);
    drop(b);
}
