//! Fixture: silently discarded values.

fn drop_it() {
    let _ = std::fs::remove_file("scratch.tmp");
}
