//! Fixture: every member of the panic family in library code.

fn violations(a: Option<u64>, b: Result<u64, String>) -> u64 {
    let x = a.unwrap();
    let y = b.expect("always present");
    if x + y == 0 {
        panic!("impossible");
    }
    if x > 100 {
        todo!()
    }
    if y > 100 {
        unimplemented!()
    }
    x + y
}
