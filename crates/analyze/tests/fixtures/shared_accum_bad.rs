//! Positive fixture for `shared-accumulator`: indexed compound-assign
//! into a shared buffer inside parallel closures — adjacent indices share
//! cache lines, so the cores serialize on coherence traffic.

pub fn degree_histogram(edges: &[Edge], counts: &mut [u64]) {
    let shards = partition(edges);
    thread::scope(|scope| {
        for shard in shards {
            scope.spawn(|| {
                for e in shard {
                    counts[e.start as usize] += 1;
                }
            });
        }
    });
}

pub fn accumulate_ranks(contrib: &[f64], ranks: &mut [f64], edges: &[Edge]) {
    edges.par_iter().for_each(|e| {
        ranks[e.end as usize] += contrib[e.start as usize];
    });
}
