//! Fixture: panicking slice indexing in a serving crate.

fn pick(v: &[u64], i: usize) -> u64 {
    v[i]
}

fn chained() -> u8 {
    make()[0]
}

fn make() -> Vec<u8> {
    Vec::new()
}
