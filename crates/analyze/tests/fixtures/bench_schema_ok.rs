//! Negative fixture for `bench-schema`: consts and emitter in lockstep,
//! shaped like the real `crates/bench/src/k3.rs`.

pub const TOP_KEYS: &[&str] = &["benchmark", "results", "seed"];
pub const ROW_KEYS: &[&str] = &["scale", "seconds", "variant"];

pub fn to_json(cfg: &SweepConfig, rows: &[SweepRow]) -> String {
    let mut results = JsonArray::new();
    for row in rows {
        let mut entry = JsonObject::new();
        entry
            .set_str("variant", row.variant)
            .set_u64("scale", row.scale)
            .set_f64("seconds", row.seconds);
        results.push_obj(&entry);
    }
    let mut obj = JsonObject::new();
    obj.set_str("benchmark", VERSION)
        .set_raw("results", results.render())
        .set_u64("seed", cfg.seed);
    obj.render()
}
