//! Fixture: unwrapping a poisoned inner lock while holding an outer one.

fn nested(s: &super::Shared) {
    let outer = s.state.lock();
    let inner = s.metrics.lock().unwrap();
    drop(inner);
    drop(outer);
}
