//! Serve half (positive): drifted both ways — `seed` went missing (a
//! canonical field HTTP clients can no longer set) and `turbo` appeared
//! (the parser accepts a field the pipeline ignores).

pub const ACCEPTED_FIELDS: [&str; 3] = ["damping", "scale", "turbo"];
