//! Fixture: malformed waivers — unknown rule, and a missing reason.

fn sloppy(a: Option<u64>) -> u64 {
    // ppbench: allow(made-up-rule, reason = "no such rule")
    let x = a.unwrap_or(0);
    // ppbench: allow(panic)
    let y = a.unwrap();
    x + y
}
