//! End-to-end fixture tests: each file under `tests/fixtures/` is fed
//! through the real lexer + rule engine exactly as `ppbench-analyze`
//! would see it, with a synthetic path/crate so the crate-scoped rules
//! fire the way they do in the workspace scan.

use std::path::PathBuf;

use ppbench_analyze::engine::analyze;
use ppbench_analyze::index::SymbolIndex;
use ppbench_analyze::parse::Structure;
use ppbench_analyze::rules::{severity_of, Severity};
use ppbench_analyze::source::{FileKind, SourceFile};

/// Loads one fixture as if it lived at `synthetic_path` inside `krate`.
fn fixture(name: &str, synthetic_path: &str, krate: &str, kind: FileKind) -> SourceFile {
    let on_disk = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let text = std::fs::read_to_string(&on_disk)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", on_disk.display()));
    SourceFile::new(PathBuf::from(synthetic_path), text, krate.into(), kind)
}

/// Rule ids of the diagnostics, in report order.
fn rules_of(files: &[SourceFile]) -> Vec<&'static str> {
    analyze(files).into_iter().map(|d| d.rule).collect()
}

fn count(rules: &[&str], rule: &str) -> usize {
    rules.iter().filter(|r| **r == rule).count()
}

#[test]
fn panic_fixture_flags_the_whole_family() {
    let f = fixture(
        "panic_unwrap.rs",
        "crates/core/src/panic_unwrap.rs",
        "ppbench-core",
        FileKind::Lib,
    );
    let rules = rules_of(&[f]);
    assert_eq!(
        count(&rules, "panic"),
        5,
        "unwrap, expect, panic!, todo!, unimplemented!: {rules:?}"
    );
    assert!(rules.iter().all(|r| *r == "panic"), "{rules:?}");
}

#[test]
fn indexing_fixture_flags_serving_crates_only() {
    let serve = fixture(
        "indexing.rs",
        "crates/serve/src/indexing.rs",
        "ppbench-serve",
        FileKind::Lib,
    );
    let rules = rules_of(&[serve]);
    assert_eq!(
        count(&rules, "indexing"),
        2,
        "v[i] and make()[0]: {rules:?}"
    );

    // The identical source in a kernel crate is idiomatic and clean.
    let core = fixture(
        "indexing.rs",
        "crates/core/src/indexing.rs",
        "ppbench-core",
        FileKind::Lib,
    );
    assert!(rules_of(&[core]).is_empty());
}

#[test]
fn time_source_fixture_flags_clock_reads() {
    let f = fixture(
        "time_source.rs",
        "crates/core/src/time_source.rs",
        "ppbench-core",
        FileKind::Lib,
    );
    let rules = rules_of(&[f]);
    assert!(count(&rules, "time-source") >= 2, "{rules:?}");
    assert!(rules.iter().all(|r| *r == "time-source"), "{rules:?}");

    // The same source is sanctioned when it IS the timing module.
    let timing = fixture(
        "time_source.rs",
        "crates/core/src/timing.rs",
        "ppbench-core",
        FileKind::Lib,
    );
    assert!(rules_of(&[timing]).is_empty());
}

#[test]
fn hash_iteration_fixture_flags_randomized_containers() {
    let f = fixture(
        "hash_iteration.rs",
        "crates/serve/src/hash_iteration.rs",
        "ppbench-serve",
        FileKind::Lib,
    );
    let rules = rules_of(&[f]);
    assert!(count(&rules, "hash-iteration") >= 2, "{rules:?}");
    assert!(rules.iter().all(|r| *r == "hash-iteration"), "{rules:?}");
}

#[test]
fn env_dependence_fixture_flags_machine_inputs() {
    let f = fixture(
        "env_dependence.rs",
        "crates/core/src/env_dependence.rs",
        "ppbench-core",
        FileKind::Lib,
    );
    let rules = rules_of(&[f]);
    assert!(
        count(&rules, "env-dependence") >= 2,
        "env::var and available_parallelism: {rules:?}"
    );
}

#[test]
fn lock_order_cycle_spans_files() {
    let a = fixture(
        "lock_order_a.rs",
        "crates/serve/src/lock_order_a.rs",
        "ppbench-serve",
        FileKind::Lib,
    );
    let b = fixture(
        "lock_order_b.rs",
        "crates/serve/src/lock_order_b.rs",
        "ppbench-serve",
        FileKind::Lib,
    );
    // Each file alone is a consistent order — no cycle, no finding.
    assert!(rules_of(&[fixture(
        "lock_order_a.rs",
        "crates/serve/src/lock_order_a.rs",
        "ppbench-serve",
        FileKind::Lib,
    )])
    .is_empty());
    // Together, alpha→beta and beta→alpha close the loop; every edge on
    // the cycle is reported.
    let rules = rules_of(&[a, b]);
    assert!(count(&rules, "lock-order") >= 2, "{rules:?}");
}

#[test]
fn lock_panic_fixture_flags_unwrap_under_held_lock() {
    let f = fixture(
        "lock_panic.rs",
        "crates/serve/src/lock_panic.rs",
        "ppbench-serve",
        FileKind::Lib,
    );
    let rules = rules_of(&[f]);
    assert_eq!(count(&rules, "lock-panic"), 1, "{rules:?}");
    // The `.unwrap()` itself is independently a panic finding.
    assert_eq!(count(&rules, "panic"), 1, "{rules:?}");
}

#[test]
fn crate_root_without_forbid_unsafe_is_flagged() {
    let f = fixture(
        "missing_forbid_unsafe.rs",
        "crates/fixture/src/lib.rs",
        "ppbench-fixture",
        FileKind::Lib,
    );
    let rules = rules_of(&[f]);
    assert_eq!(rules, vec!["forbid-unsafe"]);

    // The same text off the crate root carries no obligation.
    let inner = fixture(
        "missing_forbid_unsafe.rs",
        "crates/fixture/src/inner.rs",
        "ppbench-fixture",
        FileKind::Lib,
    );
    assert!(rules_of(&[inner]).is_empty());
}

#[test]
fn discarded_result_fixture_flags_let_underscore() {
    let f = fixture(
        "discarded_result.rs",
        "crates/core/src/discarded.rs",
        "ppbench-core",
        FileKind::Lib,
    );
    assert_eq!(rules_of(&[f]), vec!["discarded-result"]);
}

#[test]
fn well_formed_waivers_suppress_their_findings() {
    let f = fixture(
        "waived.rs",
        "crates/core/src/waived.rs",
        "ppbench-core",
        FileKind::Lib,
    );
    assert!(rules_of(&[f]).is_empty());
}

#[test]
fn malformed_waivers_are_findings_and_do_not_suppress() {
    let f = fixture(
        "bad_waiver.rs",
        "crates/core/src/bad_waiver.rs",
        "ppbench-core",
        FileKind::Lib,
    );
    let rules = rules_of(&[f]);
    assert_eq!(
        count(&rules, "waiver"),
        2,
        "unknown rule + missing reason: {rules:?}"
    );
    assert_eq!(
        count(&rules, "panic"),
        1,
        "a reason-less waiver must not suppress the unwrap: {rules:?}"
    );
}

#[test]
fn clean_fixture_produces_zero_diagnostics() {
    // Strings, comments, doc text, unwrap_or* family, and cfg(test) code
    // are the false-positive surface; all must stay silent.
    let f = fixture(
        "clean.rs",
        "crates/core/src/clean.rs",
        "ppbench-core",
        FileKind::Lib,
    );
    assert_eq!(rules_of(&[f]), Vec::<&str>::new());
}

#[test]
fn test_like_fixtures_are_exempt_wholesale() {
    // The worst fixture, classified as a test file: nothing fires.
    let f = fixture(
        "panic_unwrap.rs",
        "crates/core/tests/panic_unwrap.rs",
        "ppbench-core",
        FileKind::TestLike,
    );
    assert!(rules_of(&[f]).is_empty());
}

#[test]
fn condvar_wait_fixture_pair() {
    let bad = fixture(
        "condvar_wait_bad.rs",
        "crates/serve/src/condvar_wait_bad.rs",
        "ppbench-serve",
        FileKind::Lib,
    );
    let rules = rules_of(&[bad]);
    assert_eq!(
        count(&rules, "condvar-wait"),
        2,
        "bare wait + bare wait_timeout: {rules:?}"
    );

    let ok = fixture(
        "condvar_wait_ok.rs",
        "crates/serve/src/condvar_wait_ok.rs",
        "ppbench-serve",
        FileKind::Lib,
    );
    assert!(rules_of(&[ok]).is_empty());
}

#[test]
fn join_order_fixture_pair() {
    let bad = fixture(
        "join_order_bad.rs",
        "crates/sort/src/join_order_bad.rs",
        "ppbench-sort",
        FileKind::Lib,
    );
    let rules = rules_of(&[bad]);
    assert_eq!(count(&rules, "join-order"), 1, "{rules:?}");

    let ok = fixture(
        "join_order_ok.rs",
        "crates/sort/src/join_order_ok.rs",
        "ppbench-sort",
        FileKind::Lib,
    );
    assert!(rules_of(&[ok]).is_empty());
}

#[test]
fn shared_accumulator_fixture_pair() {
    let bad = fixture(
        "shared_accum_bad.rs",
        "crates/core/src/shared_accum_bad.rs",
        "ppbench-core",
        FileKind::Lib,
    );
    let rules = rules_of(&[bad]);
    assert_eq!(
        count(&rules, "shared-accumulator"),
        2,
        "spawn closure + par_iter for_each: {rules:?}"
    );
    // A heuristic rule must never be error-severity.
    assert_eq!(severity_of("shared-accumulator"), Severity::Warning);

    let ok = fixture(
        "shared_accum_ok.rs",
        "crates/core/src/shared_accum_ok.rs",
        "ppbench-core",
        FileKind::Lib,
    );
    assert!(rules_of(&[ok]).is_empty());
}

#[test]
fn config_drift_fixture_pair_spans_crates() {
    let core = || {
        fixture(
            "config_drift_core.rs",
            "crates/core/src/config.rs",
            "ppbench-core",
            FileKind::Lib,
        )
    };
    // Lockstep serve side: silent.
    let ok = fixture(
        "config_drift_serve_ok.rs",
        "crates/serve/src/request.rs",
        "ppbench-serve",
        FileKind::Lib,
    );
    assert!(rules_of(&[core(), ok]).is_empty());

    // Drifted serve side: one finding per direction, one per key.
    let bad = fixture(
        "config_drift_serve_bad.rs",
        "crates/serve/src/request.rs",
        "ppbench-serve",
        FileKind::Lib,
    );
    let diags = analyze(&[core(), bad]);
    let drift: Vec<_> = diags.iter().filter(|d| d.rule == "config-drift").collect();
    assert_eq!(drift.len(), 2, "{diags:?}");
    // The missing canonical key anchors core-side; the unknown accepted
    // key anchors serve-side.
    assert!(drift
        .iter()
        .any(|d| d.message.contains("`seed`") && d.path.ends_with("config.rs")));
    assert!(drift
        .iter()
        .any(|d| d.message.contains("`turbo`") && d.path.ends_with("request.rs")));
}

#[test]
fn bench_schema_fixture_pair() {
    let bad = fixture(
        "bench_schema_bad.rs",
        "crates/bench/src/k3.rs",
        "ppbench-bench",
        FileKind::Lib,
    );
    let rules = rules_of(&[bad]);
    assert_eq!(
        count(&rules, "bench-schema"),
        2,
        "TOP_KEYS and ROW_KEYS both drifted: {rules:?}"
    );

    let ok = fixture(
        "bench_schema_ok.rs",
        "crates/bench/src/k3.rs",
        "ppbench-bench",
        FileKind::Lib,
    );
    assert!(rules_of(&[ok]).is_empty());

    // The same drifted file outside `ppbench-bench` is out of scope.
    let elsewhere = fixture(
        "bench_schema_bad.rs",
        "crates/core/src/k3.rs",
        "ppbench-core",
        FileKind::Lib,
    );
    assert!(rules_of(&[elsewhere]).is_empty());
}

#[test]
fn stale_waiver_fixture_flags_only_the_dead_waiver() {
    let f = fixture(
        "stale_waiver.rs",
        "crates/core/src/stale_waiver.rs",
        "ppbench-core",
        FileKind::Lib,
    );
    let diags = analyze(&[f]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "stale-waiver");
    assert_eq!(diags[0].line, 11, "anchors at the dead waiver comment");
}

#[test]
fn lexer_edge_cases_stay_silent() {
    // Raw strings, lifetimes vs chars, nested block comments, escaped
    // quotes, line-continuation escapes: all panic-looking text is inert.
    let f = fixture(
        "lexer_edges.rs",
        "crates/core/src/lexer_edges.rs",
        "ppbench-core",
        FileKind::Lib,
    );
    assert_eq!(rules_of(&[f]), Vec::<&str>::new());
}

#[test]
fn the_workspace_itself_is_clean() {
    // The invariant the CI job enforces: the real tree, scanned with the
    // real walker, carries zero error-severity violations. (Warnings —
    // today only the `shared-accumulator` heuristic — are ratcheted by
    // the committed baseline instead.)
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = ppbench_analyze::walk::find_workspace_root(&manifest)
        .expect("workspace root above crates/analyze");
    let files = ppbench_analyze::walk::load_workspace(&root).expect("workspace loads");
    let errors: Vec<_> = analyze(&files)
        .into_iter()
        .filter(|d| severity_of(d.rule) == Severity::Error)
        .collect();
    assert!(
        errors.is_empty(),
        "workspace must stay analyzer-clean:\n{}",
        errors
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_drift_anchors_exist() {
    // `config-drift` stays silent when its anchor symbols are missing, so
    // a rename could disable it without a failure anywhere. Pin the
    // anchors to the real tree.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = ppbench_analyze::walk::find_workspace_root(&manifest)
        .expect("workspace root above crates/analyze");
    let files = ppbench_analyze::walk::load_workspace(&root).expect("workspace loads");
    let structures: Vec<_> = files
        .iter()
        .map(|f| f.is_production().then(|| Structure::build(f)))
        .collect();
    let index = SymbolIndex::build(&files, &structures);
    assert!(index.find_fn("ppbench-core", "canonical_fields").is_some());
    assert!(index.find_fn("ppbench-core", "canonical_hash").is_some());
    assert!(index
        .find_const("ppbench-serve", "ACCEPTED_FIELDS")
        .is_some());
}
