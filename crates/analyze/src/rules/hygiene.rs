//! Hygiene: crate-root attributes and silently discarded values.

use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// Runs the `forbid-unsafe` and `discarded-result` rules over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if file.is_crate_root && !has_forbid_unsafe(file) {
        out.push(Diagnostic {
            rule: "forbid-unsafe",
            path: file.path.clone(),
            line: 1,
            col: 1,
            message: "crate root is missing #![forbid(unsafe_code)]; every ppbench crate \
                      proves memory safety by construction"
                .into(),
        });
    }

    for i in 0..file.code_len() {
        if file.in_test_code(i) {
            continue;
        }
        // `let _ =` discards a value — usually a Result someone meant to
        // handle. Name the binding (`let _ack =`) or handle the error;
        // waive with a reason when best-effort really is the contract.
        if file.code_text(i) == "let"
            && i + 2 < file.code_len()
            && file.code_text(i + 1) == "_"
            && file.code_text(i + 2) == "="
        {
            let tok = file.code_token(i);
            out.push(Diagnostic {
                rule: "discarded-result",
                path: file.path.clone(),
                line: tok.line,
                col: tok.col,
                message: "`let _ =` silently discards a value (often a Result); handle \
                          it, or waive with the reason the discard is sound"
                    .into(),
            });
        }
    }
}

/// True when the token stream contains `#![forbid(unsafe_code)]` (token
/// sequence match, so comments and strings cannot fake it).
fn has_forbid_unsafe(file: &SourceFile) -> bool {
    (0..file.code_len().saturating_sub(4)).any(|i| {
        file.code_text(i) == "forbid"
            && file.code_text(i + 1) == "("
            && file.code_text(i + 2) == "unsafe_code"
            && i >= 3
            && file.code_text(i - 1) == "["
            && file.code_text(i - 2) == "!"
            && file.code_text(i - 3) == "#"
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;
    use std::path::PathBuf;

    fn check_path(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new(
            PathBuf::from(path),
            src.to_string(),
            "x".into(),
            FileKind::Lib,
        );
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn missing_forbid_on_crate_root() {
        let out = check_path("crates/x/src/lib.rs", "//! docs\npub fn f() {}\n");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "forbid-unsafe");
    }

    #[test]
    fn present_forbid_passes() {
        let out = check_path(
            "crates/x/src/lib.rs",
            "//! docs\n#![forbid(unsafe_code)]\npub fn f() {}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn forbid_in_comment_does_not_count() {
        let out = check_path(
            "crates/x/src/lib.rs",
            "// #![forbid(unsafe_code)]\npub fn f() {}\n",
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn non_root_files_need_no_attribute() {
        let out = check_path("crates/x/src/other.rs", "pub fn f() {}\n");
        assert!(out.is_empty());
    }

    #[test]
    fn let_underscore_is_flagged_but_named_discard_is_not() {
        let out = check_path(
            "crates/x/src/other.rs",
            "fn f() { let _ = fallible(); let _ok = fallible(); let _x = 3; }\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "discarded-result");
    }
}
