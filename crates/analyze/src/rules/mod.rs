//! The rule set: identifiers, crate scopes, and per-rule entry points.
//!
//! Each rule is a lexical pass over a [`SourceFile`]'s code-token view
//! (comments, strings, and `#[cfg(test)]` modules already excluded by
//! the lexer/source layers). Scopes confine a rule to the crates where
//! its invariant is load-bearing — e.g. wall-clock reads are the whole
//! point of the serving and bench crates, but a determinism hazard in a
//! kernel crate.

pub mod accum;
pub mod benchschema;
pub mod condvar;
pub mod determinism;
pub mod drift;
pub mod hygiene;
pub mod joins;
pub mod locks;
pub mod panics;

use crate::source::SourceFile;

/// Every rule id, in the order `--list-rules` prints them. `waiver` is
/// the meta-rule for malformed waivers and `stale-waiver` for waivers
/// that no longer suppress anything; neither can itself be waived.
pub const ALL_RULES: &[&str] = &[
    "panic",
    "indexing",
    "time-source",
    "hash-iteration",
    "env-dependence",
    "lock-order",
    "lock-panic",
    "condvar-wait",
    "join-order",
    "shared-accumulator",
    "config-drift",
    "bench-schema",
    "forbid-unsafe",
    "discarded-result",
    "waiver",
    "stale-waiver",
];

/// How severe a rule's findings are. Errors gate CI; warnings are
/// heuristic findings budgeted by the committed baseline (they may only
/// ratchet downward).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Heuristic finding: review it, budget it in the baseline if sound.
    Warning,
    /// Hard invariant: fails the analyzer run.
    Error,
}

impl Severity {
    /// Lowercase label used in text and SARIF output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// The intrinsic severity of a rule. `shared-accumulator` is a heuristic
/// (a compound assignment through an index inside a parallel closure is
/// *suspicious*, not proven wrong), so it warns; everything else states
/// an invariant and errors.
pub fn severity_of(rule: &str) -> Severity {
    match rule {
        "shared-accumulator" => Severity::Warning,
        _ => Severity::Error,
    }
}

/// One-line description per rule, aligned with [`ALL_RULES`].
pub const RULE_DESCRIPTIONS: &[(&str, &str)] = &[
    (
        "panic",
        "no unwrap/expect/panic!/todo!/unimplemented! in library code",
    ),
    (
        "indexing",
        "no panicking slice indexing in the serving crates",
    ),
    (
        "time-source",
        "no Instant/SystemTime in kernel crates outside timing.rs",
    ),
    (
        "hash-iteration",
        "no HashMap/HashSet where iteration order could leak into results",
    ),
    (
        "env-dependence",
        "no environment or thread-count reads in kernel result paths",
    ),
    (
        "lock-order",
        "no lock-acquisition cycles or same-lock re-acquisition",
    ),
    (
        "lock-panic",
        "no .lock().unwrap()/expect() while already holding a lock",
    ),
    (
        "condvar-wait",
        "Condvar::wait / wait_timeout only inside a predicate re-check loop",
    ),
    (
        "join-order",
        "drop channel endpoints before joining the threads that drain them",
    ),
    (
        "shared-accumulator",
        "no indexed compound assignment inside a parallel closure (false sharing)",
    ),
    (
        "config-drift",
        "canonical config fields, the serve parser, and the config hash stay in lockstep",
    ),
    (
        "bench-schema",
        "bench schema key lists match the keys the sweep emitters actually set",
    ),
    (
        "forbid-unsafe",
        "every crate root carries #![forbid(unsafe_code)]",
    ),
    (
        "discarded-result",
        "no `let _ =` discarding a value in library code",
    ),
    (
        "waiver",
        "waivers must name a known rule and carry a reason",
    ),
    (
        "stale-waiver",
        "a waiver whose rule no longer fires on its line must be deleted",
    ),
];

/// Crates on the kernel result path: anything here that reads a clock,
/// iterates a randomized-order container, or consults the environment
/// can break bit-reproducibility (the paper's Table II checksums).
pub const KERNEL_CRATES: &[&str] = &[
    "ppbench",
    "ppbench-algo",
    "ppbench-core",
    "ppbench-dist",
    "ppbench-frame",
    "ppbench-gen",
    "ppbench-io",
    "ppbench-prng",
    "ppbench-sort",
    "ppbench-sparse",
];

/// Crates whose output is hashed or serialized: the kernel crates plus
/// the service (cache identity) and the bench harness (figures/tables).
pub const HASHED_OUTPUT_CRATES: &[&str] = &[
    "ppbench",
    "ppbench-algo",
    "ppbench-bench",
    "ppbench-core",
    "ppbench-dist",
    "ppbench-frame",
    "ppbench-gen",
    "ppbench-io",
    "ppbench-prng",
    "ppbench-serve",
    "ppbench-sort",
    "ppbench-sparse",
];

/// Long-running crates where an out-of-bounds panic takes down a worker
/// under load; elsewhere slice indexing with proven bounds is idiomatic
/// kernel code.
pub const INDEXING_CRATES: &[&str] = &["ppbench-serve", "ppbench-dist"];

/// True when `rule` applies to `file` at all (scope check only; the
/// production-surface and cfg(test) checks happen elsewhere).
pub fn in_scope(rule: &str, file: &SourceFile) -> bool {
    let name = file.crate_name.as_str();
    match rule {
        "indexing" => INDEXING_CRATES.contains(&name),
        "time-source" => {
            KERNEL_CRATES.contains(&name)
                && file
                    .path
                    .file_name()
                    .map(|f| f != "timing.rs")
                    .unwrap_or(true)
        }
        "hash-iteration" => HASHED_OUTPUT_CRATES.contains(&name),
        "env-dependence" => {
            KERNEL_CRATES.contains(&name) || name == "ppbench-serve" || name == "ppbench-bench"
        }
        "bench-schema" => name == "ppbench-bench",
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;
    use std::path::PathBuf;

    fn file(path: &str, crate_name: &str) -> SourceFile {
        SourceFile::new(
            PathBuf::from(path),
            String::new(),
            crate_name.into(),
            FileKind::Lib,
        )
    }

    #[test]
    fn descriptions_cover_every_rule() {
        assert_eq!(ALL_RULES.len(), RULE_DESCRIPTIONS.len());
        for (rule, (desc_rule, _)) in ALL_RULES.iter().zip(RULE_DESCRIPTIONS) {
            assert_eq!(rule, desc_rule);
        }
    }

    #[test]
    fn timing_rs_is_out_of_time_source_scope() {
        let f = file("crates/core/src/timing.rs", "ppbench-core");
        assert!(!in_scope("time-source", &f));
        let g = file("crates/core/src/model.rs", "ppbench-core");
        assert!(in_scope("time-source", &g));
    }

    #[test]
    fn serve_is_out_of_time_scope_but_in_hash_scope() {
        let f = file("crates/serve/src/service.rs", "ppbench-serve");
        assert!(!in_scope("time-source", &f));
        assert!(in_scope("hash-iteration", &f));
        assert!(in_scope("indexing", &f));
        assert!(in_scope("panic", &f));
    }

    #[test]
    fn kernel_crate_indexing_is_out_of_scope() {
        let f = file("crates/sparse/src/csr.rs", "ppbench-sparse");
        assert!(!in_scope("indexing", &f));
        assert!(in_scope("time-source", &f));
    }
}
