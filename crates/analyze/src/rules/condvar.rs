//! `condvar-wait` — a `Condvar::wait` outside a loop is a latent hang.
//!
//! Condition variables wake spuriously and a `notify_all` can race the
//! predicate change, so the only sound shape is `while !pred { guard =
//! cv.wait(guard); }` (or `wait_timeout` with the same re-check). A bare
//! `if`-guarded or straight-line `wait` compiles fine and passes light
//! tests, then wedges a worker the first time a wakeup arrives early.
//!
//! Detection is structural, not type-based; the wait sites are picked out
//! by shape:
//!
//! * `.wait(guard)` with exactly **one** argument — both std and
//!   parking_lot condvars. `Barrier::wait()` takes zero arguments and the
//!   service's public `wait(id, timeout)` helper takes two, so arity
//!   alone separates the APIs this workspace actually uses.
//! * `.wait_timeout(…)` by name, any arity — nothing else in the tree is
//!   called that.
//!
//! `wait_while` and `wait_timeout_while` are exempt: they re-check the
//! predicate internally.

use crate::diag::Diagnostic;
use crate::parse::Structure;
use crate::source::SourceFile;

/// Scans one file's wait sites against its loop structure.
pub fn check(file: &SourceFile, structure: &Structure, out: &mut Vec<Diagnostic>) {
    let n = file.code_len();
    for i in 0..n {
        let name = file.code_text(i);
        let is_wait = name == "wait";
        let is_wait_timeout = name == "wait_timeout";
        if !is_wait && !is_wait_timeout {
            continue;
        }
        // Must be a method call: `.name(`.
        if i == 0 || file.code_text(i - 1) != "." || i + 1 >= n || file.code_text(i + 1) != "(" {
            continue;
        }
        if file.in_test_code(i) {
            continue;
        }
        if is_wait && arg_count(file, structure, i + 1) != Some(1) {
            continue;
        }
        if !structure.in_loop(i) {
            let tok = file.code_token(i);
            out.push(Diagnostic {
                rule: "condvar-wait",
                path: file.path.clone(),
                line: tok.line,
                col: tok.col,
                message: format!(
                    "`.{name}(…)` outside a loop: condvar wakeups are spurious and \
                     notifications race the predicate — re-check the condition in a \
                     `while` loop around the wait"
                ),
            });
        }
    }
}

/// Number of top-level arguments inside the paren group opening at code
/// index `open` (0 for `()`, commas counted at depth 1 only).
fn arg_count(file: &SourceFile, structure: &Structure, open: usize) -> Option<usize> {
    let close = structure.matching(open)?;
    if close == open + 1 {
        return Some(0);
    }
    let mut commas = 0usize;
    let mut i = open + 1;
    while i < close {
        match file.code_text(i) {
            "," => {
                commas += 1;
                i += 1;
            }
            "(" | "[" | "{" => i = structure.matching(i)? + 1,
            _ => i += 1,
        }
    }
    Some(commas + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new(
            PathBuf::from("crates/x/src/lib.rs"),
            src.to_string(),
            "ppbench-serve".into(),
            FileKind::Lib,
        );
        let s = Structure::build(&f);
        let mut out = Vec::new();
        check(&f, &s, &mut out);
        out
    }

    #[test]
    fn wait_inside_while_loop_is_clean() {
        let out = run("fn f(&self) { let mut state = self.m.lock(); \
             while !state.ready { state = self.cv.wait(state); } }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn bare_wait_is_flagged() {
        let out = run("fn f(&self) { let state = self.m.lock(); let _g = self.cv.wait(state); }");
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "condvar-wait");
    }

    #[test]
    fn if_guarded_wait_is_still_flagged() {
        let out = run("fn f(&self) { let state = self.m.lock(); \
             if !state.ready { let _g = self.cv.wait(state); } }");
        assert_eq!(out.len(), 1, "an `if` is not a re-check loop: {out:?}");
    }

    #[test]
    fn barrier_wait_zero_args_is_exempt() {
        let out = run("fn f(&self) { self.barrier.wait(); }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn two_arg_wait_helper_is_exempt() {
        let out = run("fn f(&self) { let job = service.wait(id, timeout); use_(job); }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn wait_timeout_outside_loop_is_flagged() {
        let out = run("fn f(&self) { let s = self.m.lock(); \
             let (n, t) = self.cv.wait_timeout(s, dur); use_(n, t); }");
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn wait_timeout_inside_loop_is_clean() {
        let out = run("fn f(&self) { let mut s = self.m.lock(); loop { \
             let (n, t) = self.cv.wait_timeout(s, dur); s = n; if t.timed_out() { return; } } }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn wait_while_is_exempt() {
        let out = run(
            "fn f(&self) { let g = self.cv.wait_while(self.m.lock(), |s| !s.ready); use_(g); }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let out =
            run("#[cfg(test)] mod tests { fn f(&self) { let g = self.cv.wait(state); use_(g); } }");
        assert!(out.is_empty(), "{out:?}");
    }
}
