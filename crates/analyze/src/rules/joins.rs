//! `join-order` — shutdown ordering between channels and thread joins.
//!
//! The deadlock this automates (PR 4 found it by hand in the pipelined
//! sorter): a worker loops on a channel until the far endpoint closes; the
//! coordinating thread calls `handle.join()` *first* and only drops its
//! endpoint afterwards. The worker never sees the hangup, the join never
//! returns. The sound shape keeps every `drop(endpoint)` **before** the
//! joins, which is exactly what `pipelined.rs` does today:
//!
//! ```text
//! drop(out_rx);                 // unblocks a sorter stuck on send()
//! sorter_thread.join()          // now guaranteed to finish
//! ```
//!
//! Detection is per-function: bindings from
//! `let (tx, rx) = channel()/bounded()/unbounded()/sync_channel()` (plus
//! `.clone()`s of either endpoint) are channel endpoints; a
//! `drop(endpoint)` that appears *after* a `.join()` in the same body is
//! reported at the join. Endpoints moved into spawned closures never see
//! a later `drop` in the coordinator, so they cannot false-positive.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::parse::Structure;
use crate::source::SourceFile;

/// Constructor idents whose call produces a `(sender, receiver)` pair.
const CHANNEL_CTORS: &[&str] = &["channel", "bounded", "unbounded", "sync_channel"];

/// Scans each function body for joins that precede an endpoint drop.
pub fn check(file: &SourceFile, structure: &Structure, out: &mut Vec<Diagnostic>) {
    for f in &structure.fns {
        let Some((body_open, body_close)) = f.body else {
            continue;
        };
        if file.in_test_code(body_open) {
            continue;
        }
        check_body(file, body_open, body_close, out);
    }
}

fn check_body(file: &SourceFile, body_open: usize, body_close: usize, out: &mut Vec<Diagnostic>) {
    let mut endpoints: Vec<String> = Vec::new();
    // (code index of the join's `join` ident, receiver name)
    let mut joins: Vec<(usize, String)> = Vec::new();
    // (code index of the drop, endpoint name)
    let mut drops: Vec<(usize, String)> = Vec::new();

    let mut i = body_open + 1;
    while i < body_close {
        let text = file.code_text(i);
        match text {
            // `let (a, b) = …ctor…(` — both idents become endpoints when
            // the initializer's callee (everything up to its argument
            // paren) mentions a channel constructor.
            "let" if i + 5 < body_close && file.code_text(i + 1) == "(" => {
                let a = i + 2;
                if file.code_token(a).kind == TokenKind::Ident
                    && file.code_text(a + 1) == ","
                    && file.code_token(a + 2).kind == TokenKind::Ident
                    && file.code_text(a + 3) == ")"
                    && file.code_text(a + 4) == "="
                {
                    let mut j = a + 5;
                    let mut is_channel = false;
                    while j < body_close {
                        let t = file.code_text(j);
                        if t == "(" || t == ";" {
                            break;
                        }
                        if CHANNEL_CTORS.contains(&t) {
                            is_channel = true;
                        }
                        j += 1;
                    }
                    if is_channel {
                        endpoints.push(file.code_text(a).to_string());
                        endpoints.push(file.code_text(a + 2).to_string());
                    }
                }
            }
            // `let tx2 = tx.clone()` — clones of endpoints are endpoints.
            "clone"
                if i >= 2
                    && file.code_text(i - 1) == "."
                    && endpoints.iter().any(|e| e == file.code_text(i - 2))
                    && i >= 4
                    && file.code_text(i - 3) == "="
                    && file.code_token(i - 4).kind == TokenKind::Ident =>
            {
                endpoints.push(file.code_text(i - 4).to_string());
            }
            "join"
                if i > 0
                    && file.code_text(i - 1) == "."
                    && i + 2 < body_close
                    && file.code_text(i + 1) == "("
                    && file.code_text(i + 2) == ")"
                    && i >= 2
                    && file.code_token(i - 2).kind == TokenKind::Ident =>
            {
                joins.push((i, file.code_text(i - 2).to_string()));
            }
            "drop"
                if i + 2 < body_close
                    && file.code_text(i + 1) == "("
                    && file.code_token(i + 2).kind == TokenKind::Ident
                    && file.code_text(i + 3) == ")" =>
            {
                drops.push((i + 2, file.code_text(i + 2).to_string()));
            }
            _ => {}
        }
        i += 1;
    }

    for &(drop_idx, ref name) in &drops {
        if !endpoints.iter().any(|e| e == name) {
            continue;
        }
        // The first join that precedes this endpoint's drop is the bug
        // site: at that point the endpoint is still open.
        if let Some(&(join_idx, ref handle)) = joins.iter().find(|&&(j, _)| j < drop_idx) {
            let join_tok = file.code_token(join_idx);
            let drop_tok = file.code_token(drop_idx);
            out.push(Diagnostic {
                rule: "join-order",
                path: file.path.clone(),
                line: join_tok.line,
                col: join_tok.col,
                message: format!(
                    "`{handle}.join()` runs before `drop({name})` (line {}): a thread \
                     blocked on that channel never sees the hangup and the join \
                     deadlocks — drop the endpoint first",
                    drop_tok.line
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new(
            PathBuf::from("crates/x/src/lib.rs"),
            src.to_string(),
            "ppbench-sort".into(),
            FileKind::Lib,
        );
        let s = Structure::build(&f);
        let mut out = Vec::new();
        check(&f, &s, &mut out);
        out
    }

    #[test]
    fn drop_before_join_is_clean() {
        let out = run("fn f() { let (tx, rx) = channel::bounded::<u64>(4); \
             let h = spawn_worker(tx); consume(&rx); drop(rx); \
             let r = h.join(); use_(r); }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn drop_after_join_is_flagged() {
        let out = run("fn f() { let (tx, rx) = channel::bounded::<u64>(4); \
             let h = spawn_worker(tx); consume(&rx); \
             let r = h.join(); drop(rx); use_(r); }");
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "join-order");
        assert!(out[0].message.contains("drop(rx)"), "{}", out[0].message);
    }

    #[test]
    fn cloned_endpoint_dropped_after_join_is_flagged() {
        let out = run(
            "fn f() { let (tx, rx) = unbounded(); let tx2 = tx.clone(); \
             let h = spawn_worker(tx, rx); let r = h.join(); drop(tx2); use_(r); }",
        );
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn dropping_a_non_endpoint_after_join_is_clean() {
        let out = run(
            "fn f() { let (tx, rx) = sync_channel(4); let buf = make_buf(); \
             let h = spawn_worker(tx, rx); let r = h.join(); drop(buf); use_(r); }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn joins_without_channels_are_clean() {
        let out = run("fn f() { let h = std::thread::spawn(work); \
             match h.join() { Ok(r) => use_(r), Err(p) => resume(p) } }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn tuple_destructuring_without_channel_ctor_is_ignored() {
        let out = run("fn f() { let (a, b) = split_pair(); let h = go(a); \
             let r = h.join(); drop(b); use_(r); }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let out = run(
            "#[cfg(test)] mod tests { fn f() { let (tx, rx) = channel(); \
             let h = go(tx); let r = h.join(); drop(rx); use_(r); } }",
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
