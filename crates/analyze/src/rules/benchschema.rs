//! `bench-schema` — the key lists the schema gate validates must match
//! the keys the sweep emitter actually writes.
//!
//! Every sweep binary (`k3bench`, `k01bench`, `algobench`, `pipebench`)
//! declares its document shape as two sorted const lists (`TOP_KEYS`,
//! `ROW_KEYS`) that
//! `--check` validates committed trajectories against, and builds the
//! JSON in a `to_json` function via `set_*("key", …)` chains. Those two
//! artifacts live lines apart and nothing ties them together: add a row
//! field to the emitter and forget the const, and the schema gate rejects
//! every new sweep while CI still passes on the stale committed file.
//!
//! Within each `ppbench-bench` file that defines all three anchors
//! (`TOP_KEYS`, `ROW_KEYS`, `to_json`), the rule splits the emitter body
//! into statements and collects the string keys of `set_*` calls per
//! statement. The statement that sets `benchmark` (the version tag every
//! document carries) is the top-level group; the union of the remaining
//! key-setting statements is the row group. Each group must equal its
//! declared const, both directions.

use std::collections::BTreeSet;

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::parse::Structure;
use crate::source::SourceFile;

/// Checks one file; silent unless all three anchors are present.
pub fn check(file: &SourceFile, structure: &Structure, out: &mut Vec<Diagnostic>) {
    let (Some(top_const), Some(row_const), Some(to_json)) = (
        structure.const_named("TOP_KEYS"),
        structure.const_named("ROW_KEYS"),
        structure.fn_named("to_json"),
    ) else {
        return;
    };
    let Some((body_open, body_close)) = to_json.body else {
        return;
    };
    if file.in_test_code(body_open) {
        return;
    }

    let declared = |c: &crate::parse::ConstItem| -> BTreeSet<String> {
        (c.value.0..=c.value.1)
            .filter(|&i| file.code_token(i).kind == TokenKind::StrLit)
            .filter_map(|i| unquote(file.code_text(i)))
            .collect()
    };
    let declared_top = declared(top_const);
    let declared_row = declared(row_const);

    // Emitted keys, grouped by statement.
    let mut top_emitted: BTreeSet<String> = BTreeSet::new();
    let mut row_emitted: BTreeSet<String> = BTreeSet::new();
    let mut statement: Vec<String> = Vec::new();
    for i in body_open + 1..=body_close {
        let text = file.code_text(i);
        if text == ";" || i == body_close {
            if !statement.is_empty() {
                if statement.iter().any(|k| k == "benchmark") {
                    top_emitted.extend(statement.drain(..));
                } else {
                    row_emitted.extend(statement.drain(..));
                }
            }
            statement.clear();
            continue;
        }
        if text.starts_with("set_")
            && file.code_token(i).kind == TokenKind::Ident
            && i + 2 < body_close
            && file.code_text(i + 1) == "("
            && file.code_token(i + 2).kind == TokenKind::StrLit
        {
            if let Some(key) = unquote(file.code_text(i + 2)) {
                statement.push(key);
            }
        }
    }

    let mut report = |const_item: &crate::parse::ConstItem,
                      const_name: &str,
                      declared: &BTreeSet<String>,
                      emitted: &BTreeSet<String>| {
        if emitted.is_empty() || declared == emitted {
            return;
        }
        let missing: Vec<&str> = declared.difference(emitted).map(String::as_str).collect();
        let extra: Vec<&str> = emitted.difference(declared).map(String::as_str).collect();
        let tok = file.code_token(const_item.name_idx);
        let mut parts = Vec::new();
        if !missing.is_empty() {
            parts.push(format!("declares {missing:?} the emitter never sets"));
        }
        if !extra.is_empty() {
            parts.push(format!("misses {extra:?} the emitter sets"));
        }
        out.push(Diagnostic {
            rule: "bench-schema",
            path: file.path.clone(),
            line: tok.line,
            col: tok.col,
            message: format!(
                "`{const_name}` drifted from `to_json`: {} — the schema gate would \
                 reject every sweep this binary writes",
                parts.join("; ")
            ),
        });
    };
    report(top_const, "TOP_KEYS", &declared_top, &top_emitted);
    report(row_const, "ROW_KEYS", &declared_row, &row_emitted);
}

/// The contents of a plain `"…"` literal, or `None` for raw/byte forms.
fn unquote(text: &str) -> Option<String> {
    text.strip_prefix('"')?
        .strip_suffix('"')
        .map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new(
            PathBuf::from("crates/bench/src/k3.rs"),
            src.to_string(),
            "ppbench-bench".into(),
            FileKind::Lib,
        );
        let s = Structure::build(&f);
        let mut out = Vec::new();
        check(&f, &s, &mut out);
        out
    }

    const CONSISTENT: &str = "\
        pub const TOP_KEYS: &[&str] = &[\"benchmark\", \"results\", \"seed\"];\n\
        pub const ROW_KEYS: &[&str] = &[\"scale\", \"seconds\", \"variant\"];\n\
        pub fn to_json(cfg: &SweepConfig, rows: &[SweepRow]) -> String {\n\
            let mut results = JsonArray::new();\n\
            for row in rows {\n\
                let mut entry = JsonObject::new();\n\
                entry.set_str(\"variant\", row.variant)\n\
                    .set_u64(\"scale\", row.scale)\n\
                    .set_f64(\"seconds\", row.seconds);\n\
                results.push_obj(&entry);\n\
            }\n\
            let mut obj = JsonObject::new();\n\
            obj.set_str(\"benchmark\", VERSION)\n\
                .set_raw(\"results\", results.render())\n\
                .set_u64(\"seed\", cfg.seed);\n\
            obj.render()\n\
        }\n";

    #[test]
    fn consistent_schema_is_clean() {
        assert!(run(CONSISTENT).is_empty());
    }

    #[test]
    fn row_key_missing_from_emitter_is_flagged() {
        let src = CONSISTENT.replace(
            "&[\"scale\", \"seconds\", \"variant\"]",
            "&[\"gflops\", \"scale\", \"seconds\", \"variant\"]",
        );
        let out = run(&src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "bench-schema");
        assert!(out[0].message.contains("gflops"), "{}", out[0].message);
        assert!(out[0].message.contains("ROW_KEYS"), "{}", out[0].message);
    }

    #[test]
    fn emitted_key_missing_from_const_is_flagged() {
        let src = CONSISTENT.replace(
            ".set_f64(\"seconds\", row.seconds)",
            ".set_f64(\"seconds\", row.seconds).set_f64(\"meps\", row.meps)",
        );
        let out = run(&src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("meps"), "{}", out[0].message);
    }

    #[test]
    fn top_key_drift_is_flagged_separately() {
        let src = CONSISTENT.replace(
            "&[\"benchmark\", \"results\", \"seed\"]",
            "&[\"benchmark\", \"edge_factor\", \"results\", \"seed\"]",
        );
        let out = run(&src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("TOP_KEYS"), "{}", out[0].message);
        assert!(out[0].message.contains("edge_factor"), "{}", out[0].message);
    }

    #[test]
    fn files_without_the_anchors_are_silent() {
        assert!(run("pub fn unrelated() { obj.set_str(\"x\", v); }").is_empty());
    }
}
