//! `config-drift` — the canonical config field set, the serve request
//! parser, and the config-hash function must stay in lockstep.
//!
//! PR 5 grew the canonical field set 16 → 18; nothing forced the serve
//! JSON parser to follow, and the gap was caught by hand. This rule wires
//! the three artifacts together through the symbol index:
//!
//! * `PipelineConfig::canonical_fields` (crate `ppbench-core`) is the
//!   source of truth. Its keys are the string literals in the shape
//!   `("key", …)` inside the function body whose text is a plain
//!   identifier — exactly how the field vector is built.
//! * `ACCEPTED_FIELDS` (crate `ppbench-serve`) must contain **every**
//!   canonical key and **nothing else**. A deliberate exclusion (today:
//!   `input_tsv`, a file-disclosure hazard over HTTP) is waived at the
//!   key's definition site in `canonical_fields`, so each excluded key
//!   carries its own reviewed justification and a *new* drifting key is
//!   still caught.
//! * `canonical_hash` must consume `canonical_fields()` — a hash built
//!   from a private field list would drift silently.
//!
//! Findings anchor at the drifting key's own definition line (core side
//! for missing keys, serve side for unknown keys), which is where the fix
//! — or the waiver — belongs. When either anchor symbol is absent the
//! rule stays silent: single-file runs and fixtures for other rules must
//! not fabricate drift. A dedicated workspace test asserts the anchors
//! exist in the real tree, so the rule cannot be disabled by renaming.

use crate::diag::Diagnostic;
use crate::index::SymbolIndex;
use crate::lexer::TokenKind;
use crate::parse::Structure;
use crate::source::SourceFile;

/// Crate expected to define `canonical_fields` / `canonical_hash`.
const CORE_CRATE: &str = "ppbench-core";
/// Crate expected to define `ACCEPTED_FIELDS`.
const SERVE_CRATE: &str = "ppbench-serve";

/// Runs the cross-file comparison over the whole analyzed set.
pub fn check(
    files: &[SourceFile],
    structures: &[Option<Structure>],
    index: &SymbolIndex,
    out: &mut Vec<Diagnostic>,
) {
    let Some(fields_ref) = index.find_fn(CORE_CRATE, "canonical_fields") else {
        return;
    };
    let core_file = &files[fields_ref.file];
    let Some(core_structure) = structures[fields_ref.file].as_ref() else {
        return;
    };
    let fields_fn = &core_structure.fns[fields_ref.item];
    let Some((body_open, body_close)) = fields_fn.body else {
        return;
    };

    // Canonical keys with their defining token (for anchoring).
    let canonical: Vec<(String, usize)> = (body_open + 1..body_close)
        .filter(|&i| {
            core_file.code_token(i).kind == TokenKind::StrLit
                && i > 0
                && core_file.code_text(i - 1) == "("
                && i + 1 < body_close
                && core_file.code_text(i + 1) == ","
        })
        .filter_map(|i| {
            let key = unquote(core_file.code_text(i))?;
            is_identifier(&key).then_some((key, i))
        })
        .collect();

    // The hash must consume the field list.
    if let Some(hash_ref) = index.find_fn(CORE_CRATE, "canonical_hash") {
        let hash_file = &files[hash_ref.file];
        if let Some(hash_structure) = structures[hash_ref.file].as_ref() {
            let hash_fn = &hash_structure.fns[hash_ref.item];
            if let Some((open, close)) = hash_fn.body {
                let consumes =
                    (open + 1..close).any(|i| hash_file.code_text(i) == "canonical_fields");
                if !consumes {
                    let tok = hash_file.code_token(hash_fn.name_idx);
                    out.push(Diagnostic {
                        rule: "config-drift",
                        path: hash_file.path.clone(),
                        line: tok.line,
                        col: tok.col,
                        message: "`canonical_hash` does not consume `canonical_fields()`: \
                                  the hash and the field set can drift independently"
                            .into(),
                    });
                }
            }
        }
    }

    // The serve parser's accepted set.
    let Some(accepted_ref) = index.find_const(SERVE_CRATE, "ACCEPTED_FIELDS") else {
        return;
    };
    let serve_file = &files[accepted_ref.file];
    let Some(serve_structure) = structures[accepted_ref.file].as_ref() else {
        return;
    };
    let accepted_const = &serve_structure.consts[accepted_ref.item];
    let (v0, v1) = accepted_const.value;
    let accepted: Vec<(String, usize)> = (v0..=v1)
        .filter(|&i| serve_file.code_token(i).kind == TokenKind::StrLit)
        .filter_map(|i| unquote(serve_file.code_text(i)).map(|k| (k, i)))
        .collect();

    for (key, tok_idx) in &canonical {
        if !accepted.iter().any(|(k, _)| k == key) {
            let tok = core_file.code_token(*tok_idx);
            out.push(Diagnostic {
                rule: "config-drift",
                path: core_file.path.clone(),
                line: tok.line,
                col: tok.col,
                message: format!(
                    "canonical config field `{key}` is not accepted by the serve \
                     request parser (`ACCEPTED_FIELDS` in {}): HTTP clients cannot \
                     set it — add it there, or waive here if the exclusion is \
                     deliberate",
                    serve_file.path.display()
                ),
            });
        }
    }
    for (key, tok_idx) in &accepted {
        if !canonical.iter().any(|(k, _)| k == key) {
            let tok = serve_file.code_token(*tok_idx);
            out.push(Diagnostic {
                rule: "config-drift",
                path: serve_file.path.clone(),
                line: tok.line,
                col: tok.col,
                message: format!(
                    "`ACCEPTED_FIELDS` names `{key}`, which is not a canonical config \
                     field ({}): the parser accepts a field the pipeline ignores",
                    core_file.path.display()
                ),
            });
        }
    }
}

/// The contents of a plain `"…"` literal, or `None` for raw/byte forms.
fn unquote(text: &str) -> Option<String> {
    text.strip_prefix('"')?
        .strip_suffix('"')
        .map(str::to_string)
}

fn is_identifier(s: &str) -> bool {
    let mut chars = s.chars();
    chars
        .next()
        .is_some_and(|c| c == '_' || c.is_ascii_alphabetic())
        && chars.all(|c| c == '_' || c.is_ascii_alphanumeric())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;
    use std::path::PathBuf;

    fn analyze_pair(core_src: &str, serve_src: &str) -> Vec<Diagnostic> {
        let files = vec![
            SourceFile::new(
                PathBuf::from("crates/core/src/config.rs"),
                core_src.to_string(),
                CORE_CRATE.into(),
                FileKind::Lib,
            ),
            SourceFile::new(
                PathBuf::from("crates/serve/src/request.rs"),
                serve_src.to_string(),
                SERVE_CRATE.into(),
                FileKind::Lib,
            ),
        ];
        let structures: Vec<Option<Structure>> =
            files.iter().map(|f| Some(Structure::build(f))).collect();
        let index = SymbolIndex::build(&files, &structures);
        let mut out = Vec::new();
        check(&files, &structures, &index, &mut out);
        out
    }

    const CORE_OK: &str = "impl C {\n\
        pub fn canonical_fields(&self) -> Vec<(&'static str, String)> {\n\
            let mut fields = vec![(\"scale\", self.scale.to_string()),\n\
                (\"seed\", self.seed.to_string()),\n\
                (\"damping\", format!(\"f64:{:016x}\", self.damping.to_bits()))];\n\
            fields.sort_by_key(|(k, _)| *k);\n\
            fields\n\
        }\n\
        pub fn canonical_hash(&self) -> u64 {\n\
            let mut h = FNV;\n\
            for (key, value) in self.canonical_fields() { h = mix(h, key, &value); }\n\
            h\n\
        }\n\
    }\n";

    #[test]
    fn lockstep_sets_are_clean() {
        let out = analyze_pair(
            CORE_OK,
            "pub const ACCEPTED_FIELDS: [&str; 3] = [\"damping\", \"scale\", \"seed\"];",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn missing_accepted_key_anchors_at_the_core_definition() {
        let out = analyze_pair(
            CORE_OK,
            "pub const ACCEPTED_FIELDS: [&str; 2] = [\"damping\", \"scale\"];",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`seed`"), "{}", out[0].message);
        assert!(out[0].path.ends_with("config.rs"), "{:?}", out[0].path);
    }

    #[test]
    fn unknown_accepted_key_anchors_at_the_serve_definition() {
        let out = analyze_pair(
            CORE_OK,
            "pub const ACCEPTED_FIELDS: [&str; 4] = [\"damping\", \"scale\", \"seed\", \"turbo\"];",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`turbo`"), "{}", out[0].message);
        assert!(out[0].path.ends_with("request.rs"), "{:?}", out[0].path);
    }

    #[test]
    fn hash_not_consuming_fields_is_flagged() {
        let core = "impl C {\n\
            pub fn canonical_fields(&self) -> Vec<(&'static str, String)> {\n\
                vec![(\"scale\", self.scale.to_string())]\n\
            }\n\
            pub fn canonical_hash(&self) -> u64 { mix(FNV, self.scale) }\n\
        }\n";
        let out = analyze_pair(core, "pub const ACCEPTED_FIELDS: [&str; 1] = [\"scale\"];");
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(
            out[0].message.contains("canonical_hash"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn format_strings_in_values_are_not_keys() {
        // `format!("f64:{:016x}", …)` sits in `("…", …)` shape but is not
        // an identifier, so it must not be reported as an unaccepted key.
        let out = analyze_pair(
            CORE_OK,
            "pub const ACCEPTED_FIELDS: [&str; 3] = [\"damping\", \"scale\", \"seed\"];",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn absent_anchors_keep_the_rule_silent() {
        let out = analyze_pair("fn unrelated() {}", "pub fn also_unrelated() {}");
        assert!(out.is_empty(), "{out:?}");
    }
}
