//! `shared-accumulator` — the false-sharing shape suspected behind
//! ROADMAP item 1 (parallel variants losing to serial).
//!
//! Inside a parallel closure, a compound assignment **through an index**
//! (`out[v] += …`, `hist[d] |= …`) means neighbouring iterations from
//! different threads write adjacent elements of one shared buffer: every
//! such write invalidates the cache line for every other core, and the
//! "parallel" kernel serializes on coherence traffic. The fix this
//! workspace uses everywhere it matters is per-chunk local accumulators
//! merged after the join (see `sparse/src/spmv.rs::step_fused`).
//!
//! Two shapes count as a parallel closure region:
//!
//! * the argument list of a call whose callee ident is `spawn`
//!   (`thread::spawn`, `scope.spawn`, builder `.spawn`);
//! * the argument list of a combinator (`map`, `for_each`, `fold`,
//!   `reduce`, `filter`, `inspect`) whose receiver chain mentions a
//!   `par_`-prefixed iterator source (`into_par_iter`, `par_chunks_mut`,
//!   …) earlier in the same statement.
//!
//! Inside such a region the trigger is the token shape `] op=` (the `]`
//! closing an index expression, immediately followed by a compound
//! assignment operator). Plain `=` through `iter_mut` and compound
//! assignment to scalar locals (`delta += …`) stay silent — those are the
//! sanctioned patterns. This is a heuristic, so it reports at
//! **warning** severity and is budgeted by the ratchet baseline.

use crate::diag::Diagnostic;
use crate::parse::Structure;
use crate::source::SourceFile;

/// Combinators that run a user closure per element.
const PAR_COMBINATORS: &[&str] = &["map", "for_each", "fold", "reduce", "filter", "inspect"];

/// Scans one file for indexed compound assignments inside parallel
/// closure regions.
pub fn check(file: &SourceFile, structure: &Structure, out: &mut Vec<Diagnostic>) {
    let n = file.code_len();
    for i in 0..n {
        let text = file.code_text(i);
        let is_spawn = text == "spawn";
        let is_combinator = PAR_COMBINATORS.contains(&text);
        if !is_spawn && !is_combinator {
            continue;
        }
        if i + 1 >= n || file.code_text(i + 1) != "(" {
            continue;
        }
        if file.in_test_code(i) {
            continue;
        }
        if is_combinator && !(is_method_call(file, i) && par_chain_before(file, i)) {
            continue;
        }
        let Some(close) = structure.matching(i + 1) else {
            continue;
        };
        scan_region(file, i + 2, close, out);
    }
}

/// True when the ident at `i` is called as a method (`.name(`).
fn is_method_call(file: &SourceFile, i: usize) -> bool {
    i > 0 && file.code_text(i - 1) == "."
}

/// Walks the receiver chain backwards from the `.` before code index `i`
/// to the start of the statement, looking for a `par_`-style iterator
/// source. Matched delimiter groups are stepped over token-by-token (their
/// contents cannot start the chain, but idents inside argument lists are
/// harmless to inspect — `par_iter` appearing anywhere in the statement's
/// receiver expression is evidence enough for a heuristic).
fn par_chain_before(file: &SourceFile, i: usize) -> bool {
    let mut j = i - 1; // the `.`
    while j > 0 {
        j -= 1;
        let t = file.code_text(j);
        if matches!(t, ";" | "{" | "}") {
            return false;
        }
        if t.starts_with("par_") || t == "into_par_iter" {
            return true;
        }
    }
    false
}

/// Reports every `] op=` inside `[from, to)`.
fn scan_region(file: &SourceFile, from: usize, to: usize, out: &mut Vec<Diagnostic>) {
    for i in from..to {
        if file.code_text(i) != "]" || i + 2 >= to {
            continue;
        }
        let op = file.code_token(i + 1);
        let eq = file.code_token(i + 2);
        let op_text = op.text(&file.text);
        // Compound assignment: the operator and `=` must be adjacent bytes
        // (`+` `=` from `+=`), distinguishing `out[v] += x` from
        // `a[i] + b = …`-style accidents and from `m[k] == x` comparisons.
        if matches!(op_text, "+" | "-" | "*" | "/" | "%" | "|" | "&" | "^")
            && eq.text(&file.text) == "="
            && op.end == eq.start
            && (i + 3 >= to || file.code_text(i + 3) != "=")
        {
            out.push(Diagnostic {
                rule: "shared-accumulator",
                path: file.path.clone(),
                line: op.line,
                col: op.col,
                message: format!(
                    "indexed `{op_text}=` inside a parallel closure: adjacent indices \
                     written from different threads share cache lines and the kernel \
                     serializes on coherence traffic — accumulate into a per-chunk \
                     local and merge after the join"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new(
            PathBuf::from("crates/x/src/lib.rs"),
            src.to_string(),
            "ppbench-sparse".into(),
            FileKind::Lib,
        );
        let s = Structure::build(&f);
        let mut out = Vec::new();
        check(&f, &s, &mut out);
        out
    }

    #[test]
    fn indexed_add_assign_in_spawn_is_flagged() {
        let out = run("fn f(out: &mut [f64]) { scope.spawn(move || { \
             for v in lo..hi { out[v] += gather(v); } }); }");
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "shared-accumulator");
    }

    #[test]
    fn indexed_or_assign_in_par_for_each_is_flagged() {
        let out = run(
            "fn f(bits: &mut [u64]) { (0..n).into_par_iter().for_each(|i| { \
             bits[i / 64] |= 1 << (i % 64); }); }",
        );
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn serial_indexed_add_assign_is_clean() {
        let out = run("fn f(out: &mut [f64]) { for v in 0..n { out[v] += gather(v); } }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn local_scalar_accumulator_in_par_map_is_clean() {
        // The sanctioned shape: chunk-local scalars, `*o =` writes.
        let out = run(
            "fn f(out: &mut [f64]) { let p: Vec<f64> = chunks(out).into_par_iter().map(|(s, lo)| { \
             let mut delta = 0.0; for (k, o) in s.iter_mut().enumerate() { \
             let next = gather(lo + k); delta += next; *o = next; } delta }).collect(); use_(p); }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn serial_map_combinator_is_clean() {
        let out = run("fn f(a: &mut [u64]) { (0..n).map(|i| { a[i] += 1; }).count(); }");
        assert!(
            out.is_empty(),
            "a serial map is not a parallel region: {out:?}"
        );
    }

    #[test]
    fn index_comparison_in_par_closure_is_clean() {
        let out = run("fn f(a: &[u64]) { (0..n).into_par_iter().for_each(|i| { \
             if a[i] == 0 { mark(i); } }); }");
        assert!(out.is_empty(), "`==` is not a compound assignment: {out:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let out = run("#[cfg(test)] mod tests { fn f(out: &mut [f64]) { \
             scope.spawn(move || { out[0] += 1.0; }); } }");
        assert!(out.is_empty(), "{out:?}");
    }
}
