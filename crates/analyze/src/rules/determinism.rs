//! Determinism: the pipeline must be bit-reproducible given a seed.
//!
//! Three lexical proxies for the real invariant:
//!
//! * **time-source** — `Instant`/`SystemTime` anywhere in a kernel crate
//!   outside `timing.rs` means a wall-clock value can leak into results
//!   (and timing policy fragments across the codebase).
//! * **hash-iteration** — `HashMap`/`HashSet` iteration order is
//!   randomized per process; in a crate whose data is checksummed,
//!   serialized, or hashed for cache identity, any use is a hazard
//!   unless proven membership-only (that proof is the waiver's reason).
//! * **env-dependence** — `env::var*`, `available_parallelism`, and
//!   `num_cpus` make results depend on the machine, not the seed.

use crate::diag::Diagnostic;
use crate::rules::in_scope;
use crate::source::SourceFile;

/// Runs the three determinism rules over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let time_scope = in_scope("time-source", file);
    let hash_scope = in_scope("hash-iteration", file);
    let env_scope = in_scope("env-dependence", file);
    for i in 0..file.code_len() {
        if file.in_test_code(i) {
            continue;
        }
        let tok = *file.code_token(i);
        let text = file.code_text(i);
        let diag = |rule: &'static str, message: String| Diagnostic {
            rule,
            path: file.path.clone(),
            line: tok.line,
            col: tok.col,
            message,
        };

        if time_scope && (text == "Instant" || text == "SystemTime") {
            out.push(diag(
                "time-source",
                format!(
                    "{text} read in a kernel crate; route timing through \
                     ppbench_core::timing (timing.rs is the one sanctioned clock)"
                ),
            ));
        }

        if hash_scope && (text == "HashMap" || text == "HashSet") {
            out.push(diag(
                "hash-iteration",
                format!(
                    "{text} has randomized iteration order; use BTreeMap/BTreeSet or a \
                     sorted Vec, or waive with a reason proving order is never observed"
                ),
            ));
        }

        if env_scope {
            let env_read = (text == "var" || text == "vars" || text == "var_os")
                && i >= 3
                && file.code_text(i - 1) == ":"
                && file.code_text(i - 2) == ":"
                && file.code_text(i - 3) == "env";
            if env_read || text == "available_parallelism" || text == "num_cpus" {
                out.push(diag(
                    "env-dependence",
                    format!(
                        "`{text}` makes results depend on the environment; thread counts \
                         and tunables must come from the seeded PipelineConfig"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;
    use std::path::PathBuf;

    fn check_named(path: &str, src: &str, crate_name: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new(
            PathBuf::from(path),
            src.to_string(),
            crate_name.into(),
            FileKind::Lib,
        );
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    fn check_src(src: &str, crate_name: &str) -> Vec<Diagnostic> {
        check_named("crates/x/src/lib.rs", src, crate_name)
    }

    #[test]
    fn instant_flagged_in_kernel_crate_only() {
        let src = "use std::time::Instant;\nfn f() { let _t = Instant::now(); }";
        let out = check_src(src, "ppbench-core");
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|d| d.rule == "time-source"));
        assert!(check_src(src, "ppbench-serve").is_empty());
    }

    #[test]
    fn timing_rs_is_sanctioned() {
        let out = check_named(
            "crates/core/src/timing.rs",
            "use std::time::Instant;",
            "ppbench-core",
        );
        assert!(out.is_empty());
    }

    #[test]
    fn hashmap_flagged_in_serve_too() {
        let src = "use std::collections::HashMap;";
        assert_eq!(check_src(src, "ppbench-serve").len(), 1);
        assert_eq!(check_src(src, "ppbench-gen").len(), 1);
        assert!(check_src(src, "ppbench-analyze").is_empty());
    }

    #[test]
    fn env_reads_flagged() {
        let out = check_src(
            "fn f() { let _v = std::env::var(\"X\"); \
             let _n = std::thread::available_parallelism(); }",
            "ppbench-core",
        );
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|d| d.rule == "env-dependence"));
    }

    #[test]
    fn env_args_and_temp_dir_are_fine() {
        let out = check_src(
            "fn f() { let _a = std::env::args(); let _t = std::env::temp_dir(); }",
            "ppbench-core",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn local_var_ident_named_var_is_fine() {
        // `var` only fires in the `env::var` path position.
        let out = check_src("fn f() { let var = 3; let _ = var; }", "ppbench-core");
        assert!(out.iter().all(|d| d.rule != "env-dependence"), "{out:?}");
    }
}
