//! Lock discipline: an approximate lock-acquisition graph.
//!
//! The scanner tracks `.lock()` calls per file with brace-depth scoping:
//! a guard bound by a simple `let` lives to the end of its block (or an
//! explicit `drop(name)`), an unbound guard lives to the end of its
//! statement. Lock identity is the last path segment of the receiver
//! (`self.inner.state.lock()` and `inner.state.lock()` are both lock
//! `state`), which unifies call sites across functions well enough to
//! build a workspace-wide acquisition graph. Two findings come out:
//!
//! * **lock-order** — acquiring B while holding A adds edge A→B; any
//!   cycle in the graph (including A→A re-acquisition) is a potential
//!   deadlock and every edge on the cycle is reported.
//! * **lock-panic** — `.lock().unwrap()` / `.lock().expect(…)` while
//!   already holding a lock: a poisoned inner mutex would panic the
//!   thread with the outer guard held, wedging everyone queued on it.
//!
//! This is deliberately approximate (no types, no inter-procedural guard
//! flow); the waiver mechanism absorbs the rare false positive, and the
//! unit tests pin down the idioms the serving crates actually use.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// One observed nested acquisition: `held` was locked when `acquired`
/// was locked at `path:line:col`.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Lock already held.
    pub held: String,
    /// Lock acquired under it.
    pub acquired: String,
    /// File of the inner acquisition.
    pub path: std::path::PathBuf,
    /// 1-based line of the inner acquisition.
    pub line: u32,
    /// 1-based column of the inner acquisition.
    pub col: u32,
}

#[derive(Debug)]
struct Guard {
    /// Binding name for `drop(name)` matching; `None` for temporaries.
    binding: Option<String>,
    /// Normalized lock name.
    lock: String,
    /// Brace depth the guard was created at.
    depth: usize,
    /// True when the guard dies at the next statement boundary.
    temporary: bool,
}

/// Scans one file, appending `lock-panic` diagnostics and the lock edges
/// observed (cycle detection runs workspace-wide in [`cycles`]).
pub fn check(file: &SourceFile, edges: &mut Vec<LockEdge>, out: &mut Vec<Diagnostic>) {
    let mut depth = 0usize;
    let mut guards: Vec<Guard> = Vec::new();
    // Pending simple-`let` binding for the current statement, consumed by
    // the first `.lock()` in it.
    let mut pending_let: Option<String> = None;
    let mut statement_start = true;

    let n = file.code_len();
    let mut i = 0;
    while i < n {
        let text = file.code_text(i);
        match text {
            "{" => {
                depth += 1;
                guards.retain(|g| !g.temporary);
                statement_start = true;
                pending_let = None;
            }
            "}" => {
                guards.retain(|g| g.depth < depth && !g.temporary);
                depth = depth.saturating_sub(1);
                statement_start = true;
                pending_let = None;
            }
            ";" => {
                guards.retain(|g| !g.temporary);
                statement_start = true;
                pending_let = None;
            }
            "let" if statement_start => {
                // `let [mut] name =` / `let [mut] name :` — anything more
                // structured (tuple or enum patterns) is treated as not
                // binding a guard.
                let mut j = i + 1;
                if j < n && file.code_text(j) == "mut" {
                    j += 1;
                }
                if j + 1 < n
                    && file.code_token(j).kind == crate::lexer::TokenKind::Ident
                    && matches!(file.code_text(j + 1), "=" | ":")
                {
                    pending_let = Some(file.code_text(j).to_string());
                }
                statement_start = false;
            }
            "drop" if i + 2 < n && file.code_text(i + 1) == "(" => {
                let name = file.code_text(i + 2).to_string();
                guards.retain(|g| g.binding.as_deref() != Some(name.as_str()));
                statement_start = false;
            }
            "lock"
                if i > 0
                    && file.code_text(i - 1) == "."
                    && i + 2 < n
                    && file.code_text(i + 1) == "("
                    && file.code_text(i + 2) == ")" =>
            {
                let in_test = file.in_test_code(i);
                let tok = *file.code_token(i);
                let lock_name = receiver_name(file, i);
                if !in_test {
                    for g in &guards {
                        if g.lock == lock_name {
                            out.push(Diagnostic {
                                rule: "lock-order",
                                path: file.path.clone(),
                                line: tok.line,
                                col: tok.col,
                                message: format!(
                                    "re-acquiring lock `{lock_name}` while a guard for it \
                                     is still alive: self-deadlock"
                                ),
                            });
                        } else {
                            edges.push(LockEdge {
                                held: g.lock.clone(),
                                acquired: lock_name.clone(),
                                path: file.path.clone(),
                                line: tok.line,
                                col: tok.col,
                            });
                        }
                    }
                    // `.lock().unwrap()` / `.lock().expect(` under a held lock.
                    if !guards.is_empty()
                        && i + 4 < n
                        && file.code_text(i + 3) == "."
                        && matches!(file.code_text(i + 4), "unwrap" | "expect")
                    {
                        out.push(Diagnostic {
                            rule: "lock-panic",
                            path: file.path.clone(),
                            line: tok.line,
                            col: tok.col,
                            message: format!(
                                "`.lock().{}()` while holding `{}`: a poison panic here \
                                 wedges every thread queued on the outer lock",
                                file.code_text(i + 4),
                                guards
                                    .last()
                                    .map(|g| g.lock.as_str())
                                    .unwrap_or("another lock"),
                            ),
                        });
                    }
                    guards.push(Guard {
                        binding: pending_let.take(),
                        lock: lock_name,
                        depth,
                        temporary: false,
                    });
                    // A guard not captured by a simple let is statement-scoped.
                    if let Some(last) = guards.last_mut() {
                        last.temporary = last.binding.is_none();
                    }
                }
                i += 2; // skip the `(` `)` we already consumed
                statement_start = false;
            }
            _ => {
                statement_start = false;
            }
        }
        i += 1;
    }
}

/// Normalized name of the receiver of the `.` at code position `at - 1`
/// (where `at` is the `lock` ident): the nearest path segment, with `()`
/// appended when it is a call.
fn receiver_name(file: &SourceFile, at: usize) -> String {
    if at < 2 {
        return "<expr>".into();
    }
    let j = at - 2;
    let text = file.code_text(j);
    if file.code_token(j).kind == crate::lexer::TokenKind::Ident {
        return text.to_string();
    }
    if text == ")" {
        // Walk back over the call's parens to the callee ident.
        let mut depth = 0usize;
        let mut k = j;
        loop {
            match file.code_text(k) {
                ")" => depth += 1,
                "(" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if k == 0 {
                return "<expr>".into();
            }
            k -= 1;
        }
        if k > 0 && file.code_token(k - 1).kind == crate::lexer::TokenKind::Ident {
            return format!("{}()", file.code_text(k - 1));
        }
    }
    "<expr>".into()
}

/// Workspace-wide cycle detection over the collected edges. Every edge
/// that participates in a cycle gets a diagnostic at its site, naming a
/// witness edge for the reverse direction.
pub fn cycles(edges: &[LockEdge]) -> Vec<Diagnostic> {
    // Adjacency over unique (held → acquired) pairs.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.held.as_str())
            .or_default()
            .insert(e.acquired.as_str());
    }
    let reachable = |from: &str, to: &str| -> bool {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(x) = stack.pop() {
            if x == to {
                return true;
            }
            if !seen.insert(x) {
                continue;
            }
            if let Some(next) = adj.get(x) {
                stack.extend(next.iter().copied());
            }
        }
        false
    };
    let mut out = Vec::new();
    for e in edges {
        if reachable(&e.acquired, &e.held) {
            let witness = edges
                .iter()
                .find(|w| w.held == e.acquired && reachable(&w.acquired, &e.held))
                .map(|w| format!(" (reverse order at {}:{})", w.path.display(), w.line))
                .unwrap_or_default();
            out.push(Diagnostic {
                rule: "lock-order",
                path: e.path.clone(),
                line: e.line,
                col: e.col,
                message: format!(
                    "acquiring `{}` while holding `{}` completes a lock cycle{witness}; \
                     pick one acquisition order",
                    e.acquired, e.held
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};
    use std::path::PathBuf;

    fn run(src: &str) -> (Vec<LockEdge>, Vec<Diagnostic>) {
        let f = SourceFile::new(
            PathBuf::from("crates/x/src/lib.rs"),
            src.to_string(),
            "ppbench-serve".into(),
            FileKind::Lib,
        );
        let mut edges = Vec::new();
        let mut out = Vec::new();
        check(&f, &mut edges, &mut out);
        (edges, out)
    }

    #[test]
    fn nested_lock_records_an_edge() {
        let (edges, out) = run(
            "fn f(&self) { let a = self.state.lock(); let b = self.cache.lock(); use_(a, b); }",
        );
        assert_eq!(edges.len(), 1);
        assert_eq!(
            (edges[0].held.as_str(), edges[0].acquired.as_str()),
            ("state", "cache")
        );
        assert!(out.is_empty());
    }

    #[test]
    fn sequential_blocks_do_not_overlap() {
        let (edges, _) = run("fn f(&self) { { let a = self.state.lock(); touch(a); } \
             let b = self.workers.lock(); touch(b); }");
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn drop_releases_the_guard() {
        let (edges, _) = run("fn f(&self) { let a = self.state.lock(); drop(a); \
             let b = self.workers.lock(); touch(b); }");
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let (edges, _) = run(
            "fn f(&self) { *self.slot(0, 1).lock() = 1; let b = self.other.lock(); touch(b); }",
        );
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn receiver_normalization_unifies_paths() {
        let (edges, _) = run(
            "fn f(&self) { let a = self.inner.state.lock(); let b = inner.cache.lock(); \
             touch(a, b); }",
        );
        assert_eq!(
            (edges[0].held.as_str(), edges[0].acquired.as_str()),
            ("state", "cache")
        );
    }

    #[test]
    fn call_receiver_gets_parens_suffix() {
        let (edges, _) = run(
            "fn f(&self) { let a = self.state.lock(); let b = self.slot(1, 2).lock(); \
             touch(a, b); }",
        );
        assert_eq!(edges[0].acquired, "slot()");
    }

    #[test]
    fn reacquisition_is_flagged() {
        let (_, out) = run(
            "fn f(&self) { let a = self.state.lock(); let b = self.state.lock(); touch(a, b); }",
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("re-acquiring"));
    }

    #[test]
    fn lock_unwrap_while_holding_is_flagged() {
        let (_, out) = run(
            "fn f(&self) { let a = self.state.lock(); let b = self.cache.lock().unwrap(); \
             touch(a, b); }",
        );
        assert!(out.iter().any(|d| d.rule == "lock-panic"), "{out:?}");
    }

    #[test]
    fn lock_unwrap_with_nothing_held_is_not_lock_panic() {
        let (_, out) = run("fn f(&self) { let a = self.state.lock().unwrap(); touch(a); }");
        assert!(out.iter().all(|d| d.rule != "lock-panic"), "{out:?}");
    }

    #[test]
    fn condvar_wait_reassignment_keeps_guard_held() {
        let (edges, _) = run("fn f(&self) { let mut state = self.state.lock(); \
             while go() { state = self.cv.wait(state); } \
             let b = self.cache.lock(); touch(state, b); }");
        assert_eq!(edges.len(), 1, "{edges:?}");
        assert_eq!(edges[0].acquired, "cache");
    }

    #[test]
    fn cycle_detection_reports_both_edges() {
        let (mut e1, _) = run(
            "fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); touch(a, b); }",
        );
        let (e2, _) = run(
            "fn g(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); touch(a, b); }",
        );
        e1.extend(e2);
        let diags = cycles(&e1);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == "lock-order"));
        assert!(diags[0].message.contains("reverse order at"));
    }

    #[test]
    fn acyclic_graph_is_clean() {
        let (mut e1, _) = run(
            "fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); touch(a, b); }",
        );
        let (e2, _) = run(
            "fn g(&self) { let b = self.beta.lock(); let c = self.gamma.lock(); touch(b, c); }",
        );
        e1.extend(e2);
        assert!(cycles(&e1).is_empty());
    }

    #[test]
    fn locks_in_test_modules_are_ignored() {
        let (edges, out) = run(
            "#[cfg(test)]\nmod tests { fn f(&self) { let a = self.x.lock(); \
             let b = self.y.lock(); touch(a, b); } }",
        );
        assert!(edges.is_empty());
        assert!(out.is_empty());
    }
}
