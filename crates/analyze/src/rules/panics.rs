//! Panic-freedom: library code must not contain reachable panic sites.
//!
//! A panicking kernel wedges a serve worker (PR 1 shipped exactly that
//! bug); a panicking library function turns a recoverable error into a
//! crashed process. The rule flags `.unwrap()`, `.expect(…)`, `panic!`,
//! `todo!`, and `unimplemented!` in production code, and — in the
//! long-running serving crates only — panicking slice indexing.

use crate::diag::Diagnostic;
use crate::rules::in_scope;
use crate::source::SourceFile;

/// Idents that, followed by `!`, are unconditional panic macros.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

/// Runs the `panic` and `indexing` rules over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let indexing = in_scope("indexing", file);
    for i in 0..file.code_len() {
        if file.in_test_code(i) {
            continue;
        }
        let tok = *file.code_token(i);
        let text = file.code_text(i);
        let diag = |rule: &'static str, message: String| Diagnostic {
            rule,
            path: file.path.clone(),
            line: tok.line,
            col: tok.col,
            message,
        };

        // `.unwrap()` / `.expect(` — method position only, so idents
        // like `unwrap_or_else` (their own token) never match.
        if (text == "unwrap" || text == "expect")
            && i > 0
            && file.code_text(i - 1) == "."
            && i + 1 < file.code_len()
            && file.code_text(i + 1) == "("
        {
            out.push(diag(
                "panic",
                format!(
                    ".{text}() can panic; return a Result (PpError) or handle the \
                     None/Err case explicitly"
                ),
            ));
            continue;
        }

        // `panic!` / `todo!` / `unimplemented!`.
        if PANIC_MACROS.contains(&text)
            && i + 1 < file.code_len()
            && file.code_text(i + 1) == "!"
            && (i == 0 || file.code_text(i - 1) != ".")
        {
            out.push(diag(
                "panic",
                format!("{text}! aborts the thread; return an error instead"),
            ));
            continue;
        }

        // Slice indexing `expr[i]` in the serving crates: `[` whose
        // previous token ends an expression. Types (`&[u8]`), attributes
        // (`#[…]`), macros (`vec![…]`), and slice patterns all have a
        // non-expression token before the bracket.
        if indexing && text == "[" && i > 0 {
            let prev = file.code_text(i - 1);
            let prev_is_expr_end = prev == "]"
                || prev == ")"
                || prev == "?"
                || (file.code_token(i - 1).kind == crate::lexer::TokenKind::Ident
                    && !is_keyword(prev));
            // `ident [` where ident is a type name in `impl Index` etc. is
            // rare enough to waive; expression position is the common case.
            if prev_is_expr_end {
                out.push(diag(
                    "indexing",
                    "slice indexing panics when out of bounds; use .get()/.get_mut() \
                     and handle the miss"
                        .into(),
                ));
            }
        }
    }
}

/// Keywords that may directly precede `[` without forming an index
/// expression (`return [..]`, `break [..]`, `in [..]`, …).
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "return"
            | "break"
            | "continue"
            | "in"
            | "if"
            | "else"
            | "match"
            | "move"
            | "mut"
            | "ref"
            | "let"
            | "const"
            | "static"
            | "as"
            | "dyn"
            | "impl"
            | "where"
            | "yield"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;
    use std::path::PathBuf;

    fn check_src(src: &str, crate_name: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new(
            PathBuf::from("crates/x/src/lib.rs"),
            src.to_string(),
            crate_name.into(),
            FileKind::Lib,
        );
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_unwrap_expect_and_macros() {
        let out = check_src(
            "fn f() { a.unwrap(); b.expect(\"m\"); panic!(\"x\"); todo!(); unimplemented!(); }",
            "ppbench-core",
        );
        assert_eq!(out.len(), 5, "{out:?}");
        assert!(out.iter().all(|d| d.rule == "panic"));
    }

    #[test]
    fn ignores_unwrap_or_family_and_std_panic_path() {
        let out = check_src(
            "fn f() { a.unwrap_or(0); a.unwrap_or_else(|| 0); a.unwrap_or_default(); \
             std::panic::catch_unwind(|| 1); }",
            "ppbench-core",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn ignores_strings_comments_and_test_mods() {
        let out = check_src(
            "// calls x.unwrap() — fine in a comment\n\
             /// doc: .unwrap() here too\n\
             fn f() { let s = \"x.unwrap()\"; }\n\
             #[cfg(test)]\nmod tests { fn g() { x.unwrap(); panic!(); } }\n",
            "ppbench-core",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn indexing_only_in_serving_crates() {
        let src = "fn f(v: &[u64], i: usize) -> u64 { v[i] }";
        assert!(check_src(src, "ppbench-sparse").is_empty());
        let out = check_src(src, "ppbench-serve");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "indexing");
    }

    #[test]
    fn indexing_skips_types_attrs_macros_patterns() {
        let out = check_src(
            "#[derive(Debug)]\n\
             struct S { a: [u8; 4] }\n\
             fn f(v: &[u8]) -> Vec<u8> { let x = vec![1, 2]; let [a, b] = [3, 4]; \
             let _y = a + b; x }\n",
            "ppbench-serve",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn chained_index_after_call_is_flagged() {
        let out = check_src("fn f() -> u8 { make()[0] }", "ppbench-serve");
        assert_eq!(out.len(), 1);
    }
}
