//! Workspace discovery: find the root, enumerate crates, load sources.
//!
//! The walk covers the root package's `src/` and every `crates/*/src/`.
//! `shims/` is excluded by design: those crates are vendored stand-ins
//! for third-party APIs (rayon, parking_lot, …) and mirror upstream
//! idioms rather than project invariants. `target/` and hidden
//! directories are never entered.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::source::{classify, FileKind, SourceFile};

/// Walks up from `start` to the nearest directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> io::Result<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = fs::read_to_string(&manifest)?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                "no workspace Cargo.toml found above the current directory",
            ));
        }
    }
}

/// Package name from a crate directory's `Cargo.toml` (first `name =`
/// line), falling back to the directory name.
fn package_name(crate_dir: &Path) -> String {
    let fallback = || {
        crate_dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "unknown".into())
    };
    let Ok(text) = fs::read_to_string(crate_dir.join("Cargo.toml")) else {
        return fallback();
    };
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(value) = rest.strip_prefix('=') {
                let value = value.trim().trim_matches('"');
                if !value.is_empty() {
                    return value.to_string();
                }
            }
        }
    }
    fallback()
}

/// Loads every production-relevant `.rs` file in the workspace. Paths in
/// the returned files are workspace-relative (for stable diagnostics).
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    // The root package.
    load_crate(root, root, &mut files)?;
    // Member crates under crates/.
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        entries.sort();
        for crate_dir in entries {
            load_crate(root, &crate_dir, &mut files)?;
        }
    }
    Ok(files)
}

/// Loads one crate's `src/` tree.
fn load_crate(root: &Path, crate_dir: &Path, files: &mut Vec<SourceFile>) -> io::Result<()> {
    let src = crate_dir.join("src");
    if !src.is_dir() {
        return Ok(());
    }
    let name = package_name(crate_dir);
    let mut paths = Vec::new();
    collect_rs(&src, &mut paths)?;
    paths.sort();
    for path in paths {
        let rel_to_crate = path.strip_prefix(crate_dir).unwrap_or(&path);
        let kind = classify(rel_to_crate);
        if kind == FileKind::TestLike {
            continue;
        }
        let rel_to_root = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let text = fs::read_to_string(&path)?;
        files.push(SourceFile::new(rel_to_root, text, name.clone(), kind));
    }
    Ok(())
}

/// Recursively collects `.rs` files, skipping hidden and build dirs.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Loads explicitly named files or directories (classified by their path
/// shape, crate name derived from the nearest `crates/<name>` component
/// when present).
pub fn load_paths(paths: &[PathBuf]) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for path in paths {
        if path.is_dir() {
            let mut found = Vec::new();
            collect_rs(path, &mut found)?;
            found.sort();
            for f in found {
                files.push(load_one(&f)?);
            }
        } else {
            files.push(load_one(path)?);
        }
    }
    Ok(files)
}

fn load_one(path: &Path) -> io::Result<SourceFile> {
    let text = fs::read_to_string(path)?;
    // Derive a crate name: the path component after `crates`, run through
    // Cargo.toml when available.
    let comps: Vec<&std::ffi::OsStr> = path.iter().collect();
    let crate_name = match comps.iter().position(|c| *c == "crates") {
        Some(i) if i + 1 < comps.len() => {
            let dir: PathBuf = comps[..=i + 1].iter().collect();
            package_name(&dir)
        }
        _ => "ppbench".into(),
    };
    let kind = classify(path);
    Ok(SourceFile::new(path.to_path_buf(), text, crate_name, kind))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace_root() {
        let cwd = std::env::current_dir().expect("cwd");
        let root = find_workspace_root(&cwd).expect("workspace root");
        assert!(root.join("Cargo.toml").is_file());
        assert!(root.join("crates").is_dir());
    }

    #[test]
    fn workspace_walk_excludes_shims_and_tests() {
        let cwd = std::env::current_dir().expect("cwd");
        let root = find_workspace_root(&cwd).expect("workspace root");
        let files = load_workspace(&root).expect("walk");
        assert!(files.len() > 50, "found {} files", files.len());
        for f in &files {
            let p = f.path.to_string_lossy().into_owned();
            assert!(!p.starts_with("shims"), "shims excluded: {p}");
            assert!(!p.contains("/tests/"), "tests excluded: {p}");
        }
        assert!(
            files.iter().any(|f| f.crate_name == "ppbench-analyze"),
            "the analyzer scans itself"
        );
        assert!(files.iter().any(|f| f.crate_name == "ppbench"));
    }

    #[test]
    fn package_names_come_from_manifests() {
        let cwd = std::env::current_dir().expect("cwd");
        let root = find_workspace_root(&cwd).expect("workspace root");
        assert_eq!(package_name(&root.join("crates/core")), "ppbench-core");
        assert_eq!(package_name(&root), "ppbench");
    }
}
