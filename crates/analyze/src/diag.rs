//! Diagnostics: what a rule reports and how it renders.

use std::fmt;
use std::path::PathBuf;

/// One finding, anchored to a source position.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule identifier (`panic`, `lock-order`, …).
    pub rule: &'static str,
    /// File the finding is in.
    pub path: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation, including the remedy.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: error[{}]: {}",
            self.path.display(),
            self.line,
            self.col,
            self.rule,
            self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_file_line_col_rule() {
        let d = Diagnostic {
            rule: "panic",
            path: PathBuf::from("crates/x/src/lib.rs"),
            line: 3,
            col: 7,
            message: "no".into(),
        };
        assert_eq!(d.to_string(), "crates/x/src/lib.rs:3:7: error[panic]: no");
    }
}
