//! `ppbench-analyze` — a from-scratch workspace lint pass enforcing the
//! two invariants this codebase lives or dies by: **kernels are
//! deterministic given a seed** (the paper's bit-reproducible Table II
//! checksums) and **library code never panics or deadlocks under load**
//! (the serving stack's contract).
//!
//! No rustc plumbing, no syn: a hand-rolled comment/string/lifetime-aware
//! [`lexer`] feeds a lexical [rule engine](engine). Rules:
//!
//! | Rule | Invariant |
//! |---|---|
//! | `panic` | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in library code |
//! | `indexing` | no panicking slice indexing in the serving crates |
//! | `time-source` | `Instant`/`SystemTime` only inside `core/src/timing.rs` on the kernel path |
//! | `hash-iteration` | no `HashMap`/`HashSet` where iteration order could reach hashed or serialized state |
//! | `env-dependence` | no `env::var*` / `available_parallelism` / `num_cpus` in kernel result paths |
//! | `lock-order` | no cycles in the workspace lock-acquisition graph |
//! | `lock-panic` | no `.lock().unwrap()` while already holding a lock |
//! | `forbid-unsafe` | every crate root carries `#![forbid(unsafe_code)]` |
//! | `discarded-result` | no `let _ =` discarding a value in library code |
//!
//! Violations are hard CI errors. The escape hatch is an inline waiver
//! with a mandatory reason:
//!
//! ```text
//! // ppbench: allow(hash-iteration, reason = "membership-only; order never observed")
//! ```
//!
//! Tests, benches, examples, and `#[cfg(test)]` modules are exempt —
//! panicking is the assertion mechanism there. The vendored `shims/`
//! crates are excluded: they mirror third-party APIs, not project
//! invariants.
//!
//! Run it exactly as CI does:
//!
//! ```text
//! cargo run -p ppbench-analyze -- --workspace --deny-all
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod diag;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod waiver;
pub mod walk;

pub use diag::Diagnostic;
pub use engine::analyze;
pub use source::{FileKind, SourceFile};
