//! `ppbench-analyze` — a from-scratch workspace lint pass enforcing the
//! two invariants this codebase lives or dies by: **kernels are
//! deterministic given a seed** (the paper's bit-reproducible Table II
//! checksums) and **library code never panics or deadlocks under load**
//! (the serving stack's contract).
//!
//! No rustc plumbing, no syn: a hand-rolled comment/string/lifetime-aware
//! [`lexer`] feeds two analysis layers. The token layer sees the code
//! token stream; the structure layer ([`parse`]) adds a delimiter match
//! map, `fn`/`const` items, and loop ranges per file, aggregated
//! workspace-wide into a cross-crate symbol [`index`]. Rules:
//!
//! | Rule | Layer | Invariant |
//! |---|---|---|
//! | `panic` | token | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in library code |
//! | `indexing` | token | no panicking slice indexing in the serving crates |
//! | `time-source` | token | `Instant`/`SystemTime` only inside `core/src/timing.rs` on the kernel path |
//! | `hash-iteration` | token | no `HashMap`/`HashSet` where iteration order could reach hashed or serialized state |
//! | `env-dependence` | token | no `env::var*` / `available_parallelism` / `num_cpus` in kernel result paths |
//! | `lock-order` | token | no cycles in the workspace lock-acquisition graph |
//! | `lock-panic` | token | no `.lock().unwrap()` while already holding a lock |
//! | `condvar-wait` | structure | every single-guard `Condvar::wait` sits inside a loop (spurious wakeups) |
//! | `join-order` | structure | channel endpoints drop before the consuming thread is joined |
//! | `shared-accumulator` | structure | no indexed compound-assign into shared buffers inside parallel closures |
//! | `config-drift` | index | core `canonical_fields`, serve `ACCEPTED_FIELDS`, and `canonical_hash` stay in lockstep |
//! | `bench-schema` | structure | sweep `TOP_KEYS`/`ROW_KEYS` consts match what `to_json` emits |
//! | `forbid-unsafe` | token | every crate root carries `#![forbid(unsafe_code)]` |
//! | `discarded-result` | token | no `let _ =` discarding a value in library code |
//! | `waiver` | meta | waivers are well-formed, name a real rule, and carry a reason |
//! | `stale-waiver` | meta | every waiver still suppresses something |
//!
//! Violations are hard CI errors, except `shared-accumulator` (a
//! heuristic, reported as a warning). The escape hatch is an inline
//! waiver with a mandatory reason:
//!
//! ```text
//! // ppbench: allow(hash-iteration, reason = "membership-only; order never observed")
//! ```
//!
//! An unused waiver is itself a finding (`stale-waiver`): the set of
//! reviewed exceptions only ratchets downward, tracked by the committed
//! [`baseline`] (`ANALYZE_BASELINE.json`) that CI checks. Findings can
//! also be rendered as SARIF 2.1.0 ([`sarif`]) for code-scanning upload.
//!
//! Tests, benches, examples, and `#[cfg(test)]` modules are exempt —
//! panicking is the assertion mechanism there. The vendored `shims/`
//! crates are excluded: they mirror third-party APIs, not project
//! invariants.
//!
//! Run it exactly as CI does:
//!
//! ```text
//! cargo run -p ppbench-analyze -- --workspace --deny-all --check-baseline
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod baseline;
pub mod diag;
pub mod engine;
pub mod index;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod sarif;
pub mod source;
pub mod waiver;
pub mod walk;

pub use diag::Diagnostic;
pub use engine::analyze;
pub use source::{FileKind, SourceFile};
