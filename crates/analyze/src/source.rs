//! Per-file analysis context: classification, the lexed token stream,
//! and the `#[cfg(test)]` exemption map.

use std::path::{Path, PathBuf};

use crate::lexer::{lex, Token};

/// How a file participates in the invariants. Only `Lib` and `Bin` are
/// production surface; everything else is exempt from the rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code shipped in a crate (`src/**` minus `src/bin/**`).
    Lib,
    /// Binary entry points (`src/bin/**`, `src/main.rs`). Held to the
    /// same standard as library code: `ppserved` and `pprank` are
    /// production surface, not scratch scripts.
    Bin,
    /// Tests, benches, examples, build scripts: exempt. Panicking is the
    /// idiomatic assertion mechanism there.
    TestLike,
}

/// One analyzed source file, lexed and classified.
pub struct SourceFile {
    /// Path as reported in diagnostics (workspace-relative when walked).
    pub path: PathBuf,
    /// Full source text.
    pub text: String,
    /// Crate (package) name, e.g. `ppbench-serve`.
    pub crate_name: String,
    /// Production-surface classification.
    pub kind: FileKind,
    /// True for the crate root (`src/lib.rs`), where the hygiene rule
    /// requires `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
    /// Every token, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens — the view rules scan.
    pub code: Vec<usize>,
    /// Half-open ranges over `code` positions that sit inside a
    /// `#[cfg(test)] mod … { … }` block and are exempt from all rules.
    test_ranges: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Lexes and indexes `text`.
    pub fn new(path: PathBuf, text: String, crate_name: String, kind: FileKind) -> Self {
        let is_crate_root = path.ends_with("src/lib.rs");
        let tokens = lex(&text);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        let test_ranges = find_test_ranges(&text, &tokens, &code);
        Self {
            path,
            text,
            crate_name,
            kind,
            is_crate_root,
            tokens,
            code,
            test_ranges,
        }
    }

    /// The `i`-th code token (panic-free: returns a zero token only if
    /// indexes are misused, which the unit tests pin down).
    pub fn code_token(&self, i: usize) -> &Token {
        &self.tokens[self.code[i]]
    }

    /// Text of the `i`-th code token.
    pub fn code_text(&self, i: usize) -> &str {
        self.code_token(i).text(&self.text)
    }

    /// Number of code tokens.
    pub fn code_len(&self) -> usize {
        self.code.len()
    }

    /// True when code-token position `i` lies inside a `#[cfg(test)]`
    /// module block.
    pub fn in_test_code(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| i >= s && i < e)
    }

    /// True when this file's rules should run at all.
    pub fn is_production(&self) -> bool {
        matches!(self.kind, FileKind::Lib | FileKind::Bin)
    }
}

/// Classifies a path relative to its crate directory.
pub fn classify(rel: &Path) -> FileKind {
    let comps: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
    let in_dir = |d: &str| comps.contains(&d);
    if in_dir("tests") || in_dir("benches") || in_dir("examples") {
        return FileKind::TestLike;
    }
    if comps.last() == Some(&"build.rs") {
        return FileKind::TestLike;
    }
    if in_dir("bin") || comps.last() == Some(&"main.rs") {
        return FileKind::Bin;
    }
    FileKind::Lib
}

/// Finds `code`-index ranges covered by `#[cfg(test)] mod name { … }`
/// (and `#[cfg(any(test, …))]` etc. — any cfg attribute that mentions the
/// bare ident `test`). Attributes and visibility modifiers (`pub`,
/// `pub(crate)`) between the cfg and the `mod` keyword are tolerated.
fn find_test_ranges(text: &str, tokens: &[Token], code: &[usize]) -> Vec<(usize, usize)> {
    let t = |i: usize| -> &str { tokens[code[i]].text(text) };
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < code.len() {
        // `#` `[` `cfg` `(` … `test` … `)` `]`
        if t(i) == "#" && i + 3 < code.len() && t(i + 1) == "[" && t(i + 2) == "cfg" {
            if let Some(close) = matching(code, tokens, text, i + 1, "[", "]") {
                let mentions_test = (i + 2..close).any(|j| t(j) == "test");
                if mentions_test {
                    // Skip any further attributes and a visibility
                    // modifier, then expect `mod`.
                    let mut j = close + 1;
                    while j < code.len() && t(j) == "#" {
                        match matching(code, tokens, text, j + 1, "[", "]") {
                            Some(c) => j = c + 1,
                            None => break,
                        }
                    }
                    if j < code.len() && t(j) == "pub" {
                        j += 1;
                        if j < code.len() && t(j) == "(" {
                            if let Some(c) = matching(code, tokens, text, j, "(", ")") {
                                j = c + 1;
                            }
                        }
                    }
                    if j + 1 < code.len() && t(j) == "mod" {
                        // `mod name {` — find the brace and its match.
                        let mut k = j + 1;
                        while k < code.len() && t(k) != "{" && t(k) != ";" {
                            k += 1;
                        }
                        if k < code.len() && t(k) == "{" {
                            if let Some(end) = matching(code, tokens, text, k, "{", "}") {
                                ranges.push((i, end + 1));
                                i = end + 1;
                                continue;
                            }
                        }
                    }
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    ranges
}

/// Index of the token matching the `open` delimiter at code position
/// `start` (which must hold `open`), or `None` if unbalanced.
fn matching(
    code: &[usize],
    tokens: &[Token],
    text: &str,
    start: usize,
    open: &str,
    close: &str,
) -> Option<usize> {
    let t = |i: usize| -> &str { tokens[code[i]].text(text) };
    if start >= code.len() || t(start) != open {
        return None;
    }
    let mut depth = 0usize;
    for i in start..code.len() {
        let s = t(i);
        if s == open {
            depth += 1;
        } else if s == close {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::new(
            PathBuf::from("crates/x/src/lib.rs"),
            src.to_string(),
            "x".into(),
            FileKind::Lib,
        )
    }

    #[test]
    fn cfg_test_mod_is_exempt() {
        let f = file(
            "fn a() { v.unwrap(); }\n\
             #[cfg(test)]\nmod tests {\n fn b() { v.unwrap(); }\n}\n\
             fn c() {}\n",
        );
        let unwraps: Vec<bool> = (0..f.code_len())
            .filter(|&i| f.code_text(i) == "unwrap")
            .map(|i| f.in_test_code(i))
            .collect();
        assert_eq!(unwraps, [false, true]);
        // `fn c` after the test mod is back in scope.
        let c = (0..f.code_len())
            .find(|&i| f.code_text(i) == "c")
            .expect("fn c");
        assert!(!f.in_test_code(c));
    }

    #[test]
    fn cfg_test_pub_crate_mod_is_exempt() {
        // Shared test-support modules (`#[cfg(test)] pub(crate) mod …`)
        // are test code like any other.
        let f = file(
            "#[cfg(test)]\npub(crate) mod tests_support {\n fn b() { v.unwrap(); }\n}\n\
             #[cfg(test)]\npub mod helpers {\n fn d() { w.unwrap(); }\n}\n\
             fn c() { x.unwrap(); }\n",
        );
        let unwraps: Vec<bool> = (0..f.code_len())
            .filter(|&i| f.code_text(i) == "unwrap")
            .map(|i| f.in_test_code(i))
            .collect();
        assert_eq!(unwraps, [true, true, false]);
    }

    #[test]
    fn cfg_any_test_counts() {
        let f = file("#[cfg(any(test, feature = \"x\"))]\nmod t { fn b() { v.unwrap(); } }\n");
        let u = (0..f.code_len())
            .find(|&i| f.code_text(i) == "unwrap")
            .expect("unwrap");
        assert!(f.in_test_code(u));
    }

    #[test]
    fn non_test_cfg_is_not_exempt() {
        let f = file("#[cfg(unix)]\nmod t { fn b() { v.unwrap(); } }\n");
        let u = (0..f.code_len())
            .find(|&i| f.code_text(i) == "unwrap")
            .expect("unwrap");
        assert!(!f.in_test_code(u));
    }

    #[test]
    fn classification() {
        assert_eq!(classify(Path::new("src/lib.rs")), FileKind::Lib);
        assert_eq!(classify(Path::new("src/bin/pprank.rs")), FileKind::Bin);
        assert_eq!(classify(Path::new("src/main.rs")), FileKind::Bin);
        assert_eq!(classify(Path::new("tests/t.rs")), FileKind::TestLike);
        assert_eq!(classify(Path::new("benches/b.rs")), FileKind::TestLike);
        assert_eq!(classify(Path::new("examples/e.rs")), FileKind::TestLike);
        assert_eq!(classify(Path::new("build.rs")), FileKind::TestLike);
    }

    #[test]
    fn crate_root_detection() {
        let f = file("fn x() {}");
        assert!(f.is_crate_root);
        let g = SourceFile::new(
            PathBuf::from("crates/x/src/other.rs"),
            String::new(),
            "x".into(),
            FileKind::Lib,
        );
        assert!(!g.is_crate_root);
    }
}
