//! Inline waivers: `// ppbench: allow(<rule>, reason = "…")`.
//!
//! A waiver suppresses diagnostics of the named rule on the waiver's own
//! line and on the next line that contains code (so it can ride at the
//! end of the offending line or sit on its own line above it; several
//! waivers for different rules stack on consecutive lines). The reason
//! string is mandatory — a waiver is a reviewed exception, and the
//! justification must travel with the code. A malformed waiver is itself
//! a diagnostic (`waiver`), so a typo cannot silently disable a rule.

use std::path::PathBuf;

use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// A parsed waiver.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rule this waiver suppresses.
    pub rule: String,
    /// File the waiver lives in (waivers never apply across files).
    pub path: PathBuf,
    /// Lines (1-based) the waiver covers: its own and the next code line.
    pub lines: [u32; 2],
    /// 1-based column of the waiver comment (stale-waiver anchoring).
    pub col: u32,
}

/// Scans comment tokens for waivers. Returns the usable waivers and
/// appends a `waiver` diagnostic for each malformed one.
pub fn scan(file: &SourceFile, known_rules: &[&str], out: &mut Vec<Diagnostic>) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    // Only plain comments can carry waivers: doc comments are rendered
    // documentation, where the syntax appears as prose (this file's own
    // docs included), not as a directive.
    let plain = |t: &&crate::lexer::Token| {
        matches!(
            t.kind,
            crate::lexer::TokenKind::LineComment { doc: false }
                | crate::lexer::TokenKind::BlockComment { doc: false }
        )
    };
    for tok in file.tokens.iter().filter(plain) {
        let text = tok.text(&file.text);
        let Some(at) = text.find("ppbench:") else {
            continue;
        };
        let rest = &text[at + "ppbench:".len()..];
        // `ppbench::core` in prose is a Rust path, not a waiver marker.
        if rest.starts_with(':') {
            continue;
        }
        let rest = rest.trim_start();
        let diag = |msg: String| Diagnostic {
            rule: "waiver",
            path: file.path.clone(),
            line: tok.line,
            col: tok.col,
            message: msg,
        };
        let Some(args) = rest
            .strip_prefix("allow")
            .map(str::trim_start)
            .and_then(|s| s.strip_prefix('('))
        else {
            out.push(diag(format!(
                "malformed waiver: expected `ppbench: allow(<rule>, reason = \"…\")`, \
                 found `{}`",
                text.trim()
            )));
            continue;
        };
        let Some(close) = args.rfind(')') else {
            out.push(diag("malformed waiver: missing closing `)`".into()));
            continue;
        };
        let args = &args[..close];
        let (rule, tail) = match args.split_once(',') {
            Some((r, t)) => (r.trim(), t.trim()),
            None => (args.trim(), ""),
        };
        if !known_rules.contains(&rule) {
            out.push(diag(format!(
                "waiver names unknown rule `{rule}` (known: {})",
                known_rules.join(", ")
            )));
            continue;
        }
        // The meta-rules police the waiver system itself; letting them be
        // waived would let a typo'd waiver silence its own malformed-ness.
        if rule == "waiver" || rule == "stale-waiver" {
            out.push(diag(format!("rule `{rule}` cannot be waived")));
            continue;
        }
        let reason = tail
            .strip_prefix("reason")
            .map(str::trim_start)
            .and_then(|s| s.strip_prefix('='))
            .map(str::trim)
            .and_then(|s| s.strip_prefix('"'))
            .and_then(|s| s.strip_suffix('"'))
            .unwrap_or("");
        if reason.trim().is_empty() {
            out.push(diag(format!(
                "waiver for `{rule}` has no reason; write \
                 `ppbench: allow({rule}, reason = \"why this is sound\")`"
            )));
            continue;
        }
        // Waivers inside `#[cfg(test)]` blocks are dead weight (no rule
        // fires there); skip them so they neither suppress nor count as
        // stale.
        let next_code = file
            .code
            .iter()
            .position(|&i| file.tokens[i].line > tok.line);
        if next_code.is_some_and(|i| file.in_test_code(i)) {
            continue;
        }
        let next_code_line = next_code
            .map(|i| file.code_token(i).line)
            .unwrap_or(tok.line);
        waivers.push(Waiver {
            rule: rule.to_string(),
            path: file.path.clone(),
            lines: [tok.line, next_code_line],
            col: tok.col,
        });
    }
    waivers
}

/// Applies waivers: removes diagnostics covered by one. Returns the
/// surviving diagnostics and, aligned with `waivers`, whether each waiver
/// suppressed at least one finding.
pub fn apply_tracking(diags: Vec<Diagnostic>, waivers: &[Waiver]) -> (Vec<Diagnostic>, Vec<bool>) {
    let mut used = vec![false; waivers.len()];
    let surviving = diags
        .into_iter()
        .filter(|d| {
            let mut suppressed = false;
            for (w, u) in waivers.iter().zip(used.iter_mut()) {
                if w.rule == d.rule && w.path == d.path && w.lines.contains(&d.line) {
                    *u = true;
                    suppressed = true;
                }
            }
            !suppressed
        })
        .collect();
    (surviving, used)
}

/// Applies waivers: removes diagnostics covered by one.
pub fn apply(diags: Vec<Diagnostic>, waivers: &[Waiver]) -> Vec<Diagnostic> {
    apply_tracking(diags, waivers).0
}

/// One `stale-waiver` diagnostic per unused waiver: the rule it names no
/// longer fires on the covered lines, so the waiver misstates what the
/// code needs and must be deleted (or the regression it hid has returned
/// elsewhere).
pub fn stale(waivers: &[Waiver], used: &[bool]) -> Vec<Diagnostic> {
    waivers
        .iter()
        .zip(used)
        .filter(|&(_, &u)| !u)
        .map(|(w, _)| Diagnostic {
            rule: "stale-waiver",
            path: w.path.clone(),
            line: w.lines[0],
            col: w.col,
            message: format!(
                "waiver for `{}` suppresses nothing: the rule no longer fires on \
                 line {} or {} — delete the waiver",
                w.rule, w.lines[0], w.lines[1]
            ),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;
    use std::path::PathBuf;

    const RULES: &[&str] = &["panic", "hash-iteration"];

    fn file(src: &str) -> SourceFile {
        SourceFile::new(
            PathBuf::from("crates/x/src/lib.rs"),
            src.to_string(),
            "x".into(),
            FileKind::Lib,
        )
    }

    fn diag(rule: &'static str, line: u32) -> Diagnostic {
        Diagnostic {
            rule,
            path: PathBuf::from("crates/x/src/lib.rs"),
            line,
            col: 1,
            message: String::new(),
        }
    }

    #[test]
    fn trailing_waiver_covers_its_line() {
        let f = file("x.unwrap(); // ppbench: allow(panic, reason = \"startup only\")\n");
        let mut out = Vec::new();
        let ws = scan(&f, RULES, &mut out);
        assert!(out.is_empty(), "{out:?}");
        assert_eq!(ws.len(), 1);
        let left = apply(vec![diag("panic", 1)], &ws);
        assert!(left.is_empty());
    }

    #[test]
    fn preceding_waiver_covers_next_code_line() {
        let f = file(
            "// ppbench: allow(panic, reason = \"proved in bounds\")\n\
             x.unwrap();\n",
        );
        let mut out = Vec::new();
        let ws = scan(&f, RULES, &mut out);
        let left = apply(vec![diag("panic", 2)], &ws);
        assert!(left.is_empty());
    }

    #[test]
    fn stacked_waivers_cover_one_target() {
        let f = file(
            "// ppbench: allow(panic, reason = \"a\")\n\
             // ppbench: allow(hash-iteration, reason = \"b\")\n\
             thing();\n",
        );
        let mut out = Vec::new();
        let ws = scan(&f, RULES, &mut out);
        assert!(out.is_empty());
        let left = apply(vec![diag("panic", 3), diag("hash-iteration", 3)], &ws);
        assert!(left.is_empty(), "{left:?}");
    }

    #[test]
    fn waiver_does_not_leak_to_other_rules_or_lines() {
        let f = file("// ppbench: allow(panic, reason = \"x\")\na();\nb();\n");
        let mut out = Vec::new();
        let ws = scan(&f, RULES, &mut out);
        let left = apply(vec![diag("hash-iteration", 2), diag("panic", 3)], &ws);
        assert_eq!(left.len(), 2);
    }

    #[test]
    fn missing_reason_is_a_diagnostic() {
        let f = file("x.unwrap(); // ppbench: allow(panic)\n");
        let mut out = Vec::new();
        let ws = scan(&f, RULES, &mut out);
        assert!(ws.is_empty());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "waiver");
        assert!(out[0].message.contains("no reason"));
    }

    #[test]
    fn unknown_rule_is_a_diagnostic() {
        let f = file("// ppbench: allow(nonsense, reason = \"x\")\n");
        let mut out = Vec::new();
        scan(&f, RULES, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("unknown rule"));
    }

    #[test]
    fn unused_waiver_is_reported_stale() {
        let f = file("// ppbench: allow(panic, reason = \"was needed once\")\nsafe();\n");
        let mut out = Vec::new();
        let ws = scan(&f, RULES, &mut out);
        assert_eq!(ws.len(), 1);
        let (left, used) = apply_tracking(Vec::new(), &ws);
        assert!(left.is_empty());
        assert_eq!(used, [false]);
        let stale_diags = stale(&ws, &used);
        assert_eq!(stale_diags.len(), 1);
        assert_eq!(stale_diags[0].rule, "stale-waiver");
        assert!(stale_diags[0].message.contains("panic"));
    }

    #[test]
    fn used_waiver_is_not_stale() {
        let f = file("x.unwrap(); // ppbench: allow(panic, reason = \"startup only\")\n");
        let mut out = Vec::new();
        let ws = scan(&f, RULES, &mut out);
        let (left, used) = apply_tracking(vec![diag("panic", 1)], &ws);
        assert!(left.is_empty());
        assert_eq!(used, [true]);
        assert!(stale(&ws, &used).is_empty());
    }

    #[test]
    fn meta_rules_cannot_be_waived() {
        let f = file("// ppbench: allow(waiver, reason = \"nope\")\nx();\n");
        let mut out = Vec::new();
        let ws = scan(&f, &["panic", "waiver", "stale-waiver"], &mut out);
        assert!(ws.is_empty());
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("cannot be waived"));
    }

    #[test]
    fn waivers_inside_test_modules_are_skipped() {
        let f = file(
            "#[cfg(test)]\nmod tests {\n\
             // ppbench: allow(panic, reason = \"pointless here\")\n\
             fn t() { x.unwrap(); }\n}\n",
        );
        let mut out = Vec::new();
        let ws = scan(&f, RULES, &mut out);
        assert!(ws.is_empty(), "{ws:?}");
        assert!(out.is_empty());
    }

    #[test]
    fn waiver_text_inside_string_literal_is_ignored() {
        let f = file("let s = \"// ppbench: allow(panic, reason = \\\"x\\\")\";\nx.unwrap();\n");
        let mut out = Vec::new();
        let ws = scan(&f, RULES, &mut out);
        assert!(ws.is_empty());
        assert!(out.is_empty());
    }
}
