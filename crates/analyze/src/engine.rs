//! The rule engine: runs every rule over a set of source files, applies
//! waivers, aggregates the workspace-wide lock graph and symbol index,
//! and returns the surviving diagnostics sorted by position.
//!
//! Two layers feed the rules: the token layer (the lexed code view every
//! rule has always scanned) and the structure layer (delimiter match map,
//! fn/const items, loop ranges — built once per file, shared by the
//! structural rules, and aggregated into the cross-crate
//! [`SymbolIndex`](crate::index::SymbolIndex)).

use std::collections::BTreeMap;

use crate::diag::Diagnostic;
use crate::index::SymbolIndex;
use crate::parse::Structure;
use crate::rules::{self, locks};
use crate::source::SourceFile;
use crate::waiver;

/// Everything one analysis run produces: the surviving diagnostics plus
/// the bookkeeping the ratchet baseline counts.
pub struct Report {
    /// Diagnostics that survived waivers, sorted by path, line, column.
    pub diags: Vec<Diagnostic>,
    /// Count of *used* waivers per rule (a waiver that suppressed at
    /// least one finding). The baseline ratchets these downward.
    pub used_waivers: BTreeMap<String, usize>,
}

/// Analyzes `files` and returns the surviving diagnostics.
pub fn analyze(files: &[SourceFile]) -> Vec<Diagnostic> {
    analyze_report(files).diags
}

/// Analyzes `files` (already classified and lexed) and returns the full
/// [`Report`].
pub fn analyze_report(files: &[SourceFile]) -> Report {
    let mut diags = Vec::new();
    let mut edges = Vec::new();
    let mut waivers = Vec::new();

    // Structure layer: one pass per production file, `None` elsewhere so
    // indices stay aligned with `files`.
    let structures: Vec<Option<Structure>> = files
        .iter()
        .map(|f| f.is_production().then(|| Structure::build(f)))
        .collect();
    let index = SymbolIndex::build(files, &structures);

    for (file, structure) in files.iter().zip(&structures) {
        if !file.is_production() {
            continue;
        }
        waivers.extend(waiver::scan(file, rules::ALL_RULES, &mut diags));
        rules::panics::check(file, &mut diags);
        rules::determinism::check(file, &mut diags);
        rules::hygiene::check(file, &mut diags);
        locks::check(file, &mut edges, &mut diags);
        if let Some(s) = structure {
            rules::condvar::check(file, s, &mut diags);
            rules::joins::check(file, s, &mut diags);
            rules::accum::check(file, s, &mut diags);
            if rules::in_scope("bench-schema", file) {
                rules::benchschema::check(file, s, &mut diags);
            }
        }
    }
    diags.extend(locks::cycles(&edges));
    rules::drift::check(files, &structures, &index, &mut diags);

    let (mut diags, used) = waiver::apply_tracking(diags, &waivers);
    diags.extend(waiver::stale(&waivers, &used));

    let mut used_waivers: BTreeMap<String, usize> = BTreeMap::new();
    for (w, u) in waivers.iter().zip(&used) {
        if *u {
            *used_waivers.entry(w.rule.clone()).or_insert(0) += 1;
        }
    }

    diags.sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    // Overlapping structural regions (e.g. nested parallel combinators)
    // can observe one site twice; identical findings collapse.
    diags.dedup_by(|a, b| {
        a.rule == b.rule && a.path == b.path && a.line == b.line && a.col == b.col
    });
    Report {
        diags,
        used_waivers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};
    use std::path::PathBuf;

    fn lib_file(path: &str, crate_name: &str, src: &str) -> SourceFile {
        SourceFile::new(
            PathBuf::from(path),
            src.to_string(),
            crate_name.into(),
            FileKind::Lib,
        )
    }

    #[test]
    fn test_like_files_are_skipped_entirely() {
        let f = SourceFile::new(
            PathBuf::from("crates/x/tests/t.rs"),
            "fn f() { x.unwrap(); panic!(); }".into(),
            "ppbench-core".into(),
            FileKind::TestLike,
        );
        assert!(analyze(&[f]).is_empty());
    }

    #[test]
    fn cross_file_lock_cycle_is_found() {
        let a = lib_file(
            "crates/serve/src/a.rs",
            "ppbench-serve",
            "#![forbid(unsafe_code)]\n\
             fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); touch(a, b); }",
        );
        let b = lib_file(
            "crates/serve/src/b.rs",
            "ppbench-serve",
            "fn g(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); touch(a, b); }",
        );
        let diags = analyze(&[a, b]);
        let cycle: Vec<_> = diags.iter().filter(|d| d.rule == "lock-order").collect();
        assert_eq!(cycle.len(), 2, "{diags:?}");
    }

    #[test]
    fn waived_violation_is_suppressed() {
        let f = lib_file(
            "crates/core/src/x.rs",
            "ppbench-core",
            "fn f() {\n\
             // ppbench: allow(panic, reason = \"init-time invariant, cannot fail\")\n\
             x.unwrap();\n}\n",
        );
        let diags = analyze(&[f]);
        assert!(diags.iter().all(|d| d.rule != "panic"), "{diags:?}");
    }

    #[test]
    fn stale_waiver_surfaces_and_used_waivers_are_counted() {
        let f = lib_file(
            "crates/core/src/x.rs",
            "ppbench-core",
            "#![forbid(unsafe_code)]\n\
             // ppbench: allow(panic, reason = \"sound\")\n\
             x.unwrap();\n\
             // ppbench: allow(panic, reason = \"nothing here panics\")\n\
             safe();\n",
        );
        let report = analyze_report(&[f]);
        let stale: Vec<_> = report
            .diags
            .iter()
            .filter(|d| d.rule == "stale-waiver")
            .collect();
        assert_eq!(stale.len(), 1, "{:?}", report.diags);
        assert_eq!(stale[0].line, 4);
        assert_eq!(report.used_waivers.get("panic"), Some(&1));
    }

    #[test]
    fn structural_rules_run_through_the_engine() {
        let f = lib_file(
            "crates/serve/src/x.rs",
            "ppbench-serve",
            "fn f(&self) { let s = self.m.lock(); let g = self.cv.wait(s); touch(g); }",
        );
        let diags = analyze(&[f]);
        assert!(diags.iter().any(|d| d.rule == "condvar-wait"), "{diags:?}");
    }

    #[test]
    fn diagnostics_are_sorted() {
        let f = lib_file(
            "crates/core/src/x.rs",
            "ppbench-core",
            "fn f() { b.unwrap(); }\nfn g() { a.unwrap(); }\n",
        );
        let diags = analyze(&[f]);
        assert_eq!(diags.len(), 2);
        assert!(diags[0].line < diags[1].line);
    }
}
