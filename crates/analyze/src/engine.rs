//! The rule engine: runs every rule over a set of source files, applies
//! waivers, aggregates the workspace-wide lock graph, and returns the
//! surviving diagnostics sorted by position.

use crate::diag::Diagnostic;
use crate::rules::{self, locks};
use crate::source::SourceFile;
use crate::waiver;

/// Analyzes `files` (already classified and lexed) and returns the
/// diagnostics that survive waivers, sorted by path, line, column.
pub fn analyze(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut edges = Vec::new();
    let mut waivers = Vec::new();

    for file in files {
        if !file.is_production() {
            continue;
        }
        waivers.extend(waiver::scan(file, rules::ALL_RULES, &mut diags));
        rules::panics::check(file, &mut diags);
        rules::determinism::check(file, &mut diags);
        rules::hygiene::check(file, &mut diags);
        locks::check(file, &mut edges, &mut diags);
    }
    diags.extend(locks::cycles(&edges));

    let mut diags = waiver::apply(diags, &waivers);
    diags.sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};
    use std::path::PathBuf;

    fn lib_file(path: &str, crate_name: &str, src: &str) -> SourceFile {
        SourceFile::new(
            PathBuf::from(path),
            src.to_string(),
            crate_name.into(),
            FileKind::Lib,
        )
    }

    #[test]
    fn test_like_files_are_skipped_entirely() {
        let f = SourceFile::new(
            PathBuf::from("crates/x/tests/t.rs"),
            "fn f() { x.unwrap(); panic!(); }".into(),
            "ppbench-core".into(),
            FileKind::TestLike,
        );
        assert!(analyze(&[f]).is_empty());
    }

    #[test]
    fn cross_file_lock_cycle_is_found() {
        let a = lib_file(
            "crates/serve/src/a.rs",
            "ppbench-serve",
            "#![forbid(unsafe_code)]\n\
             fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); touch(a, b); }",
        );
        let b = lib_file(
            "crates/serve/src/b.rs",
            "ppbench-serve",
            "fn g(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); touch(a, b); }",
        );
        let diags = analyze(&[a, b]);
        let cycle: Vec<_> = diags.iter().filter(|d| d.rule == "lock-order").collect();
        assert_eq!(cycle.len(), 2, "{diags:?}");
    }

    #[test]
    fn waived_violation_is_suppressed() {
        let f = lib_file(
            "crates/core/src/x.rs",
            "ppbench-core",
            "fn f() {\n\
             // ppbench: allow(panic, reason = \"init-time invariant, cannot fail\")\n\
             x.unwrap();\n}\n",
        );
        let diags = analyze(&[f]);
        assert!(diags.iter().all(|d| d.rule != "panic"), "{diags:?}");
    }

    #[test]
    fn diagnostics_are_sorted() {
        let f = lib_file(
            "crates/core/src/x.rs",
            "ppbench-core",
            "fn f() { b.unwrap(); }\nfn g() { a.unwrap(); }\n",
        );
        let diags = analyze(&[f]);
        assert_eq!(diags.len(), 2);
        assert!(diags[0].line < diags[1].line);
    }
}
