//! A per-crate symbol index over the structural view.
//!
//! The cross-file consistency rules need to answer "which file in crate X
//! defines `canonical_fields` / `ACCEPTED_FIELDS`?" without re-walking
//! every file per query. The engine builds one [`SymbolIndex`] per
//! analysis run from the per-file [`Structure`]s; entries point back into
//! the file list by position, so rules can recover both the
//! [`SourceFile`](crate::source::SourceFile) and the item ranges.

use std::collections::BTreeMap;

use crate::parse::Structure;
use crate::source::SourceFile;

/// Where one named item lives: which file (by position in the analyzed
/// file slice) and which item slot inside that file's [`Structure`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymbolRef {
    /// Index into the slice of files handed to the engine.
    pub file: usize,
    /// Index into `Structure::fns` or `Structure::consts`.
    pub item: usize,
}

/// Symbols of one crate: function and const/static definitions by name.
/// Names are not unique across modules; each name maps to every
/// definition site, in file-walk order.
#[derive(Debug, Default)]
pub struct CrateSymbols {
    /// `fn` definitions by name.
    pub fns: BTreeMap<String, Vec<SymbolRef>>,
    /// `const`/`static` definitions by name.
    pub consts: BTreeMap<String, Vec<SymbolRef>>,
}

/// The workspace-wide index: crate name → its symbols.
#[derive(Debug, Default)]
pub struct SymbolIndex {
    crates: BTreeMap<String, CrateSymbols>,
}

impl SymbolIndex {
    /// Builds the index from files and their parallel structural views
    /// (`structures[i]` must describe `files[i]`). Only production files
    /// contribute; test-like files never define workspace invariants.
    pub fn build(files: &[SourceFile], structures: &[Option<Structure>]) -> Self {
        let mut index = SymbolIndex::default();
        for (fi, (file, structure)) in files.iter().zip(structures).enumerate() {
            let Some(s) = structure else { continue };
            let krate = index.crates.entry(file.crate_name.clone()).or_default();
            for (ii, f) in s.fns.iter().enumerate() {
                krate
                    .fns
                    .entry(f.name.clone())
                    .or_default()
                    .push(SymbolRef { file: fi, item: ii });
            }
            for (ii, c) in s.consts.iter().enumerate() {
                krate
                    .consts
                    .entry(c.name.clone())
                    .or_default()
                    .push(SymbolRef { file: fi, item: ii });
            }
        }
        index
    }

    /// The first definition of `fn name` in `crate_name`, if any.
    pub fn find_fn(&self, crate_name: &str, name: &str) -> Option<SymbolRef> {
        self.crates.get(crate_name)?.fns.get(name)?.first().copied()
    }

    /// The first definition of const/static `name` in `crate_name`.
    pub fn find_const(&self, crate_name: &str, name: &str) -> Option<SymbolRef> {
        self.crates
            .get(crate_name)?
            .consts
            .get(name)?
            .first()
            .copied()
    }

    /// Every definition of const/static `name` in `crate_name`.
    pub fn find_consts(&self, crate_name: &str, name: &str) -> &[SymbolRef] {
        self.crates
            .get(crate_name)
            .and_then(|c| c.consts.get(name))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;
    use std::path::PathBuf;

    fn file(path: &str, krate: &str, src: &str) -> SourceFile {
        SourceFile::new(
            PathBuf::from(path),
            src.to_string(),
            krate.into(),
            FileKind::Lib,
        )
    }

    #[test]
    fn symbols_resolve_per_crate() {
        let files = vec![
            file(
                "crates/a/src/lib.rs",
                "crate-a",
                "pub fn alpha() {}\npub const K: u32 = 1;",
            ),
            file("crates/b/src/lib.rs", "crate-b", "pub fn alpha() {}"),
        ];
        let structures: Vec<Option<Structure>> =
            files.iter().map(|f| Some(Structure::build(f))).collect();
        let idx = SymbolIndex::build(&files, &structures);
        assert_eq!(
            idx.find_fn("crate-a", "alpha"),
            Some(SymbolRef { file: 0, item: 0 })
        );
        assert_eq!(
            idx.find_fn("crate-b", "alpha"),
            Some(SymbolRef { file: 1, item: 0 })
        );
        assert_eq!(
            idx.find_const("crate-a", "K"),
            Some(SymbolRef { file: 0, item: 0 })
        );
        assert!(idx.find_const("crate-b", "K").is_none());
        assert!(idx.find_fn("crate-c", "alpha").is_none());
    }
}
