//! A hand-rolled, comment/string/lifetime-aware Rust lexer.
//!
//! The rules in this crate are lexical: they must never fire on the word
//! `unwrap` inside a string literal or a doc comment, and they must not
//! confuse the lifetime `'a` with the char literal `'a'`. A full parser
//! would be overkill; a token stream that classifies those regions
//! correctly is exactly enough. The lexer is lossless over code (every
//! non-whitespace byte lands in some token) and keeps comments as tokens
//! so the waiver scanner can read them.

/// What a token is. Comments are retained (waivers live in them); rules
/// iterate over the non-comment view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unwrap`, `r#match` …).
    Ident,
    /// A lifetime such as `'a` (including `'static`).
    Lifetime,
    /// A char or byte-char literal: `'x'`, `'\n'`, `b'\0'`.
    CharLit,
    /// Any string literal: `"…"`, `r#"…"#`, `b"…"`, `br"…"`, `c"…"`.
    StrLit,
    /// A numeric literal (integer or float, any base, with suffix).
    Number,
    /// `// …` comment; `doc` is true for `///` and `//!` forms.
    LineComment {
        /// True for `///` and `//!` (rustdoc) comments.
        doc: bool,
    },
    /// `/* … */` comment (nesting handled); `doc` for `/**` and `/*!`.
    BlockComment {
        /// True for `/**` and `/*!` (rustdoc) comments.
        doc: bool,
    },
    /// A single punctuation byte (`.`, `[`, `#`, …). Multi-byte operators
    /// arrive as consecutive `Punct` tokens, which is fine for our rules.
    Punct,
}

/// One lexed token: kind plus byte span and 1-based source position.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the first byte.
    pub col: u32,
}

impl Token {
    /// The token's source text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// True for either comment kind.
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment { .. } | TokenKind::BlockComment { .. }
        )
    }
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic() || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        self.src.get(self.pos + ahead).copied().unwrap_or(0)
    }

    fn bump(&mut self) {
        // Never step past EOF: `bump_n(2)` over a backslash escape that is
        // the final byte would otherwise leave `pos > src.len()` and
        // produce a token whose span panics when sliced.
        if self.pos >= self.src.len() {
            return;
        }
        if self.peek(0) == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// Consumes an ident run starting at the cursor.
    fn eat_ident(&mut self) {
        while is_ident_continue(self.peek(0)) {
            self.bump();
        }
    }

    /// Consumes a `"…"` body (opening quote already consumed), honoring
    /// backslash escapes. Stops at EOF without error (rules still work on
    /// truncated input).
    fn eat_str_body(&mut self) {
        loop {
            match self.peek(0) {
                0 if self.pos >= self.src.len() => return,
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Consumes a raw-string body: `#…#"…"#…#` with `hashes` hash signs.
    /// The `r`/`br` prefix and the hashes+quote are consumed here.
    fn eat_raw_str(&mut self, hashes: usize) {
        self.bump_n(hashes + 1); // the '#'s and the opening quote
        loop {
            if self.pos >= self.src.len() {
                return;
            }
            if self.peek(0) == b'"' {
                let mut n = 0;
                while n < hashes && self.peek(1 + n) == b'#' {
                    n += 1;
                }
                if n == hashes {
                    self.bump_n(1 + hashes);
                    return;
                }
            }
            self.bump();
        }
    }
}

/// Number of `#` signs between the cursor position and a `"` that would
/// open a raw string, or `None` if this is not a raw-string start.
fn raw_str_hashes(cur: &Cursor<'_>, from: usize) -> Option<usize> {
    let mut n = 0;
    while cur.peek(from + n) == b'#' {
        n += 1;
    }
    (cur.peek(from + n) == b'"').then_some(n)
}

/// Lexes `src` into tokens. Never fails: unrecognized bytes become
/// `Punct` tokens, unterminated literals run to EOF.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut tokens = Vec::new();
    while cur.pos < cur.src.len() {
        let b = cur.peek(0);
        if b.is_ascii_whitespace() {
            cur.bump();
            continue;
        }
        let (start, line, col) = (cur.pos, cur.line, cur.col);
        let kind = lex_one(&mut cur);
        tokens.push(Token {
            kind,
            start,
            end: cur.pos,
            line,
            col,
        });
    }
    tokens
}

/// Lexes exactly one token at the cursor (which is on a non-whitespace
/// byte) and returns its kind.
fn lex_one(cur: &mut Cursor<'_>) -> TokenKind {
    let b = cur.peek(0);

    // Comments.
    if b == b'/' && cur.peek(1) == b'/' {
        let doc = (cur.peek(2) == b'/' && cur.peek(3) != b'/') || cur.peek(2) == b'!';
        while cur.pos < cur.src.len() && cur.peek(0) != b'\n' {
            cur.bump();
        }
        return TokenKind::LineComment { doc };
    }
    if b == b'/' && cur.peek(1) == b'*' {
        let doc = (cur.peek(2) == b'*' && cur.peek(3) != b'*' && cur.peek(3) != b'/')
            || cur.peek(2) == b'!';
        cur.bump_n(2);
        let mut depth = 1usize;
        while cur.pos < cur.src.len() && depth > 0 {
            if cur.peek(0) == b'/' && cur.peek(1) == b'*' {
                depth += 1;
                cur.bump_n(2);
            } else if cur.peek(0) == b'*' && cur.peek(1) == b'/' {
                depth -= 1;
                cur.bump_n(2);
            } else {
                cur.bump();
            }
        }
        return TokenKind::BlockComment { doc };
    }

    // String-ish prefixes and raw identifiers. Handled before plain
    // idents so `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'`, `c"…"` and
    // `r#ident` classify correctly.
    if b == b'r' {
        if let Some(h) = raw_str_hashes(cur, 1) {
            cur.bump(); // 'r'
            cur.eat_raw_str(h);
            return TokenKind::StrLit;
        }
        if cur.peek(1) == b'#' && is_ident_start(cur.peek(2)) {
            cur.bump_n(2); // "r#"
            cur.eat_ident();
            return TokenKind::Ident;
        }
    }
    if b == b'b' || b == b'c' {
        if cur.peek(1) == b'"' {
            cur.bump_n(2);
            cur.eat_str_body();
            return TokenKind::StrLit;
        }
        if b == b'b' && cur.peek(1) == b'r' {
            if let Some(h) = raw_str_hashes(cur, 2) {
                cur.bump_n(2); // "br"
                cur.eat_raw_str(h);
                return TokenKind::StrLit;
            }
        }
        if b == b'b' && cur.peek(1) == b'\'' {
            cur.bump(); // 'b'; fall through to char-literal handling below
            lex_quote(cur);
            return TokenKind::CharLit;
        }
    }

    if is_ident_start(b) {
        cur.eat_ident();
        return TokenKind::Ident;
    }

    if b.is_ascii_digit() {
        eat_number(cur);
        return TokenKind::Number;
    }

    if b == b'"' {
        cur.bump();
        cur.eat_str_body();
        return TokenKind::StrLit;
    }

    if b == b'\'' {
        return lex_quote(cur);
    }

    cur.bump();
    TokenKind::Punct
}

/// Disambiguates `'a` (lifetime) from `'a'` / `'\n'` (char literal). The
/// cursor is on the opening quote.
fn lex_quote(cur: &mut Cursor<'_>) -> TokenKind {
    // `'` + ident-run + no closing quote => lifetime.
    if is_ident_start(cur.peek(1)) {
        let mut n = 1;
        while is_ident_continue(cur.peek(n)) {
            n += 1;
        }
        if cur.peek(n) != b'\'' {
            cur.bump_n(n);
            return TokenKind::Lifetime;
        }
    }
    // Otherwise a char literal: quote, (escape | byte), quote.
    cur.bump(); // opening '
    if cur.peek(0) == b'\\' {
        cur.bump_n(2);
        // Escapes like \u{1F600} contain braces; eat to the closing quote.
        while cur.pos < cur.src.len() && cur.peek(0) != b'\'' {
            cur.bump();
        }
    } else {
        while cur.pos < cur.src.len() && cur.peek(0) != b'\'' {
            cur.bump();
        }
    }
    if cur.peek(0) == b'\'' {
        cur.bump();
    }
    TokenKind::CharLit
}

/// Consumes a numeric literal. Deliberately permissive: exactness of the
/// numeric grammar does not affect any rule, but `1..n` must leave the
/// range dots alone and `1.5e-3` must stay one token.
fn eat_number(cur: &mut Cursor<'_>) {
    while cur.peek(0).is_ascii_alphanumeric() || cur.peek(0) == b'_' {
        cur.bump();
    }
    // Fractional part: only if the dot is followed by a digit (so `1..n`
    // and `1.method()` do not swallow the dot).
    if cur.peek(0) == b'.' && cur.peek(1).is_ascii_digit() {
        cur.bump();
        while cur.peek(0).is_ascii_alphanumeric() || cur.peek(0) == b'_' {
            cur.bump();
        }
    }
    // Exponent sign: `1e-3` lexes the `-` as part of the number only when
    // the previous byte was e/E and a digit follows.
    if (cur.peek(0) == b'-' || cur.peek(0) == b'+')
        && cur.pos > 0
        && matches!(cur.src[cur.pos - 1], b'e' | b'E')
        && cur.peek(1).is_ascii_digit()
    {
        cur.bump();
        while cur.peek(0).is_ascii_digit() || cur.peek(0) == b'_' {
            cur.bump();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_and_punct() {
        let ts = kinds("foo.bar(x)?;");
        let texts: Vec<&str> = ts.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(texts, ["foo", ".", "bar", "(", "x", ")", "?", ";"]);
        assert!(ts.iter().take(1).all(|(k, _)| *k == TokenKind::Ident));
    }

    #[test]
    fn unwrap_in_string_is_a_string() {
        let ts = kinds(r#"let s = "x.unwrap()";"#);
        assert!(ts
            .iter()
            .any(|(k, s)| *k == TokenKind::StrLit && s.contains("unwrap")));
        assert!(!ts
            .iter()
            .any(|(k, s)| *k == TokenKind::Ident && s == "unwrap"));
    }

    #[test]
    fn raw_strings_with_hashes_and_quotes() {
        let src = r##"let s = r#"says "unwrap()" here"#; x"##;
        let ts = kinds(src);
        assert!(ts
            .iter()
            .any(|(k, s)| *k == TokenKind::StrLit && s.contains("says")));
        let last = ts.last().expect("tokens");
        assert_eq!((last.0, last.1.as_str()), (TokenKind::Ident, "x"));
    }

    #[test]
    fn byte_and_c_strings() {
        let ts = kinds(r##"(b"ab", br#"cd"#, c"ef", b'z')"##);
        assert_eq!(
            ts.iter().filter(|(k, _)| *k == TokenKind::StrLit).count(),
            3
        );
        assert!(ts.iter().any(|(k, _)| *k == TokenKind::CharLit));
    }

    #[test]
    fn lifetime_vs_char() {
        let ts = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        assert_eq!(
            ts.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count(),
            2
        );
        assert_eq!(
            ts.iter().filter(|(k, _)| *k == TokenKind::CharLit).count(),
            2
        );
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let ts = kinds("/* a /* b */ c */ after");
        assert_eq!(ts.len(), 2);
        assert!(matches!(ts[0].0, TokenKind::BlockComment { .. }));
        assert_eq!(ts[1].1, "after");
    }

    #[test]
    fn doc_comment_flags() {
        let ts = lex("/// doc\n//! doc\n// plain\n//// not-doc\n/** doc */ /* plain */");
        let docs: Vec<bool> = ts
            .iter()
            .map(|t| match t.kind {
                TokenKind::LineComment { doc } | TokenKind::BlockComment { doc } => doc,
                _ => panic!("only comments here"),
            })
            .collect();
        assert_eq!(docs, [true, true, false, false, true, false]);
    }

    #[test]
    fn raw_ident_lexes_as_ident() {
        let ts = kinds("let r#match = 1;");
        assert!(ts
            .iter()
            .any(|(k, s)| *k == TokenKind::Ident && s == "r#match"));
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let texts: Vec<String> = kinds("for i in 1..n { a[i] = 1.5e-3; }")
            .into_iter()
            .map(|(_, s)| s)
            .collect();
        assert!(texts.contains(&"1".to_string()));
        assert!(texts.contains(&"1.5e-3".to_string()));
        assert_eq!(texts.iter().filter(|s| s.as_str() == ".").count(), 2);
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let ts = lex("a\n  bb\n");
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
    }

    #[test]
    fn escaped_quote_in_string() {
        let ts = kinds(r#""a\"b" x"#);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[1].1, "x");
    }

    #[test]
    fn truncated_escape_at_eof_stays_in_bounds() {
        // A backslash escape as the very last byte must not push the token
        // span past the end of the source (`Token::text` would panic).
        for src in ["let s = \"abc\\", "let c = '\\", "b'\\", "\"\\"] {
            let ts = lex(src);
            for t in &ts {
                assert!(t.end <= src.len(), "token {t:?} out of bounds in {src:?}");
                let _ = t.text(src); // must not panic
            }
        }
    }

    #[test]
    fn unterminated_literals_run_to_eof() {
        let ts = kinds("let s = \"never closed");
        let last = ts.last().expect("tokens");
        assert_eq!(last.0, TokenKind::StrLit);
        assert_eq!(last.1, "\"never closed");
        let ts = kinds("r#\"raw never closed");
        assert_eq!(ts.last().expect("tokens").0, TokenKind::StrLit);
    }
}
