//! A lightweight token-tree/block view over a [`SourceFile`] — the
//! structure layer between the lexer and the rules that need more than a
//! flat token scan.
//!
//! This is deliberately **not** an AST. It computes exactly three things
//! the structural rules consume:
//!
//! * a delimiter match map (`(` ↔ `)`, `[` ↔ `]`, `{` ↔ `}`) over the
//!   code-token view, so rules can skip argument lists and bodies in O(1);
//! * item headers: every `fn` with its name and body range, and every
//!   `const`/`static` with its name and initializer range (the symbol
//!   index and the cross-file consistency rules key off these);
//! * loop body ranges (`loop`/`while`/`for`), so `Condvar::wait` sites can
//!   be classified as inside or outside a retry loop.
//!
//! All positions are indices into the file's *code-token* view (comments
//! excluded), matching what every rule already iterates over.

use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// One `fn` item: its name and (when present) the code-index range of its
/// body braces.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name (`r#`-prefix stripped is not attempted; names in this
    /// workspace are plain identifiers).
    pub name: String,
    /// Code index of the name ident.
    pub name_idx: usize,
    /// Code indices of the body `{` and `}` (inclusive), or `None` for
    /// trait-method declarations (`fn f();`).
    pub body: Option<(usize, usize)>,
}

/// One `const` or `static` item: its name and initializer range.
#[derive(Debug, Clone)]
pub struct ConstItem {
    /// Item name (`ACCEPTED_FIELDS`, `TOP_KEYS`, …).
    pub name: String,
    /// Code index of the name ident.
    pub name_idx: usize,
    /// Code-index range `(first, last)` of the initializer expression —
    /// the tokens strictly between `=` and the terminating `;`.
    pub value: (usize, usize),
}

/// The structural view of one file. Built once per file by the engine and
/// shared by every structural rule.
pub struct Structure {
    /// `match_map[i]` is the code index of the delimiter matching the one
    /// at code index `i` (`None` for non-delimiters and unbalanced ones).
    match_map: Vec<Option<usize>>,
    /// Every `fn` item, in source order.
    pub fns: Vec<FnItem>,
    /// Every `const`/`static` item, in source order.
    pub consts: Vec<ConstItem>,
    /// Body ranges (code indices of `{` and `}`) of every `loop`, `while`,
    /// and `for`, in source order.
    loop_bodies: Vec<(usize, usize)>,
}

impl Structure {
    /// Builds the structural view for `file`.
    pub fn build(file: &SourceFile) -> Self {
        let match_map = build_match_map(file);
        let mut s = Structure {
            match_map,
            fns: Vec::new(),
            consts: Vec::new(),
            loop_bodies: Vec::new(),
        };
        s.collect_items(file);
        s.collect_loops(file);
        s
    }

    /// The code index matching the delimiter at code index `i`.
    pub fn matching(&self, i: usize) -> Option<usize> {
        self.match_map.get(i).copied().flatten()
    }

    /// True when code index `i` lies strictly inside the body of some
    /// `loop`/`while`/`for`.
    pub fn in_loop(&self, i: usize) -> bool {
        self.loop_bodies.iter().any(|&(s, e)| i > s && i < e)
    }

    /// The innermost `fn` whose body contains code index `i`.
    pub fn fn_containing(&self, i: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter_map(|f| {
                let (s, e) = f.body?;
                (i > s && i < e).then_some((f, e - s))
            })
            .min_by_key(|&(_, span)| span)
            .map(|(f, _)| f)
    }

    /// The named function, if the file defines one.
    pub fn fn_named(&self, name: &str) -> Option<&FnItem> {
        self.fns.iter().find(|f| f.name == name)
    }

    /// The named const/static, if the file defines one.
    pub fn const_named(&self, name: &str) -> Option<&ConstItem> {
        self.consts.iter().find(|c| c.name == name)
    }

    /// Starting at code index `i`, skips forward over complete delimiter
    /// groups until a token satisfying `stop` is found at the current
    /// nesting level. Returns its index.
    fn scan_to(
        &self,
        file: &SourceFile,
        mut i: usize,
        stop: impl Fn(&str) -> bool,
    ) -> Option<usize> {
        let n = file.code_len();
        while i < n {
            let t = file.code_text(i);
            if stop(t) {
                return Some(i);
            }
            if matches!(t, "(" | "[" | "{") {
                match self.matching(i) {
                    Some(close) => i = close + 1,
                    None => return None,
                }
            } else {
                i += 1;
            }
        }
        None
    }

    fn collect_items(&mut self, file: &SourceFile) {
        let n = file.code_len();
        let mut i = 0;
        while i < n {
            match file.code_text(i) {
                // `fn name` — but not the `fn(args)` of a function-pointer
                // type, whose next token is `(` (a Punct, so the kind
                // check below rejects it).
                "fn" if i + 1 < n && file.code_token(i + 1).kind == TokenKind::Ident => {
                    let name_idx = i + 1;
                    let name = file.code_text(name_idx).to_string();
                    // The body is the first `{` after the header; the
                    // header can contain `(`/`[` groups (args, array types)
                    // which scan_to skips whole. A `;` first means a
                    // bodyless declaration.
                    let body = self
                        .scan_to(file, name_idx + 1, |t| t == "{" || t == ";")
                        .filter(|&j| file.code_text(j) == "{")
                        .and_then(|j| self.matching(j).map(|e| (j, e)));
                    self.fns.push(FnItem {
                        name,
                        name_idx,
                        body,
                    });
                    if let Some((body_open, _)) = self.fns.last().and_then(|f| f.body) {
                        // Nested fns are rare here; descend into bodies so
                        // they are still collected.
                        i = body_open + 1;
                        continue;
                    }
                    i = name_idx + 1;
                }
                // `const NAME: Ty = value;` / `static NAME: Ty = value;`
                // (skipping `const fn`, handled by the arm above on the
                // next iteration, and `const _` placeholders).
                "const" | "static"
                    if i + 1 < n
                        && file.code_token(i + 1).kind == TokenKind::Ident
                        && !matches!(file.code_text(i + 1), "fn" | "mut" | "_") =>
                {
                    let name_idx = i + 1;
                    let eq = self.scan_to(file, name_idx + 1, |t| t == "=" || t == ";");
                    if let Some(eq) = eq.filter(|&j| file.code_text(j) == "=") {
                        if let Some(semi) = self.scan_to(file, eq + 1, |t| t == ";") {
                            if semi > eq + 1 {
                                self.consts.push(ConstItem {
                                    name: file.code_text(name_idx).to_string(),
                                    name_idx,
                                    value: (eq + 1, semi - 1),
                                });
                            }
                            i = semi + 1;
                            continue;
                        }
                    }
                    i = name_idx + 1;
                }
                _ => i += 1,
            }
        }
    }

    fn collect_loops(&mut self, file: &SourceFile) {
        let n = file.code_len();
        for i in 0..n {
            if !matches!(file.code_text(i), "loop" | "while" | "for") {
                continue;
            }
            if file.code_token(i).kind != TokenKind::Ident {
                continue;
            }
            // `for` also appears in `impl Trait for Type`; in that position
            // the body brace belongs to the impl, not a loop. Disambiguate
            // by what precedes: a loop's `for` begins a statement or
            // follows a label, an impl's follows a type path.
            if file.code_text(i) == "for" && i > 0 {
                let prev = file.code_text(i - 1);
                let prev_kind = file.code_token(i - 1).kind;
                let statement_like = matches!(prev, "{" | "}" | ";" | ":" | "=" | ",");
                if !statement_like && (prev_kind == TokenKind::Ident || matches!(prev, ">" | ")")) {
                    continue;
                }
            }
            // The first `{` outside any `(`/`[` group after the keyword is
            // the loop body (Rust forbids bare struct literals in loop
            // headers, so no earlier `{` can appear at this level).
            if let Some(open) = self.scan_to(file, i + 1, |t| t == "{" || t == ";") {
                if file.code_text(open) == "{" {
                    if let Some(close) = self.matching(open) {
                        self.loop_bodies.push((open, close));
                    }
                }
            }
        }
    }
}

/// Builds the delimiter match map over the code-token view with a single
/// stack pass. Mismatched pairs (possible on torn input) stay `None`.
fn build_match_map(file: &SourceFile) -> Vec<Option<usize>> {
    let n = file.code_len();
    let mut map = vec![None; n];
    let mut stack: Vec<(usize, &str)> = Vec::new();
    for i in 0..n {
        match file.code_text(i) {
            t @ ("(" | "[" | "{") => stack.push((i, t)),
            ")" | "]" | "}" => {
                let want = match file.code_text(i) {
                    ")" => "(",
                    "]" => "[",
                    _ => "{",
                };
                // Pop through mismatches so one stray delimiter cannot
                // poison the rest of the file.
                while let Some((open, kind)) = stack.pop() {
                    if kind == want {
                        map[open] = Some(i);
                        map[i] = Some(open);
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;
    use std::path::PathBuf;

    fn file(src: &str) -> SourceFile {
        SourceFile::new(
            PathBuf::from("crates/x/src/parse_fixture.rs"),
            src.to_string(),
            "x".into(),
            FileKind::Lib,
        )
    }

    #[test]
    fn match_map_pairs_all_three_delimiters() {
        let f = file("fn f(a: [u8; 2]) { g(a[0]); }");
        let s = Structure::build(&f);
        for i in 0..f.code_len() {
            if matches!(f.code_text(i), "(" | "[" | "{") {
                let close = s.matching(i).expect("every open has a close");
                assert_eq!(s.matching(close), Some(i));
            }
        }
    }

    #[test]
    fn fn_items_carry_names_and_bodies() {
        let f = file(
            "pub fn alpha(x: u64) -> u64 { x + 1 }\n\
             fn beta();\n\
             const CB: fn(u8) -> u8 = conv;\n\
             fn gamma<T: Clone>(t: &T) -> Vec<T> where T: Send { vec![t.clone()] }",
        );
        let s = Structure::build(&f);
        let names: Vec<&str> = s.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["alpha", "beta", "gamma"]);
        assert!(s.fn_named("alpha").expect("alpha").body.is_some());
        assert!(s.fn_named("beta").expect("beta").body.is_none());
        assert!(s.fn_named("gamma").expect("gamma").body.is_some());
    }

    #[test]
    fn nested_fns_are_collected() {
        let f = file("fn outer() { fn inner() { work(); } inner(); }");
        let s = Structure::build(&f);
        let names: Vec<&str> = s.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
        // fn_containing picks the innermost body.
        let work = (0..f.code_len())
            .find(|&i| f.code_text(i) == "work")
            .expect("work");
        assert_eq!(s.fn_containing(work).expect("inner").name, "inner");
    }

    #[test]
    fn const_items_capture_the_initializer_range() {
        let f = file("pub const KEYS: &[&str] = &[\"a\", \"b\"];\nstatic N: usize = 3;");
        let s = Structure::build(&f);
        let keys = s.const_named("KEYS").expect("KEYS");
        let texts: Vec<&str> = (keys.value.0..=keys.value.1)
            .map(|i| f.code_text(i))
            .collect();
        assert!(texts.contains(&"\"a\""), "{texts:?}");
        assert!(s.const_named("N").is_some());
    }

    #[test]
    fn loop_bodies_cover_all_three_loop_forms() {
        let f =
            file("fn f() { loop { a(); } while cond(x) { b(); } for i in 0..n { c(i); } d(); }");
        let s = Structure::build(&f);
        for name in ["a", "b", "c"] {
            let i = (0..f.code_len())
                .find(|&i| f.code_text(i) == name)
                .expect(name);
            assert!(s.in_loop(i), "`{name}` should be inside a loop");
        }
        let d = (0..f.code_len())
            .find(|&i| f.code_text(i) == "d")
            .expect("d");
        assert!(!s.in_loop(d));
    }

    #[test]
    fn impl_trait_for_type_is_not_a_loop() {
        let f = file("impl Display for Thing { fn fmt(&self) { x(); } }");
        let s = Structure::build(&f);
        let x = (0..f.code_len())
            .find(|&i| f.code_text(i) == "x")
            .expect("x");
        assert!(!s.in_loop(x));
    }

    #[test]
    fn while_let_header_groups_are_skipped() {
        let f = file("fn f() { while let Some(v) = it.next() { use_(v); } }");
        let s = Structure::build(&f);
        let u = (0..f.code_len())
            .find(|&i| f.code_text(i) == "use_")
            .expect("use_");
        assert!(s.in_loop(u));
    }
}
