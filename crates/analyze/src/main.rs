//! CLI for `ppbench-analyze`.
//!
//! ```text
//! ppbench-analyze [--workspace] [--root DIR] [--deny-all]
//!                 [--allow RULE]... [--format text|sarif] [--out FILE]
//!                 [--baseline FILE] [--check-baseline] [--write-baseline]
//!                 [--list-rules] [PATH]...
//! ```
//!
//! Exit codes: 0 clean, 1 violations or baseline regression, 2 usage or
//! I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use ppbench_analyze::baseline::Baseline;
use ppbench_analyze::rules::{severity_of, Severity, ALL_RULES, RULE_DESCRIPTIONS};
use ppbench_analyze::{engine, sarif, walk};

struct Options {
    workspace: bool,
    root: Option<PathBuf>,
    deny_all: bool,
    allow: Vec<String>,
    list_rules: bool,
    format: Format,
    out: Option<PathBuf>,
    baseline: Option<PathBuf>,
    check_baseline: bool,
    write_baseline: bool,
    paths: Vec<PathBuf>,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Sarif,
}

const BASELINE_FILE: &str = "ANALYZE_BASELINE.json";

fn usage(to_stderr: bool) {
    let text = "usage: ppbench-analyze [--workspace] [--root DIR] [--deny-all]\n\
                \x20                      [--allow RULE]... [--format text|sarif] [--out FILE]\n\
                \x20                      [--baseline FILE] [--check-baseline] [--write-baseline]\n\
                \x20                      [--list-rules] [PATH]...\n\
                \n\
                --workspace       scan the whole workspace (default when no PATH given)\n\
                --root DIR        workspace root (default: discovered from the cwd)\n\
                --deny-all        every rule is an error regardless of --allow (CI mode)\n\
                --allow RULE      report RULE findings as warnings, not errors\n\
                --format FMT      output format: text (default) or sarif\n\
                --out FILE        write the report to FILE instead of stdout\n\
                --baseline FILE   ratchet file (default: <root>/ANALYZE_BASELINE.json)\n\
                --check-baseline  fail if waiver/warning counts grew past the baseline\n\
                --write-baseline  rewrite the baseline from the current counts\n\
                --list-rules      print the rule catalogue and exit\n";
    if to_stderr {
        eprint!("{text}");
    } else {
        print!("{text}");
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        workspace: false,
        root: None,
        deny_all: false,
        allow: Vec::new(),
        list_rules: false,
        format: Format::Text,
        out: None,
        baseline: None,
        check_baseline: false,
        write_baseline: false,
        paths: Vec::new(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--workspace" => opts.workspace = true,
            "--root" => {
                let v = argv.next().ok_or("--root needs a directory")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--deny-all" => opts.deny_all = true,
            "--allow" => {
                let v = argv.next().ok_or("--allow needs a rule name")?;
                if !ALL_RULES.contains(&v.as_str()) {
                    return Err(format!("unknown rule `{v}` (see --list-rules)"));
                }
                opts.allow.push(v);
            }
            "--format" => {
                let v = argv.next().ok_or("--format needs `text` or `sarif`")?;
                opts.format = match v.as_str() {
                    "text" => Format::Text,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--out" => {
                let v = argv.next().ok_or("--out needs a file path")?;
                opts.out = Some(PathBuf::from(v));
            }
            "--baseline" => {
                let v = argv.next().ok_or("--baseline needs a file path")?;
                opts.baseline = Some(PathBuf::from(v));
            }
            "--check-baseline" => opts.check_baseline = true,
            "--write-baseline" => opts.write_baseline = true,
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => {
                usage(false);
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    if !opts.workspace && opts.paths.is_empty() {
        opts.workspace = true;
    }
    if opts.check_baseline && opts.write_baseline {
        return Err("--check-baseline and --write-baseline are mutually exclusive".into());
    }
    Ok(opts)
}

fn emit(opts: &Options, report: &str) -> Result<(), String> {
    match &opts.out {
        Some(path) => {
            std::fs::write(path, report).map_err(|e| format!("writing {}: {e}", path.display()))
        }
        None => {
            print!("{report}");
            Ok(())
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("ppbench-analyze: {msg}");
            usage(true);
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for (rule, desc) in RULE_DESCRIPTIONS {
            println!("{} {rule:<18} {desc}", severity_of(rule).label());
        }
        return ExitCode::SUCCESS;
    }

    let mut files = Vec::new();
    // The workspace root doubles as the default baseline location, so the
    // ratchet flags need it resolved even for explicit-path runs.
    let mut baseline_path = opts.baseline.clone();
    if opts.workspace || (baseline_path.is_none() && (opts.check_baseline || opts.write_baseline)) {
        let root = match opts.root.clone().map(Ok).unwrap_or_else(|| {
            std::env::current_dir().and_then(|cwd| walk::find_workspace_root(&cwd))
        }) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("ppbench-analyze: locating workspace: {e}");
                return ExitCode::from(2);
            }
        };
        if baseline_path.is_none() {
            baseline_path = Some(root.join(BASELINE_FILE));
        }
        if opts.workspace {
            match walk::load_workspace(&root) {
                Ok(fs) => files.extend(fs),
                Err(e) => {
                    eprintln!("ppbench-analyze: reading workspace: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    }
    if !opts.paths.is_empty() {
        match walk::load_paths(&opts.paths) {
            Ok(fs) => files.extend(fs),
            Err(e) => {
                eprintln!("ppbench-analyze: reading paths: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let report = engine::analyze_report(&files);
    let demoted = |rule: &str| {
        severity_of(rule) == Severity::Warning
            || (!opts.deny_all && opts.allow.iter().any(|a| a == rule))
    };

    if opts.format == Format::Sarif {
        if let Err(e) = emit(&opts, &sarif::render(&report.diags)) {
            eprintln!("ppbench-analyze: {e}");
            return ExitCode::from(2);
        }
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut current = Baseline {
        waivers: report.used_waivers.clone(),
        warnings: Default::default(),
    };
    let mut text = String::new();
    for d in &report.diags {
        if demoted(d.rule) {
            warnings += 1;
            *current.warnings.entry(d.rule.to_string()).or_insert(0) += 1;
            text.push_str(&format!(
                "{}:{}:{}: warning[{}]: {}\n",
                d.path.display(),
                d.line,
                d.col,
                d.rule,
                d.message
            ));
        } else {
            errors += 1;
            text.push_str(&format!("{d}\n"));
        }
    }
    text.push_str(&format!(
        "ppbench-analyze: {} file(s) scanned, {errors} error(s), {warnings} warning(s)\n",
        files.len()
    ));
    if opts.format == Format::Text {
        if let Err(e) = emit(&opts, &text) {
            eprintln!("ppbench-analyze: {e}");
            return ExitCode::from(2);
        }
    } else {
        // SARIF went to --out/stdout; keep the human summary on stderr.
        eprint!("{text}");
    }

    let mut ratchet_failed = false;
    if let (true, Some(path)) = (opts.check_baseline || opts.write_baseline, baseline_path) {
        if opts.write_baseline {
            if let Err(e) = std::fs::write(&path, current.render()) {
                eprintln!("ppbench-analyze: writing {}: {e}", path.display());
                return ExitCode::from(2);
            }
            eprintln!("ppbench-analyze: wrote baseline to {}", path.display());
        } else {
            let committed = match std::fs::read_to_string(&path)
                .map_err(|e| format!("reading {}: {e}", path.display()))
                .and_then(|t| Baseline::parse(&t))
            {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("ppbench-analyze: {e} (create one with --write-baseline)");
                    return ExitCode::from(2);
                }
            };
            let (regressions, improvements) = committed.compare(&current);
            for msg in &regressions {
                eprintln!("ppbench-analyze: baseline regression: {msg}");
            }
            for msg in &improvements {
                eprintln!("ppbench-analyze: baseline: {msg}");
            }
            ratchet_failed = !regressions.is_empty();
        }
    }

    if errors > 0 || ratchet_failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
