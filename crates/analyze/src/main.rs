//! CLI for `ppbench-analyze`.
//!
//! ```text
//! ppbench-analyze [--workspace] [--root DIR] [--deny-all]
//!                 [--allow RULE]... [--list-rules] [PATH]...
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use ppbench_analyze::rules::{ALL_RULES, RULE_DESCRIPTIONS};
use ppbench_analyze::{engine, walk};

struct Options {
    workspace: bool,
    root: Option<PathBuf>,
    deny_all: bool,
    allow: Vec<String>,
    list_rules: bool,
    paths: Vec<PathBuf>,
}

fn usage(to_stderr: bool) {
    let text = "usage: ppbench-analyze [--workspace] [--root DIR] [--deny-all]\n\
                \x20                      [--allow RULE]... [--list-rules] [PATH]...\n\
                \n\
                --workspace   scan the whole workspace (default when no PATH given)\n\
                --root DIR    workspace root (default: discovered from the cwd)\n\
                --deny-all    every rule is an error regardless of --allow (CI mode)\n\
                --allow RULE  report RULE findings as warnings, not errors\n\
                --list-rules  print the rule catalogue and exit\n";
    if to_stderr {
        eprint!("{text}");
    } else {
        print!("{text}");
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        workspace: false,
        root: None,
        deny_all: false,
        allow: Vec::new(),
        list_rules: false,
        paths: Vec::new(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--workspace" => opts.workspace = true,
            "--root" => {
                let v = argv.next().ok_or("--root needs a directory")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--deny-all" => opts.deny_all = true,
            "--allow" => {
                let v = argv.next().ok_or("--allow needs a rule name")?;
                if !ALL_RULES.contains(&v.as_str()) {
                    return Err(format!("unknown rule `{v}` (see --list-rules)"));
                }
                opts.allow.push(v);
            }
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => {
                usage(false);
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    if !opts.workspace && opts.paths.is_empty() {
        opts.workspace = true;
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("ppbench-analyze: {msg}");
            usage(true);
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for (rule, desc) in RULE_DESCRIPTIONS {
            println!("{rule:<18} {desc}");
        }
        return ExitCode::SUCCESS;
    }

    let mut files = Vec::new();
    if opts.workspace {
        let root = match opts.root.clone().map(Ok).unwrap_or_else(|| {
            std::env::current_dir().and_then(|cwd| walk::find_workspace_root(&cwd))
        }) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("ppbench-analyze: locating workspace: {e}");
                return ExitCode::from(2);
            }
        };
        match walk::load_workspace(&root) {
            Ok(fs) => files.extend(fs),
            Err(e) => {
                eprintln!("ppbench-analyze: reading workspace: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if !opts.paths.is_empty() {
        match walk::load_paths(&opts.paths) {
            Ok(fs) => files.extend(fs),
            Err(e) => {
                eprintln!("ppbench-analyze: reading paths: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let diags = engine::analyze(&files);
    let demoted = |rule: &str| !opts.deny_all && opts.allow.iter().any(|a| a == rule);
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for d in &diags {
        if demoted(d.rule) {
            warnings += 1;
            // Render with the warning severity; Display prints `error`.
            println!(
                "{}:{}:{}: warning[{}]: {}",
                d.path.display(),
                d.line,
                d.col,
                d.rule,
                d.message
            );
        } else {
            errors += 1;
            println!("{d}");
        }
    }
    println!(
        "ppbench-analyze: {} file(s) scanned, {errors} error(s), {warnings} warning(s)",
        files.len()
    );
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
