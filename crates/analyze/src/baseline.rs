//! The finding-count ratchet: a committed `ANALYZE_BASELINE.json` records
//! how many waivers each rule currently needs and how many
//! warning-severity findings exist; CI fails when either count **grows**,
//! and asks for a baseline refresh when a count shrinks. Debt can only go
//! down.
//!
//! The file is deliberately tiny and flat so diffs read at a glance:
//!
//! ```text
//! {
//!   "schema": "ppbench-analyze-baseline-v1",
//!   "waivers": { "hash-iteration": 2, "panic": 3 },
//!   "warnings": { "shared-accumulator": 0 }
//! }
//! ```
//!
//! Parsing is a purpose-built scanner for exactly this shape (flat string
//! → integer maps, two levels deep) — the same no-dependency stance as the
//! rest of the crate.

use std::collections::BTreeMap;

/// Counts the baseline tracks, keyed by rule name.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    /// Used waivers per rule.
    pub waivers: BTreeMap<String, usize>,
    /// Surviving warning-severity findings per rule.
    pub warnings: BTreeMap<String, usize>,
}

/// Schema tag; bump on incompatible layout changes.
pub const SCHEMA: &str = "ppbench-analyze-baseline-v1";

impl Baseline {
    /// Renders the committed JSON form (sorted keys, trailing newline).
    pub fn render(&self) -> String {
        let section = |map: &BTreeMap<String, usize>| -> String {
            let entries: Vec<String> = map
                .iter()
                .map(|(k, v)| format!("    \"{k}\": {v}"))
                .collect();
            if entries.is_empty() {
                "{}".to_string()
            } else {
                format!("{{\n{}\n  }}", entries.join(",\n"))
            }
        };
        format!(
            "{{\n  \"schema\": \"{SCHEMA}\",\n  \"waivers\": {},\n  \"warnings\": {}\n}}\n",
            section(&self.waivers),
            section(&self.warnings),
        )
    }

    /// Parses the committed form. Errors carry enough context to fix the
    /// file by hand.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        if !text.contains(SCHEMA) {
            return Err(format!(
                "baseline schema mismatch: expected `{SCHEMA}` — regenerate with \
                 --write-baseline"
            ));
        }
        let mut out = Baseline::default();
        for (name, map) in [
            ("waivers", &mut out.waivers),
            ("warnings", &mut out.warnings),
        ] {
            let Some(at) = text.find(&format!("\"{name}\"")) else {
                return Err(format!("baseline is missing the \"{name}\" section"));
            };
            let rest = &text[at..];
            let open = rest
                .find('{')
                .ok_or_else(|| format!("\"{name}\" section has no opening brace"))?;
            let close = rest[open..]
                .find('}')
                .ok_or_else(|| format!("\"{name}\" section has no closing brace"))?;
            let body = &rest[open + 1..open + close];
            for entry in body.split(',') {
                let entry = entry.trim();
                if entry.is_empty() {
                    continue;
                }
                let (key, value) = entry
                    .split_once(':')
                    .ok_or_else(|| format!("malformed entry `{entry}` in \"{name}\""))?;
                let key = key.trim().trim_matches('"').to_string();
                let value: usize = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("non-numeric count `{}` in \"{name}\"", value.trim()))?;
                map.insert(key, value);
            }
        }
        Ok(out)
    }

    /// Compares `current` against this committed baseline. Returns
    /// regression messages (CI failures) and improvement messages
    /// (a nudge to re-write the baseline); either list may be empty.
    pub fn compare(&self, current: &Baseline) -> (Vec<String>, Vec<String>) {
        let mut regressions = Vec::new();
        let mut improvements = Vec::new();
        for (label, committed, now) in [
            ("waiver", &self.waivers, &current.waivers),
            ("warning", &self.warnings, &current.warnings),
        ] {
            let rules: std::collections::BTreeSet<&String> =
                committed.keys().chain(now.keys()).collect();
            for rule in rules {
                let was = committed.get(rule).copied().unwrap_or(0);
                let is = now.get(rule).copied().unwrap_or(0);
                if is > was {
                    regressions.push(format!(
                        "{label} count for `{rule}` grew {was} -> {is}: fix the new \
                         site instead of adding debt"
                    ));
                } else if is < was {
                    improvements.push(format!(
                        "{label} count for `{rule}` shrank {was} -> {is}: run \
                         --write-baseline to lock in the improvement"
                    ));
                }
            }
        }
        (regressions, improvements)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(waivers: &[(&str, usize)], warnings: &[(&str, usize)]) -> Baseline {
        Baseline {
            waivers: waivers.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            warnings: warnings.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let b = base(
            &[("panic", 3), ("hash-iteration", 1)],
            &[("shared-accumulator", 2)],
        );
        let parsed = Baseline::parse(&b.render()).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn empty_sections_round_trip() {
        let b = Baseline::default();
        assert_eq!(Baseline::parse(&b.render()).unwrap(), b);
    }

    #[test]
    fn growth_is_a_regression() {
        let committed = base(&[("panic", 1)], &[]);
        let current = base(&[("panic", 2)], &[]);
        let (reg, imp) = committed.compare(&current);
        assert_eq!(reg.len(), 1, "{reg:?}");
        assert!(reg[0].contains("grew 1 -> 2"), "{}", reg[0]);
        assert!(imp.is_empty());
    }

    #[test]
    fn new_rule_with_findings_is_a_regression() {
        let committed = Baseline::default();
        let current = base(&[], &[("shared-accumulator", 1)]);
        let (reg, _) = committed.compare(&current);
        assert_eq!(reg.len(), 1, "{reg:?}");
    }

    #[test]
    fn shrinkage_asks_for_a_rewrite_but_passes() {
        let committed = base(&[("panic", 3)], &[]);
        let current = base(&[("panic", 1)], &[]);
        let (reg, imp) = committed.compare(&current);
        assert!(reg.is_empty());
        assert_eq!(imp.len(), 1);
        assert!(imp[0].contains("--write-baseline"), "{}", imp[0]);
    }

    #[test]
    fn equal_counts_are_silent() {
        let committed = base(&[("panic", 2)], &[("shared-accumulator", 1)]);
        let (reg, imp) = committed.compare(&committed.clone());
        assert!(reg.is_empty() && imp.is_empty());
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let err = Baseline::parse("{\"schema\": \"other\"}").unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
    }

    #[test]
    fn malformed_count_is_rejected() {
        let text = "{\"schema\": \"ppbench-analyze-baseline-v1\",\
                    \"waivers\": {\"panic\": many},\"warnings\": {}}";
        let err = Baseline::parse(text).unwrap_err();
        assert!(err.contains("non-numeric"), "{err}");
    }
}
