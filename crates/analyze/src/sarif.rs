//! SARIF 2.1.0 output — the machine-readable report CI uploads to GitHub
//! code scanning, so findings surface as inline PR annotations instead of
//! a wall of log text (the PAPyA lesson: multi-dimension results want a
//! machine-readable shape).
//!
//! Hand-written against the subset of the spec the code-scanning ingester
//! requires: one run, a tool driver with the rule catalogue, and one
//! result per diagnostic with a physical location. std-only, like
//! everything else in this crate.

use crate::diag::Diagnostic;
use crate::rules::{severity_of, RULE_DESCRIPTIONS};

/// Renders `diags` as a complete SARIF 2.1.0 document.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut out = String::with_capacity(4096 + diags.len() * 256);
    out.push_str("{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",");
    out.push_str("\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{");
    out.push_str("\"name\":\"ppbench-analyze\",");
    out.push_str("\"informationUri\":\"https://github.com/ppbench/ppbench\",");
    out.push_str("\"rules\":[");
    for (i, (rule, desc)) in RULE_DESCRIPTIONS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":{},\"shortDescription\":{{\"text\":{}}},\
             \"defaultConfiguration\":{{\"level\":{}}}}}",
            escape(rule),
            escape(desc),
            escape(severity_of(rule).label()),
        ));
    }
    out.push_str("]}},\"results\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // Forward slashes regardless of host separator: SARIF URIs.
        let uri = d
            .path
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        out.push_str(&format!(
            "{{\"ruleId\":{},\"level\":{},\"message\":{{\"text\":{}}},\
             \"locations\":[{{\"physicalLocation\":{{\
             \"artifactLocation\":{{\"uri\":{}}},\
             \"region\":{{\"startLine\":{},\"startColumn\":{}}}}}}}]}}",
            escape(d.rule),
            escape(severity_of(d.rule).label()),
            escape(&d.message),
            escape(&uri),
            d.line,
            d.col,
        ));
    }
    out.push_str("]}]}");
    out
}

/// JSON string escaping (quotes, backslashes, control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn diag(rule: &'static str, msg: &str) -> Diagnostic {
        Diagnostic {
            rule,
            path: PathBuf::from("crates/x/src/lib.rs"),
            line: 3,
            col: 7,
            message: msg.into(),
        }
    }

    #[test]
    fn document_shape_and_required_fields() {
        let s = render(&[
            diag("panic", "no unwraps"),
            diag("shared-accumulator", "fs"),
        ]);
        assert!(s.contains("\"version\":\"2.1.0\""));
        assert!(s.contains("\"name\":\"ppbench-analyze\""));
        assert!(s.contains("\"ruleId\":\"panic\""));
        assert!(s.contains("\"startLine\":3"));
        assert!(s.contains("\"uri\":\"crates/x/src/lib.rs\""));
        // Severity mapping: heuristic rules report as warnings.
        assert!(s.contains("{\"ruleId\":\"shared-accumulator\",\"level\":\"warning\""));
        assert!(s.contains("{\"ruleId\":\"panic\",\"level\":\"error\""));
        // Every rule in the catalogue is declared to the ingester.
        for (rule, _) in RULE_DESCRIPTIONS {
            assert!(s.contains(&format!("\"id\":\"{rule}\"")), "missing {rule}");
        }
    }

    #[test]
    fn messages_are_escaped() {
        let s = render(&[diag("panic", "say \"no\" to\nbackslash \\ panics")]);
        assert!(s.contains(r#"say \"no\" to\nbackslash \\ panics"#));
    }

    #[test]
    fn empty_run_is_still_a_valid_document() {
        let s = render(&[]);
        assert!(s.contains("\"results\":[]"));
        assert!(s.ends_with("]}]}"));
    }

    #[test]
    fn renders_parseable_nesting() {
        // Cheap structural sanity: braces and brackets balance.
        let s = render(&[diag("panic", "x")]);
        let mut depth = 0i64;
        for b in s.bytes() {
            match b {
                b'{' | b'[' => depth += 1,
                b'}' | b']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
    }
}
