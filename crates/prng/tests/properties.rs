//! Property-based tests for the PRNG substrate.

use ppbench_prng::{seq, Pcg32, Rng64, SeedableRng64, SplitMix64, Xoshiro256pp};
use proptest::prelude::*;

proptest! {
    /// Bounded draws always land in range, for arbitrary seeds and bounds.
    #[test]
    fn next_below_in_range(seed: u64, bound in 1u64..=u64::MAX) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    /// The same holds for PCG32 (different output function, same contract).
    #[test]
    fn pcg_next_below_in_range(seed: u64, bound in 1u64..=u64::MAX) {
        let mut rng = Pcg32::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    /// Doubles stay in [0, 1) for every generator and seed.
    #[test]
    fn f64_unit_interval(seed: u64) {
        let mut xo = Xoshiro256pp::seed_from_u64(seed);
        let mut sm = SplitMix64::new(seed);
        for _ in 0..64 {
            let a = xo.next_f64();
            let b = sm.next_f64();
            prop_assert!((0.0..1.0).contains(&a));
            prop_assert!((0.0..1.0).contains(&b));
        }
    }

    /// Seeding is a pure function of the seed.
    #[test]
    fn seeding_deterministic(seed: u64) {
        let mut a = Xoshiro256pp::seed_from_u64(seed);
        let mut b = Xoshiro256pp::seed_from_u64(seed);
        prop_assert_eq!(a.next_u64(), b.next_u64());
    }

    /// Shuffling preserves the multiset of elements.
    #[test]
    fn shuffle_is_permutation(seed: u64, mut v in proptest::collection::vec(any::<i32>(), 0..200)) {
        let mut expected = v.clone();
        expected.sort_unstable();
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        seq::shuffle(&mut v, &mut rng);
        v.sort_unstable();
        prop_assert_eq!(v, expected);
    }

    /// randperm output is a permutation and inversion round-trips.
    #[test]
    fn randperm_invertible(seed: u64, n in 0u64..300) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let p = seq::random_permutation(n, &mut rng);
        prop_assert!(seq::is_permutation(&p));
        let inv = seq::invert_permutation(&p);
        for i in 0..n as usize {
            prop_assert_eq!(inv[p[i] as usize], i as u64);
        }
    }

    /// Distinct sampling yields sorted distinct in-range values of the
    /// requested size.
    #[test]
    fn sample_distinct_contract(seed: u64, n in 1u64..1000, frac in 0.0f64..=1.0) {
        let k = ((n as f64) * frac) as usize;
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let s = seq::sample_distinct(n, k, &mut rng);
        prop_assert_eq!(s.len(), k);
        prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(s.iter().all(|&x| x < n));
    }
}

/// Cross-check our uniform doubles against the `rand` crate at the
/// distribution level (same mean/variance ballpark). This is the only place
/// the external `rand` crate is used, purely as an independent referee.
#[test]
fn distribution_cross_check_with_rand_crate() {
    use rand::{RngExt as _, SeedableRng as _};
    let n = 200_000;
    let mut ours = Xoshiro256pp::seed_from_u64(99);
    let mut theirs = rand::rngs::StdRng::seed_from_u64(99);
    let (mut m_ours, mut m_theirs, mut v_ours, mut v_theirs) = (0.0, 0.0, 0.0, 0.0);
    for _ in 0..n {
        let a = ours.next_f64();
        let b: f64 = theirs.random();
        m_ours += a;
        m_theirs += b;
        v_ours += a * a;
        v_theirs += b * b;
    }
    let n = n as f64;
    let (m_ours, m_theirs) = (m_ours / n, m_theirs / n);
    let var_ours = v_ours / n - m_ours * m_ours;
    let var_theirs = v_theirs / n - m_theirs * m_theirs;
    assert!(
        (m_ours - m_theirs).abs() < 0.005,
        "means disagree: {m_ours} vs {m_theirs}"
    );
    assert!(
        (var_ours - var_theirs).abs() < 0.005,
        "variances disagree: {var_ours} vs {var_theirs}"
    );
}
