//! xoshiro256++ 1.0: the workspace's default stream generator.
//!
//! Reference: Blackman & Vigna, "Scrambled linear pseudorandom number
//! generators" (2019). 256 bits of state, period 2^256 − 1, excellent
//! statistical quality, and a `jump()` for cheap independent sub-sequences.

use crate::{Rng64, SeedableRng64, SplitMix64};

/// xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Creates a generator from raw state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zeros (the one forbidden state of the
    /// underlying linear engine).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro state must be nonzero");
        Self { s }
    }

    /// Advances the generator by 2^128 steps.
    ///
    /// Generators separated by a jump produce non-overlapping subsequences
    /// (up to 2^128 draws each), which is the textbook way to hand each
    /// worker thread its own stream.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let mut t = [0u64; 4];
        for j in JUMP {
            for b in 0..64 {
                if (j >> b) & 1 == 1 {
                    for (ti, si) in t.iter_mut().zip(self.s.iter()) {
                        *ti ^= si;
                    }
                }
                // ppbench: allow(discarded-result, reason = "jump() only needs the state transition; the output word is irrelevant by construction")
                let _ = self.next_u64();
            }
        }
        self.s = t;
    }

    /// Returns a clone advanced by `n` jumps (each 2^128 steps) without
    /// mutating `self`.
    pub fn jumped(&self, n: u32) -> Self {
        let mut out = self.clone();
        for _ in 0..n {
            out.jump();
        }
        out
    }
}

impl Rng64 for Xoshiro256pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng64 for Xoshiro256pp {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the 64-bit seed through SplitMix64, per Vigna's
        // recommendation; guarantees a nonzero state.
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self::from_state(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer test against the reference C implementation
    /// (`xoshiro256plusplus.c`) with state {1, 2, 3, 4}.
    #[test]
    fn reference_vector_state_1234() {
        let mut rng = Xoshiro256pp::from_state([1, 2, 3, 4]);
        let expect: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for e in expect {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    #[should_panic(expected = "state must be nonzero")]
    fn zero_state_rejected() {
        let _ = Xoshiro256pp::from_state([0; 4]);
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = Xoshiro256pp::seed_from_u64(123);
        let mut b = Xoshiro256pp::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<u64> = {
            let mut r = Xoshiro256pp::seed_from_u64(1);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xoshiro256pp::seed_from_u64(2);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn jump_changes_stream_but_is_deterministic() {
        let base = Xoshiro256pp::seed_from_u64(42);
        let mut j1 = base.jumped(1);
        let mut j1b = base.jumped(1);
        let mut j2 = base.jumped(2);
        let a: Vec<u64> = (0..8).map(|_| j1.next_u64()).collect();
        let ab: Vec<u64> = (0..8).map(|_| j1b.next_u64()).collect();
        let c: Vec<u64> = (0..8).map(|_| j2.next_u64()).collect();
        assert_eq!(a, ab);
        assert_ne!(a, c);
    }

    #[test]
    fn bit_balance_is_sane() {
        // Population count over many draws should hover around 32 per word.
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let n = 10_000;
        let ones: u64 = (0..n).map(|_| rng.next_u64().count_ones() as u64).sum();
        let mean = ones as f64 / n as f64;
        assert!((mean - 32.0).abs() < 0.3, "mean popcount {mean}");
    }
}
