//! PCG32 (XSH-RR 64/32): O'Neill's permuted congruential generator.
//!
//! Kept alongside xoshiro so distribution-level tests can cross-check two
//! structurally different generators; a statistical bug in one is unlikely to
//! reproduce in the other.

use crate::{Rng64, SeedableRng64};

const MULTIPLIER: u64 = 6364136223846793005;
const DEFAULT_STREAM: u64 = 54;

/// PCG32 generator (64-bit LCG state, 32-bit XSH-RR output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

impl Pcg32 {
    /// Creates a generator from an initial state and stream selector,
    /// following the reference `pcg32_srandom` initialization.
    pub fn new(initstate: u64, initseq: u64) -> Self {
        let mut pcg = Self {
            state: 0,
            inc: (initseq << 1) | 1,
        };
        // ppbench: allow(discarded-result, reason = "reference pcg32_srandom steps the state and discards the output by design")
        let _ = pcg.next_raw32();
        pcg.state = pcg.state.wrapping_add(initstate);
        // ppbench: allow(discarded-result, reason = "reference pcg32_srandom steps the state and discards the output by design")
        let _ = pcg.next_raw32();
        pcg
    }

    /// One step of the reference pcg32 output function.
    #[inline]
    fn next_raw32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(MULTIPLIER).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }
}

impl Rng64 for Pcg32 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // Two independent 32-bit outputs; high word drawn first.
        let hi = self.next_raw32() as u64;
        let lo = self.next_raw32() as u64;
        (hi << 32) | lo
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.next_raw32()
    }
}

impl SeedableRng64 for Pcg32 {
    fn seed_from_u64(seed: u64) -> Self {
        Self::new(seed, DEFAULT_STREAM)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer test against the reference `pcg32_srandom(42, 54)`
    /// stream from the PCG check output.
    #[test]
    fn reference_vector_42_54() {
        let mut rng = Pcg32::new(42, 54);
        let expect: [u32; 6] = [
            0xa15c_02b7,
            0x7b47_f409,
            0xba1d_3330,
            0x83d2_f293,
            0xbfa4_784b,
            0xcbed_606e,
        ];
        for e in expect {
            assert_eq!(rng.next_u32(), e);
        }
    }

    #[test]
    fn streams_are_distinct() {
        let mut a = Pcg32::new(42, 1);
        let mut b = Pcg32::new(42, 2);
        let va: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn u64_combines_two_u32() {
        let mut a = Pcg32::new(7, 7);
        let mut b = Pcg32::new(7, 7);
        let hi = b.next_u32() as u64;
        let lo = b.next_u32() as u64;
        assert_eq!(a.next_u64(), (hi << 32) | lo);
    }

    #[test]
    fn f64_uses_full_width() {
        // With only 32-bit outputs naively scaled, doubles would be quantized
        // to multiples of 2^-32; the Rng64 default uses 53 bits.
        let mut rng = Pcg32::seed_from_u64(3);
        let quantized = (0..1000).all(|_| {
            let x = rng.next_f64();
            (x * (1u64 << 32) as f64).fract() == 0.0
        });
        assert!(!quantized, "doubles look quantized to 32 bits");
    }
}
