//! SplitMix64: a tiny, fast, equidistributed 64-bit generator.
//!
//! Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
//! generators" (OOPSLA 2014); constants as popularized by Vigna's
//! `splitmix64.c`. Used throughout the workspace for seeding larger-state
//! generators and for cheap deterministic per-item randomness.

use crate::{Rng64, SeedableRng64};

/// SplitMix64 generator. State is a simple 64-bit counter with a strong
/// output mix, so any seed (including 0) is valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// The additive constant ("golden gamma") of the SplitMix64 state walk.
    /// State after `n` draws is `seed + n·GAMMA`, which is what makes O(1)
    /// stream jumps ([`SplitMix64::at`]) possible.
    pub const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

    /// Creates a generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Creates a generator positioned so its next output is the `pos`-th
    /// (0-based) output of `SplitMix64::new(seed)`'s stream — an O(1) jump,
    /// since the state is a plain counter in steps of [`SplitMix64::GAMMA`].
    #[inline]
    pub fn at(seed: u64, pos: u64) -> Self {
        Self {
            state: seed.wrapping_add(pos.wrapping_mul(Self::GAMMA)),
        }
    }

    /// Mixes a single value through the SplitMix64 finalizer.
    ///
    /// This is a high-quality 64-bit hash; handy for stateless "hash of
    /// index" randomness (e.g. deterministic vertex permutations).
    #[inline]
    pub fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(Self::GAMMA);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Rng64 for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(Self::GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng64 for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        Self::new(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer test against Vigna's reference `splitmix64.c` with
    /// seed 1234567.
    #[test]
    fn reference_vector_seed_1234567() {
        let mut rng = SplitMix64::new(1234567);
        let expect: [u64; 5] = [
            6457827717110365317,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ];
        for e in expect {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut rng = SplitMix64::new(0);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn mix_matches_stream() {
        // mix() adds the gamma internally, so mix(seed) equals the first
        // output of a generator seeded with `seed`.
        for seed in [0u64, 1, 99, u64::MAX] {
            assert_eq!(SplitMix64::new(seed).next_u64(), SplitMix64::mix(seed));
        }
    }

    #[test]
    fn mix_is_injective_on_sample() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(SplitMix64::mix(i)), "collision at {i}");
        }
    }

    #[test]
    fn copies_diverge_independently() {
        let mut a = SplitMix64::new(5);
        let mut b = a;
        assert_eq!(a.next_u64(), b.next_u64());
        let _ = a.next_u64();
        assert_ne!(a, b);
    }
}
