//! Sequence utilities: shuffles, permutations and sampling.
//!
//! These replace the Matlab `randperm` calls in the paper's kernel-0
//! reference (vertex-label permutation and edge-order shuffle).

use crate::Rng64;

/// Shuffles `data` in place with the Fisher–Yates algorithm.
///
/// Every permutation is equally likely given a uniform generator.
pub fn shuffle<T, R: Rng64>(data: &mut [T], rng: &mut R) {
    for i in (1..data.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        data.swap(i, j);
    }
}

/// Returns a uniformly random permutation of `0..n` (Matlab `randperm(n) - 1`).
pub fn random_permutation<R: Rng64>(n: u64, rng: &mut R) -> Vec<u64> {
    let mut perm: Vec<u64> = (0..n).collect();
    shuffle(&mut perm, rng);
    perm
}

/// Returns `true` if `perm` is a permutation of `0..perm.len()`.
pub fn is_permutation(perm: &[u64]) -> bool {
    let n = perm.len();
    let mut seen = vec![false; n];
    for &p in perm {
        let Ok(i) = usize::try_from(p) else {
            return false;
        };
        if i >= n || seen[i] {
            return false;
        }
        seen[i] = true;
    }
    true
}

/// Inverts a permutation: `inv[perm[i]] == i`.
///
/// # Panics
///
/// Panics if `perm` is not a permutation of `0..perm.len()`.
pub fn invert_permutation(perm: &[u64]) -> Vec<u64> {
    assert!(
        is_permutation(perm),
        "invert_permutation: input not a permutation"
    );
    let mut inv = vec![0u64; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        inv[p as usize] = i as u64;
    }
    inv
}

/// Draws `k` distinct indices uniformly from `0..n` (Floyd's algorithm),
/// returned in ascending order.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn sample_distinct<R: Rng64>(n: u64, k: usize, rng: &mut R) -> Vec<u64> {
    assert!(k as u64 <= n, "sample_distinct: k must not exceed n");
    let mut chosen = std::collections::BTreeSet::new();
    for j in (n - k as u64)..n {
        let t = rng.next_below(j + 1);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    chosen.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng64, Xoshiro256pp};

    #[test]
    fn shuffle_preserves_multiset() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let mut v: Vec<u32> = (0..1000).collect();
        shuffle(&mut v, &mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..1000).collect::<Vec<_>>(),
            "shuffle left data in order"
        );
    }

    #[test]
    fn shuffle_handles_degenerate_sizes() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let mut empty: [u8; 0] = [];
        shuffle(&mut empty, &mut rng);
        let mut one = [42];
        shuffle(&mut one, &mut rng);
        assert_eq!(one, [42]);
    }

    #[test]
    fn random_permutation_is_permutation() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        for n in [0u64, 1, 2, 17, 256] {
            let p = random_permutation(n, &mut rng);
            assert_eq!(p.len(), n as usize);
            assert!(is_permutation(&p), "not a permutation for n={n}");
        }
    }

    #[test]
    fn permutation_is_roughly_uniform() {
        // Over many draws of randperm(3), each of the 6 orders should appear
        // about 1/6 of the time.
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let mut counts = std::collections::HashMap::new();
        let n = 60_000;
        for _ in 0..n {
            let p = random_permutation(3, &mut rng);
            *counts.entry(p).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 6);
        for (p, c) in counts {
            let frac = c as f64 / n as f64;
            assert!(
                (frac - 1.0 / 6.0).abs() < 0.01,
                "permutation {p:?} freq {frac}"
            );
        }
    }

    #[test]
    fn invert_permutation_roundtrips() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let p = random_permutation(100, &mut rng);
        let inv = invert_permutation(&p);
        for i in 0..100 {
            assert_eq!(inv[p[i] as usize], i as u64);
            assert_eq!(p[inv[i] as usize], i as u64);
        }
    }

    #[test]
    fn is_permutation_rejects_bad_inputs() {
        assert!(is_permutation(&[]));
        assert!(is_permutation(&[0]));
        assert!(!is_permutation(&[1]));
        assert!(!is_permutation(&[0, 0]));
        assert!(!is_permutation(&[0, 2]));
        assert!(is_permutation(&[2, 0, 1]));
    }

    #[test]
    fn sample_distinct_properties() {
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let s = sample_distinct(1000, 50, &mut rng);
        assert_eq!(s.len(), 50);
        assert!(s.windows(2).all(|w| w[0] < w[1]), "not strictly ascending");
        assert!(s.iter().all(|&x| x < 1000));
        // k == n returns everything.
        let all = sample_distinct(10, 10, &mut rng);
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        // k == 0 returns nothing.
        assert!(sample_distinct(10, 0, &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "k must not exceed n")]
    fn sample_distinct_rejects_oversample() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let _ = sample_distinct(5, 6, &mut rng);
    }
}
