//! Deterministic pseudo-random number generation for the PageRank Pipeline
//! Benchmark.
//!
//! The Graph500 kernel-0 generator and the kernel-3 PageRank initialization
//! both consume streams of uniform random numbers (`rand`, `randperm` in the
//! paper's Matlab reference). For a *benchmark* the stream must be cheap,
//! seedable, and bit-reproducible across platforms, compilers and thread
//! counts, so the generators are implemented here from first principles
//! rather than pulled from an external crate:
//!
//! * [`SplitMix64`] — the stateless-jump workhorse used for seeding and for
//!   deterministic per-chunk streams in parallel generation.
//! * [`Xoshiro256pp`] — the default stream generator (xoshiro256++ 1.0).
//! * [`Pcg32`] — a compact alternative with a different failure profile,
//!   used in tests to cross-check distribution-level properties.
//!
//! All generators implement the [`Rng64`] trait, which also provides uniform
//! doubles in `[0, 1)`, unbiased bounded integers (Lemire rejection), and the
//! sequence utilities ([`seq::shuffle`], [`seq::random_permutation`]) that
//! stand in for Matlab's `randperm`.
//!
//! # Example
//!
//! ```
//! use ppbench_prng::{Rng64, SeedableRng64, Xoshiro256pp};
//!
//! let mut rng = Xoshiro256pp::seed_from_u64(42);
//! let x = rng.next_f64();
//! assert!((0.0..1.0).contains(&x));
//! // Re-seeding reproduces the stream exactly.
//! let mut rng2 = Xoshiro256pp::seed_from_u64(42);
//! assert_eq!(rng2.next_f64().to_bits(), x.to_bits());
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod batch;
mod pcg;
pub mod seq;
mod splitmix;
mod xoshiro;

pub use batch::{derive_stream_seed, fill_indexed};
pub use pcg::Pcg32;
pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256pp;

/// A deterministic 64-bit pseudo-random generator.
///
/// Everything in the benchmark that needs randomness is written against this
/// trait so backends can be swapped without changing consumers.
pub trait Rng64 {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    ///
    /// Defaults to the high half of [`Rng64::next_u64`], which for the
    /// generators in this crate is the better-distributed half.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform double in `[0, 1)` with 53 random mantissa bits.
    fn next_f64(&mut self) -> f64 {
        // 53 high bits scaled by 2^-53: the standard conversion, exactly
        // representable, never returns 1.0.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)` without modulo bias.
    ///
    /// Uses Lemire's multiply-shift rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            // threshold = 2^64 mod bound
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "next_range requires lo < hi");
        lo + self.next_below(hi - lo)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: Rng64 + ?Sized> Rng64 for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators that can be constructed from a 64-bit seed.
pub trait SeedableRng64: Rng64 + Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator for a deterministic sub-stream.
    ///
    /// `(seed, stream)` pairs map to independent-looking streams; used to give
    /// each parallel chunk of work its own reproducible generator regardless
    /// of thread scheduling.
    fn seed_from_parts(seed: u64, stream: u64) -> Self {
        // Mix the pair through SplitMix64 so nearby (seed, stream) pairs do
        // not yield correlated initial states.
        let mut sm = SplitMix64::new(seed);
        let a = sm.next_u64();
        let mut sm2 = SplitMix64::new(a ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Self::seed_from_u64(sm2.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "f64 out of range: {x}");
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn next_below_is_in_range_for_all_generators() {
        let mut xo = Xoshiro256pp::seed_from_u64(7);
        let mut pc = Pcg32::seed_from_u64(7);
        let mut sm = SplitMix64::new(7);
        let gens: [(&str, &mut dyn Rng64); 3] = [
            ("xoshiro", &mut xo),
            ("pcg", &mut pc),
            ("splitmix", &mut sm),
        ];
        for (name, rng) in gens {
            for bound in [1u64, 2, 3, 7, 100, 1 << 33, u64::MAX] {
                for _ in 0..100 {
                    let v = rng.next_below(bound);
                    assert!(v < bound, "{name}: {v} >= {bound}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        Xoshiro256pp::seed_from_u64(0).next_below(0);
    }

    #[test]
    fn next_range_covers_small_range() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.next_range(10, 15);
            assert!((10..15).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "not all values of a 5-wide range hit"
        );
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let bound = 10u64;
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.next_below(bound) as usize] += 1;
        }
        let expect = n as f64 / bound as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "bucket {i} deviates {dev:.3} from uniform");
        }
    }

    #[test]
    fn seed_from_parts_gives_distinct_streams() {
        let mut a = Xoshiro256pp::seed_from_parts(9, 0);
        let mut b = Xoshiro256pp::seed_from_parts(9, 1);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
        // And is itself reproducible.
        let mut a2 = Xoshiro256pp::seed_from_parts(9, 0);
        let va2: Vec<u64> = (0..8).map(|_| a2.next_u64()).collect();
        assert_eq!(va, va2);
    }

    #[test]
    fn next_bool_respects_probability() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.next_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "p=0.3 produced frac {frac}");
        assert!((0..1000).all(|_| !rng.next_bool(0.0)));
        assert!((0..1000).all(|_| rng.next_bool(1.0)));
    }

    #[test]
    fn rng_by_mut_ref_works() {
        fn take_rng(mut r: impl Rng64) -> u64 {
            r.next_u64()
        }
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let a = take_rng(&mut rng);
        let b = take_rng(&mut rng);
        assert_ne!(a, b);
    }
}
