//! Batched PRNG fills for hot generation loops.
//!
//! Kernel 0 consumes SplitMix64 draws by the hundreds of millions. Pulling
//! them one `next_u64()` at a time through a freshly constructed generator
//! per edge keeps each edge a pure function of its index but pays seed
//! derivation and constructor overhead on every edge. The helpers here
//! produce the *same bit streams* in bulk:
//!
//! * [`derive_stream_seed`] — the `(seed, tweak) → sub-stream seed` map the
//!   generators use to key independent streams (vertex permutation, edge
//!   shuffle, per-edge draws).
//! * [`fill_indexed`] — the concatenation of many per-index streams, each
//!   bit-identical to `SplitMix64::new(derive_stream_seed(seed, index))`
//!   drawn `draws` times, with one pass of sequential state updates instead
//!   of a constructor per index.
//! * [`SplitMix64::at`] — O(1) random access into a single stream, which is
//!   what lets the linear-work sampler address draw *positions* absolutely
//!   and stay bit-identical across any chunk/thread/shard split.

use crate::splitmix::SplitMix64;
use crate::Rng64;

/// Derives an independent SplitMix64 sub-stream seed from `(seed, tweak)`.
///
/// This is the derivation the Kronecker generators have always used
/// (`mix(seed ^ mix(tweak))`); it lives here so batched fills and the
/// per-edge construction provably share one definition.
#[inline]
pub fn derive_stream_seed(seed: u64, tweak: u64) -> u64 {
    SplitMix64::mix(seed ^ SplitMix64::mix(tweak))
}

/// Fills `out` with the concatenated per-index SplitMix64 streams: for each
/// `index` in `first_index..first_index + n`, the first `draws_per_index`
/// outputs of `SplitMix64::new(derive_stream_seed(seed, index))`, laid out
/// contiguously. `out.len()` must be `n * draws_per_index` for some `n`.
///
/// Bit-identical to the per-edge construction by definition — the per-index
/// seeding is the same function — but the inner loop is a bare
/// add-and-finalize with no per-index constructor.
///
/// # Panics
///
/// Panics if `draws_per_index == 0` or `out.len()` is not a multiple of it.
pub fn fill_indexed(seed: u64, first_index: u64, draws_per_index: usize, out: &mut [u64]) {
    assert!(draws_per_index > 0, "draws_per_index must be positive");
    assert!(
        out.len().is_multiple_of(draws_per_index),
        "output length {} is not a multiple of draws_per_index {draws_per_index}",
        out.len()
    );
    for (i, chunk) in out.chunks_exact_mut(draws_per_index).enumerate() {
        let index = first_index.wrapping_add(i as u64);
        let mut rng = SplitMix64::new(derive_stream_seed(seed, index));
        for slot in chunk {
            *slot = rng.next_u64();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_matches_manual_mix() {
        for (seed, tweak) in [(0u64, 0u64), (1, 2), (u64::MAX, 0xF00D), (42, u64::MAX)] {
            assert_eq!(
                derive_stream_seed(seed, tweak),
                SplitMix64::mix(seed ^ SplitMix64::mix(tweak))
            );
        }
    }

    #[test]
    fn fill_indexed_matches_per_index_construction() {
        let seed = 0xDEAD_BEEF;
        let draws = 7;
        let n = 13;
        let mut bulk = vec![0u64; n * draws];
        fill_indexed(seed, 100, draws, &mut bulk);
        for i in 0..n {
            let mut rng = SplitMix64::new(derive_stream_seed(seed, 100 + i as u64));
            for j in 0..draws {
                assert_eq!(bulk[i * draws + j], rng.next_u64(), "index {i} draw {j}");
            }
        }
    }

    #[test]
    fn fill_indexed_is_offset_consistent() {
        // Filling [lo, hi) in one call or two must agree.
        let seed = 9;
        let draws = 3;
        let mut whole = vec![0u64; 10 * draws];
        fill_indexed(seed, 50, draws, &mut whole);
        let mut a = vec![0u64; 4 * draws];
        let mut b = vec![0u64; 6 * draws];
        fill_indexed(seed, 50, draws, &mut a);
        fill_indexed(seed, 54, draws, &mut b);
        assert_eq!(whole, [a, b].concat());
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn fill_indexed_rejects_ragged_output() {
        fill_indexed(1, 0, 3, &mut [0u64; 7]);
    }

    #[test]
    fn splitmix_at_random_accesses_the_stream() {
        let seed = 777;
        let mut serial = SplitMix64::new(seed);
        let stream: Vec<u64> = (0..20).map(|_| serial.next_u64()).collect();
        for pos in [0u64, 1, 5, 19] {
            let mut jumped = SplitMix64::at(seed, pos);
            assert_eq!(jumped.next_u64(), stream[pos as usize], "position {pos}");
        }
        // And continues in sequence from the jump point.
        let mut jumped = SplitMix64::at(seed, 10);
        let tail: Vec<u64> = (0..10).map(|_| jumped.next_u64()).collect();
        assert_eq!(tail, stream[10..20]);
    }
}
