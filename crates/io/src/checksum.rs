//! Streaming digests of edge lists.
//!
//! The paper leaves "what outputs should be recorded to validate
//! correctness?" as an open question (§V). Our answer for the file kernels:
//! every kernel records an [`EdgeDigest`] of the edges it read and wrote.
//! The digest combines
//!
//! * an **order-independent** component (`sum`/`xor` of per-edge hashes) —
//!   kernel 1 must preserve it exactly (sorting only permutes edges), and
//! * an **order-dependent** component (`chain`) — equal chains mean two
//!   streams are identical edge-for-edge in order, which is how backend
//!   implementations are cross-validated.
//!
//! The chain is a polynomial rolling hash over the per-edge hashes
//! (`chain = Σ hᵢ·R^(n-1-i) mod 2^64` with `R` odd), which makes it
//! **composable**: the digest of a concatenated stream is computable from
//! the digests of its pieces ([`EdgeDigest::concat`]). That is what lets
//! kernel 0's sharded parallel writers digest their file-sized slices
//! independently and still publish a manifest whose chain matches the
//! serial writer bit for bit.

use crate::Edge;

/// Digest of a stream of edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EdgeDigest {
    /// Number of edges folded in.
    pub count: u64,
    /// Commutative sum of per-edge hashes (order independent).
    pub sum: u64,
    /// Commutative xor of per-edge hashes (order independent).
    pub xor: u64,
    /// Chained hash (order dependent).
    pub chain: u64,
}

/// Radix of the polynomial chain hash. Odd, so multiplication by it is a
/// bijection mod 2^64 and no information is shifted out.
const CHAIN_R: u64 = 0x9E37_79B9_7F4A_7C15;

/// `CHAIN_R^exp mod 2^64` by binary exponentiation — O(log exp), so
/// [`EdgeDigest::concat`] stays cheap even for billion-edge shards.
#[inline]
fn chain_r_pow(mut exp: u64) -> u64 {
    let mut base = CHAIN_R;
    let mut acc = 1u64;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc.wrapping_mul(base);
        }
        base = base.wrapping_mul(base);
        exp >>= 1;
    }
    acc
}

/// SplitMix64-style finalizer used as the per-edge hash. Reimplemented here
/// (rather than depending on `ppbench-prng`) to keep the storage crate at
/// the bottom of the dependency graph.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash of a single edge; asymmetric in (u, v) so reversed edges differ.
#[inline]
pub fn edge_hash(edge: Edge) -> u64 {
    mix(edge.u ^ mix(edge.v))
}

impl EdgeDigest {
    /// An empty digest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one edge into the digest.
    #[inline]
    pub fn update(&mut self, edge: Edge) {
        let h = edge_hash(edge);
        self.count += 1;
        self.sum = self.sum.wrapping_add(h);
        self.xor ^= h;
        self.chain = self.chain.wrapping_mul(CHAIN_R).wrapping_add(h);
    }

    /// Digest of the concatenated stream `self ++ other`.
    ///
    /// All four components compose: `sum`/`xor`/`count` trivially, and the
    /// polynomial `chain` shifts `self` past `other` by `R^other.count`.
    /// Merging per-shard digests in file order therefore reproduces exactly
    /// the digest a single serial pass over the whole stream would produce.
    #[must_use]
    pub fn concat(&self, other: &Self) -> Self {
        Self {
            count: self.count + other.count,
            sum: self.sum.wrapping_add(other.sum),
            xor: self.xor ^ other.xor,
            chain: self
                .chain
                .wrapping_mul(chain_r_pow(other.count))
                .wrapping_add(other.chain),
        }
    }

    /// Digest of a whole slice.
    pub fn of_edges(edges: &[Edge]) -> Self {
        let mut d = Self::new();
        for &e in edges {
            d.update(e);
        }
        d
    }

    /// True when `other` contains the same multiset of edges (in any order).
    pub fn same_multiset(&self, other: &Self) -> bool {
        self.count == other.count && self.sum == other.sum && self.xor == other.xor
    }

    /// True when `other` is the identical stream, order included.
    pub fn same_stream(&self, other: &Self) -> bool {
        self.same_multiset(other) && self.chain == other.chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges() -> Vec<Edge> {
        (0..100u64)
            .map(|i| Edge::new(i % 17, (i * 7) % 13))
            .collect()
    }

    #[test]
    fn permutation_preserves_multiset_not_chain() {
        let es = edges();
        let mut reversed = es.clone();
        reversed.reverse();
        let a = EdgeDigest::of_edges(&es);
        let b = EdgeDigest::of_edges(&reversed);
        assert!(a.same_multiset(&b));
        assert!(!a.same_stream(&b), "chain should detect reordering");
    }

    #[test]
    fn identical_streams_match_fully() {
        let es = edges();
        assert!(EdgeDigest::of_edges(&es).same_stream(&EdgeDigest::of_edges(&es)));
    }

    #[test]
    fn different_multisets_detected() {
        let es = edges();
        let mut tweaked = es.clone();
        tweaked[50] = Edge::new(999, 999);
        let a = EdgeDigest::of_edges(&es);
        let b = EdgeDigest::of_edges(&tweaked);
        assert!(!a.same_multiset(&b));
    }

    #[test]
    fn direction_matters() {
        let a = EdgeDigest::of_edges(&[Edge::new(1, 2)]);
        let b = EdgeDigest::of_edges(&[Edge::new(2, 1)]);
        assert!(!a.same_multiset(&b), "edge direction must affect the hash");
    }

    #[test]
    fn duplicate_edges_change_digest() {
        // xor alone would cancel duplicates; sum and count must not.
        let a = EdgeDigest::of_edges(&[Edge::new(1, 2)]);
        let b = EdgeDigest::of_edges(&[Edge::new(1, 2), Edge::new(1, 2)]);
        assert!(!a.same_multiset(&b));
    }

    #[test]
    fn incremental_equals_batch() {
        let es = edges();
        let mut inc = EdgeDigest::new();
        for &e in &es {
            inc.update(e);
        }
        assert_eq!(inc, EdgeDigest::of_edges(&es));
    }

    #[test]
    fn empty_digests_match() {
        assert!(EdgeDigest::new().same_stream(&EdgeDigest::of_edges(&[])));
    }

    #[test]
    fn concat_matches_sequential_at_every_split() {
        let es = edges();
        let whole = EdgeDigest::of_edges(&es);
        for cut in [0, 1, 17, 50, 99, 100] {
            let (a, b) = es.split_at(cut);
            let merged = EdgeDigest::of_edges(a).concat(&EdgeDigest::of_edges(b));
            assert_eq!(merged, whole, "split at {cut} must reproduce the digest");
        }
    }

    #[test]
    fn concat_is_associative_across_many_shards() {
        let es = edges();
        let whole = EdgeDigest::of_edges(&es);
        let mut merged = EdgeDigest::new();
        for shard in es.chunks(7) {
            merged = merged.concat(&EdgeDigest::of_edges(shard));
        }
        assert_eq!(merged, whole);
    }

    #[test]
    fn concat_with_empty_is_identity() {
        let d = EdgeDigest::of_edges(&edges());
        let empty = EdgeDigest::new();
        assert_eq!(d.concat(&empty), d);
        assert_eq!(empty.concat(&d), d);
    }

    #[test]
    fn concat_order_matters_for_chain() {
        let a = EdgeDigest::of_edges(&[Edge::new(1, 2)]);
        let b = EdgeDigest::of_edges(&[Edge::new(3, 4)]);
        let ab = a.concat(&b);
        let ba = b.concat(&a);
        assert!(ab.same_multiset(&ba));
        assert!(!ab.same_stream(&ba), "chain must stay order dependent");
    }
}
