//! Buffered multi-file edge reader.

use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};

use crate::checksum::EdgeDigest;
use crate::format;
use crate::manifest::{EdgeEncoding, Manifest};
use crate::{Edge, Error, Result};

/// Buffer size for file reads.
const READ_BUF_BYTES: usize = 1 << 20;

/// Entry points for reading edge file sets.
pub struct EdgeReader;

impl EdgeReader {
    /// Opens the file set described by `dir/manifest.tsv`, returning the
    /// manifest and a streaming iterator over all edges in stream order.
    pub fn open_dir(dir: &Path) -> Result<(Manifest, EdgeFileIter)> {
        let manifest = Manifest::load(dir)?;
        let iter = EdgeFileIter::with_encoding(manifest.file_paths(dir), manifest.encoding);
        Ok((manifest, iter))
    }

    /// Opens an explicit list of text-encoded files (no manifest required).
    pub fn open_files(paths: Vec<PathBuf>) -> EdgeFileIter {
        EdgeFileIter::new(paths)
    }

    /// Reads every edge of a manifest-described directory into memory and
    /// verifies the stream digest recorded in the manifest.
    pub fn read_dir_all(dir: &Path) -> Result<(Manifest, Vec<Edge>)> {
        let (manifest, iter) = Self::open_dir(dir)?;
        // The manifest's edge count is untrusted on-disk input: a corrupt
        // or hostile value (`edges: u64::MAX`) must not drive an allocation.
        // Bound it by what the files' bytes could possibly encode before
        // preallocating.
        let disk_cap = manifest.max_edges_on_disk(dir);
        if manifest.edges > disk_cap {
            return Err(Error::manifest(
                dir.join(crate::manifest::MANIFEST_NAME),
                format!(
                    "manifest claims {} edges but the files on disk can hold \
                     at most {disk_cap}",
                    manifest.edges
                ),
            ));
        }
        let mut edges = Vec::with_capacity(manifest.edges as usize);
        let mut digest = EdgeDigest::new();
        for e in iter {
            let e = e?;
            digest.update(e);
            edges.push(e);
        }
        if !digest.same_stream(&manifest.digest) {
            return Err(Error::manifest(
                dir.join(crate::manifest::MANIFEST_NAME),
                format!(
                    "edge stream does not match manifest digest \
                     (read {} edges, manifest says {})",
                    digest.count, manifest.edges
                ),
            ));
        }
        Ok((manifest, edges))
    }
}

/// Streaming iterator over the edges of an ordered list of files.
///
/// Yields `Result<Edge>`: I/O and parse errors surface as items, after which
/// iteration ends.
#[derive(Debug)]
pub struct EdgeFileIter {
    paths: std::vec::IntoIter<PathBuf>,
    current: Option<(PathBuf, BufReader<File>, u64)>,
    line_buf: Vec<u8>,
    failed: bool,
    encoding: EdgeEncoding,
}

impl EdgeFileIter {
    fn new(paths: Vec<PathBuf>) -> Self {
        Self::with_encoding(paths, EdgeEncoding::Text)
    }

    fn with_encoding(paths: Vec<PathBuf>, encoding: EdgeEncoding) -> Self {
        Self {
            paths: paths.into_iter(),
            current: None,
            line_buf: Vec::with_capacity(format::MAX_LINE_BYTES),
            failed: false,
            encoding,
        }
    }

    fn advance_file(&mut self) -> Result<bool> {
        match self.paths.next() {
            Some(path) => {
                let file = File::open(&path).map_err(|e| Error::io(&path, e))?;
                self.current = Some((path, BufReader::with_capacity(READ_BUF_BYTES, file), 0));
                Ok(true)
            }
            None => {
                self.current = None;
                Ok(false)
            }
        }
    }

    fn next_edge(&mut self) -> Result<Option<Edge>> {
        if self.encoding == EdgeEncoding::Binary {
            return self.next_edge_binary();
        }
        loop {
            if self.current.is_none() && !self.advance_file()? {
                return Ok(None);
            }
            let Some((path, reader, line_no)) = self.current.as_mut() else {
                continue;
            };
            self.line_buf.clear();
            let n = reader
                .read_until(b'\n', &mut self.line_buf)
                .map_err(|e| Error::io(&*path, e))?;
            if n == 0 {
                // EOF on this file; move to the next.
                self.current = None;
                continue;
            }
            *line_no += 1;
            let mut line: &[u8] = &self.line_buf;
            if line.last() == Some(&b'\n') {
                line = &line[..line.len() - 1];
            }
            if line.is_empty() {
                // Tolerate blank lines (e.g. a final newline written twice).
                continue;
            }
            return match format::decode_line(line) {
                Ok(edge) => Ok(Some(edge)),
                Err(msg) => Err(Error::parse(&*path, *line_no, msg)),
            };
        }
    }
}

impl EdgeFileIter {
    fn next_edge_binary(&mut self) -> Result<Option<Edge>> {
        use std::io::Read;
        loop {
            if self.current.is_none() && !self.advance_file()? {
                return Ok(None);
            }
            let Some((path, reader, record_no)) = self.current.as_mut() else {
                continue;
            };
            let mut rec = [0u8; 16];
            // Distinguish clean EOF from a torn record.
            match reader
                .read(&mut rec[..1])
                .map_err(|e| Error::io(&*path, e))?
            {
                0 => {
                    self.current = None;
                    continue;
                }
                _ => {
                    reader.read_exact(&mut rec[1..]).map_err(|e| {
                        Error::parse(&*path, *record_no + 1, format!("torn 16-byte record: {e}"))
                    })?;
                }
            }
            *record_no += 1;
            // ppbench: allow(panic, reason = "splitting a fixed [u8; 16] at byte 8 always yields 8-byte halves")
            let u = u64::from_le_bytes(rec[..8].try_into().expect("8 bytes"));
            // ppbench: allow(panic, reason = "splitting a fixed [u8; 16] at byte 8 always yields 8-byte halves")
            let v = u64::from_le_bytes(rec[8..].try_into().expect("8 bytes"));
            return Ok(Some(Edge::new(u, v)));
        }
    }
}

impl Iterator for EdgeFileIter {
    type Item = Result<Edge>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.next_edge() {
            Ok(Some(e)) => Some(Ok(e)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::SortState;
    use crate::tempdir::TempDir;
    use crate::writer::write_edges;

    fn edges(n: u64) -> Vec<Edge> {
        (0..n).map(|i| Edge::new(i * 3 % 11, i)).collect()
    }

    #[test]
    fn roundtrip_through_files() {
        let td = TempDir::new("ppbench-reader").unwrap();
        let es = edges(100);
        write_edges(td.path(), "edges", 4, &es, None, None, SortState::Unsorted).unwrap();
        let (m, got) = EdgeReader::read_dir_all(td.path()).unwrap();
        assert_eq!(m.edges, 100);
        assert_eq!(got, es);
    }

    #[test]
    fn roundtrip_empty_set() {
        let td = TempDir::new("ppbench-reader").unwrap();
        write_edges(td.path(), "edges", 3, &[], None, None, SortState::Unsorted).unwrap();
        let (m, got) = EdgeReader::read_dir_all(td.path()).unwrap();
        assert_eq!(m.edges, 0);
        assert!(got.is_empty());
    }

    #[test]
    fn streaming_iterator_matches_read_all() {
        let td = TempDir::new("ppbench-reader").unwrap();
        let es = edges(37);
        write_edges(td.path(), "edges", 2, &es, None, None, SortState::Unsorted).unwrap();
        let (_, iter) = EdgeReader::open_dir(td.path()).unwrap();
        let got: Vec<Edge> = iter.map(|r| r.unwrap()).collect();
        assert_eq!(got, es);
    }

    #[test]
    fn parse_error_reports_file_and_line() {
        let td = TempDir::new("ppbench-reader").unwrap();
        let path = td.join("bad.tsv");
        std::fs::write(&path, "1\t2\n3\toops\n5\t6\n").unwrap();
        let mut iter = EdgeReader::open_files(vec![path.clone()]);
        assert_eq!(iter.next().unwrap().unwrap(), Edge::new(1, 2));
        let err = iter.next().unwrap().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("bad.tsv"), "{msg}");
        assert!(msg.contains(":2"), "{msg}");
        // Iteration ends after an error.
        assert!(iter.next().is_none());
    }

    #[test]
    fn missing_file_is_an_error_item() {
        let mut iter = EdgeReader::open_files(vec![PathBuf::from("/definitely/not/here.tsv")]);
        assert!(iter.next().unwrap().is_err());
        assert!(iter.next().is_none());
    }

    #[test]
    fn tampered_file_fails_digest_check() {
        let td = TempDir::new("ppbench-reader").unwrap();
        let es = edges(10);
        let m = write_edges(td.path(), "edges", 1, &es, None, None, SortState::Unsorted).unwrap();
        // Append an extra edge behind the manifest's back.
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(td.join(&m.files[0].name))
            .unwrap();
        writeln!(f, "7\t7").unwrap();
        drop(f);
        let err = EdgeReader::read_dir_all(td.path()).unwrap_err();
        assert!(err.to_string().contains("digest"), "{err}");
    }

    #[test]
    fn blank_lines_are_tolerated() {
        let td = TempDir::new("ppbench-reader").unwrap();
        let path = td.join("padded.tsv");
        std::fs::write(&path, "1\t2\n\n3\t4\n").unwrap();
        let got: Vec<Edge> = EdgeReader::open_files(vec![path])
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(got, vec![Edge::new(1, 2), Edge::new(3, 4)]);
    }

    #[test]
    fn file_without_trailing_newline_reads_fully() {
        let td = TempDir::new("ppbench-reader").unwrap();
        let path = td.join("trunc.tsv");
        std::fs::write(&path, "1\t2\n3\t4").unwrap();
        let got: Vec<Edge> = EdgeReader::open_files(vec![path])
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(got, vec![Edge::new(1, 2), Edge::new(3, 4)]);
    }
}
