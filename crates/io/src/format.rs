//! The edge-file text format.
//!
//! The benchmark specification (§IV.A of the paper) fixes the on-disk
//! representation: each edge is the start and end vertex as decimal strings
//! separated by a tab, edges separated by newlines:
//!
//! ```text
//! u(1)<TAB>v(1)<LF>
//! u(2)<TAB>v(2)<LF>
//! ...
//! ```
//!
//! This module encodes/decodes single lines; the [`crate::EdgeWriter`] and
//! [`crate::EdgeReader`] stream whole files.

use crate::atoi::{self, MAX_DIGITS};
use crate::Edge;

/// Largest possible encoded line: two 20-digit ids, a tab and a newline.
pub const MAX_LINE_BYTES: usize = 2 * MAX_DIGITS + 2;

/// File extension used for edge files.
pub const EDGE_FILE_EXT: &str = "tsv";

/// Appends the encoded line for `edge` (including the trailing newline)
/// to `out`.
#[inline]
pub fn encode_line(edge: Edge, out: &mut Vec<u8>) {
    atoi::push_u64(edge.u, out);
    out.push(b'\t');
    atoi::push_u64(edge.v, out);
    out.push(b'\n');
}

/// Encodes `edge` as a `String` without the trailing newline.
pub fn encode_string(edge: Edge) -> String {
    format!("{}\t{}", edge.u, edge.v)
}

/// Decodes one line (without the trailing newline) into an [`Edge`].
///
/// A trailing `\r` is tolerated so files that passed through CRLF
/// translation still load. Returns a description of the problem on error.
#[inline]
pub fn decode_line(line: &[u8]) -> Result<Edge, String> {
    let line = strip_cr(line);
    let (u, used) =
        atoi::parse_u64_prefix(line).ok_or_else(|| "expected start vertex digits".to_string())?;
    let rest = &line[used..];
    let Some((&b'\t', rest)) = rest.split_first() else {
        return Err("expected single tab between vertices".to_string());
    };
    let (v, used_v) =
        atoi::parse_u64_prefix(rest).ok_or_else(|| "expected end vertex digits".to_string())?;
    if used_v != rest.len() {
        return Err(format!(
            "trailing bytes after end vertex: {:?}",
            String::from_utf8_lossy(&rest[used_v..])
        ));
    }
    Ok(Edge::new(u, v))
}

#[inline]
fn strip_cr(line: &[u8]) -> &[u8] {
    match line.split_last() {
        Some((&b'\r', head)) => head,
        _ => line,
    }
}

/// Estimates the encoded size in bytes of an edge list with vertex ids below
/// `max_vertex` — used to pre-size write buffers.
pub fn estimated_line_bytes(max_vertex: u64) -> usize {
    let digits = (max_vertex.max(1) as f64).log10().floor() as usize + 1;
    2 * digits + 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_matches_spec() {
        let mut out = Vec::new();
        encode_line(Edge::new(3, 17), &mut out);
        assert_eq!(out, b"3\t17\n");
    }

    #[test]
    fn encode_string_has_no_newline() {
        assert_eq!(encode_string(Edge::new(1, 2)), "1\t2");
    }

    #[test]
    fn decode_roundtrip() {
        for (u, v) in [(0, 0), (1, 2), (u64::MAX, 0), (12345, 67890)] {
            let mut out = Vec::new();
            encode_line(Edge::new(u, v), &mut out);
            let line = &out[..out.len() - 1]; // strip newline as the reader does
            assert_eq!(decode_line(line), Ok(Edge::new(u, v)));
        }
    }

    #[test]
    fn decode_tolerates_crlf() {
        assert_eq!(decode_line(b"4\t5\r"), Ok(Edge::new(4, 5)));
    }

    #[test]
    fn decode_rejects_malformed_lines() {
        for bad in [
            &b""[..],
            b"12",
            b"12\t",
            b"\t12",
            b"a\t5",
            b"5\tb",
            b"1 2",
            b"1\t2\t3",
            b"1\t2 ",
            b"1,2",
            b"-1\t2",
            b"18446744073709551616\t1",
        ] {
            assert!(
                decode_line(bad).is_err(),
                "line {:?} should be rejected",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn estimated_line_bytes_is_plausible() {
        assert_eq!(estimated_line_bytes(9), 4); // "9\t9\n"
        assert_eq!(estimated_line_bytes(99), 6);
        assert!(estimated_line_bytes(u64::MAX) <= MAX_LINE_BYTES);
        assert_eq!(estimated_line_bytes(0), 4);
    }
}
