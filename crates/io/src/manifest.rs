//! Sidecar metadata for an edge file set.
//!
//! Each kernel that writes edges also writes a `manifest.tsv` describing the
//! file set: how many edges, across which files, whether the stream is
//! sorted, and a digest for validation. The next kernel in the pipeline
//! loads the manifest instead of guessing at directory contents.
//!
//! The format is deliberately trivial (tab-separated `key value` lines) so
//! it stays hand-parseable and dependency-free.

use std::path::{Path, PathBuf};

use crate::checksum::EdgeDigest;
use crate::{Error, Result};

/// Whether and how an edge file set is sorted (kernel 1's contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SortState {
    /// Edges are in generator order.
    #[default]
    Unsorted,
    /// Edges are nondecreasing in start vertex (the spec's required order).
    ByStart,
    /// Edges are sorted by (start, end) — the §V "sort end vertices too"
    /// variant.
    ByStartEnd,
}

impl SortState {
    fn as_str(self) -> &'static str {
        match self {
            SortState::Unsorted => "unsorted",
            SortState::ByStart => "by-start",
            SortState::ByStartEnd => "by-start-end",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "unsorted" => Some(SortState::Unsorted),
            "by-start" => Some(SortState::ByStart),
            "by-start-end" => Some(SortState::ByStartEnd),
            _ => None,
        }
    }

    /// True if this state satisfies "sorted by start vertex".
    pub fn is_sorted_by_start(self) -> bool {
        matches!(self, SortState::ByStart | SortState::ByStartEnd)
    }
}

/// On-disk encoding of an edge file set. The benchmark spec mandates
/// [`EdgeEncoding::Text`]; [`EdgeEncoding::Binary`] (16-byte little-endian
/// records) exists as an ablation — how much of the file kernels' cost is
/// the decimal text itself?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EdgeEncoding {
    /// `u<TAB>v<NEWLINE>` decimal text (the spec).
    #[default]
    Text,
    /// Two little-endian u64 per edge.
    Binary,
}

impl EdgeEncoding {
    fn as_str(self) -> &'static str {
        match self {
            EdgeEncoding::Text => "text",
            EdgeEncoding::Binary => "binary",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "text" => Some(EdgeEncoding::Text),
            "binary" => Some(EdgeEncoding::Binary),
            _ => None,
        }
    }

    /// File extension used for this encoding.
    pub fn extension(self) -> &'static str {
        match self {
            EdgeEncoding::Text => crate::format::EDGE_FILE_EXT,
            EdgeEncoding::Binary => "bin",
        }
    }

    /// Smallest possible on-disk size of one edge record in this encoding:
    /// the divisor that bounds how many edges a given byte count can hold.
    /// Text records are at least `0\t0\n` (4 bytes); binary records are
    /// exactly 16.
    pub fn min_record_bytes(self) -> u64 {
        match self {
            EdgeEncoding::Text => 4,
            EdgeEncoding::Binary => 16,
        }
    }
}

/// One file of an edge file set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileEntry {
    /// File name relative to the manifest's directory.
    pub name: String,
    /// Number of edges stored in the file.
    pub edges: u64,
}

/// Metadata describing an edge file set.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// Graph500 scale factor, when known (N = 2^scale).
    pub scale: Option<u32>,
    /// Exclusive upper bound on vertex labels, when known.
    pub vertex_bound: Option<u64>,
    /// Total number of edges across all files.
    pub edges: u64,
    /// Sort contract satisfied by the stream.
    pub sort_state: SortState,
    /// On-disk encoding of the files.
    pub encoding: EdgeEncoding,
    /// Digest of the edge stream in file order.
    pub digest: EdgeDigest,
    /// The files, in stream order.
    pub files: Vec<FileEntry>,
}

/// Name of the manifest file inside an edge directory.
pub const MANIFEST_NAME: &str = "manifest.tsv";

impl Manifest {
    /// Absolute paths of the edge files, in stream order.
    pub fn file_paths(&self, dir: &Path) -> Vec<PathBuf> {
        self.files.iter().map(|f| dir.join(&f.name)).collect()
    }

    /// Upper bound on how many edges the file set can actually contain,
    /// derived from the files' sizes on disk (a missing file counts as
    /// empty). A manifest field is *untrusted input* — it may come from a
    /// corrupt or hostile directory — so callers clamp preallocations to
    /// this bound instead of trusting `edges` directly, and reject a
    /// manifest that claims more edges than its bytes can encode.
    pub fn max_edges_on_disk(&self, dir: &Path) -> u64 {
        let bytes: u64 = self
            .files
            .iter()
            .map(|f| std::fs::metadata(dir.join(&f.name)).map_or(0, |m| m.len()))
            .sum();
        bytes / self.encoding.min_record_bytes()
    }

    /// Serializes the manifest to `dir/manifest.tsv`.
    pub fn save(&self, dir: &Path) -> Result<()> {
        self.save_with(dir, false)
    }

    /// Like [`Manifest::save`]; with `durable` the manifest is written to a
    /// temporary file, fsynced, atomically renamed into place, and the
    /// directory entry is fsynced. Renaming makes the manifest the commit
    /// point of a file set: after a crash, either the complete old state or
    /// the complete new state is visible, never a torn manifest.
    pub fn save_with(&self, dir: &Path, durable: bool) -> Result<()> {
        let mut out = String::new();
        out.push_str("format\tppbench-edges-v1\n");
        if let Some(s) = self.scale {
            out.push_str(&format!("scale\t{s}\n"));
        }
        if let Some(n) = self.vertex_bound {
            out.push_str(&format!("vertex_bound\t{n}\n"));
        }
        out.push_str(&format!("edges\t{}\n", self.edges));
        out.push_str(&format!("sort\t{}\n", self.sort_state.as_str()));
        out.push_str(&format!("encoding\t{}\n", self.encoding.as_str()));
        out.push_str(&format!(
            "digest\t{}\t{}\t{}\t{}\n",
            self.digest.count, self.digest.sum, self.digest.xor, self.digest.chain
        ));
        for f in &self.files {
            out.push_str(&format!("file\t{}\t{}\n", f.name, f.edges));
        }
        let path = dir.join(MANIFEST_NAME);
        if !durable {
            return std::fs::write(&path, out).map_err(|e| Error::io(&path, e));
        }
        let tmp = dir.join(".manifest.tsv.tmp");
        {
            use std::io::Write;
            let mut f = std::fs::File::create(&tmp).map_err(|e| Error::io(&tmp, e))?;
            f.write_all(out.as_bytes())
                .map_err(|e| Error::io(&tmp, e))?;
            f.sync_all().map_err(|e| Error::io(&tmp, e))?;
        }
        std::fs::rename(&tmp, &path).map_err(|e| Error::io(&path, e))?;
        crate::writer::sync_dir(dir)
    }

    /// Loads and validates a manifest from `dir/manifest.tsv`.
    pub fn load(dir: &Path) -> Result<Self> {
        let path = dir.join(MANIFEST_NAME);
        let text = std::fs::read_to_string(&path).map_err(|e| Error::io(&path, e))?;
        let mut m = Manifest::default();
        let mut saw_format = false;
        for (lineno, line) in text.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            let bad = |msg: String| Error::manifest(&path, format!("line {}: {msg}", lineno + 1));
            match fields[0] {
                "format" => {
                    if fields.get(1) != Some(&"ppbench-edges-v1") {
                        return Err(bad(format!("unknown format {:?}", fields.get(1))));
                    }
                    saw_format = true;
                }
                "scale" => {
                    let s = parse_field(&fields, 1).map_err(&bad)?;
                    m.scale =
                        Some(u32::try_from(s).map_err(|_| bad(format!("scale {s} too large")))?);
                }
                "vertex_bound" => {
                    m.vertex_bound = Some(parse_field(&fields, 1).map_err(bad)?);
                }
                "edges" => {
                    m.edges = parse_field(&fields, 1).map_err(bad)?;
                }
                "sort" => {
                    m.sort_state = fields
                        .get(1)
                        .and_then(|s| SortState::parse(s))
                        .ok_or_else(|| bad(format!("unknown sort state {:?}", fields.get(1))))?;
                }
                "encoding" => {
                    m.encoding = fields
                        .get(1)
                        .and_then(|s| EdgeEncoding::parse(s))
                        .ok_or_else(|| bad(format!("unknown encoding {:?}", fields.get(1))))?;
                }
                "digest" => {
                    m.digest = EdgeDigest {
                        count: parse_field(&fields, 1).map_err(&bad)?,
                        sum: parse_field(&fields, 2).map_err(&bad)?,
                        xor: parse_field(&fields, 3).map_err(&bad)?,
                        chain: parse_field(&fields, 4).map_err(&bad)?,
                    };
                }
                "file" => {
                    let name = fields
                        .get(1)
                        .filter(|n| !n.is_empty())
                        .ok_or_else(|| bad("file entry missing name".into()))?;
                    m.files.push(FileEntry {
                        name: name.to_string(),
                        edges: parse_field(&fields, 2).map_err(bad)?,
                    });
                }
                other => return Err(bad(format!("unknown key {other:?}"))),
            }
        }
        if !saw_format {
            return Err(Error::manifest(&path, "missing format line"));
        }
        let per_file: u64 = m.files.iter().map(|f| f.edges).sum();
        if per_file != m.edges {
            return Err(Error::manifest(
                &path,
                format!("per-file counts sum to {per_file}, expected {}", m.edges),
            ));
        }
        if m.digest.count != m.edges {
            return Err(Error::manifest(
                &path,
                format!("digest count {} != edges {}", m.digest.count, m.edges),
            ));
        }
        Ok(m)
    }
}

fn parse_field(fields: &[&str], idx: usize) -> std::result::Result<u64, String> {
    fields
        .get(idx)
        .ok_or_else(|| format!("missing field {idx}"))?
        .parse::<u64>()
        .map_err(|e| format!("bad integer in field {idx}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;
    use crate::Edge;

    fn sample() -> Manifest {
        let digest = EdgeDigest::of_edges(&[Edge::new(1, 2), Edge::new(3, 4), Edge::new(5, 6)]);
        Manifest {
            scale: Some(10),
            vertex_bound: Some(1024),
            edges: 3,
            sort_state: SortState::ByStart,
            encoding: EdgeEncoding::Text,
            digest,
            files: vec![
                FileEntry {
                    name: "edges-00000.tsv".into(),
                    edges: 2,
                },
                FileEntry {
                    name: "edges-00001.tsv".into(),
                    edges: 1,
                },
            ],
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let td = TempDir::new("ppbench-manifest").unwrap();
        let m = sample();
        m.save(td.path()).unwrap();
        let loaded = Manifest::load(td.path()).unwrap();
        assert_eq!(loaded, m);
    }

    #[test]
    fn roundtrip_without_optionals() {
        let td = TempDir::new("ppbench-manifest").unwrap();
        let m = Manifest {
            scale: None,
            vertex_bound: None,
            edges: 0,
            sort_state: SortState::Unsorted,
            encoding: EdgeEncoding::Binary,
            digest: EdgeDigest::new(),
            files: vec![FileEntry {
                name: "e.tsv".into(),
                edges: 0,
            }],
        };
        m.save(td.path()).unwrap();
        assert_eq!(Manifest::load(td.path()).unwrap(), m);
    }

    #[test]
    fn durable_save_roundtrips_and_leaves_no_temp_file() {
        let td = TempDir::new("ppbench-manifest").unwrap();
        let m = sample();
        m.save_with(td.path(), true).unwrap();
        assert_eq!(Manifest::load(td.path()).unwrap(), m);
        assert!(!td.join(".manifest.tsv.tmp").exists());
    }

    #[test]
    fn max_edges_on_disk_bounds_by_file_bytes() {
        let td = TempDir::new("ppbench-manifest").unwrap();
        let mut m = sample();
        // Two real files: 8 bytes and 4 bytes of text → at most 3 edges.
        std::fs::write(td.join("edges-00000.tsv"), "1\t2\n3\t4\n").unwrap();
        std::fs::write(td.join("edges-00001.tsv"), "5\t6\n").unwrap();
        assert_eq!(m.max_edges_on_disk(td.path()), 3);
        // A listed-but-missing file contributes nothing.
        m.files.push(FileEntry {
            name: "edges-00002.tsv".into(),
            edges: 0,
        });
        assert_eq!(m.max_edges_on_disk(td.path()), 3);
    }

    #[test]
    fn load_missing_manifest_fails() {
        let td = TempDir::new("ppbench-manifest").unwrap();
        assert!(matches!(Manifest::load(td.path()), Err(Error::Io { .. })));
    }

    #[test]
    fn load_rejects_count_mismatch() {
        let td = TempDir::new("ppbench-manifest").unwrap();
        let mut m = sample();
        m.files[0].edges = 99;
        // Bypass save-side consistency by writing the text manually.
        m.save(td.path()).unwrap();
        let err = Manifest::load(td.path()).unwrap_err();
        assert!(err.to_string().contains("per-file counts"), "{err}");
    }

    #[test]
    fn load_rejects_garbage() {
        let td = TempDir::new("ppbench-manifest").unwrap();
        std::fs::write(
            td.join(MANIFEST_NAME),
            "format\tppbench-edges-v1\nbogus\t1\n",
        )
        .unwrap();
        let err = Manifest::load(td.path()).unwrap_err();
        assert!(err.to_string().contains("unknown key"), "{err}");
    }

    #[test]
    fn load_rejects_wrong_format_version() {
        let td = TempDir::new("ppbench-manifest").unwrap();
        std::fs::write(td.join(MANIFEST_NAME), "format\tppbench-edges-v9\n").unwrap();
        assert!(Manifest::load(td.path()).is_err());
    }

    #[test]
    fn load_requires_format_line() {
        let td = TempDir::new("ppbench-manifest").unwrap();
        std::fs::write(td.join(MANIFEST_NAME), "edges\t0\ndigest\t0\t0\t0\t0\n").unwrap();
        let err = Manifest::load(td.path()).unwrap_err();
        assert!(err.to_string().contains("missing format"), "{err}");
    }

    #[test]
    fn file_paths_join_dir() {
        let m = sample();
        let paths = m.file_paths(Path::new("/data"));
        assert_eq!(paths[0], Path::new("/data/edges-00000.tsv"));
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn sort_state_parsing_total() {
        for s in [
            SortState::Unsorted,
            SortState::ByStart,
            SortState::ByStartEnd,
        ] {
            assert_eq!(SortState::parse(s.as_str()), Some(s));
        }
        assert_eq!(SortState::parse("nonsense"), None);
        assert!(SortState::ByStart.is_sorted_by_start());
        assert!(SortState::ByStartEnd.is_sorted_by_start());
        assert!(!SortState::Unsorted.is_sorted_by_start());
    }
}
