//! Buffered multi-file edge writer.
//!
//! The benchmark spec leaves the number of files as a free parameter. Files
//! hold *contiguous chunks* of the stream (edges `0..M/K` in file 0, and so
//! on), so a stream sorted by kernel 1 remains globally sorted across the
//! file set — the decomposition the paper assumes when it notes that "each
//! processor would hold a set of rows, since this corresponds to how the
//! files have been sorted in kernel 1".

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::checksum::EdgeDigest;
use crate::format;
use crate::manifest::{EdgeEncoding, FileEntry, Manifest, SortState};
use crate::{Edge, Error, Result};

/// Streams edges into `num_files` tab-separated files inside a directory,
/// producing a [`Manifest`] on [`EdgeWriter::finish`].
///
/// By default the writer is **durable**, honoring the spec's "non-volatile
/// storage" requirement: every data file is fsynced when it is closed, the
/// directory is fsynced before the manifest is published, and the manifest
/// itself is written via fsync + atomic rename. A crash therefore can never
/// leave a manifest naming files whose contents did not reach disk. Callers
/// that don't need the guarantee (tests, scratch spill runs) opt out with
/// [`EdgeWriter::durable`]`(false)`.
#[derive(Debug)]
pub struct EdgeWriter {
    dir: PathBuf,
    basename: String,
    num_files: usize,
    capacity_per_file: u64,
    files: Vec<FileEntry>,
    current: Option<BufWriter<File>>,
    current_count: u64,
    digest: EdgeDigest,
    line_buf: Vec<u8>,
    batch_buf: Vec<u8>,
    encoding: EdgeEncoding,
    durable: bool,
}

/// Buffer size for file writes; large enough that syscall overhead is
/// negligible at every benchmark scale.
const WRITE_BUF_BYTES: usize = 1 << 20;

/// Edges encoded per segment in the bulk write paths. Bounds the encode
/// buffer (~700 KiB of text at 20-digit ids) independently of caller chunk
/// sizes.
const BATCH_EDGES: u64 = 1 << 14;

/// File name of shard `index` of a file set: `basename-NNNNN.<ext>`.
///
/// Shared by [`EdgeWriter`] and [`ShardWriter`] so a set written by parallel
/// shard writers is byte-for-byte the set the serial writer produces.
pub fn shard_file_name(basename: &str, index: usize, encoding: EdgeEncoding) -> String {
    format!("{basename}-{index:05}.{}", encoding.extension())
}

fn validate_basename(basename: &str) -> Result<()> {
    if basename.is_empty() || basename.contains(['/', '\\', '\t', '\n']) {
        return Err(Error::InvalidConfig(format!("bad basename {basename:?}")));
    }
    Ok(())
}

#[inline]
fn encode_edge(encoding: EdgeEncoding, edge: Edge, buf: &mut Vec<u8>) {
    buf.clear();
    match encoding {
        EdgeEncoding::Text => format::encode_line(edge, buf),
        EdgeEncoding::Binary => {
            buf.extend_from_slice(&edge.u.to_le_bytes());
            buf.extend_from_slice(&edge.v.to_le_bytes());
        }
    }
}

/// Fsyncs the directory itself so the directory entries of freshly created
/// files survive power loss (POSIX persists new entries only once the
/// *directory* is synced, independently of the files' own fsyncs).
pub(crate) fn sync_dir(dir: &Path) -> Result<()> {
    let f = File::open(dir).map_err(|e| Error::io(dir, e))?;
    f.sync_all().map_err(|e| Error::io(dir, e))
}

/// Publishes `manifest` over data files that are already fully written —
/// the assembly step for parallel [`ShardWriter`]s. With `durable`, the
/// directory is fsynced *before* the manifest is saved (so every data file's
/// directory entry is on disk first) and the manifest itself is written
/// durably; the manifest is thus the commit point of the file set.
pub fn publish_manifest(dir: &Path, manifest: &Manifest, durable: bool) -> Result<()> {
    if durable {
        sync_dir(dir)?;
    }
    manifest.save_with(dir, durable)
}

impl EdgeWriter {
    /// Creates a writer that will spread `expected_edges` edges across
    /// `num_files` files named `basename-NNNNN.tsv` in `dir`.
    ///
    /// Writing more than `expected_edges` is allowed (the overflow lands in
    /// the last file); writing fewer simply produces smaller or empty tail
    /// files.
    pub fn create(
        dir: &Path,
        basename: &str,
        num_files: usize,
        expected_edges: u64,
    ) -> Result<Self> {
        Self::create_with_encoding(dir, basename, num_files, expected_edges, EdgeEncoding::Text)
    }

    /// Like [`EdgeWriter::create`] with an explicit on-disk encoding.
    /// [`EdgeEncoding::Binary`] is a non-spec ablation format (see the
    /// `ablation_encoding` bench): 16 bytes per edge, little endian.
    pub fn create_with_encoding(
        dir: &Path,
        basename: &str,
        num_files: usize,
        expected_edges: u64,
        encoding: EdgeEncoding,
    ) -> Result<Self> {
        if num_files == 0 {
            return Err(Error::InvalidConfig("num_files must be at least 1".into()));
        }
        validate_basename(basename)?;
        std::fs::create_dir_all(dir).map_err(|e| Error::io(dir, e))?;
        let capacity_per_file = expected_edges.div_ceil(num_files as u64).max(1);
        Ok(Self {
            dir: dir.to_path_buf(),
            basename: basename.to_string(),
            num_files,
            capacity_per_file,
            files: Vec::with_capacity(num_files),
            current: None,
            current_count: 0,
            digest: EdgeDigest::new(),
            line_buf: Vec::with_capacity(format::MAX_LINE_BYTES),
            batch_buf: Vec::new(),
            encoding,
            durable: true,
        })
    }

    /// Toggles durability (default `true`): whether data files are fsynced
    /// on close and the manifest is published with a directory sync. Call
    /// before the first write.
    #[must_use]
    pub fn durable(mut self, durable: bool) -> Self {
        self.durable = durable;
        self
    }

    fn file_name(&self, idx: usize) -> String {
        shard_file_name(&self.basename, idx, self.encoding)
    }

    fn roll_file(&mut self) -> Result<()> {
        self.close_current()?;
        let name = self.file_name(self.files.len());
        let path = self.dir.join(&name);
        let file = File::create(&path).map_err(|e| Error::io(&path, e))?;
        self.current = Some(BufWriter::with_capacity(WRITE_BUF_BYTES, file));
        self.files.push(FileEntry { name, edges: 0 });
        self.current_count = 0;
        Ok(())
    }

    fn close_current(&mut self) -> Result<()> {
        if let Some(mut w) = self.current.take() {
            w.flush().map_err(|e| Error::io(&self.dir, e))?;
            if self.durable {
                // Contents must reach non-volatile storage before the
                // manifest can name this file.
                w.get_ref()
                    .sync_all()
                    .map_err(|e| Error::io(&self.dir, e))?;
            }
            if let Some(last) = self.files.last_mut() {
                last.edges = self.current_count;
            }
        }
        Ok(())
    }

    /// Writes one edge.
    #[inline]
    pub fn write(&mut self, edge: Edge) -> Result<()> {
        let need_roll = match &self.current {
            None => true,
            Some(_) => {
                self.current_count >= self.capacity_per_file && self.files.len() < self.num_files
            }
        };
        if need_roll {
            self.roll_file()?;
        }
        encode_edge(self.encoding, edge, &mut self.line_buf);
        let file = self.current.as_mut().ok_or_else(|| {
            Error::io(
                &self.dir,
                std::io::Error::other("no open output file after roll"),
            )
        })?;
        file.write_all(&self.line_buf)
            .map_err(|e| Error::io(&self.dir, e))?;
        self.current_count += 1;
        self.digest.update(edge);
        Ok(())
    }

    /// Writes a slice of edges.
    ///
    /// Equivalent to calling [`EdgeWriter::write`] per edge (same file
    /// rolls, same digest), but encodes whole segments into one reused
    /// buffer and hands them to the file in single `write_all` calls, which
    /// is what lets kernel 0 stream at device speed.
    pub fn write_all(&mut self, edges: &[Edge]) -> Result<()> {
        let mut rest = edges;
        while !rest.is_empty() {
            let need_roll = match &self.current {
                None => true,
                Some(_) => {
                    self.current_count >= self.capacity_per_file
                        && self.files.len() < self.num_files
                }
            };
            if need_roll {
                self.roll_file()?;
            }
            // Room left in the current file — unlimited once the last file
            // is reached (overflow lands there, as in `write`).
            let room = if self.files.len() < self.num_files {
                self.capacity_per_file - self.current_count
            } else {
                u64::MAX
            };
            let take = (rest.len() as u64).min(room).min(BATCH_EDGES) as usize;
            let (seg, tail) = rest.split_at(take);
            self.batch_buf.clear();
            match self.encoding {
                EdgeEncoding::Text => {
                    for &e in seg {
                        format::encode_line(e, &mut self.batch_buf);
                        self.digest.update(e);
                    }
                }
                EdgeEncoding::Binary => {
                    for &e in seg {
                        self.batch_buf.extend_from_slice(&e.u.to_le_bytes());
                        self.batch_buf.extend_from_slice(&e.v.to_le_bytes());
                        self.digest.update(e);
                    }
                }
            }
            let file = self.current.as_mut().ok_or_else(|| {
                Error::io(
                    &self.dir,
                    std::io::Error::other("no open output file after roll"),
                )
            })?;
            file.write_all(&self.batch_buf)
                .map_err(|e| Error::io(&self.dir, e))?;
            self.current_count += take as u64;
            rest = tail;
        }
        Ok(())
    }

    /// Number of edges written so far.
    pub fn edges_written(&self) -> u64 {
        self.digest.count
    }

    /// Flushes everything, pads the file set to `num_files` (empty files) if
    /// fewer edges arrived than expected, writes the manifest, and returns it.
    pub fn finish(
        mut self,
        scale: Option<u32>,
        vertex_bound: Option<u64>,
        sort_state: SortState,
    ) -> Result<Manifest> {
        // Guarantee the promised number of files exists even for short
        // streams: downstream tools may map files to workers.
        while self.files.len() < self.num_files {
            self.roll_file()?;
        }
        self.close_current()?;
        let manifest = Manifest {
            scale,
            vertex_bound,
            edges: self.digest.count,
            sort_state,
            encoding: self.encoding,
            digest: self.digest,
            files: std::mem::take(&mut self.files),
        };
        publish_manifest(&self.dir, &manifest, self.durable)?;
        Ok(manifest)
    }
}

/// Writes exactly one file of an edge file set — the per-shard half of a
/// parallel kernel-0 writer.
///
/// Unlike [`EdgeWriter`], a `ShardWriter` writes no manifest: each shard
/// produces its [`FileEntry`] plus the [`EdgeDigest`] of its own slice of
/// the stream, and the coordinator merges the digests in file order with
/// [`EdgeDigest::concat`] and commits the set via [`publish_manifest`].
/// Because the file naming ([`shard_file_name`]) and encoding match
/// [`EdgeWriter`] exactly, a sharded set is byte-identical to a serial one.
#[derive(Debug)]
pub struct ShardWriter {
    path: PathBuf,
    name: String,
    writer: BufWriter<File>,
    digest: EdgeDigest,
    line_buf: Vec<u8>,
    batch_buf: Vec<u8>,
    encoding: EdgeEncoding,
    durable: bool,
}

impl ShardWriter {
    /// Creates the writer for shard `index` of the set named `basename` in
    /// `dir`. With `durable`, the file is fsynced on [`ShardWriter::finish`].
    pub fn create(
        dir: &Path,
        basename: &str,
        index: usize,
        encoding: EdgeEncoding,
        durable: bool,
    ) -> Result<Self> {
        validate_basename(basename)?;
        std::fs::create_dir_all(dir).map_err(|e| Error::io(dir, e))?;
        let name = shard_file_name(basename, index, encoding);
        let path = dir.join(&name);
        let file = File::create(&path).map_err(|e| Error::io(&path, e))?;
        Ok(Self {
            path,
            name,
            writer: BufWriter::with_capacity(WRITE_BUF_BYTES, file),
            digest: EdgeDigest::new(),
            line_buf: Vec::with_capacity(format::MAX_LINE_BYTES),
            batch_buf: Vec::new(),
            encoding,
            durable,
        })
    }

    /// Writes one edge to the shard.
    #[inline]
    pub fn write(&mut self, edge: Edge) -> Result<()> {
        encode_edge(self.encoding, edge, &mut self.line_buf);
        self.writer
            .write_all(&self.line_buf)
            .map_err(|e| Error::io(&self.path, e))?;
        self.digest.update(edge);
        Ok(())
    }

    /// Writes a slice of edges; same bytes and digest as per-edge
    /// [`ShardWriter::write`], with segment-batched encoding.
    pub fn write_all(&mut self, edges: &[Edge]) -> Result<()> {
        for seg in edges.chunks(BATCH_EDGES as usize) {
            self.batch_buf.clear();
            match self.encoding {
                EdgeEncoding::Text => {
                    for &e in seg {
                        format::encode_line(e, &mut self.batch_buf);
                        self.digest.update(e);
                    }
                }
                EdgeEncoding::Binary => {
                    for &e in seg {
                        self.batch_buf.extend_from_slice(&e.u.to_le_bytes());
                        self.batch_buf.extend_from_slice(&e.v.to_le_bytes());
                        self.digest.update(e);
                    }
                }
            }
            self.writer
                .write_all(&self.batch_buf)
                .map_err(|e| Error::io(&self.path, e))?;
        }
        Ok(())
    }

    /// Flushes (and fsyncs, when durable) the file; returns its manifest
    /// entry and the digest of the shard's slice of the stream.
    pub fn finish(mut self) -> Result<(FileEntry, EdgeDigest)> {
        self.writer.flush().map_err(|e| Error::io(&self.path, e))?;
        if self.durable {
            self.writer
                .get_ref()
                .sync_all()
                .map_err(|e| Error::io(&self.path, e))?;
        }
        Ok((
            FileEntry {
                name: self.name,
                edges: self.digest.count,
            },
            self.digest,
        ))
    }
}

/// Convenience: writes `edges` to `dir` in one call and returns the manifest.
pub fn write_edges(
    dir: &Path,
    basename: &str,
    num_files: usize,
    edges: &[Edge],
    scale: Option<u32>,
    vertex_bound: Option<u64>,
    sort_state: SortState,
) -> Result<Manifest> {
    let mut w = EdgeWriter::create(dir, basename, num_files, edges.len() as u64)?;
    w.write_all(edges)?;
    w.finish(scale, vertex_bound, sort_state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    fn edges(n: u64) -> Vec<Edge> {
        (0..n).map(|i| Edge::new(i, i * 2 + 1)).collect()
    }

    #[test]
    fn single_file_contents_match_spec() {
        let td = TempDir::new("ppbench-writer").unwrap();
        let m = write_edges(
            td.path(),
            "edges",
            1,
            &[Edge::new(1, 2), Edge::new(3, 4)],
            None,
            None,
            SortState::Unsorted,
        )
        .unwrap();
        assert_eq!(m.files.len(), 1);
        let text = std::fs::read_to_string(td.join(&m.files[0].name)).unwrap();
        assert_eq!(text, "1\t2\n3\t4\n");
    }

    #[test]
    fn chunks_are_contiguous_across_files() {
        let td = TempDir::new("ppbench-writer").unwrap();
        let es = edges(10);
        let m = write_edges(td.path(), "edges", 3, &es, None, None, SortState::Unsorted).unwrap();
        assert_eq!(m.files.len(), 3);
        // ceil(10/3) = 4 per file: 4, 4, 2
        assert_eq!(
            m.files.iter().map(|f| f.edges).collect::<Vec<_>>(),
            vec![4, 4, 2]
        );
        let first = std::fs::read_to_string(td.join(&m.files[0].name)).unwrap();
        assert!(first.starts_with("0\t1\n1\t3\n"));
    }

    #[test]
    fn overflow_lands_in_last_file() {
        let td = TempDir::new("ppbench-writer").unwrap();
        let mut w = EdgeWriter::create(td.path(), "edges", 2, 4).unwrap();
        w.write_all(&edges(9)).unwrap(); // 5 more than expected
        let m = w.finish(None, None, SortState::Unsorted).unwrap();
        assert_eq!(m.files.len(), 2);
        assert_eq!(m.files[0].edges, 2);
        assert_eq!(m.files[1].edges, 7);
        assert_eq!(m.edges, 9);
    }

    #[test]
    fn short_stream_pads_empty_files() {
        let td = TempDir::new("ppbench-writer").unwrap();
        let mut w = EdgeWriter::create(td.path(), "edges", 4, 100).unwrap();
        w.write_all(&edges(3)).unwrap();
        let m = w.finish(None, None, SortState::Unsorted).unwrap();
        assert_eq!(m.files.len(), 4);
        assert_eq!(m.edges, 3);
        for f in &m.files {
            assert!(td.join(&f.name).is_file(), "{} missing", f.name);
        }
    }

    #[test]
    fn empty_stream_still_produces_files_and_manifest() {
        let td = TempDir::new("ppbench-writer").unwrap();
        let w = EdgeWriter::create(td.path(), "edges", 2, 0).unwrap();
        let m = w.finish(Some(0), Some(1), SortState::ByStart).unwrap();
        assert_eq!(m.edges, 0);
        assert_eq!(m.files.len(), 2);
        let loaded = Manifest::load(td.path()).unwrap();
        assert_eq!(loaded, m);
    }

    #[test]
    fn digest_matches_batch_digest() {
        let td = TempDir::new("ppbench-writer").unwrap();
        let es = edges(50);
        let m = write_edges(td.path(), "edges", 5, &es, None, None, SortState::Unsorted).unwrap();
        assert!(m.digest.same_stream(&EdgeDigest::of_edges(&es)));
    }

    #[test]
    fn rejects_zero_files() {
        let td = TempDir::new("ppbench-writer").unwrap();
        assert!(EdgeWriter::create(td.path(), "edges", 0, 10).is_err());
    }

    #[test]
    fn rejects_path_traversal_basename() {
        let td = TempDir::new("ppbench-writer").unwrap();
        assert!(EdgeWriter::create(td.path(), "../evil", 1, 10).is_err());
        assert!(EdgeWriter::create(td.path(), "", 1, 10).is_err());
    }

    #[test]
    fn binary_encoding_roundtrips() {
        let td = TempDir::new("ppbench-writer").unwrap();
        let es = edges(100);
        let mut w = EdgeWriter::create_with_encoding(
            td.path(),
            "edges",
            3,
            es.len() as u64,
            crate::manifest::EdgeEncoding::Binary,
        )
        .unwrap();
        w.write_all(&es).unwrap();
        let m = w.finish(Some(7), Some(128), SortState::Unsorted).unwrap();
        assert_eq!(m.encoding, crate::manifest::EdgeEncoding::Binary);
        assert!(m.files[0].name.ends_with(".bin"), "{}", m.files[0].name);
        // Exactly 16 bytes per edge on disk.
        let bytes: u64 = m
            .files
            .iter()
            .map(|f| std::fs::metadata(td.join(&f.name)).unwrap().len())
            .sum();
        assert_eq!(bytes, 16 * es.len() as u64);
        let (m2, got) = crate::EdgeReader::read_dir_all(td.path()).unwrap();
        assert_eq!(m2.encoding, crate::manifest::EdgeEncoding::Binary);
        assert_eq!(got, es);
    }

    #[test]
    fn binary_torn_record_detected() {
        let td = TempDir::new("ppbench-writer").unwrap();
        let es = edges(10);
        let mut w = EdgeWriter::create_with_encoding(
            td.path(),
            "edges",
            1,
            es.len() as u64,
            crate::manifest::EdgeEncoding::Binary,
        )
        .unwrap();
        w.write_all(&es).unwrap();
        let m = w.finish(None, None, SortState::Unsorted).unwrap();
        let path = td.join(&m.files[0].name);
        let data = std::fs::read(&path).unwrap();
        // A trailing partial record (not a shortened file, which the
        // byte-bound clamp rejects first) must surface as a torn record.
        let mut torn = data.clone();
        torn.extend_from_slice(&data[..9]);
        std::fs::write(&path, &torn).unwrap();
        let err = crate::EdgeReader::read_dir_all(td.path()).unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
        // And a truncated file is rejected up front by the byte bound.
        std::fs::write(&path, &data[..data.len() - 7]).unwrap();
        let err = crate::EdgeReader::read_dir_all(td.path()).unwrap_err();
        assert!(err.to_string().contains("at most"), "{err}");
    }

    #[test]
    fn sharded_set_identical_to_serial_writer() {
        // The parallel-kernel-0 contract: per-file shard writers plus
        // digest concat plus publish_manifest reproduce the serial
        // EdgeWriter's output byte for byte, manifest included.
        let td = TempDir::new("ppbench-writer").unwrap();
        let es = edges(10);
        let serial = write_edges(
            &td.join("serial"),
            "edges",
            3,
            &es,
            Some(4),
            Some(32),
            SortState::Unsorted,
        )
        .unwrap();
        // ceil(10/3) = 4 edges per shard; shard 2 gets the short tail.
        let dir = td.join("sharded");
        let mut parts = Vec::new();
        for (i, slice) in es.chunks(4).enumerate() {
            let mut w = ShardWriter::create(&dir, "edges", i, EdgeEncoding::Text, false).unwrap();
            for &e in slice {
                w.write(e).unwrap();
            }
            parts.push(w.finish().unwrap());
        }
        let mut digest = EdgeDigest::new();
        let mut files = Vec::new();
        for (entry, d) in parts {
            digest = digest.concat(&d);
            files.push(entry);
        }
        let manifest = Manifest {
            scale: Some(4),
            vertex_bound: Some(32),
            edges: digest.count,
            sort_state: SortState::Unsorted,
            encoding: EdgeEncoding::Text,
            digest,
            files,
        };
        publish_manifest(&dir, &manifest, false).unwrap();
        assert_eq!(manifest, serial);
        for f in &serial.files {
            let a = std::fs::read(td.join("serial").join(&f.name)).unwrap();
            let b = std::fs::read(dir.join(&f.name)).unwrap();
            assert_eq!(a, b, "{} differs", f.name);
        }
        assert_eq!(
            Manifest::load(&dir).unwrap(),
            Manifest::load(&td.join("serial")).unwrap()
        );
    }

    #[test]
    fn bulk_write_all_identical_to_per_edge_writes() {
        // The batched path must reproduce the per-edge path exactly —
        // same file boundaries, bytes, digest and manifest — including
        // roll-over mid-slice and overflow into the last file.
        let td = TempDir::new("ppbench-writer").unwrap();
        for (n, num_files, expected) in
            [(10u64, 3usize, 10u64), (9, 2, 4), (100, 7, 100), (5, 1, 5)]
        {
            let es = edges(n);
            let tag = format!("{n}-{num_files}-{expected}");
            let dir_a = td.join(&format!("a{tag}"));
            let dir_b = td.join(&format!("b{tag}"));
            let mut w = EdgeWriter::create(&dir_a, "edges", num_files, expected)
                .unwrap()
                .durable(false);
            for &e in &es {
                w.write(e).unwrap();
            }
            let per_edge = w.finish(None, None, SortState::Unsorted).unwrap();
            let mut w = EdgeWriter::create(&dir_b, "edges", num_files, expected)
                .unwrap()
                .durable(false);
            w.write_all(&es).unwrap();
            let bulk = w.finish(None, None, SortState::Unsorted).unwrap();
            assert_eq!(per_edge, bulk, "case {tag}");
            for f in &per_edge.files {
                let a = std::fs::read(dir_a.join(&f.name)).unwrap();
                let b = std::fs::read(dir_b.join(&f.name)).unwrap();
                assert_eq!(a, b, "case {tag} file {}", f.name);
            }
        }
    }

    #[test]
    fn shard_bulk_write_all_matches_per_edge() {
        let td = TempDir::new("ppbench-writer").unwrap();
        let es = edges(1000);
        let mut a =
            ShardWriter::create(&td.join("a"), "edges", 0, EdgeEncoding::Text, false).unwrap();
        for &e in &es {
            a.write(e).unwrap();
        }
        let (ea, da) = a.finish().unwrap();
        let mut b =
            ShardWriter::create(&td.join("b"), "edges", 0, EdgeEncoding::Text, false).unwrap();
        b.write_all(&es).unwrap();
        let (eb, db) = b.finish().unwrap();
        assert_eq!(ea, eb);
        assert!(da.same_stream(&db));
        assert_eq!(
            std::fs::read(td.join("a").join(&ea.name)).unwrap(),
            std::fs::read(td.join("b").join(&eb.name)).unwrap()
        );
    }

    #[test]
    fn shard_writer_rejects_bad_basename() {
        let td = TempDir::new("ppbench-writer").unwrap();
        assert!(ShardWriter::create(td.path(), "../x", 0, EdgeEncoding::Text, false).is_err());
    }

    #[test]
    fn durable_writer_output_matches_non_durable() {
        let td = TempDir::new("ppbench-writer").unwrap();
        let es = edges(20);
        let mut w = EdgeWriter::create(&td.join("d"), "edges", 2, 20).unwrap();
        w.write_all(&es).unwrap();
        let durable = w.finish(None, None, SortState::Unsorted).unwrap();
        let mut w = EdgeWriter::create(&td.join("n"), "edges", 2, 20)
            .unwrap()
            .durable(false);
        w.write_all(&es).unwrap();
        let fast = w.finish(None, None, SortState::Unsorted).unwrap();
        assert_eq!(durable, fast);
        assert_eq!(
            std::fs::read_to_string(td.join("d").join(crate::MANIFEST_NAME)).unwrap(),
            std::fs::read_to_string(td.join("n").join(crate::MANIFEST_NAME)).unwrap()
        );
    }

    #[test]
    fn manifest_written_to_disk() {
        let td = TempDir::new("ppbench-writer").unwrap();
        let m = write_edges(
            td.path(),
            "edges",
            2,
            &edges(6),
            Some(3),
            Some(8),
            SortState::Unsorted,
        )
        .unwrap();
        let loaded = Manifest::load(td.path()).unwrap();
        assert_eq!(loaded, m);
        assert_eq!(loaded.scale, Some(3));
        assert_eq!(loaded.vertex_bound, Some(8));
    }
}
