//! A tiny scoped temporary-directory helper (no external crates).
//!
//! Used by tests, examples and the benchmark harness for kernel scratch
//! space. The directory is removed when the handle drops.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A uniquely named directory under the system temp dir, deleted on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh directory named after `prefix`, the process id and a
    /// global counter, so concurrent tests never collide.
    pub fn new(prefix: &str) -> std::io::Result<Self> {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("{prefix}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path)?;
        Ok(Self { path })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Joins a file name onto the directory.
    pub fn join(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }

    /// Consumes the handle without deleting the directory.
    pub fn into_path(mut self) -> PathBuf {
        std::mem::take(&mut self.path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if !self.path.as_os_str().is_empty() {
            // ppbench: allow(discarded-result, reason = "best-effort cleanup in Drop; a failed removal must not panic the unwinder")
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes() {
        let path;
        {
            let td = TempDir::new("ppbench-io-test").unwrap();
            path = td.path().to_path_buf();
            assert!(path.is_dir());
            std::fs::write(td.join("x.txt"), "hello").unwrap();
        }
        assert!(!path.exists(), "dir should be removed on drop");
    }

    #[test]
    fn two_tempdirs_are_distinct() {
        let a = TempDir::new("ppbench-io-test").unwrap();
        let b = TempDir::new("ppbench-io-test").unwrap();
        assert_ne!(a.path(), b.path());
    }

    #[test]
    fn into_path_keeps_directory() {
        let td = TempDir::new("ppbench-io-test").unwrap();
        let path = td.into_path();
        assert!(path.is_dir());
        std::fs::remove_dir_all(&path).unwrap();
    }
}
