//! Fast decimal formatting and parsing of unsigned 64-bit integers.
//!
//! The benchmark's file kernels spend most of their time converting vertex
//! ids to and from decimal text; `u64::to_string` allocates per call and
//! `str::parse` re-validates UTF-8 and signs. These hand-rolled routines are
//! what the `optimized` pipeline backend uses; the `naive` backend
//! deliberately sticks to the standard-library conversions so the two
//! execution styles can be compared (Figures 4–5 of the paper).

/// Maximum number of decimal digits in a `u64` (`u64::MAX` has 20).
pub const MAX_DIGITS: usize = 20;

/// Writes `value` in decimal into `buf`, returning the number of bytes
/// written. `buf` must be at least [`MAX_DIGITS`] bytes.
///
/// # Panics
///
/// Panics if `buf` is shorter than the formatted value.
#[inline]
pub fn format_u64(mut value: u64, buf: &mut [u8]) -> usize {
    let mut tmp = [0u8; MAX_DIGITS];
    let mut i = MAX_DIGITS;
    loop {
        i -= 1;
        tmp[i] = b'0' + (value % 10) as u8;
        value /= 10;
        if value == 0 {
            break;
        }
    }
    let len = MAX_DIGITS - i;
    buf[..len].copy_from_slice(&tmp[i..]);
    len
}

/// Appends `value` in decimal to `out`.
#[inline]
pub fn push_u64(value: u64, out: &mut Vec<u8>) {
    let mut buf = [0u8; MAX_DIGITS];
    let len = format_u64(value, &mut buf);
    out.extend_from_slice(&buf[..len]);
}

/// Parses an unsigned decimal integer from `bytes`.
///
/// Accepts exactly the grammar the edge-file format emits: one or more ASCII
/// digits, no sign, no leading/trailing whitespace. Returns `None` on empty
/// input, non-digit bytes, or overflow past `u64::MAX`.
#[inline]
pub fn parse_u64(bytes: &[u8]) -> Option<u64> {
    if bytes.is_empty() || bytes.len() > MAX_DIGITS {
        return None;
    }
    let mut acc: u64 = 0;
    for &b in bytes {
        let d = b.wrapping_sub(b'0');
        if d > 9 {
            return None;
        }
        acc = acc.checked_mul(10)?.checked_add(d as u64)?;
    }
    Some(acc)
}

/// Parses a `u64` prefix of `bytes`, returning the value and the number of
/// bytes consumed. Stops at the first non-digit. Returns `None` if `bytes`
/// does not start with a digit or the digits overflow.
#[inline]
pub fn parse_u64_prefix(bytes: &[u8]) -> Option<(u64, usize)> {
    let mut acc: u64 = 0;
    let mut n = 0;
    for &b in bytes {
        let d = b.wrapping_sub(b'0');
        if d > 9 {
            break;
        }
        acc = acc.checked_mul(10)?.checked_add(d as u64)?;
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some((acc, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_known_values() {
        let cases: [(u64, &str); 7] = [
            (0, "0"),
            (1, "1"),
            (9, "9"),
            (10, "10"),
            (12345, "12345"),
            (u64::MAX, "18446744073709551615"),
            (1_000_000_000_000, "1000000000000"),
        ];
        let mut buf = [0u8; MAX_DIGITS];
        for (v, s) in cases {
            let len = format_u64(v, &mut buf);
            assert_eq!(&buf[..len], s.as_bytes(), "formatting {v}");
        }
    }

    #[test]
    fn format_matches_std_on_sample() {
        let mut buf = [0u8; MAX_DIGITS];
        for i in 0..100_000u64 {
            let v = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let len = format_u64(v, &mut buf);
            assert_eq!(std::str::from_utf8(&buf[..len]).unwrap(), v.to_string());
        }
    }

    #[test]
    fn push_appends() {
        let mut out = b"x=".to_vec();
        push_u64(77, &mut out);
        assert_eq!(out, b"x=77");
    }

    #[test]
    fn parse_known_values() {
        assert_eq!(parse_u64(b"0"), Some(0));
        assert_eq!(parse_u64(b"42"), Some(42));
        assert_eq!(parse_u64(b"18446744073709551615"), Some(u64::MAX));
        assert_eq!(parse_u64(b"007"), Some(7));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(parse_u64(b""), None);
        assert_eq!(parse_u64(b"-1"), None);
        assert_eq!(parse_u64(b"+1"), None);
        assert_eq!(parse_u64(b" 1"), None);
        assert_eq!(parse_u64(b"1 "), None);
        assert_eq!(parse_u64(b"12a"), None);
        assert_eq!(parse_u64(b"1.5"), None);
        // one past u64::MAX
        assert_eq!(parse_u64(b"18446744073709551616"), None);
        // way too long
        assert_eq!(parse_u64(b"999999999999999999999999"), None);
    }

    #[test]
    fn parse_prefix_stops_at_non_digit() {
        assert_eq!(parse_u64_prefix(b"123\t456"), Some((123, 3)));
        assert_eq!(parse_u64_prefix(b"9"), Some((9, 1)));
        assert_eq!(parse_u64_prefix(b"\t9"), None);
        assert_eq!(parse_u64_prefix(b""), None);
        assert_eq!(
            parse_u64_prefix(b"18446744073709551616\t1"),
            None,
            "overflow"
        );
    }

    #[test]
    fn roundtrip_sample() {
        let mut buf = [0u8; MAX_DIGITS];
        for i in 0..10_000u64 {
            let v = i.wrapping_mul(2_654_435_761).rotate_left((i % 64) as u32);
            let len = format_u64(v, &mut buf);
            assert_eq!(parse_u64(&buf[..len]), Some(v));
        }
    }
}
