//! Edge-file storage for the PageRank Pipeline Benchmark.
//!
//! Kernels 0 and 1 of the benchmark are defined in terms of *files on
//! non-volatile storage*: edges are written "as pairs of tab separated
//! numeric strings with a newline between each edge", and the number of
//! files is a free parameter of the specification. This crate owns that
//! contract:
//!
//! * [`Edge`] — the fundamental datum: a `(start, end)` pair of vertex ids.
//! * [`mod@format`] — the text encoding (`u<TAB>v<NEWLINE>`) with hand-rolled,
//!   branch-light integer parsing/formatting ([`atoi`]) so the optimized
//!   pipeline backend is not bottlenecked on `str::parse`.
//! * [`EdgeWriter`] / [`EdgeReader`] — buffered, multi-file readers and
//!   writers; files hold contiguous chunks so a sorted stream stays sorted
//!   across a file set.
//! * [`Manifest`] — sidecar metadata (scale, edge count, per-file counts,
//!   sort state, checksum) so each kernel can validate its input came from
//!   the previous kernel.
//! * [`checksum`] — order-independent and order-dependent stream digests
//!   used for cross-kernel and cross-backend validation (one of the paper's
//!   §V open questions: "What outputs should be recorded to validate
//!   correctness?").

//!
//! # Example
//!
//! ```
//! use ppbench_io::{tempdir::TempDir, Edge, EdgeReader, SortState};
//!
//! let dir = TempDir::new("ppbench-io-doc").unwrap();
//! let edges = vec![Edge::new(0, 1), Edge::new(1, 2)];
//! ppbench_io::write_edges(dir.path(), "edges", 2, &edges, None, None,
//!     SortState::Unsorted).unwrap();
//! let (manifest, back) = EdgeReader::read_dir_all(dir.path()).unwrap();
//! assert_eq!(back, edges);
//! assert_eq!(manifest.files.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod atoi;
pub mod checksum;
mod error;
pub mod format;
mod manifest;
mod reader;
pub mod tempdir;
mod writer;

pub use error::{Error, Result};
pub use manifest::{EdgeEncoding, FileEntry, Manifest, SortState, MANIFEST_NAME};
pub use reader::{EdgeFileIter, EdgeReader};
pub use writer::{publish_manifest, shard_file_name, write_edges, EdgeWriter, ShardWriter};

/// A vertex identifier. Vertex labels range over `0 .. 2^scale`, so 64 bits
/// cover every scale the Graph500 generator supports.
pub type VertexId = u64;

/// A directed edge `(u, v)`: `u` is the start vertex, `v` the end vertex.
///
/// `repr(C)` pins the layout to exactly 16 bytes — the figure Table II of
/// the paper uses for its memory-footprint column.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// Start vertex (`u`).
    pub u: VertexId,
    /// End vertex (`v`).
    pub v: VertexId,
}

impl Edge {
    /// Creates an edge from start and end vertex ids.
    #[inline]
    pub const fn new(u: VertexId, v: VertexId) -> Self {
        Self { u, v }
    }

    /// The (start, end) pair as a tuple.
    #[inline]
    pub const fn as_tuple(self) -> (VertexId, VertexId) {
        (self.u, self.v)
    }

    /// True if the edge is a self-loop.
    #[inline]
    pub const fn is_loop(self) -> bool {
        self.u == self.v
    }

    /// The sort key used by kernel 1 when sorting by start vertex only.
    #[inline]
    pub const fn start_key(self) -> u64 {
        self.u
    }
}

impl From<(VertexId, VertexId)> for Edge {
    fn from((u, v): (VertexId, VertexId)) -> Self {
        Self { u, v }
    }
}

impl std::fmt::Display for Edge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}\t{}", self.u, self.v)
    }
}

/// Bytes per edge used for the paper's Table II memory estimates
/// (two 8-byte vertex ids).
pub const BYTES_PER_EDGE: usize = std::mem::size_of::<Edge>();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_is_sixteen_bytes() {
        assert_eq!(BYTES_PER_EDGE, 16);
    }

    #[test]
    fn edge_orders_by_start_then_end() {
        let mut edges = vec![Edge::new(2, 0), Edge::new(1, 5), Edge::new(1, 3)];
        edges.sort();
        assert_eq!(
            edges,
            vec![Edge::new(1, 3), Edge::new(1, 5), Edge::new(2, 0)]
        );
    }

    #[test]
    fn edge_display_is_tab_separated() {
        assert_eq!(Edge::new(17, 42).to_string(), "17\t42");
    }

    #[test]
    fn edge_tuple_conversions() {
        let e = Edge::from((3, 9));
        assert_eq!(e.as_tuple(), (3, 9));
        assert!(!e.is_loop());
        assert!(Edge::new(4, 4).is_loop());
        assert_eq!(e.start_key(), 3);
    }
}
