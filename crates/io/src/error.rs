//! Error type shared by the storage layer.

use std::fmt;
use std::path::PathBuf;

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by edge-file reading, writing and manifest handling.
#[derive(Debug)]
pub enum Error {
    /// An underlying OS-level I/O failure, annotated with the path involved.
    Io {
        /// File or directory being accessed.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// A malformed line in an edge file.
    Parse {
        /// File containing the bad line.
        path: PathBuf,
        /// 1-based line number.
        line: u64,
        /// Description of what was wrong.
        message: String,
    },
    /// A malformed or inconsistent manifest.
    Manifest {
        /// Manifest file.
        path: PathBuf,
        /// Description of the problem.
        message: String,
    },
    /// The caller asked for an impossible configuration
    /// (e.g. zero files in a file set).
    InvalidConfig(String),
}

impl Error {
    /// Wraps an OS error with the path being accessed.
    pub fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        Error::Io {
            path: path.into(),
            source,
        }
    }

    /// Builds a parse error with file/line context.
    pub fn parse(path: impl Into<PathBuf>, line: u64, message: impl Into<String>) -> Self {
        Error::Parse {
            path: path.into(),
            line,
            message: message.into(),
        }
    }

    /// Builds a manifest error.
    pub fn manifest(path: impl Into<PathBuf>, message: impl Into<String>) -> Self {
        Error::Manifest {
            path: path.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io { path, source } => write!(f, "I/O error on {}: {source}", path.display()),
            Error::Parse {
                path,
                line,
                message,
            } => {
                write!(f, "parse error at {}:{line}: {message}", path.display())
            }
            Error::Manifest { path, message } => {
                write!(f, "bad manifest {}: {message}", path.display())
            }
            Error::InvalidConfig(message) => write!(f, "invalid configuration: {message}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = Error::parse("/tmp/x.tsv", 17, "missing tab");
        let s = e.to_string();
        assert!(s.contains("/tmp/x.tsv"), "{s}");
        assert!(s.contains("17"), "{s}");
        assert!(s.contains("missing tab"), "{s}");
    }

    #[test]
    fn io_error_preserves_source() {
        use std::error::Error as _;
        let e = Error::io("/nope", std::io::Error::from(std::io::ErrorKind::NotFound));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("/nope"));
    }
}
