//! Property-based tests for the edge-file storage layer.

use ppbench_io::{checksum::EdgeDigest, format, tempdir::TempDir, Edge, EdgeReader, SortState};
use proptest::prelude::*;

fn arb_edge() -> impl Strategy<Value = Edge> {
    (any::<u64>(), any::<u64>()).prop_map(|(u, v)| Edge::new(u, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode → decode is the identity for every edge.
    #[test]
    fn line_roundtrip(e in arb_edge()) {
        let mut buf = Vec::new();
        format::encode_line(e, &mut buf);
        prop_assert_eq!(buf.last(), Some(&b'\n'));
        let decoded = format::decode_line(&buf[..buf.len() - 1]).unwrap();
        prop_assert_eq!(decoded, e);
    }

    /// Write → read through actual files is the identity for any edge list
    /// and any file-count choice.
    #[test]
    fn file_roundtrip(
        edges in proptest::collection::vec(arb_edge(), 0..500),
        num_files in 1usize..8,
    ) {
        let td = TempDir::new("ppbench-io-prop").unwrap();
        ppbench_io::write_edges(
            td.path(), "edges", num_files, &edges, None, None, SortState::Unsorted,
        ).unwrap();
        let (manifest, got) = EdgeReader::read_dir_all(td.path()).unwrap();
        prop_assert_eq!(&got, &edges);
        prop_assert_eq!(manifest.edges, edges.len() as u64);
        prop_assert_eq!(manifest.files.len(), num_files);
        // Per-file counts must account for every edge.
        let total: u64 = manifest.files.iter().map(|f| f.edges).sum();
        prop_assert_eq!(total, edges.len() as u64);
    }

    /// The multiset digest is invariant under permutation, and the chain
    /// digest detects any reordering of distinct adjacent edges.
    #[test]
    fn digest_permutation_invariance(
        mut edges in proptest::collection::vec(arb_edge(), 2..100),
        seed: u64,
    ) {
        let original = EdgeDigest::of_edges(&edges);
        // Deterministic shuffle via sort-by-hash.
        edges.sort_by_key(|e| ppbench_io::checksum::edge_hash(*e) ^ seed.rotate_left(13));
        let shuffled = EdgeDigest::of_edges(&edges);
        prop_assert!(original.same_multiset(&shuffled));
    }

    /// parse_u64 agrees with str::parse on arbitrary numeric strings.
    #[test]
    fn atoi_agrees_with_std(v: u64) {
        let s = v.to_string();
        prop_assert_eq!(ppbench_io::atoi::parse_u64(s.as_bytes()), Some(v));
        let mut buf = [0u8; ppbench_io::atoi::MAX_DIGITS];
        let len = ppbench_io::atoi::format_u64(v, &mut buf);
        prop_assert_eq!(std::str::from_utf8(&buf[..len]).unwrap(), s.as_str());
    }

    /// Binary and text encodings round-trip identically for the same edge
    /// list, and the binary files are exactly 16 bytes/edge.
    #[test]
    fn encodings_agree(
        edges in proptest::collection::vec(arb_edge(), 0..200),
        num_files in 1usize..5,
    ) {
        use ppbench_io::{EdgeEncoding, EdgeWriter};
        let td_text = TempDir::new("ppbench-enc-t").unwrap();
        let td_bin = TempDir::new("ppbench-enc-b").unwrap();
        for (dir, enc) in [(&td_text, EdgeEncoding::Text), (&td_bin, EdgeEncoding::Binary)] {
            let mut w = EdgeWriter::create_with_encoding(
                dir.path(), "edges", num_files, edges.len() as u64, enc,
            ).unwrap();
            w.write_all(&edges).unwrap();
            w.finish(None, None, SortState::Unsorted).unwrap();
        }
        let (_, from_text) = EdgeReader::read_dir_all(td_text.path()).unwrap();
        let (mb, from_bin) = EdgeReader::read_dir_all(td_bin.path()).unwrap();
        prop_assert_eq!(&from_text, &edges);
        prop_assert_eq!(&from_bin, &edges);
        let bin_bytes: u64 = mb.files.iter()
            .map(|f| std::fs::metadata(td_bin.join(&f.name)).unwrap().len())
            .sum();
        prop_assert_eq!(bin_bytes, 16 * edges.len() as u64);
    }

    /// decode_line never panics on arbitrary bytes.
    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = format::decode_line(&bytes);
    }
}
