//! Property-based tests for the sparse linear algebra substrate.

use ppbench_sparse::{dense::Dense, eigen, graphblas, ops, spmv, vector, Coo, Csr, Csr32};
use proptest::prelude::*;

/// Strategy: a random small matrix as raw triplets (duplicates allowed).
fn arb_triplets(n: u64, max_nnz: usize) -> impl Strategy<Value = Vec<(u64, u64, u64)>> {
    proptest::collection::vec((0..n, 0..n, 1u64..5), 0..max_nnz)
}

/// Strategy: hub-skewed triplets — vertex 0 appears in well over half the
/// endpoints, so nnz-per-row is wildly unbalanced (the power-law shape the
/// balanced partitioner exists for). The empty vector is included, and
/// all-dangling rows fall out whenever a row never appears as a source.
fn arb_skewed_triplets(n: u64, max_nnz: usize) -> impl Strategy<Value = Vec<(u64, u64, u64)>> {
    let endpoint = move || (0u64..5, 0..n).prop_map(|(pick, v)| if pick < 3 { 0 } else { v });
    proptest::collection::vec((endpoint(), endpoint(), 1u64..5), 0..max_nnz)
}

fn build(n: u64, triplets: &[(u64, u64, u64)]) -> Csr<u64> {
    let mut coo = Coo::new(n, n);
    for &(r, c, v) in triplets {
        coo.push(r, c, v);
    }
    coo.compress()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Construction preserves the total value mass (the kernel-2 invariant:
    /// "all the entries in A should sum to M").
    #[test]
    fn compress_preserves_value_sum(triplets in arb_triplets(16, 100)) {
        let total: u64 = triplets.iter().map(|t| t.2).sum();
        let a = build(16, &triplets);
        prop_assert_eq!(a.value_sum(), total);
        a.check_invariants().unwrap();
    }

    /// Transposition is an involution and preserves all entries.
    #[test]
    fn transpose_involution(triplets in arb_triplets(12, 80)) {
        let a = build(12, &triplets);
        let t = a.transpose();
        t.check_invariants().unwrap();
        prop_assert_eq!(t.transpose(), a.clone());
        prop_assert_eq!(a.nnz(), t.nnz());
        for (r, c, v) in a.iter() {
            prop_assert_eq!(t.get(c, r), Some(v));
        }
    }

    /// Sparse vxm agrees with the dense oracle on arbitrary matrices.
    #[test]
    fn vxm_matches_dense(
        triplets in arb_triplets(10, 60),
        x in proptest::collection::vec(-10.0f64..10.0, 10),
    ) {
        let a = build(10, &triplets).map(|_, _, v| v as f64);
        let d = Dense::from_csr(&a);
        let sparse_result = spmv::vxm(&x, &a);
        let dense_result = d.vec_mat(&x);
        for i in 0..10 {
            prop_assert!((sparse_result[i] - dense_result[i]).abs() < 1e-9);
        }
    }

    /// Scatter, gather, and parallel-gather forms all agree.
    #[test]
    fn spmv_forms_agree(
        triplets in arb_triplets(10, 60),
        x in proptest::collection::vec(-1.0f64..1.0, 10),
    ) {
        let a = build(10, &triplets).map(|_, _, v| v as f64);
        let at = a.transpose();
        let scatter = spmv::vxm(&x, &a);
        let gather = spmv::vxm_gather(&x, &at);
        let par = spmv::par_vxm_gather(&x, &at);
        for i in 0..10 {
            prop_assert!((scatter[i] - gather[i]).abs() < 1e-10);
            prop_assert!((scatter[i] - par[i]).abs() < 1e-10);
        }
    }

    /// Row normalization produces rows summing to 1 (or staying empty), and
    /// column zeroing really empties the flagged columns.
    #[test]
    fn kernel2_style_ops(triplets in arb_triplets(12, 80), flag in 0u64..12) {
        let a = build(12, &triplets);
        let mask: Vec<bool> = (0..12).map(|c| c == flag).collect();
        let zeroed = ops::zero_columns(&a, &mask);
        prop_assert_eq!(ops::col_sums(&zeroed)[flag as usize], 0);
        let norm = ops::normalize_rows(&zeroed);
        for (r, &s) in ops::row_sums(&norm).iter().enumerate() {
            if norm.row_nnz(r as u64) > 0 {
                prop_assert!((s - 1.0).abs() < 1e-9, "row {r} sums to {s}");
            } else {
                prop_assert_eq!(s, 0.0);
            }
        }
    }

    /// col_sums equals row_sums of the transpose.
    #[test]
    fn col_sums_are_transposed_row_sums(triplets in arb_triplets(9, 50)) {
        let a = build(9, &triplets);
        prop_assert_eq!(ops::col_sums(&a), ops::row_sums(&a.transpose()));
    }

    /// mxm over PlusTimes agrees with the dense matrix product for
    /// arbitrary sparse operands.
    #[test]
    fn mxm_matches_dense(
        ta in arb_triplets(8, 40),
        tb in arb_triplets(8, 40),
    ) {
        let a = build(8, &ta).map(|_, _, v| v as f64);
        let b = build(8, &tb).map(|_, _, v| v as f64);
        let c = graphblas::mxm::<graphblas::PlusTimes>(&a, &b);
        c.check_invariants().unwrap();
        let da = Dense::from_csr(&a);
        let db = Dense::from_csr(&b);
        for i in 0..8u64 {
            for j in 0..8u64 {
                let expect: f64 = (0..8)
                    .map(|k| da.get(i as usize, k) * db.get(k, j as usize))
                    .sum();
                let got = c.get(i, j).unwrap_or(0.0);
                prop_assert!((got - expect).abs() < 1e-9, "C[{i},{j}] {got} vs {expect}");
            }
        }
    }

    /// Triangle counting is invariant under vertex relabeling.
    #[test]
    fn triangle_count_relabel_invariant(
        pairs in proptest::collection::vec((0u64..10, 0u64..10), 0..40),
        seed: u64,
    ) {
        use ppbench_sparse::graphblas::triangle_count;
        // Undirected simple graph from the pairs.
        let mut set = std::collections::BTreeSet::new();
        for &(a, b) in &pairs {
            if a != b {
                set.insert((a.min(b), a.max(b)));
            }
        }
        let symmetric = |edges: &std::collections::BTreeSet<(u64, u64)>| {
            let mut coo = Coo::<bool>::new(10, 10);
            for &(a, b) in edges {
                coo.push(a, b, true);
                coo.push(b, a, true);
            }
            coo.compress()
        };
        let base = triangle_count(&symmetric(&set));
        // Relabel through a deterministic permutation derived from seed.
        let mut perm: Vec<u64> = (0..10).collect();
        let mut state = seed | 1;
        for i in (1..10usize).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            perm.swap(i, (state >> 33) as usize % (i + 1));
        }
        let relabeled: std::collections::BTreeSet<(u64, u64)> = set
            .iter()
            .map(|&(a, b)| {
                let (x, y) = (perm[a as usize], perm[b as usize]);
                (x.min(y), x.max(y))
            })
            .collect();
        prop_assert_eq!(triangle_count(&symmetric(&relabeled)), base);
    }

    /// Connected components: labels are component-minimal and consistent
    /// with a union-find oracle.
    #[test]
    fn connected_components_match_union_find(
        pairs in proptest::collection::vec((0u64..24, 0u64..24), 0..60),
    ) {
        use ppbench_sparse::graphblas::connected_components;
        let n = 24u64;
        let mut coo = Coo::<bool>::new(n, n);
        for &(a, b) in &pairs {
            coo.push(a, b, true);
            coo.push(b, a, true);
        }
        let labels = connected_components(&coo.compress());
        // Union-find oracle.
        let mut parent: Vec<u64> = (0..n).collect();
        fn find(parent: &mut Vec<u64>, x: u64) -> u64 {
            if parent[x as usize] != x {
                let root = find(parent, parent[x as usize]);
                parent[x as usize] = root;
            }
            parent[x as usize]
        }
        for &(a, b) in &pairs {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra.max(rb) as usize] = ra.min(rb);
            }
        }
        for v in 0..n {
            let root = find(&mut parent, v);
            // Same component ⇔ same label; label is the component minimum.
            prop_assert_eq!(labels[v as usize], labels[root as usize]);
            prop_assert!(labels[v as usize] <= v);
        }
        // Distinct components get distinct labels.
        for a in 0..n {
            for b in 0..n {
                let same_uf = find(&mut parent, a) == find(&mut parent, b);
                prop_assert_eq!(labels[a as usize] == labels[b as usize], same_uf);
            }
        }
    }

    /// Semiring PlusTimes vxm is exactly the arithmetic vxm.
    #[test]
    fn semiring_plus_times_is_arithmetic(
        triplets in arb_triplets(8, 40),
        x in proptest::collection::vec(-2.0f64..2.0, 8),
    ) {
        let a = build(8, &triplets).map(|_, _, v| v as f64);
        prop_assert_eq!(graphblas::vxm::<graphblas::PlusTimes>(&x, &a), spmv::vxm(&x, &a));
    }

    /// Balanced boundaries always partition the row range monotonically,
    /// and the parallel gather over them is bitwise identical to the
    /// serial gather — for any chunk count, on hub-skewed matrices, with
    /// wide and narrow column indices.
    #[test]
    fn balanced_gather_matches_serial_gather(
        triplets in arb_skewed_triplets(11, 90),
        x in proptest::collection::vec(-1.0f64..1.0, 11),
        chunks in 1usize..8,
    ) {
        let a = build(11, &triplets).map(|_, _, v| v as f64);
        let at = a.transpose();
        let boundaries = spmv::balanced_boundaries(at.row_ptr(), chunks);
        prop_assert_eq!(boundaries.len(), chunks + 1);
        prop_assert_eq!(boundaries[0], 0);
        prop_assert_eq!(*boundaries.last().unwrap(), 11);
        prop_assert!(boundaries.windows(2).all(|w| w[0] <= w[1]));
        let serial = spmv::vxm_gather(&x, &at);
        let mut wide = vec![0.0; 11];
        spmv::gather_into(&x, &at.view(), &mut wide, &boundaries);
        prop_assert_eq!(&wide, &serial);
        let narrow = Csr32::try_from_wide(&at).unwrap();
        let mut out32 = vec![0.0; 11];
        spmv::gather_into(&x, &narrow.view(), &mut out32, &boundaries);
        prop_assert_eq!(&out32, &serial);
    }

    /// The fused step (gather + epilogue + delta/mass accumulation in one
    /// sweep) agrees with a scalar oracle built from the serial scatter
    /// product, for arbitrary coefficient combinations — including a sink
    /// mask over the matrix's genuinely dangling rows.
    #[test]
    fn step_fused_matches_scatter_oracle(
        triplets in arb_skewed_triplets(9, 70),
        x in proptest::collection::vec(0.0f64..1.0, 9),
        damping in 0.05f64..0.99,
        teleport in 0.0f64..0.1,
        spread in 0.0f64..0.1,
        use_sink: bool,
        chunks in 1usize..6,
    ) {
        let a = ops::normalize_rows(&build(9, &triplets));
        let at = a.transpose();
        let mask = ops::empty_rows(&a);
        let coeffs = spmv::StepCoeffs {
            damping,
            teleport,
            spread: if use_sink { 0.0 } else { spread },
            sink: use_sink.then_some(mask.as_slice()),
        };
        // Scalar oracle over the scatter product.
        let prod = spmv::vxm(&x, &a);
        let mut expect = [0.0; 9];
        let (mut exp_delta, mut exp_mass) = (0.0f64, 0.0f64);
        for v in 0..9usize {
            let mut val = damping * prod[v] + coeffs.teleport + coeffs.spread;
            if use_sink && mask[v] {
                val += damping * x[v];
            }
            exp_delta += (val - x[v]).abs();
            exp_mass += val;
            expect[v] = val;
        }
        let boundaries = spmv::balanced_boundaries(at.row_ptr(), chunks);
        let mut out = vec![0.0; 9];
        let got = spmv::step_fused(&x, &at.view(), &mut out, &coeffs, &boundaries);
        for v in 0..9 {
            prop_assert!((out[v] - expect[v]).abs() < 1e-12, "entry {v}: {} vs {}", out[v], expect[v]);
        }
        prop_assert!((got.delta - exp_delta).abs() < 1e-12, "delta {} vs {exp_delta}", got.delta);
        prop_assert!((got.mass - exp_mass).abs() < 1e-12, "mass {} vs {exp_mass}", got.mass);
    }

    /// Power iteration on the *damped* PageRank operator converges to a
    /// fixpoint with eigenvalue 1 for any graph without dangling rows.
    /// (The undamped chain can be periodic — e.g. a 2-cycle — which is
    /// exactly why PageRank adds the `(1−c)/N` teleport term.)
    #[test]
    fn damped_power_iteration_fixpoint(triplets in arb_triplets(8, 60)) {
        let counts = build(8, &triplets);
        // Dangling rows leak mass and drop the eigenvalue below 1; the
        // benchmark tolerates that, but this property wants the clean case.
        prop_assume!((0..8).all(|r| counts.row_nnz(r) > 0));
        let a = ops::normalize_rows(&counts);
        let at = a.transpose();
        let c = 0.85;
        let r = eigen::pagerank_eigenvector(&at, c, 5000, 1e-13);
        prop_assert!(r.converged);
        prop_assert!((r.eigenvalue - 1.0).abs() < 1e-6, "eigenvalue {}", r.eigenvalue);
        // Fixpoint under the damped operator.
        let mut image = spmv::mxv(&at, &r.vector);
        let shift = (1.0 - c) / 8.0 * vector::sum(&r.vector);
        for x in image.iter_mut() {
            *x = *x * c + shift;
        }
        prop_assert!(vector::l1_distance(&image, &r.vector) < 1e-6);
    }
}
