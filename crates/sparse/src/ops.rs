//! Structural operations used by kernel 2: degree sums, column zeroing,
//! row normalization, and the optional dangling-node diagonal repair.

use crate::{Csr, Scalar};

/// `sum(A, 1)`: per-column sum of stored values (the in-degree vector when
/// values are edge counts).
pub fn col_sums<T: Scalar>(a: &Csr<T>) -> Vec<T> {
    let mut sums = vec![T::ZERO; a.cols() as usize];
    for (_, c, v) in a.iter() {
        sums[c as usize] = sums[c as usize].add(v);
    }
    sums
}

/// `sum(A, 2)`: per-row sum of stored values (the out-degree vector when
/// values are edge counts).
pub fn row_sums<T: Scalar>(a: &Csr<T>) -> Vec<T> {
    let mut sums = vec![T::ZERO; a.rows() as usize];
    for r in 0..a.rows() {
        let (_, vals) = a.row(r);
        sums[r as usize] = vals.iter().fold(T::ZERO, |acc, &v| acc.add(v));
    }
    sums
}

/// Per-column count of stored entries (structural in-degree, ignoring
/// multiplicities).
pub fn col_nnz<T: Scalar>(a: &Csr<T>) -> Vec<u64> {
    let mut counts = vec![0u64; a.cols() as usize];
    for &c in a.col_indices() {
        counts[c as usize] += 1;
    }
    counts
}

/// `A(:, mask) = 0`: drops every stored entry whose column is flagged.
///
/// # Panics
///
/// Panics if `mask.len() != a.cols()`.
pub fn zero_columns<T: Scalar>(a: &Csr<T>, mask: &[bool]) -> Csr<T> {
    assert_eq!(
        mask.len() as u64,
        a.cols(),
        "mask length must equal column count"
    );
    a.map(|_, c, v| if mask[c as usize] { T::ZERO } else { v })
}

/// Kernel 2's normalization: `A(i,:) = A(i,:) ./ dout(i)` for rows with
/// positive sum. Converts counts to row-stochastic doubles; empty rows stay
/// empty (the "dangling node" rows the paper deliberately leaves alone).
pub fn normalize_rows(a: &Csr<u64>) -> Csr<f64> {
    let dout = row_sums(a);
    a.map(|r, _, v| {
        let d = dout[r as usize];
        debug_assert!(d > 0, "row with entries must have positive sum");
        v as f64 / d as f64
    })
}

/// Generic row scaling: multiplies row `r` by `factors[r]`. Entries scaled
/// to exactly zero are dropped.
pub fn scale_rows(a: &Csr<f64>, factors: &[f64]) -> Csr<f64> {
    assert_eq!(
        factors.len() as u64,
        a.rows(),
        "factor length must equal row count"
    );
    a.map(|r, _, v| v * factors[r as usize])
}

/// Adds `value` on the diagonal of every row selected by `select` (merging
/// with an existing entry if present). Used for the paper's §V option of
/// giving empty rows/columns a diagonal entry so PageRank converges.
pub fn add_diagonal_where<T: Scalar>(
    a: &Csr<T>,
    mut select: impl FnMut(u64) -> bool,
    value: T,
) -> Csr<T> {
    let n = a.rows().min(a.cols());
    let mut coo = crate::Coo::with_capacity(a.rows(), a.cols(), a.nnz() + n as usize);
    for (r, c, v) in a.iter() {
        coo.push(r, c, v);
    }
    for i in 0..n {
        if select(i) {
            coo.push(i, i, value);
        }
    }
    coo.compress()
}

/// Rows with no stored entries (dangling nodes once values are weights).
pub fn empty_rows<T: Scalar>(a: &Csr<T>) -> Vec<bool> {
    (0..a.rows()).map(|r| a.row_nnz(r) == 0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    /// [ 1 2 . ]
    /// [ . . 3 ]
    /// [ 1 . . ]
    fn sample() -> Csr<u64> {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 0, 1);
        coo.push(0, 1, 2);
        coo.push(1, 2, 3);
        coo.push(2, 0, 1);
        coo.compress()
    }

    #[test]
    fn sums_match_matlab_semantics() {
        let a = sample();
        assert_eq!(col_sums(&a), vec![2, 2, 3]);
        assert_eq!(row_sums(&a), vec![3, 3, 1]);
        assert_eq!(col_nnz(&a), vec![2, 1, 1]);
    }

    #[test]
    fn zero_columns_drops_only_flagged() {
        let a = sample();
        let z = zero_columns(&a, &[true, false, false]);
        assert_eq!(z.get(0, 0), None);
        assert_eq!(z.get(2, 0), None);
        assert_eq!(z.get(0, 1), Some(2));
        assert_eq!(z.get(1, 2), Some(3));
        assert_eq!(z.nnz(), 2);
        z.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "mask length")]
    fn zero_columns_checks_mask_length() {
        let _ = zero_columns(&sample(), &[true]);
    }

    #[test]
    fn normalize_makes_rows_stochastic() {
        let a = sample();
        let n = normalize_rows(&a);
        let sums = row_sums(&n);
        assert!((sums[0] - 1.0).abs() < 1e-12);
        assert!((sums[1] - 1.0).abs() < 1e-12);
        assert!((sums[2] - 1.0).abs() < 1e-12);
        assert_eq!(n.get(0, 0), Some(1.0 / 3.0));
        assert_eq!(n.get(0, 1), Some(2.0 / 3.0));
    }

    #[test]
    fn normalize_leaves_empty_rows_empty() {
        let mut coo = Coo::<u64>::new(3, 3);
        coo.push(0, 1, 4);
        let n = normalize_rows(&coo.compress());
        assert_eq!(n.row_nnz(0), 1);
        assert_eq!(n.row_nnz(1), 0);
        assert_eq!(n.row_nnz(2), 0);
        assert_eq!(n.get(0, 1), Some(1.0));
    }

    #[test]
    fn scale_rows_drops_zeroed() {
        let a = normalize_rows(&sample());
        let s = scale_rows(&a, &[1.0, 0.0, 2.0]);
        assert_eq!(s.row_nnz(1), 0);
        assert_eq!(s.get(2, 0), Some(2.0));
    }

    #[test]
    fn diagonal_repair_targets_empty_rows() {
        let mut coo = Coo::<u64>::new(4, 4);
        coo.push(0, 1, 1);
        coo.push(2, 2, 5); // row 2 already has its diagonal
        let a = coo.compress();
        let empties = empty_rows(&a);
        assert_eq!(empties, vec![false, true, false, true]);
        let repaired = add_diagonal_where(&a, |i| empties[i as usize], 1);
        assert_eq!(repaired.get(1, 1), Some(1));
        assert_eq!(repaired.get(3, 3), Some(1));
        assert_eq!(repaired.get(2, 2), Some(5), "existing diagonal untouched");
        assert_eq!(repaired.get(0, 0), None, "non-empty rows not touched");
        repaired.check_invariants().unwrap();
    }

    #[test]
    fn add_diagonal_merges_with_existing_entry() {
        let mut coo = Coo::<u64>::new(2, 2);
        coo.push(0, 0, 3);
        let a = coo.compress();
        let out = add_diagonal_where(&a, |_| true, 2);
        assert_eq!(out.get(0, 0), Some(5));
        assert_eq!(out.get(1, 1), Some(2));
    }
}
