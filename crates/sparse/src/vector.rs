//! Dense-vector helpers for the PageRank update.

/// Sum of all elements (`sum(r, 2)` on a row vector).
pub fn sum(v: &[f64]) -> f64 {
    v.iter().sum()
}

/// L1 norm (`norm(r, 1)`).
pub fn norm_l1(v: &[f64]) -> f64 {
    v.iter().map(|x| x.abs()).sum()
}

/// L2 norm.
pub fn norm_l2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Scales `v` so its L1 norm is 1 (`r ./ norm(r, 1)`). No-op on the zero
/// vector.
pub fn normalize_l1(v: &mut [f64]) {
    let n = norm_l1(v);
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Multiplies every element by `alpha`.
pub fn scale(v: &mut [f64], alpha: f64) {
    for x in v.iter_mut() {
        *x *= alpha;
    }
}

/// Largest absolute element-wise difference — the convergence measure used
/// when validating kernel 3 against the eigensolver.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// L1 distance between two vectors.
pub fn l1_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "l1_distance length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_and_sums() {
        let v = [1.0, -2.0, 3.0];
        assert_eq!(sum(&v), 2.0);
        assert_eq!(norm_l1(&v), 6.0);
        assert!((norm_l2(&v) - 14.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn normalize_l1_makes_unit_mass() {
        let mut v = [2.0, 2.0, 4.0];
        normalize_l1(&mut v);
        assert!((norm_l1(&v) - 1.0).abs() < 1e-12);
        assert_eq!(v[2], 0.5);
        let mut zero = [0.0; 3];
        normalize_l1(&mut zero);
        assert_eq!(zero, [0.0; 3]);
    }

    #[test]
    fn dot_axpy_scale() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0];
        assert_eq!(dot(&a, &b), 11.0);
        let mut y = [1.0, 1.0];
        axpy(2.0, &a, &mut y);
        assert_eq!(y, [3.0, 5.0]);
        scale(&mut y, 0.5);
        assert_eq!(y, [1.5, 2.5]);
    }

    #[test]
    fn distances() {
        let a = [1.0, 5.0];
        let b = [2.0, 3.0];
        assert_eq!(max_abs_diff(&a, &b), 2.0);
        assert_eq!(l1_distance(&a, &b), 3.0);
        assert_eq!(max_abs_diff(&a, &a), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_checks_lengths() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
