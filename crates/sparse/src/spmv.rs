//! Sparse matrix–vector products — the heart of kernel 3.
//!
//! The paper writes the PageRank update as a *row vector times matrix*
//! product `r * A`. On CSR storage that is a **scatter**: each row `u`
//! contributes `r[u] · A[u, v]` to every `out[v]` it points at. The
//! alternative is to precompute `Aᵀ` and **gather**: `out[v]` is a dot
//! product over the incoming edges of `v`. The two forms are numerically
//! reordered but algebraically identical; the gather form has no write
//! contention and is what the rayon-parallel kernel uses. Both are exposed
//! so the ablation bench (scatter vs gather) can measure the difference.
//!
//! The hot-path kernels at the bottom of this module go further, following
//! the GAP Benchmark Suite playbook for power-law graphs:
//!
//! * [`balanced_boundaries`] partitions rows into chunks of ~equal
//!   *nonzero* span (binary search on the `row_ptr` offsets), so one hub
//!   row cannot serialize a whole chunk the way equal-row partitioning
//!   does;
//! * [`gather_into`] runs the partitioned gather into a caller-provided
//!   buffer — no per-iteration allocation;
//! * [`step_fused`] additionally applies the PageRank epilogue
//!   (`c·x + teleport (+ dangling term)`) and accumulates the L1 delta and
//!   the new mass in the same pass, collapsing the three memory sweeps of
//!   the naive iteration (multiply, scale-and-shift, distance) into one.
//!
//! All three are generic over the column-index width via [`CsrView`], so
//! the narrow `u32` form ([`crate::Csr32`]) shares this implementation.

use rayon::prelude::*;

use crate::csr::{ColIndex, CsrView};
use crate::Csr;

/// `out = x * A` (row vector × matrix) via CSR scatter.
///
/// # Panics
///
/// Panics if `x.len() != A.rows()`.
pub fn vxm(x: &[f64], a: &Csr<f64>) -> Vec<f64> {
    let mut out = vec![0.0; a.cols() as usize];
    vxm_into(x, a, &mut out);
    out
}

/// Scatter form writing into a caller-provided buffer (zeroed first).
///
/// # Panics
///
/// Panics if `x.len() != A.rows()` or `out.len() != A.cols()`.
pub fn vxm_into(x: &[f64], a: &Csr<f64>, out: &mut [f64]) {
    assert_eq!(
        x.len() as u64,
        a.rows(),
        "vector length must equal row count"
    );
    assert_eq!(
        out.len() as u64,
        a.cols(),
        "output length must equal column count"
    );
    out.fill(0.0);
    for (u, &xu) in x.iter().enumerate() {
        if xu == 0.0 {
            continue;
        }
        let (cols, vals) = a.row(u as u64);
        for (&v, &w) in cols.iter().zip(vals) {
            out[v as usize] += xu * w;
        }
    }
}

/// `out = A * x` (matrix × column vector) via CSR gather.
///
/// # Panics
///
/// Panics if `x.len() != A.cols()`.
pub fn mxv(a: &Csr<f64>, x: &[f64]) -> Vec<f64> {
    assert_eq!(
        x.len() as u64,
        a.cols(),
        "vector length must equal column count"
    );
    // Shares the unrolled [`gather_row`] dot with the parallel kernels, so
    // every gather form produces bit-identical rows.
    let view = a.view();
    (0..a.rows() as usize)
        .map(|r| gather_row(x, &view, r))
        .collect()
}

/// Gather form of `x * A`, reading a precomputed transpose: pass
/// `at = a.transpose()` and this equals [`vxm`]`(x, a)` up to floating-point
/// reassociation.
pub fn vxm_gather(x: &[f64], at: &Csr<f64>) -> Vec<f64> {
    mxv(at, x)
}

/// Rayon-parallel gather `x * A` over a precomputed transpose. Each output
/// element is an independent reduction, so no synchronization is needed.
///
/// Partitions into one nnz-balanced chunk per worker and writes each chunk
/// through a disjoint output slice — a fixed number of tasks over one
/// allocation, instead of a task (and several intermediate vectors) per
/// row, which is what made this kernel lose to its serial twin in the
/// committed sweeps.
pub fn par_vxm_gather(x: &[f64], at: &Csr<f64>) -> Vec<f64> {
    assert_eq!(
        x.len() as u64,
        at.cols(),
        "vector length must equal A's row count"
    );
    let mut out = vec![0.0; at.rows() as usize];
    let chunks = rayon::current_num_threads().max(1);
    let boundaries = balanced_boundaries(at.row_ptr(), chunks);
    gather_into(x, &at.view(), &mut out, &boundaries);
    out
}

/// Partitions rows `0..rows` into `chunks` contiguous ranges of roughly
/// equal *nonzero* count, returned as a boundary list of length
/// `chunks + 1` with `b[0] = 0` and `b[chunks] = rows`.
///
/// Each interior boundary is found by binary search on the `row_ptr`
/// offsets for the ideal nnz split point, so a handful of hub rows in a
/// power-law graph land in chunks of their own instead of dragging a
/// thousand light rows with them. Boundaries are non-decreasing; a chunk
/// may be empty when a single row holds more than `nnz / chunks`
/// nonzeros.
pub fn balanced_boundaries(row_ptr: &[usize], chunks: usize) -> Vec<usize> {
    assert!(!row_ptr.is_empty(), "row_ptr must have length rows + 1");
    let rows = row_ptr.len() - 1;
    let chunks = chunks.max(1);
    let nnz = row_ptr[rows];
    let mut bounds = Vec::with_capacity(chunks + 1);
    bounds.push(0usize);
    let mut prev = 0usize;
    for i in 1..chunks {
        let target = (nnz as u128 * i as u128 / chunks as u128) as usize;
        let split = row_ptr.partition_point(|&p| p < target).min(rows);
        prev = split.max(prev);
        bounds.push(prev);
    }
    bounds.push(rows);
    bounds
}

/// Splits `out` into per-chunk mutable slices according to `boundaries`,
/// pairing each with its starting row, so the parallel kernels can write
/// disjoint regions without synchronization (and without `unsafe`).
fn chunk_slices<'a>(out: &'a mut [f64], boundaries: &[usize]) -> Vec<(&'a mut [f64], usize)> {
    assert!(boundaries.len() >= 2, "need at least one chunk");
    assert_eq!(boundaries[0], 0, "boundaries must start at row 0");
    assert_eq!(
        boundaries[boundaries.len() - 1],
        out.len(),
        "boundaries must end at the row count"
    );
    let mut parts = Vec::with_capacity(boundaries.len() - 1);
    let mut rest = out;
    for w in boundaries.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        assert!(lo <= hi, "boundaries must be non-decreasing");
        let (head, tail) = rest.split_at_mut(hi - lo);
        parts.push((head, lo));
        rest = tail;
    }
    parts
}

/// Dot product of row `r` of the transposed matrix with `x` — the gather
/// form of one output element.
///
/// Four independent accumulators break the loop-carried add dependency, so
/// the gathers for a heavy row overlap instead of serializing on one
/// register; callers document the resulting (deterministic) reassociation
/// under their 1e-12 tolerance.
#[inline(always)]
fn gather_row<I: ColIndex>(x: &[f64], at: &CsrView<'_, I>, r: usize) -> f64 {
    let (cols, vals) = at.row(r);
    let c4 = cols.chunks_exact(4);
    let v4 = vals.chunks_exact(4);
    let (c_tail, v_tail) = (c4.remainder(), v4.remainder());
    let mut acc = [0.0f64; 4];
    for (c, v) in c4.zip(v4) {
        acc[0] += x[c[0].to_index()] * v[0];
        acc[1] += x[c[1].to_index()] * v[1];
        acc[2] += x[c[2].to_index()] * v[2];
        acc[3] += x[c[3].to_index()] * v[3];
    }
    let mut sum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (&c, &w) in c_tail.iter().zip(v_tail) {
        sum += x[c.to_index()] * w;
    }
    sum
}

/// nnz-balanced parallel gather `x * A` over a precomputed transpose view,
/// writing into a caller-provided buffer. Equals [`vxm`] up to
/// floating-point reassociation; allocates nothing besides the per-chunk
/// bookkeeping.
///
/// `boundaries` comes from [`balanced_boundaries`]`(at.row_ptr(), chunks)`
/// and is computed once per run, not per iteration.
///
/// # Panics
///
/// Panics if `x.len() != at.cols()`, `out.len() != at.rows()`, or the
/// boundary list does not span `0..at.rows()`.
pub fn gather_into<I: ColIndex>(
    x: &[f64],
    at: &CsrView<'_, I>,
    out: &mut [f64],
    boundaries: &[usize],
) {
    assert_eq!(
        x.len() as u64,
        at.cols(),
        "vector length must equal A's row count"
    );
    assert_eq!(
        out.len() as u64,
        at.rows(),
        "output length must equal A's column count"
    );
    chunk_slices(out, boundaries)
        .into_par_iter()
        .map(|(slice, lo)| {
            for (k, o) in slice.iter_mut().enumerate() {
                *o = gather_row(x, at, lo + k);
            }
        })
        .collect::<Vec<()>>();
}

/// The per-iteration PageRank coefficients [`step_fused`] applies on top
/// of the raw product.
///
/// With `m = (x * A)[v]`, the new rank is
/// `damping · m + teleport + spread (+ damping · x[v] if sink[v])` — the
/// exact update each [`DanglingStrategy`] induces, with the strategy
/// encoded by which terms are zero/absent:
///
/// * *Omit*: `spread = 0`, `sink = None`;
/// * *Redistribute*: `spread = damping · dangling_mass / n`, `sink = None`;
/// * *Sink*: `spread = 0`, `sink = Some(dangling mask)`.
///
/// `DanglingStrategy` lives in `ppbench-core`; this struct is the
/// algebra-only residue of it that the sparse layer needs.
#[derive(Debug, Clone, Copy)]
pub struct StepCoeffs<'a> {
    /// The damping factor `c`.
    pub damping: f64,
    /// The uniform teleport term `(1 − c) · mass / n`.
    pub teleport: f64,
    /// The uniform dangling redistribution term, `0.0` when unused.
    pub spread: f64,
    /// Dangling-row mask for the self-loop (sink) strategy, `None`
    /// otherwise. Indexed by output row.
    pub sink: Option<&'a [bool]>,
}

/// What one fused step reports back: the L1 distance between the new and
/// old rank vectors, and the new vector's total mass — both accumulated
/// during the single write sweep, so the caller never re-reads `out`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutcome {
    /// `Σ |out[v] − x[v]|`.
    pub delta: f64,
    /// `Σ out[v]`.
    pub mass: f64,
}

/// One fused PageRank step: nnz-balanced parallel gather plus epilogue
/// plus L1-delta/mass accumulation, in a single pass over `out`.
///
/// Per-chunk partial sums are combined in chunk order, so the result is
/// deterministic for a fixed boundary list; different chunk counts
/// reassociate the sums within the documented 1e-12 tolerance.
///
/// # Panics
///
/// Panics if the matrix is not square, vector lengths disagree with it,
/// the sink mask (when present) has the wrong length, or the boundary
/// list does not span `0..at.rows()`.
pub fn step_fused<I: ColIndex>(
    x: &[f64],
    at: &CsrView<'_, I>,
    out: &mut [f64],
    coeffs: &StepCoeffs<'_>,
    boundaries: &[usize],
) -> StepOutcome {
    assert_eq!(
        at.rows(),
        at.cols(),
        "fused PageRank step needs a square matrix"
    );
    assert_eq!(
        x.len() as u64,
        at.cols(),
        "vector length must equal A's row count"
    );
    assert_eq!(out.len(), x.len(), "output length must match input");
    if let Some(mask) = coeffs.sink {
        assert_eq!(mask.len(), x.len(), "sink mask length must match");
    }
    let partials: Vec<(f64, f64)> = chunk_slices(out, boundaries)
        .into_par_iter()
        .map(|(slice, lo)| {
            let mut delta = 0.0;
            let mut mass = 0.0;
            for (k, o) in slice.iter_mut().enumerate() {
                let v = lo + k;
                let mut next = coeffs.damping * gather_row(x, at, v) + coeffs.teleport;
                next += coeffs.spread;
                if let Some(mask) = coeffs.sink {
                    if mask[v] {
                        next += coeffs.damping * x[v];
                    }
                }
                delta += (next - x[v]).abs();
                mass += next;
                *o = next;
            }
            (delta, mass)
        })
        .collect();
    let mut outcome = StepOutcome {
        delta: 0.0,
        mass: 0.0,
    };
    for (d, m) in partials {
        outcome.delta += d;
        outcome.mass += m;
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ops, Coo};

    /// [ .5 .5  . ]
    /// [  .  .  1 ]
    /// [ 1.  .  . ]
    fn stochastic() -> Csr<f64> {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 0, 1u64);
        coo.push(0, 1, 1);
        coo.push(1, 2, 2);
        coo.push(2, 0, 3);
        ops::normalize_rows(&coo.compress())
    }

    #[test]
    fn vxm_known_answer() {
        let a = stochastic();
        let x = [1.0, 2.0, 4.0];
        // out[0] = 1*.5 + 4*1 = 4.5 ; out[1] = 1*.5 ; out[2] = 2*1
        assert_eq!(vxm(&x, &a), vec![4.5, 0.5, 2.0]);
    }

    #[test]
    fn gather_forms_agree_with_scatter() {
        let a = stochastic();
        let at = a.transpose();
        let x = [0.3, 0.5, 0.2];
        let scatter = vxm(&x, &a);
        let gather = vxm_gather(&x, &at);
        let par = par_vxm_gather(&x, &at);
        for i in 0..3 {
            assert!((scatter[i] - gather[i]).abs() < 1e-15);
            assert!((scatter[i] - par[i]).abs() < 1e-15);
        }
    }

    #[test]
    fn stochastic_matrix_preserves_mass() {
        let a = stochastic();
        let x = [0.2, 0.3, 0.5];
        let y = vxm(&x, &a);
        assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mxv_known_answer() {
        let a = stochastic();
        let x = [1.0, 2.0, 3.0];
        // y[r] = Σ A[r, c] x[c]
        assert_eq!(mxv(&a, &x), vec![1.5, 3.0, 1.0]);
    }

    #[test]
    fn empty_rows_contribute_nothing() {
        let mut coo = Coo::<u64>::new(3, 3);
        coo.push(0, 1, 1);
        let a = ops::normalize_rows(&coo.compress());
        let y = vxm(&[1.0, 1.0, 1.0], &a);
        assert_eq!(y, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn zero_matrix_maps_to_zero() {
        let a = Csr::<f64>::zero(4, 4);
        assert_eq!(vxm(&[1.0; 4], &a), vec![0.0; 4]);
        assert_eq!(mxv(&a, &[1.0; 4]), vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "must equal row count")]
    fn vxm_length_checked() {
        let _ = vxm(&[1.0, 2.0], &stochastic());
    }

    /// A skewed 6-vertex matrix: vertex 0 is a hub holding most nonzeros.
    fn skewed() -> Csr<f64> {
        let mut coo = Coo::<u64>::new(6, 6);
        for c in 1..6 {
            coo.push(0, c, 1); // hub out-edges
            coo.push(c, 0, 1); // and everything points back at the hub
        }
        coo.push(2, 3, 1);
        ops::normalize_rows(&coo.compress())
    }

    #[test]
    fn balanced_boundaries_span_all_rows_and_balance_nnz() {
        let at = skewed().transpose();
        for chunks in 1..=8 {
            let b = balanced_boundaries(at.row_ptr(), chunks);
            assert_eq!(b.len(), chunks + 1);
            assert_eq!(b[0], 0);
            assert_eq!(*b.last().unwrap(), at.rows() as usize);
            assert!(b.windows(2).all(|w| w[0] <= w[1]));
        }
        // On a strongly skewed row_ptr, nnz-balancing must not put every
        // row in the first chunk the way equal-row splitting of the
        // prefix-heavy matrix would: with 2 chunks, the hub row's span
        // (5 of 11 nonzeros in Aᵀ column 0's row) ends chunk 1 early.
        let b = balanced_boundaries(at.row_ptr(), 2);
        let nnz = at.nnz();
        let first_span = at.row_ptr()[b[1]] - at.row_ptr()[b[0]];
        assert!(
            first_span <= nnz.div_ceil(2) + at.row_ptr()[1],
            "first chunk holds {first_span} of {nnz} nonzeros"
        );
    }

    #[test]
    fn balanced_boundaries_handle_empty_and_zero_nnz() {
        assert_eq!(balanced_boundaries(&[0], 4), vec![0, 0, 0, 0, 0]);
        assert_eq!(balanced_boundaries(&[0, 0, 0], 2), vec![0, 0, 2]);
    }

    #[test]
    fn gather_into_matches_scatter_for_both_index_widths() {
        let a = skewed();
        let at = a.transpose();
        let x: Vec<f64> = (0..6).map(|i| (i as f64 + 1.0) / 21.0).collect();
        let oracle = vxm(&x, &a);
        for chunks in 1..=5 {
            let b = balanced_boundaries(at.row_ptr(), chunks);
            let mut out = vec![f64::NAN; 6];
            gather_into(&x, &at.view(), &mut out, &b);
            for v in 0..6 {
                assert!((out[v] - oracle[v]).abs() < 1e-14);
            }
            let narrow = crate::Csr32::try_from_wide(&at).unwrap();
            let mut out32 = vec![f64::NAN; 6];
            gather_into(&x, &narrow.view(), &mut out32, &b);
            for v in 0..6 {
                assert_eq!(out32[v].to_bits(), out[v].to_bits());
            }
        }
    }

    #[test]
    fn step_fused_matches_unfused_pipeline() {
        let a = skewed();
        let at = a.transpose();
        let n = 6usize;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0) / 21.0).collect();
        let c = 0.85;
        let mass: f64 = x.iter().sum();
        let teleport = (1.0 - c) * mass / n as f64;
        // Unfused oracle: multiply, then scale-shift, then delta/mass.
        let mx = vxm(&x, &a);
        let expect: Vec<f64> = mx.iter().map(|&m| c * m + teleport).collect();
        let expect_delta: f64 = expect.iter().zip(&x).map(|(a, b)| (a - b).abs()).sum();
        let expect_mass: f64 = expect.iter().sum();
        let coeffs = StepCoeffs {
            damping: c,
            teleport,
            spread: 0.0,
            sink: None,
        };
        for chunks in [1usize, 3, 6] {
            let b = balanced_boundaries(at.row_ptr(), chunks);
            let mut out = vec![0.0; n];
            let got = step_fused(&x, &at.view(), &mut out, &coeffs, &b);
            for v in 0..n {
                assert!((out[v] - expect[v]).abs() < 1e-14);
            }
            assert!((got.delta - expect_delta).abs() < 1e-13);
            assert!((got.mass - expect_mass).abs() < 1e-13);
        }
    }

    #[test]
    fn step_fused_sink_term_adds_damped_self_rank() {
        // Row 1 dangles: strategy Sink keeps its mass in place.
        let mut coo = Coo::<u64>::new(3, 3);
        coo.push(0, 1, 1);
        coo.push(2, 0, 1);
        let a = ops::normalize_rows(&coo.compress());
        let at = a.transpose();
        let x = [0.2, 0.3, 0.5];
        let c = 0.85;
        let teleport = (1.0 - c) * 1.0 / 3.0;
        let dangling = [false, true, false];
        let coeffs = StepCoeffs {
            damping: c,
            teleport,
            spread: 0.0,
            sink: Some(&dangling),
        };
        let b = balanced_boundaries(at.row_ptr(), 2);
        let mut out = vec![0.0; 3];
        let got = step_fused(&x, &at.view(), &mut out, &coeffs, &b);
        let mx = vxm(&x, &a);
        for v in 0..3 {
            let want = c * mx[v] + teleport + if dangling[v] { c * x[v] } else { 0.0 };
            assert!((out[v] - want).abs() < 1e-15);
        }
        // Sink conserves mass: everything the dangling row would lose
        // stays with it, so total stays 1 up to rounding.
        assert!((got.mass - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fused_kernels_work_on_the_empty_matrix() {
        let a = Csr::<f64>::zero(0, 0);
        let at = a.transpose();
        let b = balanced_boundaries(at.row_ptr(), 4);
        let mut out: Vec<f64> = Vec::new();
        gather_into(&[], &at.view(), &mut out, &b);
        let got = step_fused(
            &[],
            &at.view(),
            &mut out,
            &StepCoeffs {
                damping: 0.85,
                teleport: 0.0,
                spread: 0.0,
                sink: None,
            },
            &b,
        );
        assert_eq!(
            got,
            StepOutcome {
                delta: 0.0,
                mass: 0.0
            }
        );
    }

    #[test]
    fn random_matrix_scatter_equals_dense_oracle() {
        use crate::dense::Dense;
        let mut coo = Coo::<f64>::new(8, 8);
        let mut state = 12345u64;
        for _ in 0..32 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = (state >> 33) % 8;
            let c = (state >> 13) % 8;
            let v = ((state >> 3) % 100) as f64 / 10.0 + 0.1;
            coo.push(r, c, v);
        }
        let a = coo.compress();
        let dense = Dense::from_csr(&a);
        let x: Vec<f64> = (0..8).map(|i| i as f64 * 0.25).collect();
        let sparse_result = vxm(&x, &a);
        let dense_result = dense.vec_mat(&x);
        for i in 0..8 {
            assert!((sparse_result[i] - dense_result[i]).abs() < 1e-12);
        }
    }
}
