//! Sparse matrix–vector products — the heart of kernel 3.
//!
//! The paper writes the PageRank update as a *row vector times matrix*
//! product `r * A`. On CSR storage that is a **scatter**: each row `u`
//! contributes `r[u] · A[u, v]` to every `out[v]` it points at. The
//! alternative is to precompute `Aᵀ` and **gather**: `out[v]` is a dot
//! product over the incoming edges of `v`. The two forms are numerically
//! reordered but algebraically identical; the gather form has no write
//! contention and is what the rayon-parallel kernel uses. Both are exposed
//! so the ablation bench (scatter vs gather) can measure the difference.

use rayon::prelude::*;

use crate::Csr;

/// `out = x * A` (row vector × matrix) via CSR scatter.
///
/// # Panics
///
/// Panics if `x.len() != A.rows()`.
pub fn vxm(x: &[f64], a: &Csr<f64>) -> Vec<f64> {
    let mut out = vec![0.0; a.cols() as usize];
    vxm_into(x, a, &mut out);
    out
}

/// Scatter form writing into a caller-provided buffer (zeroed first).
///
/// # Panics
///
/// Panics if `x.len() != A.rows()` or `out.len() != A.cols()`.
pub fn vxm_into(x: &[f64], a: &Csr<f64>, out: &mut [f64]) {
    assert_eq!(
        x.len() as u64,
        a.rows(),
        "vector length must equal row count"
    );
    assert_eq!(
        out.len() as u64,
        a.cols(),
        "output length must equal column count"
    );
    out.fill(0.0);
    for (u, &xu) in x.iter().enumerate() {
        if xu == 0.0 {
            continue;
        }
        let (cols, vals) = a.row(u as u64);
        for (&v, &w) in cols.iter().zip(vals) {
            out[v as usize] += xu * w;
        }
    }
}

/// `out = A * x` (matrix × column vector) via CSR gather.
///
/// # Panics
///
/// Panics if `x.len() != A.cols()`.
pub fn mxv(a: &Csr<f64>, x: &[f64]) -> Vec<f64> {
    assert_eq!(
        x.len() as u64,
        a.cols(),
        "vector length must equal column count"
    );
    (0..a.rows())
        .map(|r| {
            let (cols, vals) = a.row(r);
            cols.iter()
                .zip(vals)
                .map(|(&c, &w)| x[c as usize] * w)
                .sum()
        })
        .collect()
}

/// Gather form of `x * A`, reading a precomputed transpose: pass
/// `at = a.transpose()` and this equals [`vxm`]`(x, a)` up to floating-point
/// reassociation.
pub fn vxm_gather(x: &[f64], at: &Csr<f64>) -> Vec<f64> {
    mxv(at, x)
}

/// Rayon-parallel gather `x * A` over a precomputed transpose. Each output
/// element is an independent reduction, so no synchronization is needed.
pub fn par_vxm_gather(x: &[f64], at: &Csr<f64>) -> Vec<f64> {
    assert_eq!(
        x.len() as u64,
        at.cols(),
        "vector length must equal A's row count"
    );
    (0..at.rows())
        .into_par_iter()
        .map(|r| {
            let (cols, vals) = at.row(r);
            cols.iter()
                .zip(vals)
                .map(|(&c, &w)| x[c as usize] * w)
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ops, Coo};

    /// [ .5 .5  . ]
    /// [  .  .  1 ]
    /// [ 1.  .  . ]
    fn stochastic() -> Csr<f64> {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 0, 1u64);
        coo.push(0, 1, 1);
        coo.push(1, 2, 2);
        coo.push(2, 0, 3);
        ops::normalize_rows(&coo.compress())
    }

    #[test]
    fn vxm_known_answer() {
        let a = stochastic();
        let x = [1.0, 2.0, 4.0];
        // out[0] = 1*.5 + 4*1 = 4.5 ; out[1] = 1*.5 ; out[2] = 2*1
        assert_eq!(vxm(&x, &a), vec![4.5, 0.5, 2.0]);
    }

    #[test]
    fn gather_forms_agree_with_scatter() {
        let a = stochastic();
        let at = a.transpose();
        let x = [0.3, 0.5, 0.2];
        let scatter = vxm(&x, &a);
        let gather = vxm_gather(&x, &at);
        let par = par_vxm_gather(&x, &at);
        for i in 0..3 {
            assert!((scatter[i] - gather[i]).abs() < 1e-15);
            assert!((scatter[i] - par[i]).abs() < 1e-15);
        }
    }

    #[test]
    fn stochastic_matrix_preserves_mass() {
        let a = stochastic();
        let x = [0.2, 0.3, 0.5];
        let y = vxm(&x, &a);
        assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mxv_known_answer() {
        let a = stochastic();
        let x = [1.0, 2.0, 3.0];
        // y[r] = Σ A[r, c] x[c]
        assert_eq!(mxv(&a, &x), vec![1.5, 3.0, 1.0]);
    }

    #[test]
    fn empty_rows_contribute_nothing() {
        let mut coo = Coo::<u64>::new(3, 3);
        coo.push(0, 1, 1);
        let a = ops::normalize_rows(&coo.compress());
        let y = vxm(&[1.0, 1.0, 1.0], &a);
        assert_eq!(y, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn zero_matrix_maps_to_zero() {
        let a = Csr::<f64>::zero(4, 4);
        assert_eq!(vxm(&[1.0; 4], &a), vec![0.0; 4]);
        assert_eq!(mxv(&a, &[1.0; 4]), vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "must equal row count")]
    fn vxm_length_checked() {
        let _ = vxm(&[1.0, 2.0], &stochastic());
    }

    #[test]
    fn random_matrix_scatter_equals_dense_oracle() {
        use crate::dense::Dense;
        let mut coo = Coo::<f64>::new(8, 8);
        let mut state = 12345u64;
        for _ in 0..32 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = (state >> 33) % 8;
            let c = (state >> 13) % 8;
            let v = ((state >> 3) % 100) as f64 / 10.0 + 0.1;
            coo.push(r, c, v);
        }
        let a = coo.compress();
        let dense = Dense::from_csr(&a);
        let x: Vec<f64> = (0..8).map(|i| i as f64 * 0.25).collect();
        let sparse_result = vxm(&x, &a);
        let dense_result = dense.vec_mat(&x);
        for i in 0..8 {
            assert!((sparse_result[i] - dense_result[i]).abs() < 1e-12);
        }
    }
}
