//! Fixed-size bit set — the frontier / visited representation shared by
//! graph-traversal workloads.
//!
//! Direction-optimizing BFS flips between a sparse frontier (a vertex
//! list) and a dense one (this bitmap); connected components and the
//! other `ppbench-algo` kernels use it for visited tracking. The storage
//! is a plain `Vec<u64>` word array so chunk-parallel writers can split
//! it with `split_at_mut` on word boundaries — no atomics, no `unsafe`.

/// A fixed-capacity set of vertex indices backed by 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Size of the universe (number of addressable bits).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the universe is empty (`len() == 0`).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `i`. Out-of-universe indices are a caller bug and panic
    /// via the slice bound.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len, "bit {i} out of universe {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Membership test.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit {i} out of universe {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Removes every element, keeping the capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The backing word array (bit `i` lives in word `i / 64`).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable backing word array, for chunk-parallel writers that split
    /// it on word boundaries.
    pub fn as_words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Set members in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + bit)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut s = BitSet::new(130);
        assert_eq!(s.len(), 130);
        assert!(!s.get(0));
        s.set(0);
        s.set(63);
        s.set(64);
        s.set(129);
        assert!(s.get(0) && s.get(63) && s.get(64) && s.get(129));
        assert!(!s.get(1) && !s.get(65) && !s.get(128));
        assert_eq!(s.count_ones(), 4);
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = BitSet::new(70);
        s.set(3);
        s.set(69);
        s.clear();
        assert_eq!(s.count_ones(), 0);
        assert!(!s.get(3));
    }

    #[test]
    fn iter_ones_is_ascending_and_complete() {
        let mut s = BitSet::new(200);
        for i in [0usize, 5, 63, 64, 127, 128, 199] {
            s.set(i);
        }
        let got: Vec<usize> = s.iter_ones().collect();
        assert_eq!(got, vec![0, 5, 63, 64, 127, 128, 199]);
    }

    #[test]
    fn empty_universe_is_fine() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.count_ones(), 0);
        assert_eq!(s.iter_ones().count(), 0);
    }

    #[test]
    fn word_array_is_directly_addressable() {
        let mut s = BitSet::new(128);
        s.as_words_mut()[1] = 1; // bit 64
        assert!(s.get(64));
        assert_eq!(s.as_words().len(), 2);
    }
}
