//! Compressed sparse row storage.

use crate::Scalar;

/// A column-index type a CSR matrix can store: `u64` (the canonical wide
/// form) or `u32` (the narrow form of [`crate::Csr32`], half the index
/// bandwidth for every matrix whose column count fits).
pub trait ColIndex: Copy + Send + Sync + 'static {
    /// Widens to a slice index.
    fn to_index(self) -> usize;
}

impl ColIndex for u64 {
    #[inline(always)]
    fn to_index(self) -> usize {
        self as usize
    }
}

impl ColIndex for u32 {
    #[inline(always)]
    fn to_index(self) -> usize {
        self as usize
    }
}

/// A borrowed view of CSR storage with `f64` values, generic over the
/// column-index width. The SpMV kernels in [`crate::spmv`] operate on
/// views so one implementation serves both [`Csr`] and [`crate::Csr32`].
#[derive(Debug, Clone, Copy)]
pub struct CsrView<'a, I> {
    rows: u64,
    cols: u64,
    row_ptr: &'a [usize],
    col_idx: &'a [I],
    values: &'a [f64],
}

impl<'a, I: ColIndex> CsrView<'a, I> {
    /// Assembles a view from raw parts (lengths checked).
    ///
    /// # Panics
    ///
    /// Panics if `row_ptr.len() != rows + 1` or the index/value slices
    /// disagree in length.
    pub fn from_parts(
        rows: u64,
        cols: u64,
        row_ptr: &'a [usize],
        col_idx: &'a [I],
        values: &'a [f64],
    ) -> Self {
        assert_eq!(row_ptr.len() as u64, rows + 1, "row_ptr length mismatch");
        assert_eq!(
            col_idx.len(),
            values.len(),
            "col_idx/values length mismatch"
        );
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> u64 {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The row pointer array (length `rows + 1`).
    pub fn row_ptr(&self) -> &'a [usize] {
        self.row_ptr
    }

    /// The entries of row `r` as parallel (columns, values) slices.
    #[inline]
    pub fn row(&self, r: usize) -> (&'a [I], &'a [f64]) {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }
}

/// A sparse matrix in CSR form: `row_ptr` (length rows+1) delimits, for each
/// row, a slice of `col_idx`/`values`. Column indices are strictly
/// increasing within each row and no explicit zeros are stored.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr<T> {
    rows: u64,
    cols: u64,
    row_ptr: Vec<usize>,
    col_idx: Vec<u64>,
    values: Vec<T>,
}

impl<T: Scalar> Csr<T> {
    /// An empty (all-zero) `rows × cols` matrix.
    pub fn zero(rows: u64, cols: u64) -> Self {
        Self {
            rows,
            cols,
            row_ptr: vec![0; rows as usize + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds from triplets that are already sorted by (row, col) with no
    /// duplicates and no zeros — the contract [`crate::Coo::compress`]
    /// establishes.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the contract is violated.
    pub(crate) fn from_sorted_dedup_triplets(
        rows: u64,
        cols: u64,
        triplets: Vec<(u64, u64, T)>,
    ) -> Self {
        let mut row_ptr = vec![0usize; rows as usize + 1];
        for &(r, _, _) in &triplets {
            row_ptr[r as usize + 1] += 1;
        }
        for i in 0..rows as usize {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        let mut prev: Option<(u64, u64)> = None;
        for (r, c, v) in triplets {
            debug_assert!(r < rows && c < cols);
            debug_assert!(prev < Some((r, c)), "triplets not sorted/deduped");
            debug_assert!(v != T::ZERO, "explicit zero slipped through");
            prev = Some((r, c));
            col_idx.push(c);
            values.push(v);
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Fast path for kernel 2: builds directly from an edge list that is
    /// already sorted by start vertex (kernel 1's output), accumulating
    /// duplicate `(u, v)` pairs. Within each row the ends are sorted here.
    ///
    /// # Panics
    ///
    /// Panics if the edges are not sorted by start vertex or go out of
    /// bounds.
    pub fn from_sorted_edges(n: u64, edges: &[(u64, u64)]) -> Self
    where
        T: Scalar,
    {
        let mut triplets: Vec<(u64, u64, T)> = Vec::with_capacity(edges.len());
        let mut i = 0usize;
        while i < edges.len() {
            let row = edges[i].0;
            assert!(row < n, "start vertex {row} out of bounds {n}");
            if i > 0 {
                assert!(edges[i - 1].0 <= row, "edges not sorted by start vertex");
            }
            let mut ends: Vec<u64> = Vec::new();
            while i < edges.len() && edges[i].0 == row {
                assert!(
                    edges[i].1 < n,
                    "end vertex {} out of bounds {n}",
                    edges[i].1
                );
                ends.push(edges[i].1);
                i += 1;
            }
            ends.sort_unstable();
            let mut j = 0usize;
            while j < ends.len() {
                let col = ends[j];
                let mut acc = T::ZERO;
                while j < ends.len() && ends[j] == col {
                    acc = acc.add(T::ONE);
                    j += 1;
                }
                triplets.push((row, col, acc));
            }
        }
        Self::from_sorted_dedup_triplets(n, n, triplets)
    }

    /// Streaming counterpart of [`Csr::from_sorted_edges`]: consumes an
    /// iterator of `(u, v)` pairs sorted by `u`, never materializing the
    /// edge list — the peak memory is the matrix itself plus one row's
    /// worth of end vertices. This is what lets kernel 2 run in roughly
    /// half the memory of the collect-then-build path.
    ///
    /// # Panics
    ///
    /// Panics if the stream is not sorted by start vertex or goes out of
    /// bounds.
    pub fn from_sorted_edge_iter(n: u64, edges: impl IntoIterator<Item = (u64, u64)>) -> Self {
        let mut triplets: Vec<(u64, u64, T)> = Vec::new();
        let mut current_row: Option<u64> = None;
        let mut ends: Vec<u64> = Vec::new();
        let flush = |row: u64, ends: &mut Vec<u64>, triplets: &mut Vec<(u64, u64, T)>| {
            ends.sort_unstable();
            let mut j = 0usize;
            while j < ends.len() {
                let col = ends[j];
                let mut acc = T::ZERO;
                while j < ends.len() && ends[j] == col {
                    acc = acc.add(T::ONE);
                    j += 1;
                }
                triplets.push((row, col, acc));
            }
            ends.clear();
        };
        for (u, v) in edges {
            assert!(u < n, "start vertex {u} out of bounds {n}");
            assert!(v < n, "end vertex {v} out of bounds {n}");
            match current_row {
                Some(row) if row == u => {}
                Some(row) => {
                    assert!(row < u, "edges not sorted by start vertex");
                    flush(row, &mut ends, &mut triplets);
                    current_row = Some(u);
                }
                None => current_row = Some(u),
            }
            ends.push(v);
        }
        if let Some(row) = current_row {
            flush(row, &mut ends, &mut triplets);
        }
        Self::from_sorted_dedup_triplets(n, n, triplets)
    }

    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> u64 {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The stored values, row-major.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// The column indices, row-major.
    pub fn col_indices(&self) -> &[u64] {
        &self.col_idx
    }

    /// The row pointer array (length `rows + 1`).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The entries of row `r` as parallel (columns, values) slices.
    #[inline]
    pub fn row(&self, r: u64) -> (&[u64], &[T]) {
        let lo = self.row_ptr[r as usize];
        let hi = self.row_ptr[r as usize + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Number of stored entries in row `r`.
    pub fn row_nnz(&self, r: u64) -> usize {
        self.row_ptr[r as usize + 1] - self.row_ptr[r as usize]
    }

    /// Looks up the entry at `(r, c)`, if stored.
    pub fn get(&self, r: u64, c: u64) -> Option<T> {
        let (cols, vals) = self.row(r);
        cols.binary_search(&c).ok().map(|i| vals[i])
    }

    /// Iterates all stored entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, T)> + '_ {
        (0..self.rows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter().zip(vals).map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Maps every stored value (dropping results equal to zero).
    pub fn map<U: Scalar>(&self, mut f: impl FnMut(u64, u64, T) -> U) -> Csr<U> {
        let triplets: Vec<(u64, u64, U)> = self
            .iter()
            .map(|(r, c, v)| (r, c, f(r, c, v)))
            .filter(|&(_, _, v)| v != U::ZERO)
            .collect();
        Csr::from_sorted_dedup_triplets(self.rows, self.cols, triplets)
    }

    /// The transpose as a new CSR matrix (i.e. CSC view of `self`).
    ///
    /// Linear-time bucket transpose; output rows are sorted because input
    /// rows are scanned in order.
    pub fn transpose(&self) -> Csr<T> {
        let mut row_ptr = vec![0usize; self.cols as usize + 1];
        for &c in &self.col_idx {
            row_ptr[c as usize + 1] += 1;
        }
        for i in 0..self.cols as usize {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = vec![0u64; self.nnz()];
        let mut values = vec![T::ZERO; self.nnz()];
        let mut cursor = row_ptr.clone();
        for (r, c, v) in self.iter() {
            let slot = cursor[c as usize];
            col_idx[slot] = r;
            values[slot] = v;
            cursor[c as usize] += 1;
        }
        Csr {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Sum of all stored values.
    pub fn value_sum(&self) -> T {
        self.values.iter().fold(T::ZERO, |acc, &v| acc.add(v))
    }

    /// Checks internal invariants; used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.row_ptr.len() != self.rows as usize + 1 {
            return Err("row_ptr length mismatch".into());
        }
        if self.row_ptr.last().copied() != Some(self.nnz()) {
            return Err("row_ptr tail != nnz".into());
        }
        if self.values.len() != self.col_idx.len() {
            return Err("values/col_idx length mismatch".into());
        }
        for r in 0..self.rows {
            let (lo, hi) = (self.row_ptr[r as usize], self.row_ptr[r as usize + 1]);
            if lo > hi {
                return Err(format!("row {r} has negative extent"));
            }
            let cols = &self.col_idx[lo..hi];
            for w in cols.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("row {r} columns not strictly increasing"));
                }
            }
            if let Some(&c) = cols.last() {
                if c >= self.cols {
                    return Err(format!("row {r} column {c} out of bounds"));
                }
            }
        }
        if self.values.contains(&T::ZERO) {
            return Err("explicit zero stored".into());
        }
        Ok(())
    }
}

impl Csr<f64> {
    /// A borrowed [`CsrView`] over this matrix's storage, with the wide
    /// (`u64`) column indices. The SpMV kernels in [`crate::spmv`] accept
    /// views so the narrow-index form ([`crate::Csr32`]) shares one
    /// implementation with this one.
    pub fn view(&self) -> CsrView<'_, u64> {
        CsrView::from_parts(
            self.rows,
            self.cols,
            &self.row_ptr,
            &self.col_idx,
            &self.values,
        )
    }
}

/// Internal column buffer of [`CsrStreamBuilder`]: `u32` whenever the
/// column bound fits (half the index bandwidth and footprint during the
/// build), widened to the canonical `u64` form only at finish.
#[derive(Debug)]
enum ColBuf {
    Narrow(Vec<u32>),
    Wide(Vec<u64>),
}

impl ColBuf {
    fn new(col_bound: u64) -> Self {
        if col_bound <= u64::from(u32::MAX) + 1 {
            ColBuf::Narrow(Vec::new())
        } else {
            ColBuf::Wide(Vec::new())
        }
    }

    #[inline]
    fn push(&mut self, c: u64) {
        match self {
            // The bound check in `CsrStreamBuilder::push` guarantees the
            // narrow form is only chosen when every column fits.
            ColBuf::Narrow(v) => v.push(c as u32),
            ColBuf::Wide(v) => v.push(c),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            ColBuf::Narrow(v) => v.len(),
            ColBuf::Wide(v) => v.len(),
        }
    }

    fn widen(self) -> Vec<u64> {
        match self {
            ColBuf::Narrow(v) => v.into_iter().map(u64::from).collect(),
            ColBuf::Wide(v) => v,
        }
    }
}

/// One finished row range `[lo, hi)` of a matrix under construction, with
/// row offsets relative to the segment. Segments built over disjoint,
/// contiguous ranges concatenate into a full matrix via
/// [`Csr::from_row_segments`] — this is how the fused kernel-2 path builds
/// per-vertex-range pieces on separate workers and joins them without a
/// global fix-up pass.
#[derive(Debug)]
pub struct CsrSegment<T> {
    lo: u64,
    hi: u64,
    row_ptr: Vec<usize>,
    col_idx: ColBuf,
    values: Vec<T>,
}

impl<T> CsrSegment<T> {
    /// The row range `[lo, hi)` this segment covers.
    pub fn row_range(&self) -> (u64, u64) {
        (self.lo, self.hi)
    }

    /// Number of stored entries in the segment.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }
}

/// Streaming CSR construction from a `(row, col)`-sorted stream with
/// duplicate accumulation — the merge-stream counterpart of
/// [`Csr::from_sorted_edge_iter`]. Where that path buffers a full triplet
/// vector (24 bytes per entry on top of the final matrix), this one holds
/// only the open `(row, col, count)` cell plus the growing output arrays,
/// with narrow (`u32`) column indices during the build whenever the
/// column bound fits.
///
/// The stream must be sorted by `(row, col)` — exactly what a
/// `SortKey::StartEnd` merge produces — which is what makes dedup a
/// constant-state comparison instead of a per-row sort.
#[derive(Debug)]
pub struct CsrStreamBuilder<T> {
    cols: u64,
    lo: u64,
    hi: u64,
    row_ptr: Vec<usize>,
    col_idx: ColBuf,
    values: Vec<T>,
    cur: Option<(u64, u64, T)>,
    closed: u64,
}

impl<T: Scalar> CsrStreamBuilder<T> {
    /// A builder for the full `n × n` matrix.
    pub fn new(n: u64) -> Self {
        Self::for_rows(n, 0, n)
    }

    /// A builder for rows `[lo, hi)` of an `n × n` matrix, producing a
    /// [`CsrSegment`].
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi > n`.
    pub fn for_rows(n: u64, lo: u64, hi: u64) -> Self {
        assert!(lo <= hi && hi <= n, "row range [{lo}, {hi}) outside 0..{n}");
        Self {
            cols: n,
            lo,
            hi,
            row_ptr: vec![0],
            col_idx: ColBuf::new(n),
            values: Vec::new(),
            cur: None,
            closed: lo,
        }
    }

    /// Feeds one `(u, v)` pair; consecutive duplicates accumulate.
    ///
    /// # Panics
    ///
    /// Panics if `u` is outside the builder's row range, `v >= n`, or the
    /// stream is not sorted by `(row, col)`.
    #[inline]
    pub fn push(&mut self, u: u64, v: u64) {
        assert!(
            self.lo <= u && u < self.hi,
            "start vertex {u} outside row range [{}, {})",
            self.lo,
            self.hi
        );
        assert!(v < self.cols, "end vertex {v} out of bounds {}", self.cols);
        match &mut self.cur {
            Some((r, c, acc)) if *r == u && *c == v => {
                *acc = acc.add(T::ONE);
            }
            Some((prev_r, prev_c, prev_acc)) => {
                let (r, c, acc) = (*prev_r, *prev_c, *prev_acc);
                assert!(
                    (r, c) < (u, v),
                    "edges not sorted by (start, end): ({r}, {c}) before ({u}, {v})"
                );
                self.col_idx.push(c);
                self.values.push(acc);
                while self.closed < u {
                    self.row_ptr.push(self.col_idx.len());
                    self.closed += 1;
                }
                self.cur = Some((u, v, T::ONE));
            }
            None => {
                while self.closed < u {
                    self.row_ptr.push(self.col_idx.len());
                    self.closed += 1;
                }
                self.cur = Some((u, v, T::ONE));
            }
        }
    }

    fn seal(mut self) -> CsrSegment<T> {
        if let Some((_, c, acc)) = self.cur.take() {
            self.col_idx.push(c);
            self.values.push(acc);
        }
        while self.closed < self.hi {
            self.row_ptr.push(self.col_idx.len());
            self.closed += 1;
        }
        CsrSegment {
            lo: self.lo,
            hi: self.hi,
            row_ptr: self.row_ptr,
            col_idx: self.col_idx,
            values: self.values,
        }
    }

    /// Finishes a range builder into its segment.
    pub fn finish_segment(self) -> CsrSegment<T> {
        self.seal()
    }

    /// Finishes a full-matrix builder (`lo == 0`, `hi == n`).
    ///
    /// # Panics
    ///
    /// Panics if the builder covers only a sub-range.
    pub fn finish(self) -> Csr<T> {
        let n = self.cols;
        assert!(
            self.lo == 0 && self.hi == n,
            "finish() needs a full-matrix builder; use finish_segment()"
        );
        Csr::from_row_segments(n, vec![self.seal()])
    }
}

impl<T: Scalar> Csr<T> {
    /// Concatenates segments covering `0..n` contiguously (in order, no
    /// gaps, no overlap) into the full `n × n` matrix. Row pointers are
    /// offset by the running entry count; columns widen from the narrow
    /// build form one segment at a time, so the transient overhead is one
    /// segment's narrow buffer rather than the whole matrix's.
    ///
    /// # Panics
    ///
    /// Panics if the segments do not tile `0..n` exactly.
    pub fn from_row_segments(n: u64, segments: Vec<CsrSegment<T>>) -> Self {
        let nnz: usize = segments.iter().map(CsrSegment::nnz).sum();
        let mut row_ptr = Vec::with_capacity(n as usize + 1);
        row_ptr.push(0usize);
        let mut col_idx: Vec<u64> = Vec::with_capacity(nnz);
        let mut values: Vec<T> = Vec::with_capacity(nnz);
        let mut next_row = 0u64;
        for seg in segments {
            assert!(
                seg.lo == next_row && seg.hi <= n,
                "segment [{}, {}) does not continue coverage at row {next_row}",
                seg.lo,
                seg.hi
            );
            let base = col_idx.len();
            row_ptr.extend(seg.row_ptr[1..].iter().map(|&p| base + p));
            col_idx.extend(seg.col_idx.widen());
            values.extend(seg.values);
            next_row = seg.hi;
        }
        assert!(next_row == n, "segments cover only 0..{next_row} of 0..{n}");
        let m = Self {
            rows: n,
            cols: n,
            row_ptr,
            col_idx,
            values,
        };
        debug_assert_eq!(m.check_invariants(), Ok(()));
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn sample() -> Csr<u64> {
        // [ . 2 . ]
        // [ 1 . 3 ]
        // [ . . . ]
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, 2);
        coo.push(1, 0, 1);
        coo.push(1, 2, 3);
        coo.compress()
    }

    #[test]
    fn shape_and_access() {
        let m = sample();
        assert_eq!((m.rows(), m.cols(), m.nnz()), (3, 3, 3));
        assert_eq!(m.get(0, 1), Some(2));
        assert_eq!(m.get(1, 0), Some(1));
        assert_eq!(m.get(0, 0), None);
        assert_eq!(m.row(1).0, &[0, 2]);
        assert_eq!(m.row(2).0, &[] as &[u64]);
        assert_eq!(m.row_nnz(1), 2);
        m.check_invariants().unwrap();
    }

    #[test]
    fn iter_yields_row_major() {
        let m = sample();
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(entries, vec![(0, 1, 2), (1, 0, 1), (1, 2, 3)]);
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        let t = m.transpose();
        t.check_invariants().unwrap();
        assert_eq!(t.get(1, 0), Some(2));
        assert_eq!(t.get(0, 1), Some(1));
        assert_eq!(t.get(2, 1), Some(3));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn map_converts_and_drops_zeros() {
        let m = sample();
        let f = m.map(|_, _, v| if v > 1 { v as f64 } else { 0.0 });
        assert_eq!(f.nnz(), 2);
        assert_eq!(f.get(0, 1), Some(2.0));
        assert_eq!(f.get(1, 0), None);
        f.check_invariants().unwrap();
    }

    #[test]
    fn from_sorted_edges_accumulates() {
        let edges = [(0u64, 2u64), (0, 1), (0, 2), (2, 0)];
        let mut sorted = edges;
        sorted.sort_unstable();
        let m = Csr::<u64>::from_sorted_edges(3, &sorted);
        assert_eq!(m.get(0, 2), Some(2));
        assert_eq!(m.get(0, 1), Some(1));
        assert_eq!(m.get(2, 0), Some(1));
        assert_eq!(m.value_sum(), 4);
        m.check_invariants().unwrap();
    }

    #[test]
    fn from_sorted_edges_equals_coo_path() {
        // Pseudo-random edges, both construction paths must agree.
        let edges: Vec<(u64, u64)> = (0..500u64).map(|i| ((i * 7) % 16, (i * 13) % 16)).collect();
        let mut sorted = edges.clone();
        sorted.sort_unstable_by_key(|&(u, _)| u);
        let fast = Csr::<u64>::from_sorted_edges(16, &sorted);
        let slow = Coo::<u64>::from_edges(16, edges).compress();
        assert_eq!(fast, slow);
    }

    #[test]
    #[should_panic(expected = "not sorted")]
    fn from_unsorted_edges_panics() {
        let _ = Csr::<u64>::from_sorted_edges(4, &[(2, 0), (1, 0)]);
    }

    #[test]
    fn streaming_construction_equals_slice_construction() {
        let edges: Vec<(u64, u64)> = (0..800u64).map(|i| ((i * 3) % 32, (i * 17) % 32)).collect();
        let mut sorted = edges;
        sorted.sort_unstable_by_key(|&(u, _)| u);
        let from_slice = Csr::<u64>::from_sorted_edges(32, &sorted);
        let from_iter = Csr::<u64>::from_sorted_edge_iter(32, sorted.iter().copied());
        assert_eq!(from_slice, from_iter);
    }

    #[test]
    fn streaming_construction_handles_empty_and_single() {
        let empty = Csr::<u64>::from_sorted_edge_iter(4, std::iter::empty());
        assert_eq!(empty.nnz(), 0);
        let one = Csr::<u64>::from_sorted_edge_iter(4, [(2u64, 3u64)]);
        assert_eq!(one.get(2, 3), Some(1));
    }

    #[test]
    #[should_panic(expected = "not sorted")]
    fn streaming_construction_rejects_unsorted() {
        let _ = Csr::<u64>::from_sorted_edge_iter(4, [(2u64, 0u64), (1, 0)]);
    }

    fn sorted_pairs(n: u64, count: u64) -> Vec<(u64, u64)> {
        let mut pairs: Vec<(u64, u64)> = (0..count)
            .map(|i| ((i * 7 + 3) % n, (i * 13 + 1) % n))
            .collect();
        pairs.sort_unstable();
        pairs
    }

    #[test]
    fn stream_builder_equals_edge_iter_construction() {
        let pairs = sorted_pairs(32, 900);
        let oracle = Csr::<u64>::from_sorted_edge_iter(32, pairs.iter().copied());
        let mut b = CsrStreamBuilder::<u64>::new(32);
        for &(u, v) in &pairs {
            b.push(u, v);
        }
        let m = b.finish();
        assert_eq!(m, oracle);
        m.check_invariants().unwrap();
    }

    #[test]
    fn stream_builder_handles_empty_all_duplicate_and_hub() {
        // Empty stream: the zero matrix.
        let empty = CsrStreamBuilder::<u64>::new(5).finish();
        assert_eq!(empty, Csr::<u64>::zero(5, 5));
        // All duplicates of one pair: a single accumulated cell.
        let mut dup = CsrStreamBuilder::<u64>::new(5);
        for _ in 0..40 {
            dup.push(2, 3);
        }
        let dup = dup.finish();
        assert_eq!(dup.nnz(), 1);
        assert_eq!(dup.get(2, 3), Some(40));
        // Single hub row holding every entry.
        let mut hub = CsrStreamBuilder::<u64>::new(8);
        for v in 0..8 {
            hub.push(4, v);
        }
        let hub = hub.finish();
        assert_eq!(hub.row_nnz(4), 8);
        assert_eq!(hub.nnz(), 8);
        hub.check_invariants().unwrap();
    }

    #[test]
    fn stream_builder_segments_concat_to_full_matrix() {
        let pairs = sorted_pairs(40, 1200);
        let oracle = Csr::<u64>::from_sorted_edge_iter(40, pairs.iter().copied());
        for buckets in [1u64, 2, 3, 7, 40] {
            let mut segments = Vec::new();
            for b in 0..buckets {
                let lo = 40 * b / buckets;
                let hi = 40 * (b + 1) / buckets;
                let mut builder = CsrStreamBuilder::<u64>::for_rows(40, lo, hi);
                for &(u, v) in pairs.iter().filter(|&&(u, _)| lo <= u && u < hi) {
                    builder.push(u, v);
                }
                segments.push(builder.finish_segment());
            }
            let m = Csr::from_row_segments(40, segments);
            assert_eq!(m, oracle, "{buckets} buckets");
        }
    }

    #[test]
    #[should_panic(expected = "not sorted")]
    fn stream_builder_rejects_unsorted() {
        let mut b = CsrStreamBuilder::<u64>::new(4);
        b.push(1, 3);
        b.push(1, 2);
    }

    #[test]
    #[should_panic(expected = "outside row range")]
    fn stream_builder_rejects_rows_outside_range() {
        let mut b = CsrStreamBuilder::<u64>::for_rows(8, 2, 4);
        b.push(5, 0);
    }

    #[test]
    #[should_panic(expected = "does not continue coverage")]
    fn from_row_segments_rejects_gaps() {
        let a = CsrStreamBuilder::<u64>::for_rows(8, 0, 3).finish_segment();
        let c = CsrStreamBuilder::<u64>::for_rows(8, 5, 8).finish_segment();
        let _ = Csr::from_row_segments(8, vec![a, c]);
    }

    #[test]
    fn col_buf_narrow_for_small_bounds_wide_above_u32() {
        assert!(matches!(ColBuf::new(1 << 20), ColBuf::Narrow(_)));
        assert!(matches!(
            ColBuf::new(u64::from(u32::MAX) + 1),
            ColBuf::Narrow(_)
        ));
        assert!(matches!(
            ColBuf::new(u64::from(u32::MAX) + 2),
            ColBuf::Wide(_)
        ));
        let mut buf = ColBuf::new(1 << 62);
        buf.push(1 << 40);
        assert_eq!(buf.widen(), vec![1u64 << 40]);
    }

    #[test]
    fn zero_matrix() {
        let m = Csr::<f64>::zero(4, 5);
        assert_eq!(m.nnz(), 0);
        assert_eq!((m.rows(), m.cols()), (4, 5));
        assert_eq!(m.value_sum(), 0.0);
        m.check_invariants().unwrap();
        assert_eq!(m.transpose().rows(), 5);
    }

    #[test]
    fn value_sum_accumulates() {
        assert_eq!(sample().value_sum(), 6);
    }
}
