//! Coordinate-format (triplet) matrix assembly.
//!
//! The Matlab reference builds the adjacency matrix with
//! `A = sparse(u, v, 1, N, N)`, whose semantics are: duplicate `(u, v)`
//! pairs *accumulate*. [`Coo`] reproduces exactly that: push triplets in any
//! order, then [`Coo::compress`] sorts, merges duplicates by addition, and
//! drops explicit zeros.

use crate::{Csr, Scalar};

/// A matrix under assembly: unordered (row, col, value) triplets.
#[derive(Debug, Clone, PartialEq)]
pub struct Coo<T> {
    rows: u64,
    cols: u64,
    triplets: Vec<(u64, u64, T)>,
}

impl<T: Scalar> Coo<T> {
    /// Creates an empty `rows × cols` assembly.
    pub fn new(rows: u64, cols: u64) -> Self {
        Self {
            rows,
            cols,
            triplets: Vec::new(),
        }
    }

    /// Creates an assembly with pre-reserved capacity.
    pub fn with_capacity(rows: u64, cols: u64, capacity: usize) -> Self {
        Self {
            rows,
            cols,
            triplets: Vec::with_capacity(capacity),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> u64 {
        self.cols
    }

    /// Number of triplets pushed so far (before duplicate merging).
    pub fn len(&self) -> usize {
        self.triplets.len()
    }

    /// True if no triplets have been pushed.
    pub fn is_empty(&self) -> bool {
        self.triplets.is_empty()
    }

    /// Adds `value` at `(row, col)`; duplicates accumulate at compression.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn push(&mut self, row: u64, col: u64, value: T) {
        assert!(
            row < self.rows && col < self.cols,
            "({row}, {col}) outside {}x{}",
            self.rows,
            self.cols
        );
        self.triplets.push((row, col, value));
    }

    /// `A = sparse(u, v, 1, N, N)`: one unit entry per edge.
    pub fn from_edges(n: u64, edges: impl IntoIterator<Item = (u64, u64)>) -> Self {
        let iter = edges.into_iter();
        let mut coo = Self::with_capacity(n, n, iter.size_hint().0);
        for (u, v) in iter {
            coo.push(u, v, T::ONE);
        }
        coo
    }

    /// Sorts, merges duplicates by [`Scalar::add`], drops zeros, and builds
    /// the CSR matrix.
    pub fn compress(mut self) -> Csr<T> {
        self.triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut merged: Vec<(u64, u64, T)> = Vec::with_capacity(self.triplets.len());
        for (r, c, v) in self.triplets {
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 = last.2.add(v),
                _ => merged.push((r, c, v)),
            }
        }
        merged.retain(|&(_, _, v)| v != T::ZERO);
        Csr::from_sorted_dedup_triplets(self.rows, self.cols, merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_accumulate() {
        let mut coo = Coo::<u64>::new(3, 3);
        coo.push(1, 2, 1);
        coo.push(1, 2, 1);
        coo.push(0, 0, 1);
        let csr = coo.compress();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(1, 2), Some(2));
        assert_eq!(csr.get(0, 0), Some(1));
        assert_eq!(csr.get(2, 2), None);
    }

    #[test]
    fn zeros_are_dropped() {
        let mut coo = Coo::<f64>::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 0, -1.0); // cancels to explicit zero
        coo.push(1, 1, 2.0);
        let csr = coo.compress();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.get(0, 0), None);
    }

    #[test]
    fn from_edges_counts_multiplicity() {
        let edges = [(0u64, 1u64), (0, 1), (0, 1), (2, 0)];
        let csr = Coo::<u64>::from_edges(3, edges).compress();
        assert_eq!(csr.get(0, 1), Some(3));
        assert_eq!(csr.get(2, 0), Some(1));
        // Sum of values equals the raw edge count M — the invariant the
        // paper states for kernel 2.
        assert_eq!(csr.values().iter().sum::<u64>(), 4);
    }

    #[test]
    fn empty_assembly_compresses_to_empty_matrix() {
        let csr = Coo::<u64>::new(4, 4).compress();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.rows(), 4);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_bounds_push_panics() {
        Coo::<u64>::new(2, 2).push(2, 0, 1);
    }

    #[test]
    fn accessors() {
        let mut coo = Coo::<u64>::new(5, 7);
        assert!(coo.is_empty());
        assert_eq!((coo.rows(), coo.cols()), (5, 7));
        coo.push(0, 0, 1);
        assert_eq!(coo.len(), 1);
        assert!(!coo.is_empty());
    }
}
