//! A miniature GraphBLAS-style layer.
//!
//! The paper notes that "the linear algebraic nature of PageRank makes it
//! well suited to being implemented using the GraphBLAS standard" and lists
//! GraphBLAS reference implementations as future work. This module provides
//! the minimal slice of that standard the benchmark exercises — enough to
//! write kernel 3 as semiring algebra and to build the BFS example:
//!
//! * [`Semiring`] — (⊕, ⊗) pairs over a domain, with the classic instances
//!   [`PlusTimes`], [`MinPlus`] (shortest paths), [`MaxTimes`], and
//!   [`OrAnd`] (reachability);
//! * [`vxm`] / [`mxv`] — vector–matrix products over any semiring;
//! * [`ewise_add`] / [`ewise_mul`] — element-wise vector combination;
//! * [`reduce`] — ⊕-reduction of a vector;
//! * [`apply`] — unary operator applied to every vector element;
//! * [`select`] — entry filtering on a matrix (GraphBLAS `GrB_select`).

use crate::{Csr, Scalar};

/// An algebraic semiring: a domain with an associative, commutative ⊕ (with
/// identity [`Semiring::zero`]) and an associative ⊗ that distributes over
/// it.
pub trait Semiring {
    /// Element domain. Bounded by [`Scalar`] so semiring vectors and
    /// matrices share the [`Csr`] storage (whose structural zero is the
    /// scalar's additive zero, not necessarily the semiring's ⊕ identity).
    type T: Scalar;

    /// The ⊕ identity.
    fn zero() -> Self::T;
    /// The ⊕ operation.
    fn add(a: Self::T, b: Self::T) -> Self::T;
    /// The ⊗ operation.
    fn mul(a: Self::T, b: Self::T) -> Self::T;
}

/// The arithmetic semiring (ℝ, +, ×): ordinary linear algebra, PageRank.
pub struct PlusTimes;

impl Semiring for PlusTimes {
    type T = f64;
    fn zero() -> f64 {
        0.0
    }
    fn add(a: f64, b: f64) -> f64 {
        a + b
    }
    fn mul(a: f64, b: f64) -> f64 {
        a * b
    }
}

/// The tropical semiring (ℝ∪{∞}, min, +): single-source shortest paths.
pub struct MinPlus;

impl Semiring for MinPlus {
    type T = f64;
    fn zero() -> f64 {
        f64::INFINITY
    }
    fn add(a: f64, b: f64) -> f64 {
        a.min(b)
    }
    fn mul(a: f64, b: f64) -> f64 {
        a + b
    }
}

/// (ℝ≥0, max, ×): widest-path / best-probability problems.
pub struct MaxTimes;

impl Semiring for MaxTimes {
    type T = f64;
    fn zero() -> f64 {
        0.0
    }
    fn add(a: f64, b: f64) -> f64 {
        a.max(b)
    }
    fn mul(a: f64, b: f64) -> f64 {
        a * b
    }
}

/// The boolean semiring ({0,1}, ∨, ∧): reachability and BFS frontiers.
pub struct OrAnd;

impl Semiring for OrAnd {
    type T = bool;
    fn zero() -> bool {
        false
    }
    fn add(a: bool, b: bool) -> bool {
        a || b
    }
    fn mul(a: bool, b: bool) -> bool {
        a && b
    }
}

impl Scalar for bool {
    const ZERO: Self = false;
    const ONE: Self = true;
    fn add(self, other: Self) -> Self {
        self || other
    }
}

/// `w = u ⊕.⊗ A` (row vector × matrix over the semiring `S`).
///
/// # Panics
///
/// Panics if `u.len() != a.rows()`.
pub fn vxm<S: Semiring>(u: &[S::T], a: &Csr<S::T>) -> Vec<S::T> {
    assert_eq!(u.len() as u64, a.rows(), "vxm length mismatch");
    let mut out = vec![S::zero(); a.cols() as usize];
    for (r, &ur) in u.iter().enumerate() {
        if ur == S::zero() {
            continue;
        }
        let (cols, vals) = a.row(r as u64);
        for (&c, &v) in cols.iter().zip(vals) {
            out[c as usize] = S::add(out[c as usize], S::mul(ur, v));
        }
    }
    out
}

/// `w = A ⊕.⊗ u` (matrix × column vector over the semiring `S`).
///
/// # Panics
///
/// Panics if `u.len() != a.cols()`.
pub fn mxv<S: Semiring>(a: &Csr<S::T>, u: &[S::T]) -> Vec<S::T> {
    assert_eq!(u.len() as u64, a.cols(), "mxv length mismatch");
    (0..a.rows())
        .map(|r| {
            let (cols, vals) = a.row(r);
            cols.iter().zip(vals).fold(S::zero(), |acc, (&c, &v)| {
                S::add(acc, S::mul(v, u[c as usize]))
            })
        })
        .collect()
}

/// Element-wise ⊕ of two vectors.
pub fn ewise_add<S: Semiring>(a: &[S::T], b: &[S::T]) -> Vec<S::T> {
    assert_eq!(a.len(), b.len(), "ewise_add length mismatch");
    a.iter().zip(b).map(|(&x, &y)| S::add(x, y)).collect()
}

/// Element-wise ⊗ of two vectors.
pub fn ewise_mul<S: Semiring>(a: &[S::T], b: &[S::T]) -> Vec<S::T> {
    assert_eq!(a.len(), b.len(), "ewise_mul length mismatch");
    a.iter().zip(b).map(|(&x, &y)| S::mul(x, y)).collect()
}

/// ⊕-reduction of a vector to a scalar.
pub fn reduce<S: Semiring>(v: &[S::T]) -> S::T {
    v.iter().fold(S::zero(), |acc, &x| S::add(acc, x))
}

/// Applies a unary operator to every element (GraphBLAS `GrB_apply`).
pub fn apply<T: Copy, U>(v: &[T], f: impl Fn(T) -> U) -> Vec<U> {
    v.iter().map(|&x| f(x)).collect()
}

/// Keeps the matrix entries satisfying `keep` (GraphBLAS `GrB_select`).
pub fn select<T: Scalar>(a: &Csr<T>, keep: impl Fn(u64, u64, T) -> bool) -> Csr<T> {
    a.map(|r, c, v| if keep(r, c, v) { v } else { T::ZERO })
}

/// `C = A ⊕.⊗ B` — matrix–matrix multiply over the semiring `S`
/// (GraphBLAS `GrB_mxm`), using the classic row-wise SpGEMM with a dense
/// accumulator.
///
/// Entries whose accumulated value equals the *storage* zero
/// ([`Scalar::ZERO`]) are dropped, matching [`Csr`]'s structural-zero
/// convention. For semirings whose ⊕ identity differs from the storage
/// zero (e.g. [`MinPlus`]), entries equal to `S::zero()` are also dropped
/// — an absent entry *means* "⊕ identity" to subsequent semiring ops.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn mxm<S: Semiring>(a: &Csr<S::T>, b: &Csr<S::T>) -> Csr<S::T> {
    assert_eq!(a.cols(), b.rows(), "mxm inner dimensions must agree");
    let out_cols = b.cols() as usize;
    let mut spa: Vec<S::T> = vec![S::zero(); out_cols];
    let mut touched: Vec<u64> = Vec::new();
    let mut coo = crate::Coo::with_capacity(a.rows(), b.cols(), a.nnz());
    for i in 0..a.rows() {
        let (ks, avs) = a.row(i);
        for (&k, &aik) in ks.iter().zip(avs) {
            if aik == S::zero() {
                continue;
            }
            let (js, bvs) = b.row(k);
            for (&j, &bkj) in js.iter().zip(bvs) {
                let slot = &mut spa[j as usize];
                if *slot == S::zero() {
                    touched.push(j);
                }
                *slot = S::add(*slot, S::mul(aik, bkj));
            }
        }
        for &j in &touched {
            let v = std::mem::replace(&mut spa[j as usize], S::zero());
            if v != S::zero() && v != crate::Scalar::ZERO {
                coo.push(i, j, v);
            }
        }
        touched.clear();
    }
    coo.compress()
}

/// Element-wise (Hadamard) ⊗ of two matrices on their structural
/// intersection (GraphBLAS `GrB_eWiseMult`).
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn ewise_mul_matrix<S: Semiring>(a: &Csr<S::T>, b: &Csr<S::T>) -> Csr<S::T> {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "shape mismatch");
    let mut coo = crate::Coo::with_capacity(a.rows(), a.cols(), a.nnz().min(b.nnz()));
    for (i, j, av) in a.iter() {
        if let Some(bv) = b.get(i, j) {
            let v = S::mul(av, bv);
            if v != crate::Scalar::ZERO {
                coo.push(i, j, v);
            }
        }
    }
    coo.compress()
}

/// ⊕-reduction of every stored matrix entry to a scalar
/// (GraphBLAS `GrB_reduce` to scalar).
pub fn reduce_matrix<S: Semiring>(a: &Csr<S::T>) -> S::T {
    a.values().iter().fold(S::zero(), |acc, &v| S::add(acc, v))
}

/// Counts triangles of an *undirected simple* graph given as a boolean
/// adjacency matrix (symmetric, no self-loops), via the masked SpGEMM
/// identity `Δ = Σ (L·L) ∘ L` where `L` is the strictly-lower-triangular
/// part — each triangle is counted exactly once.
///
/// The numeric work runs over [`PlusTimes`] on a 0/1 matrix.
pub fn triangle_count(adj: &Csr<bool>) -> u64 {
    // Strictly lower-triangular 0/1 matrix.
    let l = adj.map(|i, j, v| if v && j < i { 1.0f64 } else { 0.0 });
    let ll = mxm::<PlusTimes>(&l, &l);
    let masked = ewise_mul_matrix::<PlusTimes>(&ll, &l);
    reduce_matrix::<PlusTimes>(&masked) as u64
}

/// The (min, right-projection) semiring over vertex labels: `vxm` computes,
/// for every vertex, the minimum label among its in-neighbors. The
/// workhorse of label-propagation algorithms like
/// [`connected_components`].
pub struct MinSecond;

impl Semiring for MinSecond {
    type T = u64;
    fn zero() -> u64 {
        u64::MAX
    }
    fn add(a: u64, b: u64) -> u64 {
        a.min(b)
    }
    fn mul(a: u64, _b: u64) -> u64 {
        // The matrix entry is a structural 1; the propagated value is the
        // source's label (`a`, since vxm multiplies x[r] ⊗ A[r, c]).
        a
    }
}

/// Connected components of an *undirected* graph (symmetric boolean
/// adjacency) by min-label propagation over [`MinSecond`]: every vertex
/// ends up labeled with the smallest vertex id in its component.
///
/// Runs until fixpoint — at most `diameter + 1` rounds.
pub fn connected_components(adj: &Csr<bool>) -> Vec<u64> {
    let n = adj.rows() as usize;
    // Relabel the matrix over u64 so MinSecond's vxm type-checks.
    let ones = adj.map(|_, _, v| u64::from(v));
    let mut labels: Vec<u64> = (0..n as u64).collect();
    loop {
        let incoming = vxm::<MinSecond>(&labels, &ones);
        let mut changed = false;
        for (l, inc) in labels.iter_mut().zip(incoming) {
            if inc < *l {
                *l = inc;
                changed = true;
            }
        }
        if !changed {
            return labels;
        }
    }
}

/// Level-synchronous BFS over the boolean semiring: returns the hop count
/// from `source` for every vertex (`u64::MAX` for unreachable). The
/// "extend search / hop" operation from the paper's Figure 2, expressed as
/// repeated `vxm` over [`OrAnd`].
pub fn bfs_levels(adj: &Csr<bool>, source: u64) -> Vec<u64> {
    let n = adj.rows() as usize;
    assert!((source as usize) < n, "source out of range");
    let mut levels = vec![u64::MAX; n];
    let mut frontier = vec![false; n];
    frontier[source as usize] = true;
    levels[source as usize] = 0;
    let mut level = 0u64;
    loop {
        level += 1;
        let next = vxm::<OrAnd>(&frontier, adj);
        let mut any = false;
        frontier = vec![false; n];
        for (i, (&reached, l)) in next.iter().zip(levels.iter_mut()).enumerate() {
            if reached && *l == u64::MAX {
                *l = level;
                frontier[i] = true;
                any = true;
            }
        }
        if !any {
            return levels;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ops, Coo};

    fn weighted() -> Csr<f64> {
        // 0 --2.0--> 1 --3.0--> 2 ;  0 --10.0--> 2
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, 2.0);
        coo.push(1, 2, 3.0);
        coo.push(0, 2, 10.0);
        coo.compress()
    }

    #[test]
    fn plus_times_vxm_matches_spmv() {
        let mut coo = Coo::<u64>::new(4, 4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)] {
            coo.push(u, v, 1);
        }
        let a = ops::normalize_rows(&coo.compress());
        let x = [0.1, 0.2, 0.3, 0.4];
        let semiring = vxm::<PlusTimes>(&x, &a);
        let direct = crate::spmv::vxm(&x, &a);
        assert_eq!(semiring, direct);
    }

    #[test]
    fn min_plus_computes_shortest_paths() {
        let a = weighted();
        // Distances from vertex 0 after repeated relaxation.
        let mut dist = vec![f64::INFINITY; 3];
        dist[0] = 0.0;
        for _ in 0..3 {
            let relaxed = vxm::<MinPlus>(&dist, &a);
            dist = ewise_add::<MinPlus>(&dist, &relaxed); // min with previous
        }
        assert_eq!(dist, vec![0.0, 2.0, 5.0], "0→1→2 (5.0) beats 0→2 (10.0)");
    }

    #[test]
    fn max_times_finds_best_probability_path() {
        // Probabilities on edges; best path product wins.
        let mut coo = Coo::<f64>::new(3, 3);
        coo.push(0, 1, 0.9);
        coo.push(1, 2, 0.9);
        coo.push(0, 2, 0.5);
        let a = coo.compress();
        let mut p = vec![0.0; 3];
        p[0] = 1.0;
        for _ in 0..2 {
            let step = vxm::<MaxTimes>(&p, &a);
            p = ewise_add::<MaxTimes>(&p, &step);
        }
        assert!((p[2] - 0.81).abs() < 1e-12, "0→1→2 (0.81) beats 0→2 (0.5)");
    }

    #[test]
    fn or_and_reachability() {
        let mut coo = Coo::<bool>::new(4, 4);
        coo.push(0, 1, true);
        coo.push(1, 2, true);
        let a = coo.compress();
        let frontier = [true, false, false, false];
        let one_hop = vxm::<OrAnd>(&frontier, &a);
        assert_eq!(one_hop, vec![false, true, false, false]);
        let two_hop = vxm::<OrAnd>(&one_hop, &a);
        assert_eq!(two_hop, vec![false, false, true, false]);
    }

    #[test]
    fn bfs_levels_on_path_with_island() {
        let mut coo = Coo::<bool>::new(5, 5);
        for (u, v) in [(0, 1), (1, 2), (2, 3)] {
            coo.push(u, v, true);
        }
        let a = coo.compress();
        let levels = bfs_levels(&a, 0);
        assert_eq!(levels, vec![0, 1, 2, 3, u64::MAX]);
    }

    #[test]
    fn bfs_handles_cycles() {
        let mut coo = Coo::<bool>::new(3, 3);
        for (u, v) in [(0, 1), (1, 2), (2, 0)] {
            coo.push(u, v, true);
        }
        let levels = bfs_levels(&coo.compress(), 1);
        assert_eq!(levels, vec![2, 0, 1]);
    }

    #[test]
    fn reduce_and_apply() {
        assert_eq!(reduce::<PlusTimes>(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(reduce::<MinPlus>(&[3.0, 1.0, 2.0]), 1.0);
        assert_eq!(apply(&[1.0, 4.0], |x: f64| x.sqrt()), vec![1.0, 2.0]);
    }

    #[test]
    fn select_filters_entries() {
        let a = weighted();
        let big = select(&a, |_, _, v| v > 2.5);
        assert_eq!(big.nnz(), 2);
        assert_eq!(big.get(0, 1), None);
        assert_eq!(big.get(0, 2), Some(10.0));
    }

    #[test]
    fn mxm_matches_dense_oracle() {
        use crate::dense::Dense;
        let a = weighted();
        let b = {
            let mut coo = Coo::<f64>::new(3, 3);
            coo.push(0, 0, 1.5);
            coo.push(1, 0, 2.0);
            coo.push(2, 1, 4.0);
            coo.compress()
        };
        let c = mxm::<PlusTimes>(&a, &b);
        let da = Dense::from_csr(&a);
        let db = Dense::from_csr(&b);
        for i in 0..3u64 {
            for j in 0..3u64 {
                let expect: f64 = (0..3)
                    .map(|k| da.get(i as usize, k) * db.get(k, j as usize))
                    .sum();
                let got = c.get(i, j).unwrap_or(0.0);
                assert!((got - expect).abs() < 1e-12, "C[{i},{j}] {got} vs {expect}");
            }
        }
        c.check_invariants().unwrap();
    }

    #[test]
    fn mxm_boolean_is_two_hop_reachability() {
        let mut coo = Coo::<bool>::new(4, 4);
        for (u, v) in [(0, 1), (1, 2), (2, 3)] {
            coo.push(u, v, true);
        }
        let a = coo.compress();
        let a2 = mxm::<OrAnd>(&a, &a);
        assert_eq!(a2.get(0, 2), Some(true));
        assert_eq!(a2.get(1, 3), Some(true));
        assert_eq!(a2.get(0, 1), None, "one-hop edges are not in A²");
        assert_eq!(a2.nnz(), 2);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mxm_checks_shapes() {
        let a = Csr::<f64>::zero(2, 3);
        let b = Csr::<f64>::zero(2, 2);
        let _ = mxm::<PlusTimes>(&a, &b);
    }

    #[test]
    fn ewise_mul_matrix_intersects() {
        let a = weighted(); // entries (0,1)=2, (1,2)=3, (0,2)=10
        let mut coo = Coo::<f64>::new(3, 3);
        coo.push(0, 1, 5.0);
        coo.push(2, 2, 7.0);
        let b = coo.compress();
        let c = ewise_mul_matrix::<PlusTimes>(&a, &b);
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 1), Some(10.0));
    }

    fn symmetric(edges: &[(u64, u64)], n: u64) -> Csr<bool> {
        let mut coo = Coo::<bool>::new(n, n);
        for &(u, v) in edges {
            coo.push(u, v, true);
            coo.push(v, u, true);
        }
        coo.compress()
    }

    #[test]
    fn triangle_count_known_graphs() {
        // Triangle graph: exactly 1.
        assert_eq!(triangle_count(&symmetric(&[(0, 1), (1, 2), (0, 2)], 3)), 1);
        // K4: C(4,3) = 4 triangles.
        let k4: Vec<(u64, u64)> = (0..4)
            .flat_map(|i| (i + 1..4).map(move |j| (i, j)))
            .collect();
        assert_eq!(triangle_count(&symmetric(&k4, 4)), 4);
        // A path has none.
        assert_eq!(triangle_count(&symmetric(&[(0, 1), (1, 2), (2, 3)], 4)), 0);
        // Two disjoint triangles.
        assert_eq!(
            triangle_count(&symmetric(
                &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
                6
            )),
            2
        );
        // Empty graph.
        assert_eq!(triangle_count(&Csr::<bool>::zero(5, 5)), 0);
    }

    #[test]
    fn connected_components_labels_by_minimum() {
        // Components {0,1,2}, {3,4}, {5}.
        let adj = symmetric(&[(0, 1), (1, 2), (3, 4)], 6);
        assert_eq!(connected_components(&adj), vec![0, 0, 0, 3, 3, 5]);
    }

    #[test]
    fn connected_components_on_long_path() {
        // Propagation must cross the full diameter.
        let edges: Vec<(u64, u64)> = (0..63).map(|i| (i, i + 1)).collect();
        let adj = symmetric(&edges, 64);
        assert!(connected_components(&adj).iter().all(|&l| l == 0));
    }

    #[test]
    fn connected_components_empty_graph() {
        let adj = Csr::<bool>::zero(4, 4);
        assert_eq!(connected_components(&adj), vec![0, 1, 2, 3]);
    }

    #[test]
    fn mxm_min_plus_composes_shortest_paths() {
        // Two-hop min-plus product gives the best 2-edge distances.
        let a = weighted(); // 0→1 (2), 1→2 (3), 0→2 (10)
        let two_hop = mxm::<MinPlus>(&a, &a);
        assert_eq!(two_hop.get(0, 2), Some(5.0), "0→1→2 costs 2+3");
    }

    #[test]
    fn mxv_transposes_vxm() {
        let a = weighted();
        let x = [1.0, 2.0, 3.0];
        assert_eq!(mxv::<PlusTimes>(&a, &x), crate::spmv::mxv(&a, &x));
    }
}
