//! Narrow-index CSR: `u32` column indices for matrices whose column
//! count fits in 32 bits.
//!
//! Every scale the paper benchmarks (16–22) has far fewer than `2^32`
//! vertices, so the wide `u64` column indices of [`Csr`] waste half the
//! index bandwidth of the kernel-3 hot loop. [`Csr32`] stores the same
//! structure with `u32` columns; [`crate::spmv`]'s view-based kernels run
//! unchanged over either width, and the parallel backend selects the
//! narrow form automatically whenever [`Csr32::try_from_wide`] succeeds.

use crate::csr::CsrView;
use crate::Csr;

/// CSR storage with `u32` column indices and `f64` values.
///
/// Structurally identical to [`Csr<f64>`] — same row-pointer layout, same
/// (row, sorted-column) entry order — only the index width differs, which
/// is why equality against the wide form ([`Csr32::eq_wide`],
/// `PartialEq<Csr<f64>>`) is well defined entry-by-entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr32 {
    rows: u64,
    cols: u64,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl Csr32 {
    /// Converts a wide-index matrix to the narrow form, or returns `None`
    /// when the column count does not fit `u32` indices (i.e. any column
    /// index could be `>= 2^32`).
    pub fn try_from_wide(wide: &Csr<f64>) -> Option<Self> {
        if wide.cols() > u64::from(u32::MAX) + 1 {
            return None;
        }
        let col_idx: Vec<u32> = wide.col_indices().iter().map(|&c| c as u32).collect();
        Some(Self {
            rows: wide.rows(),
            cols: wide.cols(),
            row_ptr: wide.row_ptr().to_vec(),
            col_idx,
            values: wide.values().to_vec(),
        })
    }

    /// Widens back to the canonical `u64`-index form.
    pub fn to_wide(&self) -> Csr<f64> {
        let mut coo = crate::Coo::<f64>::new(self.rows, self.cols);
        for r in 0..self.rows as usize {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                coo.push(r as u64, u64::from(c), v);
            }
        }
        coo.compress()
    }

    /// Entry-by-entry equality with a wide-index matrix: same shape, same
    /// row structure, same columns (widened), bitwise-equal values.
    pub fn eq_wide(&self, wide: &Csr<f64>) -> bool {
        self.rows == wide.rows()
            && self.cols == wide.cols()
            && self.row_ptr == wide.row_ptr()
            && self
                .col_idx
                .iter()
                .zip(wide.col_indices())
                .all(|(&n, &w)| u64::from(n) == w)
            && self
                .values
                .iter()
                .zip(wide.values())
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> u64 {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The row pointer array (length `rows + 1`).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The entries of row `r` as parallel (columns, values) slices.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// A borrowed [`CsrView`] over this matrix's storage.
    pub fn view(&self) -> CsrView<'_, u32> {
        CsrView::from_parts(
            self.rows,
            self.cols,
            &self.row_ptr,
            &self.col_idx,
            &self.values,
        )
    }
}

impl PartialEq<Csr<f64>> for Csr32 {
    fn eq(&self, other: &Csr<f64>) -> bool {
        self.eq_wide(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn sample() -> Csr<f64> {
        let mut coo = Coo::<f64>::new(4, 4);
        coo.push(0, 1, 0.5);
        coo.push(0, 3, 0.5);
        coo.push(2, 0, 1.0);
        coo.push(3, 2, 0.25);
        coo.push(3, 3, 0.75);
        coo.compress()
    }

    #[test]
    fn narrow_roundtrip_preserves_everything() {
        let wide = sample();
        let narrow = Csr32::try_from_wide(&wide).expect("4 cols fit u32");
        assert_eq!(narrow.rows(), wide.rows());
        assert_eq!(narrow.cols(), wide.cols());
        assert_eq!(narrow.nnz(), wide.nnz());
        assert!(narrow.eq_wide(&wide));
        assert!(narrow == wide);
        let back = narrow.to_wide();
        assert_eq!(back.row_ptr(), wide.row_ptr());
        assert_eq!(back.col_indices(), wide.col_indices());
        assert_eq!(back.values(), wide.values());
    }

    #[test]
    fn narrow_rejects_oversized_column_space() {
        let wide = Csr::<f64>::zero(2, u64::from(u32::MAX) + 2);
        assert!(Csr32::try_from_wide(&wide).is_none());
        // Exactly 2^32 columns still fits: max index is u32::MAX.
        let edge = Csr::<f64>::zero(2, u64::from(u32::MAX) + 1);
        assert!(Csr32::try_from_wide(&edge).is_some());
    }

    #[test]
    fn eq_wide_detects_value_differences() {
        let wide = sample();
        let narrow = Csr32::try_from_wide(&wide).unwrap();
        let mut coo = Coo::<f64>::new(4, 4);
        coo.push(0, 1, 0.5);
        coo.push(0, 3, 0.5);
        coo.push(2, 0, 1.0);
        coo.push(3, 2, 0.25);
        coo.push(3, 3, 0.5); // differs
        let other = coo.compress();
        assert!(!narrow.eq_wide(&other));
    }

    #[test]
    fn views_agree_across_widths() {
        let wide = sample();
        let narrow = Csr32::try_from_wide(&wide).unwrap();
        let wv = wide.view();
        let nv = narrow.view();
        assert_eq!(wv.rows(), nv.rows());
        assert_eq!(wv.nnz(), nv.nnz());
        for r in 0..wide.rows() as usize {
            let (wc, wvals) = wv.row(r);
            let (nc, nvals) = nv.row(r);
            assert_eq!(wvals, nvals);
            assert!(wc.iter().zip(nc).all(|(&w, &n)| w == u64::from(n)));
        }
    }
}
