//! Sparse linear algebra for kernels 2 and 3 of the PageRank Pipeline
//! Benchmark.
//!
//! Kernel 2 builds an `N × N` sparse adjacency matrix from the sorted edge
//! list (accumulating duplicate edges as counts), computes column sums,
//! zeroes the super-node and leaf columns, and row-normalizes; kernel 3 runs
//! 20 PageRank iterations of a row-vector × matrix product. Everything those
//! steps need is implemented here from scratch:
//!
//! * [`Coo`] — triplet accumulation from edge lists;
//! * [`Csr`] — compressed sparse row storage, generic over the value type
//!   (`u64` counts before normalization, `f64` weights after — the paper's
//!   §V "are floating point values required?" question is answered by
//!   keeping both), with construction fast paths for sorted input;
//! * [`ops`] — column/row sums, structural filtering, row normalization;
//! * [`spmv`] — the row-vector × matrix product in both *scatter* (CSR, as
//!   written in the paper) and *gather* (transposed, parallelizable) forms,
//!   including nnz-balanced partitioned kernels with a fused PageRank
//!   epilogue;
//! * [`narrow`] — the `u32`-column-index CSR form ([`Csr32`]) that halves
//!   index bandwidth at every paper scale;
//! * [`bitset`] — the frontier/visited bitmap the `ppbench-algo`
//!   graph-traversal workloads share;
//! * [`vector`] — the dense-vector helpers the PageRank update needs;
//! * [`eigen`] — matrix-free power iteration, used to validate kernel 3
//!   against the dominant eigenvector of `c·Aᵀ + (1−c)/N·𝟙` exactly as the
//!   paper prescribes;
//! * [`graphblas`] — a miniature GraphBLAS-style layer (semirings, vxm,
//!   element-wise ops, reductions), reflecting the paper's observation that
//!   "the linear algebraic nature of PageRank makes it well suited to being
//!   implemented using the GraphBLAS standard";
//! * [`dense`] — a small dense matrix for oracle computations in tests.

//!
//! # Example
//!
//! ```
//! use ppbench_sparse::{ops, spmv, Coo};
//!
//! // Build a 2-cycle, normalize rows, multiply.
//! let mut coo = Coo::<u64>::new(2, 2);
//! coo.push(0, 1, 1);
//! coo.push(1, 0, 1);
//! let a = ops::normalize_rows(&coo.compress());
//! assert_eq!(spmv::vxm(&[0.25, 0.75], &a), vec![0.75, 0.25]);
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod bitset;
pub mod coo;
pub mod csr;
pub mod dense;
pub mod eigen;
pub mod graphblas;
pub mod narrow;
pub mod ops;
pub mod spmv;
pub mod vector;

pub use bitset::BitSet;
pub use coo::Coo;
pub use csr::{ColIndex, Csr, CsrSegment, CsrStreamBuilder, CsrView};
pub use dense::Dense;
pub use narrow::Csr32;

/// Value types storable in a sparse matrix.
///
/// The only algebra construction needs is addition (to merge duplicate
/// entries); everything richer lives in [`graphblas`] semirings.
pub trait Scalar: Copy + PartialEq + std::fmt::Debug + Send + Sync + 'static {
    /// Additive identity; entries equal to `ZERO` are considered explicit
    /// zeros and may be dropped by construction.
    const ZERO: Self;
    /// The canonical "one edge" value.
    const ONE: Self;
    /// Addition, used to accumulate duplicate entries.
    fn add(self, other: Self) -> Self;
}

impl Scalar for u64 {
    const ZERO: Self = 0;
    const ONE: Self = 1;
    fn add(self, other: Self) -> Self {
        self + other
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    fn add(self, other: Self) -> Self {
        self + other
    }
}

impl Scalar for u32 {
    const ZERO: Self = 0;
    const ONE: Self = 1;
    fn add(self, other: Self) -> Self {
        self + other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_identities() {
        assert_eq!(u64::ZERO.add(u64::ONE), 1);
        assert_eq!(f64::ZERO.add(f64::ONE), 1.0);
        assert_eq!(u32::ONE.add(u32::ONE), 2);
    }
}
