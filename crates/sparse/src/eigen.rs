//! Matrix-free power iteration.
//!
//! The paper validates kernel 3 by comparing `r` with "the first eigenvector
//! of `c·Aᵀ + (1−c)/N`", computed via `eigs` for problems small enough to
//! densify. Power iteration gets the same dominant eigenvector without ever
//! forming the dense matrix: the operator is supplied as a closure, so the
//! `(1−c)/N·𝟙` rank-one part costs O(N) per application instead of O(N²)
//! storage. Tests use it both ways (dense oracle and matrix-free) to check
//! they agree.

use crate::vector;

/// Result of a power iteration run.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerIteration {
    /// The estimated dominant eigenvector, L1-normalized.
    pub vector: Vec<f64>,
    /// The estimated dominant eigenvalue (Rayleigh-style, via L1 growth).
    pub eigenvalue: f64,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Whether the tolerance was met before the iteration cap.
    pub converged: bool,
}

/// Runs power iteration on the operator `apply: v ↦ M v`.
///
/// `start` seeds the iteration (it is L1-normalized internally); iteration
/// stops when the L1 change between successive normalized iterates drops
/// below `tol`, or after `max_iters`.
///
/// For a non-negative irreducible operator (like the PageRank matrix) this
/// converges to the unique positive dominant eigenvector.
///
/// # Panics
///
/// Panics if `start` is empty or has zero L1 norm.
pub fn power_iteration(
    apply: impl Fn(&[f64]) -> Vec<f64>,
    start: &[f64],
    max_iters: usize,
    tol: f64,
) -> PowerIteration {
    assert!(
        !start.is_empty(),
        "power iteration needs a nonempty start vector"
    );
    let mut v = start.to_vec();
    assert!(
        vector::norm_l1(&v) > 0.0,
        "start vector must have positive L1 norm"
    );
    vector::normalize_l1(&mut v);
    let mut eigenvalue = 0.0;
    for it in 1..=max_iters {
        let mut next = apply(&v);
        let growth = vector::norm_l1(&next);
        if growth == 0.0 {
            // Operator annihilated the iterate; the dominant eigenvalue on
            // this starting subspace is 0.
            return PowerIteration {
                vector: next,
                eigenvalue: 0.0,
                iterations: it,
                converged: true,
            };
        }
        vector::normalize_l1(&mut next);
        let delta = vector::l1_distance(&next, &v);
        v = next;
        eigenvalue = growth;
        if delta < tol {
            return PowerIteration {
                vector: v,
                eigenvalue,
                iterations: it,
                converged: true,
            };
        }
    }
    PowerIteration {
        vector: v,
        eigenvalue,
        iterations: max_iters,
        converged: false,
    }
}

/// Power iteration applied to the PageRank validation operator
/// `v ↦ c·Aᵀv + (1−c)/N · sum(v)` without densifying: pass `at` as the
/// transpose of the row-normalized adjacency matrix.
pub fn pagerank_eigenvector(
    at: &crate::Csr<f64>,
    damping: f64,
    max_iters: usize,
    tol: f64,
) -> PowerIteration {
    let n = at.rows() as usize;
    let start = vec![1.0 / n as f64; n];
    power_iteration(
        |v| {
            let mut out = crate::spmv::mxv(at, v);
            let shift = (1.0 - damping) / n as f64 * vector::sum(v);
            for o in out.iter_mut() {
                *o = *o * damping + shift;
            }
            out
        },
        &start,
        max_iters,
        tol,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;
    use crate::{ops, Coo};

    #[test]
    fn finds_dominant_eigenvector_of_known_matrix() {
        // M = [[2, 0], [0, 1]]: dominant eigenvector e1, eigenvalue 2.
        let apply = |v: &[f64]| vec![2.0 * v[0], v[1]];
        let r = power_iteration(apply, &[0.5, 0.5], 200, 1e-12);
        assert!(r.converged);
        assert!(
            (r.eigenvalue - 2.0).abs() < 1e-6,
            "eigenvalue {}",
            r.eigenvalue
        );
        assert!((r.vector[0] - 1.0).abs() < 1e-6);
        assert!(r.vector[1].abs() < 1e-6);
    }

    #[test]
    fn stochastic_matrix_has_eigenvalue_one() {
        // Column-stochastic 3x3: dominant eigenvalue exactly 1.
        let m = [[0.5, 0.2, 0.3], [0.25, 0.5, 0.3], [0.25, 0.3, 0.4]];
        let apply = |v: &[f64]| {
            (0..3)
                .map(|r| (0..3).map(|c| m[r][c] * v[c]).sum())
                .collect::<Vec<f64>>()
        };
        let r = power_iteration(apply, &[1.0, 1.0, 1.0], 500, 1e-13);
        assert!(r.converged);
        assert!((r.eigenvalue - 1.0).abs() < 1e-9);
        // The eigenvector is the stationary distribution: check fixpoint.
        let fixed = apply(&r.vector);
        assert!(crate::vector::l1_distance(&fixed, &r.vector) < 1e-9);
    }

    #[test]
    fn matrix_free_pagerank_matches_dense_oracle() {
        let mut coo = Coo::<u64>::new(4, 4);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 0), (0, 2)] {
            coo.push(u, v, 1);
        }
        let a = ops::normalize_rows(&coo.compress());
        let at = a.transpose();

        let sparse = pagerank_eigenvector(&at, 0.85, 2000, 1e-14);
        assert!(sparse.converged);

        let dense = Dense::pagerank_matrix(&a, 0.85);
        let oracle = power_iteration(|v| dense.matvec(v), &[1.0; 4], 2000, 1e-14);
        assert!(oracle.converged);

        assert!(
            crate::vector::l1_distance(&sparse.vector, &oracle.vector) < 1e-9,
            "matrix-free {:?} vs dense {:?}",
            sparse.vector,
            oracle.vector
        );
        assert!((sparse.eigenvalue - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_operator_converges_to_zero() {
        let r = power_iteration(|v| vec![0.0; v.len()], &[1.0, 1.0], 10, 1e-12);
        assert!(r.converged);
        assert_eq!(r.eigenvalue, 0.0);
    }

    #[test]
    fn iteration_cap_respected() {
        // A rotation-like operator never converges in L1; must stop at cap.
        let apply = |v: &[f64]| vec![v[1], v[0] * 2.0];
        let r = power_iteration(apply, &[1.0, 0.0], 7, 0.0);
        assert_eq!(r.iterations, 7);
        assert!(!r.converged);
    }

    #[test]
    #[should_panic(expected = "positive L1 norm")]
    fn zero_start_rejected() {
        let _ = power_iteration(|v| v.to_vec(), &[0.0, 0.0], 10, 1e-6);
    }
}
