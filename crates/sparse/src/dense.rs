//! Small dense matrices: the test oracle and the paper's eigenvector check.
//!
//! "For small enough problems where the above dense matrix fits into
//! memory, the first eigenvector can be computed" — this module holds that
//! dense matrix (`c·Aᵀ + (1−c)/N`) and the oracle products the tests
//! compare the sparse kernels against.

use crate::{Csr, Scalar};

/// A row-major dense `rows × cols` matrix of doubles.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Dense {
    /// An all-zero matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A constant-filled matrix.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Densifies a sparse matrix (converting values to `f64` via
    /// [`DenseConvert`]).
    pub fn from_csr<T: Scalar + DenseConvert>(a: &Csr<T>) -> Self {
        let mut d = Self::zero(a.rows() as usize, a.cols() as usize);
        for (r, c, v) in a.iter() {
            *d.get_mut(r as usize, c as usize) = v.to_f64();
        }
        d
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }

    /// Transpose.
    pub fn transpose(&self) -> Dense {
        let mut t = Dense::zero(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                *t.get_mut(c, r) = self.get(r, c);
            }
        }
        t
    }

    /// `self * alpha`, element-wise, in place.
    pub fn scale(&mut self, alpha: f64) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Adds `delta` to every element in place (the `+ (1−c)/N` rank-one
    /// shift of the PageRank matrix).
    pub fn shift(&mut self, delta: f64) {
        for x in &mut self.data {
            *x += delta;
        }
    }

    /// `y = A x` (column vector).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec length mismatch");
        (0..self.rows)
            .map(|r| (0..self.cols).map(|c| self.get(r, c) * x[c]).sum())
            .collect()
    }

    /// `y = x A` (row vector).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn vec_mat(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "vec_mat length mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for (c, o) in out.iter_mut().enumerate() {
                *o += xr * self.get(r, c);
            }
        }
        out
    }

    /// Builds the paper's validation matrix `c·Aᵀ + (1−c)/N·𝟙` from a
    /// (normalized) sparse adjacency matrix.
    pub fn pagerank_matrix(a: &Csr<f64>, damping: f64) -> Dense {
        let n = a.rows() as usize;
        let mut m = Dense::from_csr(&a.transpose());
        m.scale(damping);
        m.shift((1.0 - damping) / n as f64);
        m
    }
}

/// Conversion of sparse scalar types into doubles for densification.
pub trait DenseConvert {
    /// The value as an `f64`.
    fn to_f64(self) -> f64;
}

impl DenseConvert for f64 {
    fn to_f64(self) -> f64 {
        self
    }
}

impl DenseConvert for u64 {
    fn to_f64(self) -> f64 {
        self as f64
    }
}

impl DenseConvert for u32 {
    fn to_f64(self) -> f64 {
        self as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    #[test]
    fn from_csr_and_access() {
        let mut coo = Coo::<u64>::new(2, 3);
        coo.push(0, 1, 5);
        coo.push(1, 2, 7);
        let d = Dense::from_csr(&coo.compress());
        assert_eq!((d.rows(), d.cols()), (2, 3));
        assert_eq!(d.get(0, 1), 5.0);
        assert_eq!(d.get(1, 2), 7.0);
        assert_eq!(d.get(0, 0), 0.0);
    }

    #[test]
    fn matvec_and_vec_mat() {
        // [1 2]
        // [3 4]
        let mut d = Dense::zero(2, 2);
        *d.get_mut(0, 0) = 1.0;
        *d.get_mut(0, 1) = 2.0;
        *d.get_mut(1, 0) = 3.0;
        *d.get_mut(1, 1) = 4.0;
        assert_eq!(d.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
        assert_eq!(d.vec_mat(&[1.0, 1.0]), vec![4.0, 6.0]);
    }

    #[test]
    fn vec_mat_is_matvec_of_transpose() {
        let mut d = Dense::zero(3, 2);
        for (i, v) in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0].iter().enumerate() {
            d.data[i] = *v;
        }
        let x = [1.0, 0.5, 2.0];
        assert_eq!(d.vec_mat(&x), d.transpose().matvec(&x));
    }

    #[test]
    fn scale_and_shift() {
        let mut d = Dense::filled(2, 2, 1.0);
        d.scale(3.0);
        d.shift(0.5);
        assert_eq!(d.get(1, 1), 3.5);
    }

    #[test]
    fn pagerank_matrix_columns_sum_to_one_for_stochastic_a() {
        // Row-stochastic A: every column of c·Aᵀ + (1−c)/N sums to 1.
        let mut coo = Coo::<u64>::new(3, 3);
        coo.push(0, 1, 1);
        coo.push(1, 0, 1);
        coo.push(1, 2, 1);
        coo.push(2, 2, 1);
        let a = crate::ops::normalize_rows(&coo.compress());
        let m = Dense::pagerank_matrix(&a, 0.85);
        for c in 0..3 {
            let col_sum: f64 = (0..3).map(|r| m.get(r, c)).sum();
            assert!(
                (col_sum - 1.0).abs() < 1e-12,
                "column {c} sums to {col_sum}"
            );
        }
    }
}
