//! Row-block partitioning of the vertex space.
//!
//! The paper's decomposition: "a common decomposition would be to have each
//! processor hold a set of rows, since this would correspond to how the
//! files have been sorted in kernel 1". Vertices are split into contiguous
//! blocks of near-equal size; worker `w` owns rows `range(w)`.

/// A contiguous row-block partition of `0..n` over `workers` workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    n: u64,
    workers: usize,
}

impl Partition {
    /// Creates the partition.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(n: u64, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        Self { n, workers }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Total number of vertices.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The vertex range owned by worker `w` (may be empty when there are
    /// more workers than vertices).
    pub fn range(&self, w: usize) -> std::ops::Range<u64> {
        assert!(w < self.workers, "worker {w} out of {}", self.workers);
        let per = self.n.div_ceil(self.workers as u64);
        let lo = (w as u64 * per).min(self.n);
        let hi = ((w as u64 + 1) * per).min(self.n);
        lo..hi
    }

    /// The worker owning vertex `v`.
    pub fn owner(&self, v: u64) -> usize {
        debug_assert!(v < self.n, "vertex {v} out of {}", self.n);
        let per = self.n.div_ceil(self.workers as u64);
        ((v / per) as usize).min(self.workers - 1)
    }

    /// Number of vertices owned by worker `w`.
    pub fn len(&self, w: usize) -> u64 {
        let r = self.range(w);
        r.end - r.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tile_the_space() {
        for (n, w) in [(100u64, 4usize), (7, 3), (16, 16), (5, 8), (1, 1)] {
            let p = Partition::new(n, w);
            let mut covered = 0u64;
            let mut expected_start = 0u64;
            for rank in 0..w {
                let r = p.range(rank);
                assert_eq!(r.start, expected_start, "n={n} w={w} rank={rank}");
                expected_start = r.end;
                covered += r.end - r.start;
            }
            assert_eq!(covered, n, "n={n} w={w}");
        }
    }

    #[test]
    fn owner_matches_range() {
        for (n, w) in [(100u64, 4usize), (7, 3), (33, 5)] {
            let p = Partition::new(n, w);
            for v in 0..n {
                let o = p.owner(v);
                assert!(p.range(o).contains(&v), "n={n} w={w} v={v} owner={o}");
            }
        }
    }

    #[test]
    fn more_workers_than_vertices() {
        let p = Partition::new(3, 8);
        let owned: Vec<u64> = (0..8).map(|w| p.len(w)).collect();
        assert_eq!(owned.iter().sum::<u64>(), 3);
        assert!(owned.iter().all(|&l| l <= 1));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = Partition::new(10, 0);
    }
}
