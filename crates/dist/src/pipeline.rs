//! The distributed pipeline: kernels 0–3 executed by a worker cluster with
//! the paper's row-block decomposition, communication counted per kernel.

use ppbench_core::{kernel0, kernel3, PipelineConfig};
use ppbench_io::Edge;
use ppbench_sort::{radix_sort, SortKey};
use ppbench_sparse::{ops, spmv, Csr};

use crate::fabric::{run_cluster, CommStats, Fabric};
use crate::partition::Partition;

/// Distributed run parameters.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// The (serial) pipeline configuration being distributed. The dangling
    /// strategy must be the spec default (`Omit`); other strategies are a
    /// serial-only extension.
    pub pipeline: PipelineConfig,
    /// Number of simulated workers.
    pub workers: usize,
}

/// Result of a distributed run.
#[derive(Debug, Clone)]
pub struct DistResult {
    /// The final rank vector (identical on every worker; taken from rank 0).
    pub ranks: Vec<f64>,
    /// Communication volume of the kernel-1 shuffle.
    pub comm_k1: CommStats,
    /// Communication volume of kernel 2's degree aggregation + elimination
    /// broadcast.
    pub comm_k2: CommStats,
    /// Communication volume of kernel 3's per-iteration rank reductions.
    pub comm_k3: CommStats,
    /// Global stored entries after filtering.
    pub nnz_after: usize,
}

/// Takes a cluster-wide traffic snapshot: the leading barrier guarantees
/// every rank finished the previous phase (all its traffic is counted), the
/// trailing barrier keeps any rank from counting next-phase traffic before
/// everyone has read.
fn phase_snapshot(fabric: &Fabric) -> CommStats {
    fabric.barrier();
    let s = fabric.stats();
    fabric.barrier();
    s
}

/// Runs the four kernels on an in-process cluster of `workers` threads.
///
/// Kernel files are bypassed: this simulation targets the *communication*
/// structure (the paper's §IV parallel notes), not storage. Edges flow
/// generation → shuffle → matrix entirely in memory.
///
/// # Panics
///
/// Panics if `workers == 0` or a non-default dangling strategy is set.
pub fn run_distributed(cfg: &DistConfig) -> DistResult {
    assert!(
        cfg.pipeline.dangling == kernel3::DanglingStrategy::Omit,
        "distributed mode implements the spec's Omit dangling strategy only"
    );
    let workers = cfg.workers;
    let pcfg = &cfg.pipeline;
    let n = pcfg.spec.num_vertices();
    let m = pcfg.spec.num_edges();
    let part = Partition::new(n, workers);
    let fabric = Fabric::new(workers);
    let generator = kernel0::build_generator(pcfg);

    let per_rank = run_cluster(workers, &fabric, |rank| {
        // --- Kernel 0: generate this rank's slice of the edge stream. ----
        let chunk = m.div_ceil(workers as u64);
        let lo = (rank as u64 * chunk).min(m);
        let hi = ((rank as u64 + 1) * chunk).min(m);
        let local_raw = generator.edges_chunk(lo, hi);
        let before_k1 = phase_snapshot(&fabric);

        // --- Kernel 1: shuffle by owner of the start vertex, then local
        // sort — a distributed bucket sort. -------------------------------
        let mut outboxes: Vec<Vec<Edge>> = vec![Vec::new(); workers];
        for e in local_raw {
            // ppbench: allow(indexing, reason = "Partition::owner returns a rank < workers by construction and the outbox vec has exactly workers entries")
            outboxes[part.owner(e.u)].push(e);
        }
        let received = fabric.all_to_all(rank, outboxes);
        let mut local_edges: Vec<Edge> = received.into_iter().flatten().collect();
        radix_sort(&mut local_edges, SortKey::Start);
        let after_k1 = phase_snapshot(&fabric);

        // --- Kernel 2: local rows, global degree aggregation. -------------
        let tuples: Vec<(u64, u64)> = local_edges.iter().map(|e| (e.u, e.v)).collect();
        drop(local_edges);
        // Rows outside this rank's range are simply empty locally.
        let local_counts = Csr::<u64>::from_sorted_edges(n, &tuples);
        drop(tuples);
        // "the in-degree info will need to be aggregated"
        let din = fabric.all_reduce_sum(rank, ops::col_sums(&local_counts));
        // "and the selected vertices for elimination broadcast" — rank 0
        // decides, everyone receives (the decision is deterministic, but
        // the broadcast is what a real system pays for).
        let mask = fabric.broadcast(
            rank,
            0,
            (rank == 0).then(|| {
                let dmax = din.iter().copied().max().unwrap_or(0);
                din.iter()
                    .map(|&d| (dmax > 0 && d == dmax) || d == 1)
                    .collect::<Vec<bool>>()
            }),
        );
        let filtered = ops::zero_columns(&local_counts, &mask);
        let local_matrix = ops::normalize_rows(&filtered);
        let after_k2 = phase_snapshot(&fabric);

        // --- Kernel 3: replicated r, partial products, all-reduce. --------
        let c = pcfg.damping;
        let mut r = kernel3::init_ranks(n, pcfg.seed);
        for _ in 0..pcfg.iterations {
            let teleport = (1.0 - c) * ppbench_sparse::vector::sum(&r) / n as f64;
            // "each processor would compute its own value of r that would
            // be summed across all processors and broadcast back"
            let partial = spmv::vxm(&r, &local_matrix);
            let mut combined = fabric.all_reduce_sum(rank, partial);
            for x in combined.iter_mut() {
                *x = c * *x + teleport;
            }
            r = combined;
        }
        let after_k3 = phase_snapshot(&fabric);

        RankOutcome {
            ranks: r,
            local_nnz: local_matrix.nnz(),
            comm_k1: after_k1 - before_k1,
            comm_k2: after_k2 - after_k1,
            comm_k3: after_k3 - after_k2,
        }
    });

    // The counters are global and the snapshots barrier-aligned, so every
    // rank reports identical per-phase traffic; take rank 0's.
    let nnz_after = per_rank.iter().map(|o| o.local_nnz).sum();
    // ppbench: allow(panic, reason = "Fabric::new asserts workers > 0, so run_cluster returns at least one outcome")
    let first = per_rank.into_iter().next().expect("at least one worker");
    DistResult {
        ranks: first.ranks,
        comm_k1: first.comm_k1,
        comm_k2: first.comm_k2,
        comm_k3: first.comm_k3,
        nnz_after,
    }
}

struct RankOutcome {
    ranks: Vec<f64>,
    local_nnz: usize,
    comm_k1: CommStats,
    comm_k2: CommStats,
    comm_k3: CommStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppbench_core::{Pipeline, PipelineConfig, ValidationLevel, Variant};
    use ppbench_io::tempdir::TempDir;
    use ppbench_sparse::vector;

    fn pipeline_cfg(scale: u32) -> PipelineConfig {
        PipelineConfig::builder()
            .scale(scale)
            .edge_factor(8)
            .seed(17)
            .validation(ValidationLevel::None)
            .build()
    }

    fn serial_ranks(cfg: &PipelineConfig) -> Vec<f64> {
        let td = TempDir::new("dist-serial").unwrap();
        let mut c = cfg.clone();
        c.variant = Variant::Optimized;
        Pipeline::new(c, td.path())
            .run()
            .unwrap()
            .kernel3
            .unwrap()
            .ranks
    }

    #[test]
    fn distributed_matches_serial_for_various_cluster_sizes() {
        let cfg = pipeline_cfg(7);
        let reference = serial_ranks(&cfg);
        for workers in [1usize, 2, 3, 5, 8] {
            let out = run_distributed(&DistConfig {
                pipeline: cfg.clone(),
                workers,
            });
            let gap = vector::l1_distance(&out.ranks, &reference);
            assert!(
                gap < 1e-12,
                "{workers} workers diverge from serial by L1 {gap}"
            );
        }
    }

    #[test]
    fn single_worker_run_is_communication_free() {
        let out = run_distributed(&DistConfig {
            pipeline: pipeline_cfg(6),
            workers: 1,
        });
        assert_eq!(out.comm_k1.bytes, 0);
        assert_eq!(out.comm_k2.bytes, 0);
        assert_eq!(out.comm_k3.bytes, 0);
    }

    #[test]
    fn communication_volume_matches_first_order_model() {
        // The paper's parallel model in numbers: K1 moves ~((W−1)/W)·M
        // edges; K2 aggregates one u64 per vertex per rank plus the mask
        // broadcast; K3 reduces one f64 per vertex per rank per iteration.
        let cfg = pipeline_cfg(7);
        let workers = 4;
        let out = run_distributed(&DistConfig {
            pipeline: cfg.clone(),
            workers,
        });
        let w = workers as f64;
        let m = cfg.spec.num_edges() as f64;
        let n = cfg.spec.num_vertices() as f64;

        let k1_expected = (w - 1.0) / w * m * 16.0;
        let ratio = out.comm_k1.bytes as f64 / k1_expected;
        assert!(
            (0.8..1.2).contains(&ratio),
            "K1 bytes {} vs model {k1_expected} (ratio {ratio})",
            out.comm_k1.bytes
        );

        // K2: all-reduce = gather (W−1 vectors) + broadcast (W−1 vectors)
        // of N u64, plus the bool mask broadcast counted per-message.
        let k2_min = 2.0 * (w - 1.0) * n * 8.0;
        assert!(
            out.comm_k2.bytes as f64 >= k2_min,
            "K2 bytes {} below reduction floor {k2_min}",
            out.comm_k2.bytes
        );

        // K3: 20 iterations of the same all-reduce over f64.
        let k3_expected = 20.0 * 2.0 * (w - 1.0) * n * 8.0;
        let ratio3 = out.comm_k3.bytes as f64 / k3_expected;
        assert!(
            (0.9..1.1).contains(&ratio3),
            "K3 bytes {} vs model {k3_expected}",
            out.comm_k3.bytes
        );
    }

    #[test]
    fn measured_traffic_matches_core_model_prediction() {
        // The analytic model in `ppbench_core::model::predict_comm` and the
        // byte counters here must tell the same story.
        let cfg = pipeline_cfg(7);
        let workers = 4;
        let out = run_distributed(&DistConfig {
            pipeline: cfg.clone(),
            workers,
        });
        let pred = ppbench_core::model::predict_comm(&cfg.spec, cfg.iterations, workers);
        let close = |measured: u64, predicted: f64, slack: f64| {
            let ratio = measured as f64 / predicted;
            (1.0 - slack..=1.0 + slack).contains(&ratio)
        };
        assert!(
            close(out.comm_k1.bytes, pred.k1_shuffle, 0.2),
            "K1 {} vs {}",
            out.comm_k1.bytes,
            pred.k1_shuffle
        );
        assert!(
            close(out.comm_k2.bytes, pred.k2_aggregate, 0.2),
            "K2 {} vs {}",
            out.comm_k2.bytes,
            pred.k2_aggregate
        );
        assert!(
            close(out.comm_k3.bytes, pred.k3_reduce, 0.05),
            "K3 {} vs {}",
            out.comm_k3.bytes,
            pred.k3_reduce
        );
    }

    #[test]
    fn kernel3_dominates_traffic_as_the_paper_expects() {
        // "This is likely to be a time consuming part of this step and is
        // likely to be limited by network communication" — per-iteration
        // reductions across 20 iterations outweigh the one-shot phases at
        // benchmark shapes (k = 8 < 2×20 iterations of N·8 bytes/edge…).
        let out = run_distributed(&DistConfig {
            pipeline: pipeline_cfg(8),
            workers: 4,
        });
        assert!(
            out.comm_k3.bytes > out.comm_k2.bytes,
            "K3 {} should exceed K2 {}",
            out.comm_k3.bytes,
            out.comm_k2.bytes
        );
    }

    #[test]
    fn more_workers_more_reduction_traffic() {
        let cfg = pipeline_cfg(6);
        let small = run_distributed(&DistConfig {
            pipeline: cfg.clone(),
            workers: 2,
        });
        let large = run_distributed(&DistConfig {
            pipeline: cfg,
            workers: 8,
        });
        assert!(large.comm_k3.bytes > 3 * small.comm_k3.bytes);
    }

    #[test]
    #[should_panic(expected = "Omit dangling strategy only")]
    fn rejects_extended_dangling_strategies() {
        let mut cfg = pipeline_cfg(5);
        cfg.dangling = kernel3::DanglingStrategy::Redistribute;
        let _ = run_distributed(&DistConfig {
            pipeline: cfg,
            workers: 2,
        });
    }
}
