//! Simulated distributed-memory execution of the PageRank pipeline.
//!
//! The paper describes, for each timed kernel, how a parallel
//! implementation would decompose (§IV.B–D):
//!
//! * kernel 1: "the communication required to sort the data" dominates —
//!   a distributed sort shuffles every edge to the worker that owns its
//!   start vertex;
//! * kernel 2: "each processor hold\[s\] a set of rows … the in-degree info
//!   will need to be aggregated and the selected vertices for elimination
//!   broadcast. This part of this kernel can characterize the relevant
//!   network communication capabilities of a big-data system";
//! * kernel 3: "each processor would compute its own value of r that would
//!   be summed across all processors and broadcast back to every
//!   processor. This is … likely to be limited by network communication."
//!
//! This crate executes exactly that decomposition on an in-process
//! "cluster":
//! one OS thread per worker, a BSP-style [`fabric`] whose collectives
//! (all-to-all, all-reduce, broadcast) count every byte they move, and a
//! row-block [`partition`] of the vertex space. The result is (a) a
//! correctness check — the distributed pipeline must reproduce the serial
//! ranks — and (b) the paper's promised communication-volume measurements
//! for the parallel-computation models.

//!
//! # Example
//!
//! ```
//! use ppbench_core::{PipelineConfig, ValidationLevel};
//! use ppbench_dist::{run_distributed, DistConfig};
//!
//! let pipeline = PipelineConfig::builder()
//!     .scale(6)
//!     .edge_factor(4)
//!     .validation(ValidationLevel::None)
//!     .build();
//! let out = run_distributed(&DistConfig { pipeline, workers: 3 });
//! assert_eq!(out.ranks.len(), 64);
//! assert!(out.comm_k3.bytes > 0, "rank reductions cross rank boundaries");
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod fabric;
pub mod partition;
mod pipeline;

pub use fabric::{CommStats, Fabric};
pub use partition::Partition;
pub use pipeline::{run_distributed, DistConfig, DistResult};

#[cfg(test)]
mod tests {
    // Integration-style tests live in pipeline.rs and the workspace tests.
}
