//! A BSP communication fabric for the in-process cluster.
//!
//! Workers are OS threads; collectives are superstep-style (every rank must
//! call the same collectives in the same order, like MPI). Every byte that
//! crosses a rank boundary is counted, because the communication volume is
//! the quantity the paper's parallel-computation models need.

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

use parking_lot::Mutex;

/// Accumulated traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommStats {
    /// Payload bytes that crossed rank boundaries.
    pub bytes: u64,
    /// Number of point-to-point messages (collectives decompose into
    /// their constituent messages).
    pub messages: u64,
}

impl std::ops::Sub for CommStats {
    type Output = CommStats;
    fn sub(self, rhs: CommStats) -> CommStats {
        CommStats {
            bytes: self.bytes - rhs.bytes,
            messages: self.messages - rhs.messages,
        }
    }
}

type Slot = Mutex<Option<Box<dyn Any + Send>>>;

/// The cluster fabric: W² mailboxes plus a reusable barrier.
pub struct Fabric {
    workers: usize,
    slots: Vec<Slot>,
    barrier: Barrier,
    bytes: AtomicU64,
    messages: AtomicU64,
}

impl Fabric {
    /// Creates a fabric for `workers` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        let slots = (0..workers * workers).map(|_| Mutex::new(None)).collect();
        Self {
            workers,
            slots,
            barrier: Barrier::new(workers),
            bytes: AtomicU64::new(0),
            messages: AtomicU64::new(0),
        }
    }

    /// Number of ranks.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Traffic counted so far.
    pub fn stats(&self) -> CommStats {
        CommStats {
            bytes: self.bytes.load(Ordering::Relaxed),
            messages: self.messages.load(Ordering::Relaxed),
        }
    }

    fn slot(&self, src: usize, dst: usize) -> &Slot {
        // ppbench: allow(indexing, reason = "src and dst are rank ids handed out by run_cluster, always < workers; the grid is allocated as workers^2 in new()")
        &self.slots[src * self.workers + dst]
    }

    /// Removes and downcasts the payload deposited in mailbox
    /// `(src, dst)`. The two panics below are BSP protocol violations —
    /// a rank skipped a collective, or two ranks called different
    /// collectives — which are programming errors on par with a failed
    /// `assert!`, not runtime conditions a caller could handle.
    fn take_deposit<T: Send + 'static>(&self, src: usize, dst: usize) -> T {
        let boxed = self
            .slot(src, dst)
            .lock()
            .take()
            // ppbench: allow(panic, reason = "BSP invariant: every deposit happens before the barrier that precedes this take; absence means a rank skipped the collective")
            .expect("BSP protocol: deposit must precede the barrier");
        *boxed
            .downcast::<T>()
            // ppbench: allow(panic, reason = "BSP invariant: all ranks call the same collectives in the same order, so the deposited type always matches")
            .expect("BSP protocol: collective type mismatch across ranks")
    }

    fn count(&self, bytes: u64) {
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Superstep barrier.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// All-to-all personalized exchange: rank `rank` sends `outgoing[d]` to
    /// rank `d` and receives one `Vec<T>` from every rank (indexed by
    /// source). The local `outgoing[rank]` is delivered without being
    /// counted as traffic.
    ///
    /// # Panics
    ///
    /// Panics if `outgoing.len() != workers`.
    pub fn all_to_all<T: Send + 'static>(&self, rank: usize, outgoing: Vec<Vec<T>>) -> Vec<Vec<T>> {
        assert_eq!(outgoing.len(), self.workers, "one outbox per rank required");
        for (dst, payload) in outgoing.into_iter().enumerate() {
            if dst != rank {
                self.count((payload.len() * std::mem::size_of::<T>()) as u64);
            }
            *self.slot(rank, dst).lock() = Some(Box::new(payload));
        }
        self.barrier();
        let received: Vec<Vec<T>> = (0..self.workers)
            .map(|src| self.take_deposit::<Vec<T>>(src, rank))
            .collect();
        self.barrier();
        received
    }

    /// All-reduce (element-wise sum) of equal-length vectors, returning the
    /// identical reduced vector on every rank. Reduction happens on rank 0
    /// in ascending rank order, so the result is deterministic.
    pub fn all_reduce_sum<T>(&self, rank: usize, local: Vec<T>) -> Vec<T>
    where
        T: std::ops::AddAssign + Copy + Send + 'static,
    {
        let len = local.len();
        // Gather phase.
        if rank != 0 {
            self.count((len * std::mem::size_of::<T>()) as u64);
        }
        *self.slot(rank, rank).lock() = Some(Box::new(local));
        self.barrier();
        // Rank 0 reduces and deposits the result for everyone.
        if rank == 0 {
            // `new()` asserts workers > 0, so rank 0's own deposit exists.
            let mut result: Vec<T> = self.take_deposit(0, 0);
            for src in 1..self.workers {
                let part: Vec<T> = self.take_deposit(src, src);
                assert_eq!(result.len(), part.len(), "all-reduce length mismatch");
                for (x, y) in result.iter_mut().zip(part.iter()) {
                    *x += *y;
                }
            }
            for dst in 0..self.workers {
                if dst != 0 {
                    self.count((len * std::mem::size_of::<T>()) as u64);
                }
                *self.slot(0, dst).lock() = Some(Box::new(result.clone()));
            }
        }
        self.barrier();
        let out: Vec<T> = self.take_deposit(0, rank);
        self.barrier();
        out
    }

    /// Broadcast from `root`: the root passes `Some(value)`, everyone else
    /// `None`; all ranks return the value.
    ///
    /// # Panics
    ///
    /// Panics if the root passes `None` or a non-root passes `Some`.
    pub fn broadcast<T: Clone + Send + 'static>(
        &self,
        rank: usize,
        root: usize,
        value: Option<T>,
    ) -> T {
        assert_eq!(
            rank == root,
            value.is_some(),
            "exactly the root supplies the value"
        );
        if let Some(v) = value {
            for dst in 0..self.workers {
                if dst != root {
                    self.count(std::mem::size_of::<T>() as u64);
                }
                *self.slot(root, dst).lock() = Some(Box::new(v.clone()));
            }
        }
        self.barrier();
        let out: T = self.take_deposit(root, rank);
        self.barrier();
        out
    }
}

/// Runs `body(rank, fabric)` on `workers` scoped threads and returns the
/// per-rank results in rank order.
pub fn run_cluster<R: Send>(
    workers: usize,
    fabric: &Fabric,
    body: impl Fn(usize) -> R + Sync,
) -> Vec<R> {
    assert_eq!(fabric.workers(), workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|rank| {
                scope.spawn({
                    let body = &body;
                    move || body(rank)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(result) => result,
                // Re-raise a worker panic on the coordinating thread;
                // swallowing it would hand back partial results as real.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_to_all_routes_payloads() {
        let w = 4;
        let fabric = Fabric::new(w);
        let results = run_cluster(w, &fabric, |rank| {
            // Rank r sends the value 10*r + d to destination d.
            let outgoing: Vec<Vec<u64>> = (0..w).map(|d| vec![(10 * rank + d) as u64]).collect();
            fabric.all_to_all(rank, outgoing)
        });
        for (rank, received) in results.iter().enumerate() {
            for (src, payload) in received.iter().enumerate() {
                assert_eq!(payload, &vec![(10 * src + rank) as u64]);
            }
        }
    }

    #[test]
    fn all_to_all_counts_offrank_bytes_only() {
        let w = 3;
        let fabric = Fabric::new(w);
        run_cluster(w, &fabric, |rank| {
            let outgoing: Vec<Vec<u64>> = (0..w).map(|_| vec![0u64; 10]).collect();
            fabric.all_to_all(rank, outgoing)
        });
        // Each rank sends 10 u64 to 2 remote ranks: 3 * 2 * 80 bytes.
        assert_eq!(fabric.stats().bytes, 3 * 2 * 80);
    }

    #[test]
    fn all_reduce_sums_across_ranks() {
        let w = 5;
        let fabric = Fabric::new(w);
        let results = run_cluster(w, &fabric, |rank| {
            fabric.all_reduce_sum(rank, vec![rank as u64, 1u64])
        });
        for r in &results {
            assert_eq!(r, &vec![1 + 2 + 3 + 4, 5]);
        }
    }

    #[test]
    fn all_reduce_f64_is_deterministic() {
        let w = 4;
        let run = || {
            let fabric = Fabric::new(w);
            run_cluster(w, &fabric, |rank| {
                fabric.all_reduce_sum(rank, vec![0.1 * (rank as f64 + 1.0); 8])
            })
        };
        let a = run();
        let b = run();
        for (x, y) in a.iter().flatten().zip(b.iter().flatten()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn broadcast_delivers_to_all() {
        let w = 4;
        let fabric = Fabric::new(w);
        let results = run_cluster(w, &fabric, |rank| {
            let value = if rank == 2 {
                Some(vec![7u8, 8, 9])
            } else {
                None
            };
            fabric.broadcast(rank, 2, value)
        });
        assert!(results.iter().all(|r| r == &vec![7, 8, 9]));
    }

    #[test]
    fn collectives_compose_in_sequence() {
        let w = 3;
        let fabric = Fabric::new(w);
        let results = run_cluster(w, &fabric, |rank| {
            let sums = fabric.all_reduce_sum(rank, vec![rank as u64]);
            let shuffled =
                fabric.all_to_all(rank, (0..w).map(|d| vec![sums[0] + d as u64]).collect());

            fabric.broadcast(rank, 0, (rank == 0).then_some(shuffled.len()))
        });
        assert!(results.iter().all(|&r| r == w));
    }

    #[test]
    fn single_worker_cluster_is_free() {
        let fabric = Fabric::new(1);
        let results = run_cluster(1, &fabric, |rank| {
            let r = fabric.all_reduce_sum(rank, vec![42.0]);
            let a = fabric.all_to_all(rank, vec![vec![1u8]]);
            (r[0], a[0][0])
        });
        assert_eq!(results[0], (42.0, 1));
        assert_eq!(
            fabric.stats().bytes,
            0,
            "no off-rank traffic with one worker"
        );
    }
}
