//! Property-based tests for the BSP fabric and partitioning.

use ppbench_dist::{fabric::run_cluster, Fabric, Partition};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Partitions tile the vertex space for arbitrary (n, workers).
    #[test]
    fn partition_tiles(n in 0u64..10_000, workers in 1usize..32) {
        let p = Partition::new(n, workers);
        let mut covered = 0u64;
        let mut next_start = 0u64;
        for w in 0..workers {
            let r = p.range(w);
            prop_assert_eq!(r.start, next_start);
            next_start = r.end;
            covered += r.end - r.start;
        }
        prop_assert_eq!(covered, n);
        for v in (0..n).step_by((n as usize / 64).max(1)) {
            prop_assert!(p.range(p.owner(v)).contains(&v));
        }
    }

    /// All-to-all delivers every payload to the right rank, for arbitrary
    /// cluster sizes and payload shapes.
    #[test]
    fn all_to_all_delivers(
        workers in 1usize..8,
        lens in proptest::collection::vec(0usize..20, 1..8),
    ) {
        let fabric = Fabric::new(workers);
        let lens = std::sync::Arc::new(lens);
        let results = run_cluster(workers, &fabric, |rank| {
            let outgoing: Vec<Vec<u64>> = (0..workers)
                .map(|d| {
                    let len = lens[(rank + d) % lens.len()];
                    (0..len as u64).map(|i| (rank * 1000 + d * 100) as u64 + i).collect()
                })
                .collect();
            let expected_lens: Vec<usize> =
                (0..workers).map(|src| lens[(src + rank) % lens.len()]).collect();
            let received = fabric.all_to_all(rank, outgoing);
            (rank, expected_lens, received)
        });
        for (rank, expected_lens, received) in results {
            prop_assert_eq!(received.len(), workers);
            for (src, payload) in received.iter().enumerate() {
                prop_assert_eq!(payload.len(), expected_lens[src]);
                for (i, &x) in payload.iter().enumerate() {
                    prop_assert_eq!(x, (src * 1000 + rank * 100) as u64 + i as u64);
                }
            }
        }
    }

    /// All-reduce equals the serial sum for arbitrary vectors, on every
    /// rank, and the traffic matches the gather+broadcast model exactly.
    #[test]
    fn all_reduce_sums_and_counts(
        workers in 1usize..8,
        len in 0usize..64,
        seed: u64,
    ) {
        let fabric = Fabric::new(workers);
        let mk = |rank: usize| -> Vec<u64> {
            (0..len)
                .map(|i| (seed.wrapping_mul(rank as u64 + 1).wrapping_add(i as u64)) % 1000)
                .collect()
        };
        let results = run_cluster(workers, &fabric, |rank| {
            fabric.all_reduce_sum(rank, mk(rank))
        });
        let mut expect = vec![0u64; len];
        for rank in 0..workers {
            for (e, x) in expect.iter_mut().zip(mk(rank)) {
                *e += x;
            }
        }
        for r in &results {
            prop_assert_eq!(r, &expect);
        }
        let bytes = fabric.stats().bytes;
        prop_assert_eq!(bytes, 2 * (workers as u64 - 1) * len as u64 * 8);
    }

    /// Broadcast reaches every rank from any root.
    #[test]
    fn broadcast_from_any_root(workers in 1usize..8, root_pick: usize, payload: u32) {
        let root = root_pick % workers;
        let fabric = Fabric::new(workers);
        let results = run_cluster(workers, &fabric, |rank| {
            fabric.broadcast(rank, root, (rank == root).then_some(payload))
        });
        prop_assert!(results.iter().all(|&r| r == payload));
    }
}
