//! Triangle counting — ordered-neighborhood intersection.
//!
//! Triangles are counted on the undirected, loop-free view of the graph.
//! The optimized kernel uses the standard degree-ordering trick: orient
//! every undirected edge from lower to higher `(degree, id)` rank, so
//! each triangle is counted exactly once at its lowest-rank corner and
//! the oriented neighbor lists stay short even at power-law hubs; the
//! count for a vertex is the sum of sorted-list intersections between its
//! oriented list and those of its oriented neighbors. Vertex chunks run
//! in parallel and their `u64` partial counts add associatively, so the
//! result is exact and chunking-independent.
//!
//! The serial oracle deliberately uses a *different* method (per-edge
//! common-neighbor intersection over the full undirected lists, summed
//! and divided by 3) so the two implementations cross-check each other's
//! construction, not just each other's arithmetic.

use rayon::prelude::*;

use crate::graph::{Graph, UndirectedCsr};

/// Serial oracle: for every undirected edge `{u, w}` with `u < w`, count
/// the common neighbors of `u` and `w`; every triangle is counted at
/// each of its three edges, so the total divides by 3.
pub fn tc_serial(g: &Graph) -> u64 {
    let und = g.undirected();
    let n = und.num_vertices();
    let mut total = 0u64;
    for u in 0..n {
        for &w in und.neighbors(u) {
            let w = w as usize;
            if w <= u {
                continue;
            }
            total += intersection_count(und.neighbors(u), und.neighbors(w));
        }
    }
    total / 3
}

/// Optimized ordered-neighborhood count, decomposed into `chunks`
/// parallel pieces.
pub fn tc(g: &Graph, chunks: usize) -> u64 {
    let und = g.undirected();
    let n = und.num_vertices();
    if n == 0 {
        return 0;
    }
    // Rank vertices by (degree, id); orient edges toward higher rank.
    // `rank[v]` compares as degree-major because degree occupies the
    // high bits.
    let rank: Vec<u64> = (0..n)
        .map(|v| ((und.degree(v) as u64) << 32) | v as u64)
        .collect();
    let mut dag_ptr = Vec::with_capacity(n + 1);
    dag_ptr.push(0usize);
    let mut dag_adj = Vec::new();
    for v in 0..n {
        for &w in und.neighbors(v) {
            if rank[w as usize] > rank[v] {
                dag_adj.push(w);
            }
        }
        dag_ptr.push(dag_adj.len());
    }
    let dag = UndirectedCsr {
        ptr: dag_ptr,
        adj: dag_adj,
    };
    let chunks = chunks.max(1);
    let per = n.div_ceil(chunks);
    let ranges: Vec<(usize, usize)> = (0..chunks)
        .map(|c| ((c * per).min(n), ((c + 1) * per).min(n)))
        .collect();
    ranges
        .into_par_iter()
        .map(|(lo, hi)| {
            let mut local = 0u64;
            for v in lo..hi {
                let fwd = dag.neighbors(v);
                for &w in fwd {
                    local += intersection_count(fwd, dag.neighbors(w as usize));
                }
            }
            local
        })
        .collect::<Vec<u64>>()
        .into_iter()
        .sum()
}

/// Size of the intersection of two ascending-sorted lists.
fn intersection_count(a: &[u32], b: &[u32]) -> u64 {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::{random_graph, tiny_graphs};

    #[test]
    fn counts_a_single_triangle() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        assert_eq!(tc_serial(&g), 1);
        assert_eq!(tc(&g, 1), 1);
        assert_eq!(tc(&g, 4), 1);
    }

    #[test]
    fn direction_and_duplicates_do_not_matter() {
        // Same triangle with both directions and a repeated edge.
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 0), (0, 2)]).unwrap();
        assert_eq!(tc_serial(&g), 1);
        assert_eq!(tc(&g, 2), 1);
    }

    #[test]
    fn complete_graph_k5_has_ten_triangles() {
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in 0..5u32 {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        let g = Graph::from_edges(5, &edges).unwrap();
        assert_eq!(tc_serial(&g), 10);
        for chunks in [1usize, 2, 8] {
            assert_eq!(tc(&g, chunks), 10);
        }
    }

    #[test]
    fn triangle_free_graphs_count_zero() {
        for (name, g) in tiny_graphs() {
            let want = tc_serial(&g);
            for chunks in [1usize, 2, 8] {
                assert_eq!(tc(&g, chunks), want, "{name} x{chunks}");
            }
        }
        let star = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        assert_eq!(tc(&star, 2), 0);
    }

    #[test]
    fn optimized_matches_oracle_on_a_random_graph() {
        let g = random_graph(200, 4000, 23);
        let want = tc_serial(&g);
        assert!(want > 0, "dense random graph should have triangles");
        for chunks in [1usize, 3, 8] {
            assert_eq!(tc(&g, chunks), want, "x{chunks}");
        }
    }
}
