//! Connected components — label propagation with pointer-jumping
//! shortcuts (Shiloach–Vishkin / Afforest style).
//!
//! Components are taken over the *undirected* view of the pipeline graph
//! (edge direction encodes link structure, not reachability of a
//! component). Labels converge to the minimum vertex id in each
//! component, which makes the output canonical: any correct algorithm
//! must produce the identical vector, so the optimized kernel is
//! bit-comparable against the serial oracle and against itself across
//! thread counts.
//!
//! The optimized kernel alternates two double-buffered passes until a
//! fixed point:
//!
//! * **hook** — `next[v] = min(comp[v], min over undirected neighbors
//!   comp[u])`, chunk-parallel with per-chunk outputs concatenated in
//!   order (a Jacobi step: every read comes from the previous snapshot,
//!   so there are no write races and no ordering dependence);
//! * **shortcut** — pointer jumping `next[v] = comp[comp[v]]` repeated
//!   until stable, which collapses label chains in `O(log n)` rounds
//!   instead of diameter-many.

use rayon::prelude::*;

use crate::graph::{Graph, UndirectedCsr};

/// Serial oracle: BFS from every unvisited vertex in ascending id order
/// over the undirected adjacency; each traversal's root is, by
/// construction, its component's minimum id.
pub fn cc_serial(g: &Graph) -> Vec<u32> {
    let und = g.undirected();
    let n = und.num_vertices();
    let mut comp = vec![u32::MAX; n];
    let mut queue = Vec::new();
    for root in 0..n {
        if comp[root] != u32::MAX {
            continue;
        }
        comp[root] = root as u32;
        queue.push(root as u32);
        while let Some(v) = queue.pop() {
            for &w in und.neighbors(v as usize) {
                if comp[w as usize] == u32::MAX {
                    comp[w as usize] = root as u32;
                    queue.push(w);
                }
            }
        }
    }
    comp
}

/// Optimized label propagation with shortcutting, decomposed into
/// `chunks` parallel pieces per pass.
pub fn cc(g: &Graph, chunks: usize) -> Vec<u32> {
    let und = g.undirected();
    let n = und.num_vertices();
    let mut comp: Vec<u32> = (0..n as u32).collect();
    if n == 0 {
        return comp;
    }
    let chunks = chunks.max(1);
    loop {
        let (next, changed) = hook_pass(&und, &comp, chunks);
        comp = next;
        shortcut(&mut comp, chunks);
        if !changed {
            return comp;
        }
    }
}

/// One Jacobi hook pass: every vertex takes the minimum label over its
/// closed undirected neighborhood, reading only the previous snapshot.
fn hook_pass(und: &UndirectedCsr, comp: &[u32], chunks: usize) -> (Vec<u32>, bool) {
    let n = comp.len();
    let per = n.div_ceil(chunks);
    let ranges: Vec<(usize, usize)> = (0..chunks)
        .map(|c| ((c * per).min(n), ((c + 1) * per).min(n)))
        .collect();
    let pieces: Vec<(Vec<u32>, bool)> = ranges
        .into_par_iter()
        .map(|(lo, hi)| {
            let mut out = Vec::with_capacity(hi - lo);
            let mut changed = false;
            for v in lo..hi {
                let mut label = comp[v];
                for &u in und.neighbors(v) {
                    label = label.min(comp[u as usize]);
                }
                changed |= label != comp[v];
                out.push(label);
            }
            (out, changed)
        })
        .collect();
    let mut next = Vec::with_capacity(n);
    let mut changed = false;
    for (piece, piece_changed) in pieces {
        next.extend_from_slice(&piece);
        changed |= piece_changed;
    }
    (next, changed)
}

/// Pointer jumping to a fixed point: `comp[v] <- comp[comp[v]]` until no
/// label moves. Labels only decrease (every vertex hooked to a label
/// `<=` its own), so this terminates.
fn shortcut(comp: &mut Vec<u32>, chunks: usize) {
    let n = comp.len();
    let per = n.div_ceil(chunks);
    loop {
        let ranges: Vec<(usize, usize)> = (0..chunks)
            .map(|c| ((c * per).min(n), ((c + 1) * per).min(n)))
            .collect();
        let snapshot: &[u32] = comp;
        let pieces: Vec<(Vec<u32>, bool)> = ranges
            .into_par_iter()
            .map(|(lo, hi)| {
                let mut out = Vec::with_capacity(hi - lo);
                let mut changed = false;
                for v in lo..hi {
                    let jumped = snapshot[snapshot[v] as usize];
                    changed |= jumped != snapshot[v];
                    out.push(jumped);
                }
                (out, changed)
            })
            .collect();
        let mut changed = false;
        let mut next = Vec::with_capacity(n);
        for (piece, piece_changed) in pieces {
            next.extend_from_slice(&piece);
            changed |= piece_changed;
        }
        *comp = next;
        if !changed {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::{random_graph, tiny_graphs};

    #[test]
    fn oracle_labels_are_component_minima() {
        // Two components: {0,1,2} (via direction-ignoring edges) and {3,4}.
        let g = Graph::from_edges(5, &[(1, 0), (2, 1), (4, 3)]).unwrap();
        assert_eq!(cc_serial(&g), vec![0, 0, 0, 3, 3]);
    }

    #[test]
    fn optimized_matches_oracle_on_tiny_graphs() {
        for (name, g) in tiny_graphs() {
            let want = cc_serial(&g);
            for chunks in [1usize, 2, 8] {
                assert_eq!(cc(&g, chunks), want, "{name} x{chunks}");
            }
        }
    }

    #[test]
    fn optimized_matches_oracle_on_a_random_graph() {
        // Sparse enough to leave many components.
        let g = random_graph(500, 400, 7);
        let want = cc_serial(&g);
        for chunks in [1usize, 3, 8] {
            assert_eq!(cc(&g, chunks), want, "x{chunks}");
        }
    }

    #[test]
    fn long_path_exercises_shortcutting() {
        let n = 2000u32;
        let edges: Vec<(u32, u32)> = (1..n).map(|v| (v, v - 1)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        let got = cc(&g, 4);
        assert!(got.iter().all(|&c| c == 0));
        assert_eq!(got, cc_serial(&g));
    }

    #[test]
    fn isolated_vertices_keep_their_own_label() {
        let g = Graph::from_edges(3, &[]).unwrap();
        assert_eq!(cc(&g, 2), vec![0, 1, 2]);
    }
}
