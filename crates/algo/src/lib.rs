//! GAP-style graph-analytics workloads for the PageRank Pipeline
//! Benchmark.
//!
//! The paper's thesis is that the *pipeline* is the unit of measurement —
//! but a pipeline that can only answer PageRank measures one data-access
//! pattern. This crate adds the four kernels the GAP Benchmark Suite
//! (Beamer, Asanović, Patterson) uses to span the space, each running on
//! the pattern of the kernel-2 matrix:
//!
//! | Workload | Optimized kernel | Serial oracle |
//! |---|---|---|
//! | [`bfs`] | direction-optimizing (push/pull) traversal | queue level-order |
//! | [`cc`] | label propagation + pointer-jump shortcuts | BFS labeling |
//! | [`sssp`] | delta-stepping over derived integer weights | binary-heap Dijkstra |
//! | [`tc`] | degree-ordered neighborhood intersection | per-edge common neighbors |
//!
//! Every kernel is **bit-deterministic**: outputs are depth/label/
//! distance vectors or exact counts whose values are invariant under
//! traversal, relaxation, and chunk order, so optimized and oracle
//! implementations compare with `==` at any thread count. Parallelism
//! follows the workspace's safe-chunking idiom — disjoint `split_at_mut`
//! ranges or per-chunk outputs concatenated in chunk order — with no
//! atomics and no `unsafe`.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod bfs;
pub mod cc;
pub mod graph;
pub mod sssp;
pub mod tc;

pub use graph::Graph;

use ppbench_prng::SplitMix64;

/// Depth sentinel for vertices BFS cannot reach.
pub const UNREACHED: u32 = u32::MAX;

/// Distance sentinel for vertices SSSP cannot reach.
pub const UNREACHED_DIST: u64 = u64::MAX;

/// Domain-separation constant for source-vertex selection (b"SRCPICKR").
const SOURCE_SALT: u64 = 0x5352_4350_4943_4b52;

/// Picks a deterministic traversal source for BFS/SSSP: up to 64 seeded
/// draws looking for a vertex with outgoing edges (GAP likewise requires
/// sources of nonzero degree), falling back to the first such vertex,
/// then to vertex 0.
pub fn pick_source(g: &Graph, seed: u64) -> u32 {
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    for attempt in 0..64u64 {
        let v = (SplitMix64::mix(seed ^ SOURCE_SALT ^ attempt) % n as u64) as u32;
        if g.out_degree(v as usize) > 0 {
            return v;
        }
    }
    (0..n)
        .find(|&v| g.out_degree(v) > 0)
        .map(|v| v as u32)
        .unwrap_or(0)
}

/// FNV-1a over the little-endian bytes of `values` — the output
/// fingerprint the pipeline records and the benches compare.
pub fn checksum_u64s(values: &[u64]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Splits `data` into per-chunk mutable slices according to `boundaries`
/// (ascending, starting at 0, ending at `data.len()`), pairing each with
/// its starting index — the same safe disjoint-write decomposition the
/// sparse SpMV kernels use.
pub(crate) fn chunk_slices<'a, T>(
    data: &'a mut [T],
    boundaries: &[usize],
) -> Vec<(&'a mut [T], usize)> {
    assert!(boundaries.len() >= 2, "need at least one chunk");
    assert_eq!(boundaries[0], 0, "boundaries must start at 0");
    assert_eq!(
        boundaries[boundaries.len() - 1],
        data.len(),
        "boundaries must end at data.len()"
    );
    let mut parts = Vec::with_capacity(boundaries.len() - 1);
    let mut rest = data;
    let mut offset = 0usize;
    for pair in boundaries.windows(2) {
        let (head, tail) = rest.split_at_mut(pair[1] - pair[0]);
        parts.push((head, offset));
        offset = pair[1];
        rest = tail;
    }
    parts
}

#[cfg(test)]
pub(crate) mod tests_support {
    //! Shared graph fixtures for the per-kernel oracle tests.

    use ppbench_prng::{Rng64, SeedableRng64, Xoshiro256pp};

    use crate::graph::Graph;

    /// The ISSUE's hand-built tiny graphs: empty, single self-loop,
    /// disconnected components, star/hub, and path.
    pub(crate) fn tiny_graphs() -> Vec<(&'static str, Graph)> {
        vec![
            ("empty", Graph::from_edges(0, &[]).unwrap()),
            ("isolated", Graph::from_edges(4, &[]).unwrap()),
            ("self-loop", Graph::from_edges(1, &[(0, 0)]).unwrap()),
            (
                "disconnected",
                Graph::from_edges(6, &[(0, 1), (1, 0), (3, 4), (4, 5)]).unwrap(),
            ),
            (
                "star",
                Graph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (3, 0)]).unwrap(),
            ),
            (
                "path",
                Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap(),
            ),
        ]
    }

    /// Seeded uniform random multigraph (duplicates collapse in the
    /// constructor).
    pub(crate) fn random_graph(n: u32, edges: usize, seed: u64) -> Graph {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let list: Vec<(u32, u32)> = (0..edges)
            .map(|_| {
                (
                    (rng.next_u64() % u64::from(n)) as u32,
                    (rng.next_u64() % u64::from(n)) as u32,
                )
            })
            .collect();
        Graph::from_edges(n, &list).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_distinguishes_values_and_order() {
        assert_ne!(checksum_u64s(&[1, 2]), checksum_u64s(&[2, 1]));
        assert_ne!(checksum_u64s(&[1]), checksum_u64s(&[1, 0]));
        assert_eq!(checksum_u64s(&[7, 8]), checksum_u64s(&[7, 8]));
    }

    #[test]
    fn chunk_slices_cover_disjointly() {
        let mut data = [0u32; 10];
        let parts = chunk_slices(&mut data, &[0, 3, 3, 10]);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].1, 0);
        assert_eq!(parts[0].0.len(), 3);
        assert_eq!(parts[1].0.len(), 0);
        assert_eq!(parts[2].1, 3);
        assert_eq!(parts[2].0.len(), 7);
    }

    #[test]
    fn source_pick_prefers_out_degree() {
        let g = Graph::from_edges(8, &[(3, 4)]).unwrap();
        for seed in 0..20u64 {
            assert_eq!(pick_source(&g, seed), 3, "only vertex 3 has out-edges");
        }
        let empty = Graph::from_edges(4, &[]).unwrap();
        assert_eq!(pick_source(&empty, 1), 0, "degenerate fallback");
        let none = Graph::from_edges(0, &[]).unwrap();
        assert_eq!(pick_source(&none, 1), 0);
    }
}
