//! Breadth-first search — direction-optimizing (push/pull) traversal.
//!
//! The optimized kernel implements the Beamer/GAP direction switch: while
//! the frontier is small it *pushes* (top-down — each frontier vertex
//! scans its out-neighbors); once the frontier's outgoing edge count
//! crosses `m / ALPHA` it *pulls* (bottom-up — every unreached vertex
//! scans its in-neighbors for a frontier member and stops at the first
//! hit), switching back when the frontier shrinks below `n / BETA`. On
//! power-law graphs the pull phases skip the bulk of the edge
//! examinations, which is where the speedup over the serial oracle comes
//! from even before parallelism.
//!
//! Both implementations return the depth vector (`UNREACHED` for
//! vertices the source cannot reach). Depths are invariant under
//! traversal and chunk order, so the result is bit-identical across
//! thread counts and chunkings — the property the pipeline's determinism
//! contract needs.

use std::collections::VecDeque;

use ppbench_sparse::spmv::balanced_boundaries;
use ppbench_sparse::BitSet;
use rayon::prelude::*;

use crate::graph::Graph;
use crate::{chunk_slices, UNREACHED};

/// Push→pull switch: pull once the frontier's out-edges exceed `m / ALPHA`.
const ALPHA: usize = 15;
/// Pull→push switch: push again once the frontier holds fewer than
/// `n / BETA` vertices.
const BETA: usize = 18;
/// Below this frontier size the chunked push step runs serially — the
/// fan-out bookkeeping costs more than it saves.
const PAR_PUSH_MIN: usize = 1 << 10;

/// Serial oracle: textbook queue-based level-order traversal over
/// out-neighbors.
pub fn bfs_serial(g: &Graph, src: u32) -> Vec<u32> {
    let n = g.num_vertices();
    let mut depth = vec![UNREACHED; n];
    if n == 0 {
        return depth;
    }
    depth[src as usize] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let d = depth[v as usize] + 1;
        for &w in g.out_neighbors(v as usize) {
            if depth[w as usize] == UNREACHED {
                depth[w as usize] = d;
                queue.push_back(w);
            }
        }
    }
    depth
}

/// Direction-optimizing BFS, decomposed into `chunks` pieces of work per
/// level (pull levels write disjoint nnz-balanced depth ranges; push
/// levels fan candidate generation out and commit serially).
pub fn bfs(g: &Graph, src: u32, chunks: usize) -> Vec<u32> {
    let n = g.num_vertices();
    let m = g.num_edges();
    let mut depth = vec![UNREACHED; n];
    if n == 0 {
        return depth;
    }
    let chunks = chunks.max(1);
    let pull_bounds = balanced_boundaries(g.in_ptr(), chunks);
    depth[src as usize] = 0;
    let mut frontier = vec![src];
    let mut frontier_edges = g.out_degree(src as usize);
    let mut pulling = false;
    let mut level = 1u32;
    let mut bitmap = BitSet::new(n);
    while !frontier.is_empty() {
        if !pulling && frontier_edges > m / ALPHA {
            pulling = true;
        } else if pulling && frontier.len() < n / BETA.max(1) {
            pulling = false;
        }
        frontier = if pulling {
            bitmap.clear();
            for &v in &frontier {
                bitmap.set(v as usize);
            }
            pull_step(g, &mut depth, &bitmap, &pull_bounds, level)
        } else {
            push_step(g, &mut depth, &frontier, level, chunks)
        };
        frontier_edges = frontier.iter().map(|&v| g.out_degree(v as usize)).sum();
        level += 1;
    }
    depth
}

/// One top-down level: frontier vertices push to unreached out-neighbors.
/// Candidate generation is chunk-parallel over the frontier; the commit
/// (first writer wins) is serial, so the depth array never races.
fn push_step(
    g: &Graph,
    depth: &mut [u32],
    frontier: &[u32],
    level: u32,
    chunks: usize,
) -> Vec<u32> {
    let candidates: Vec<Vec<u32>> = if chunks > 1 && frontier.len() >= PAR_PUSH_MIN {
        let per = frontier.len().div_ceil(chunks);
        let pieces: Vec<&[u32]> = frontier.chunks(per).collect();
        let depth_ro: &[u32] = depth;
        pieces
            .into_par_iter()
            .map(|piece| {
                let mut local = Vec::new();
                for &v in piece {
                    for &w in g.out_neighbors(v as usize) {
                        if depth_ro[w as usize] == UNREACHED {
                            local.push(w);
                        }
                    }
                }
                local
            })
            .collect()
    } else {
        let mut local = Vec::new();
        for &v in frontier {
            for &w in g.out_neighbors(v as usize) {
                if depth[w as usize] == UNREACHED {
                    local.push(w);
                }
            }
        }
        vec![local]
    };
    let mut next = Vec::new();
    for cand in candidates.into_iter().flatten() {
        if depth[cand as usize] == UNREACHED {
            depth[cand as usize] = level;
            next.push(cand);
        }
    }
    next
}

/// One bottom-up level: each unreached vertex pulls from its in-neighbors
/// and joins the next frontier if any of them is in the current one. The
/// depth array is split into disjoint nnz-balanced ranges, so every chunk
/// writes only its own vertices; per-chunk next-frontier lists concatenate
/// in chunk order, keeping the frontier sorted ascending.
fn pull_step(
    g: &Graph,
    depth: &mut [u32],
    frontier: &BitSet,
    boundaries: &[usize],
    level: u32,
) -> Vec<u32> {
    let per_chunk: Vec<Vec<u32>> = chunk_slices(depth, boundaries)
        .into_par_iter()
        .map(|(slice, lo)| {
            let mut local = Vec::new();
            for (i, d) in slice.iter_mut().enumerate() {
                if *d != UNREACHED {
                    continue;
                }
                let v = lo + i;
                if g.in_neighbors(v).iter().any(|&u| frontier.get(u as usize)) {
                    *d = level;
                    local.push(v as u32);
                }
            }
            local
        })
        .collect();
    per_chunk.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::tiny_graphs;

    #[test]
    fn oracle_on_a_path() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(bfs_serial(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs_serial(&g, 3), vec![UNREACHED, UNREACHED, UNREACHED, 0]);
    }

    #[test]
    fn oracle_respects_direction() {
        let g = Graph::from_edges(3, &[(0, 1), (2, 1)]).unwrap();
        assert_eq!(bfs_serial(&g, 0), vec![0, 1, UNREACHED]);
    }

    #[test]
    fn optimized_matches_oracle_on_tiny_graphs() {
        for (name, g) in tiny_graphs() {
            let n = g.num_vertices() as u32;
            for src in 0..n.min(4) {
                let want = bfs_serial(&g, src);
                for chunks in [1usize, 2, 8] {
                    assert_eq!(bfs(&g, src, chunks), want, "{name} src {src} x{chunks}");
                }
            }
        }
    }

    #[test]
    fn optimized_matches_oracle_on_a_random_graph() {
        let g = crate::tests_support::random_graph(300, 2400, 42);
        for src in [0u32, 7, 123] {
            let want = bfs_serial(&g, src);
            for chunks in [1usize, 3, 8] {
                assert_eq!(bfs(&g, src, chunks), want, "src {src} x{chunks}");
            }
        }
    }

    #[test]
    fn pull_phase_engages_on_dense_star() {
        // Hub fanning out to everyone: level 1 has n-1 frontier edges on
        // the way in, forcing at least one pull step at realistic sizes.
        let n = 4096u32;
        let edges: Vec<(u32, u32)> = (1..n).flat_map(|v| [(0, v), (v, 0)]).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        let want = bfs_serial(&g, 0);
        for chunks in [1usize, 2, 8] {
            assert_eq!(bfs(&g, 0, chunks), want);
        }
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert!(bfs(&g, 0, 4).is_empty());
        assert!(bfs_serial(&g, 0).is_empty());
    }
}
