//! Single-source shortest paths — delta-stepping over deterministic
//! integer edge weights.
//!
//! The pipeline's edge files carry no weights, so the workload derives
//! them: `weight(u, v)` is a pure function of the endpoints and the
//! master seed through `SplitMix64`, uniform in `1..=MAX_WEIGHT`. Using
//! *integers* sidesteps floating-point reassociation entirely — shortest
//! distances are unique whatever the relaxation order, so the optimized
//! kernel is bit-identical to the Dijkstra oracle at any chunking.
//!
//! The optimized kernel is Meyer/Sanders delta-stepping: vertices are
//! bucketed by `dist / DELTA`; each bucket settles light edges
//! (`weight <= DELTA`) to a fixed point before relaxing heavy edges once.
//! Candidate generation fans out chunk-parallel over the bucket; commits
//! (`min` into the distance array) are serial, so the array never races.

use ppbench_prng::SplitMix64;
use rayon::prelude::*;

use crate::graph::Graph;
use crate::UNREACHED_DIST;

/// Largest derivable edge weight; weights are uniform in `1..=MAX_WEIGHT`.
pub const MAX_WEIGHT: u64 = 255;

/// Bucket width. Roughly `MAX_WEIGHT` divided by the expected degree of
/// the paper's default graphs, rounded to a power of two.
pub const DELTA: u64 = 16;

/// Domain-separation constant mixed into the weight seed (b"SSSPWGHT").
const WEIGHT_SALT: u64 = 0x5353_5350_5747_4854;

/// The deterministic weight of edge `(u, v)`: a pure `SplitMix64` hash of
/// the endpoints and the master seed, mapped into `1..=MAX_WEIGHT`.
#[inline]
pub fn edge_weight(u: u32, v: u32, seed: u64) -> u64 {
    let packed = (u64::from(u) << 32) | u64::from(v);
    SplitMix64::mix(seed ^ WEIGHT_SALT ^ packed) % MAX_WEIGHT + 1
}

/// Serial oracle: binary-heap Dijkstra over the derived weights.
pub fn sssp_serial(g: &Graph, src: u32, seed: u64) -> Vec<u64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = g.num_vertices();
    let mut dist = vec![UNREACHED_DIST; n];
    if n == 0 {
        return dist;
    }
    dist[src as usize] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u64, src)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue; // stale entry
        }
        for &w in g.out_neighbors(v as usize) {
            let nd = d + edge_weight(v, w, seed);
            if nd < dist[w as usize] {
                dist[w as usize] = nd;
                heap.push(Reverse((nd, w)));
            }
        }
    }
    dist
}

/// Optimized delta-stepping, with candidate generation decomposed into
/// `chunks` parallel pieces per relaxation round.
pub fn sssp(g: &Graph, src: u32, seed: u64, chunks: usize) -> Vec<u64> {
    let n = g.num_vertices();
    let mut dist = vec![UNREACHED_DIST; n];
    if n == 0 {
        return dist;
    }
    let chunks = chunks.max(1);
    dist[src as usize] = 0;
    let mut buckets: Vec<Vec<u32>> = vec![vec![src]];
    let mut i = 0usize;
    while i < buckets.len() {
        // Settle the light edges of bucket i to a fixed point. A light
        // relaxation can reinsert into bucket i, hence the inner loop.
        let mut settled: Vec<u32> = Vec::new();
        while !buckets[i].is_empty() {
            let batch = std::mem::take(&mut buckets[i]);
            // Skip vertices already pulled into an earlier bucket.
            let active: Vec<u32> = batch
                .into_iter()
                .filter(|&v| dist[v as usize] / DELTA == i as u64)
                .collect();
            if active.is_empty() {
                break;
            }
            let light = relax_candidates(g, &dist, &active, seed, chunks, true);
            commit(&mut dist, &mut buckets, light);
            settled.extend_from_slice(&active);
        }
        // Heavy edges of everything settled in this bucket, exactly once.
        if !settled.is_empty() {
            let heavy = relax_candidates(g, &dist, &settled, seed, chunks, false);
            commit(&mut dist, &mut buckets, heavy);
        }
        i += 1;
    }
    dist
}

/// Generates `(target, tentative_distance)` candidates for one relaxation
/// round: light edges (`weight <= DELTA`) when `light`, heavy otherwise.
/// Chunk-parallel over `sources`; per-chunk outputs concatenate in order.
fn relax_candidates(
    g: &Graph,
    dist: &[u64],
    sources: &[u32],
    seed: u64,
    chunks: usize,
    light: bool,
) -> Vec<(u32, u64)> {
    let per = sources.len().div_ceil(chunks);
    let pieces: Vec<&[u32]> = sources.chunks(per.max(1)).collect();
    let per_chunk: Vec<Vec<(u32, u64)>> = pieces
        .into_par_iter()
        .map(|piece| {
            let mut local = Vec::new();
            for &v in piece {
                let d = dist[v as usize];
                for &w in g.out_neighbors(v as usize) {
                    let wt = edge_weight(v, w, seed);
                    if (wt <= DELTA) == light {
                        let nd = d + wt;
                        if nd < dist[w as usize] {
                            local.push((w, nd));
                        }
                    }
                }
            }
            local
        })
        .collect();
    per_chunk.into_iter().flatten().collect()
}

/// Serially commits candidates: keep a candidate only if it still
/// improves, then rebucket its target by the new distance.
fn commit(dist: &mut [u64], buckets: &mut Vec<Vec<u32>>, candidates: Vec<(u32, u64)>) {
    for (w, nd) in candidates {
        if nd < dist[w as usize] {
            dist[w as usize] = nd;
            let b = (nd / DELTA) as usize;
            if b >= buckets.len() {
                buckets.resize_with(b + 1, Vec::new);
            }
            buckets[b].push(w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::{random_graph, tiny_graphs};

    #[test]
    fn weights_are_deterministic_and_in_range() {
        for (u, v) in [(0u32, 1u32), (1, 0), (7, 7), (1000, 3)] {
            let w = edge_weight(u, v, 42);
            assert_eq!(w, edge_weight(u, v, 42));
            assert!((1..=MAX_WEIGHT).contains(&w), "{w}");
        }
        assert_ne!(edge_weight(0, 1, 42), edge_weight(1, 0, 42));
        assert_ne!(edge_weight(0, 1, 42), edge_weight(0, 1, 43));
    }

    #[test]
    fn oracle_on_a_weighted_path() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let d = sssp_serial(&g, 0, 5);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], edge_weight(0, 1, 5));
        assert_eq!(d[2], edge_weight(0, 1, 5) + edge_weight(1, 2, 5));
    }

    #[test]
    fn shorter_two_hop_beats_direct_edge() {
        // Force weights via seed search: find a seed where 0->1->2 is
        // cheaper than 0->2 so the relaxation order matters.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let seed = (0u64..5000)
            .find(|&s| edge_weight(0, 1, s) + edge_weight(1, 2, s) < edge_weight(0, 2, s))
            .expect("some seed yields a cheaper detour");
        let d = sssp_serial(&g, 0, seed);
        assert_eq!(d[2], edge_weight(0, 1, seed) + edge_weight(1, 2, seed));
        assert_eq!(sssp(&g, 0, seed, 2), d);
    }

    #[test]
    fn optimized_matches_oracle_on_tiny_graphs() {
        for (name, g) in tiny_graphs() {
            let n = g.num_vertices() as u32;
            for src in 0..n.min(3) {
                let want = sssp_serial(&g, src, 99);
                for chunks in [1usize, 2, 8] {
                    assert_eq!(
                        sssp(&g, src, 99, chunks),
                        want,
                        "{name} src {src} x{chunks}"
                    );
                }
            }
        }
    }

    #[test]
    fn optimized_matches_oracle_on_a_random_graph() {
        let g = random_graph(400, 3200, 11);
        for (src, seed) in [(0u32, 1u64), (17, 2), (399, 3)] {
            let want = sssp_serial(&g, src, seed);
            for chunks in [1usize, 4, 8] {
                assert_eq!(sssp(&g, src, seed, chunks), want, "src {src} x{chunks}");
            }
        }
    }

    #[test]
    fn unreachable_vertices_stay_at_sentinel() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let d = sssp(&g, 0, 7, 2);
        assert_eq!(d[2], UNREACHED_DIST);
    }
}
