//! The graph adapter every workload kernel runs on.
//!
//! Kernel 2 hands the pipeline a row-stochastic CSR matrix; the analytics
//! kernels only need its *pattern*. [`Graph`] stores that pattern twice —
//! out-adjacency (the CSR rows) and in-adjacency (its transpose) — with
//! `u32` vertex ids, the same narrow-index observation `Csr32` exploits:
//! every paper scale has far fewer than `2^32` vertices, and halving the
//! index width halves the traversal bandwidth.
//!
//! Both adjacency arrays keep each vertex's neighbor list sorted
//! ascending, which the triangle-counting intersection and the merged
//! undirected view rely on.

/// Directed graph in dual-CSR (out + in adjacency) form, `u32` ids.
#[derive(Debug, Clone)]
pub struct Graph {
    n: usize,
    out_ptr: Vec<usize>,
    out_adj: Vec<u32>,
    in_ptr: Vec<usize>,
    in_adj: Vec<u32>,
}

impl Graph {
    /// Builds the graph from a square CSR pattern (`row_ptr` of length
    /// `n + 1`, `cols` holding sorted-in-row `u64` column ids).
    ///
    /// # Errors
    ///
    /// Errors when the vertex count does not fit `u32` ids, or a column
    /// id is out of range.
    pub fn from_adjacency(n: u64, row_ptr: &[usize], cols: &[u64]) -> Result<Self, String> {
        if n > u64::from(u32::MAX) {
            return Err(format!("graph has {n} vertices; workload ids are u32"));
        }
        if row_ptr.len() != n as usize + 1 {
            return Err(format!(
                "row_ptr length {} does not match {n} vertices",
                row_ptr.len()
            ));
        }
        if cols.iter().any(|&c| c >= n) {
            return Err("column id out of range".to_string());
        }
        let out_adj: Vec<u32> = cols.iter().map(|&c| c as u32).collect();
        let (in_ptr, in_adj) = transpose(n as usize, row_ptr, &out_adj);
        Ok(Self {
            n: n as usize,
            out_ptr: row_ptr.to_vec(),
            out_adj,
            in_ptr,
            in_adj,
        })
    }

    /// Builds a graph over `0..n` from an edge list (duplicates are
    /// dropped, order is irrelevant). Intended for tests and benches.
    ///
    /// # Errors
    ///
    /// Errors when an endpoint is `>= n`.
    pub fn from_edges(n: u32, edges: &[(u32, u32)]) -> Result<Self, String> {
        if let Some(&(u, v)) = edges.iter().find(|&&(u, v)| u >= n || v >= n) {
            return Err(format!("edge ({u}, {v}) exceeds vertex bound {n}"));
        }
        let mut sorted: Vec<(u32, u32)> = edges.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut out_ptr = vec![0usize; n as usize + 1];
        for &(u, _) in &sorted {
            out_ptr[u as usize + 1] += 1;
        }
        for i in 0..n as usize {
            out_ptr[i + 1] += out_ptr[i];
        }
        let out_adj: Vec<u32> = sorted.iter().map(|&(_, v)| v).collect();
        let (in_ptr, in_adj) = transpose(n as usize, &out_ptr, &out_adj);
        Ok(Self {
            n: n as usize,
            out_ptr,
            out_adj,
            in_ptr,
            in_adj,
        })
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of directed edges (stored pattern entries).
    pub fn num_edges(&self) -> usize {
        self.out_adj.len()
    }

    /// Out-neighbors of `v`, sorted ascending.
    #[inline]
    pub fn out_neighbors(&self, v: usize) -> &[u32] {
        &self.out_adj[self.out_ptr[v]..self.out_ptr[v + 1]]
    }

    /// In-neighbors of `v`, sorted ascending.
    #[inline]
    pub fn in_neighbors(&self, v: usize) -> &[u32] {
        &self.in_adj[self.in_ptr[v]..self.in_ptr[v + 1]]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: usize) -> usize {
        self.out_ptr[v + 1] - self.out_ptr[v]
    }

    /// The out-adjacency row pointer (length `n + 1`), for nnz-balanced
    /// chunking.
    pub fn out_ptr(&self) -> &[usize] {
        &self.out_ptr
    }

    /// The in-adjacency row pointer (length `n + 1`), for nnz-balanced
    /// chunking of pull-direction passes.
    pub fn in_ptr(&self) -> &[usize] {
        &self.in_ptr
    }

    /// The symmetrized, deduplicated, loop-free undirected adjacency
    /// (sorted per row): vertex `v`'s row merges its out- and
    /// in-neighbors. CC and TC operate on this view.
    pub fn undirected(&self) -> UndirectedCsr {
        let mut ptr = Vec::with_capacity(self.n + 1);
        ptr.push(0usize);
        let mut adj = Vec::with_capacity(self.out_adj.len() + self.in_adj.len());
        for v in 0..self.n {
            merge_into(
                self.out_neighbors(v),
                self.in_neighbors(v),
                v as u32,
                &mut adj,
            );
            ptr.push(adj.len());
        }
        UndirectedCsr { ptr, adj }
    }
}

/// Symmetrized adjacency produced by [`Graph::undirected`]: per-vertex
/// sorted, deduplicated neighbor lists with self-loops removed.
#[derive(Debug, Clone)]
pub struct UndirectedCsr {
    /// Row pointer, length `n + 1`.
    pub ptr: Vec<usize>,
    /// Concatenated neighbor lists.
    pub adj: Vec<u32>,
}

impl UndirectedCsr {
    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.ptr.len() - 1
    }

    /// Neighbors of `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adj[self.ptr[v]..self.ptr[v + 1]]
    }

    /// Undirected degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.ptr[v + 1] - self.ptr[v]
    }
}

/// Sorted-merge of two ascending lists into `out`, dropping duplicates
/// and the value `skip` (the vertex itself, to remove self-loops).
fn merge_into(a: &[u32], b: &[u32], skip: u32, out: &mut Vec<u32>) {
    let (mut i, mut j) = (0usize, 0usize);
    // Dedup against the last value pushed for *this* row only — `out` is
    // the shared adjacency array, so its tail may belong to the previous
    // row.
    let mut last: Option<u32> = None;
    let mut push = |out: &mut Vec<u32>, x: u32| {
        if x != skip && last != Some(x) {
            out.push(x);
            last = Some(x);
        }
    };
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        if x <= y {
            push(out, x);
            i += 1;
            if x == y {
                j += 1;
            }
        } else {
            push(out, y);
            j += 1;
        }
    }
    for &x in &a[i..] {
        push(out, x);
    }
    for &y in &b[j..] {
        push(out, y);
    }
}

/// Counting-sort transpose of a CSR pattern; per-row outputs come out
/// sorted because rows are scanned in ascending order.
fn transpose(n: usize, row_ptr: &[usize], cols: &[u32]) -> (Vec<usize>, Vec<u32>) {
    let mut in_ptr = vec![0usize; n + 1];
    for &c in cols {
        in_ptr[c as usize + 1] += 1;
    }
    for i in 0..n {
        in_ptr[i + 1] += in_ptr[i];
    }
    let mut cursor = in_ptr.clone();
    let mut in_adj = vec![0u32; cols.len()];
    for u in 0..n {
        for &c in &cols[row_ptr[u]..row_ptr[u + 1]] {
            in_adj[cursor[c as usize]] = u as u32;
            cursor[c as usize] += 1;
        }
    }
    (in_ptr, in_adj)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0→1, 0→2, 1→2, 2→0, 3→3 (self loop), 4 isolated... n = 5.
    fn sample() -> Graph {
        Graph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 0), (3, 3)]).unwrap()
    }

    #[test]
    fn adjacency_and_transpose_agree() {
        let g = sample();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.out_neighbors(4), &[] as &[u32]);
        assert_eq!(g.in_neighbors(2), &[0, 1]);
        assert_eq!(g.in_neighbors(0), &[2]);
        assert_eq!(g.in_neighbors(3), &[3]);
        assert_eq!(g.out_degree(0), 2);
    }

    #[test]
    fn from_edges_dedups() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 1), (1, 0)]).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(0), &[1]);
    }

    #[test]
    fn from_edges_rejects_out_of_bounds() {
        assert!(Graph::from_edges(2, &[(0, 2)]).is_err());
    }

    #[test]
    fn from_adjacency_matches_from_edges() {
        let g = sample();
        let cols: Vec<u64> = g.out_adj.iter().map(|&c| u64::from(c)).collect();
        let h = Graph::from_adjacency(5, g.out_ptr(), &cols).unwrap();
        assert_eq!(h.out_adj, g.out_adj);
        assert_eq!(h.in_adj, g.in_adj);
        assert!(Graph::from_adjacency(4, g.out_ptr(), &cols).is_err());
    }

    #[test]
    fn undirected_view_symmetrizes_and_drops_loops() {
        let und = sample().undirected();
        assert_eq!(und.neighbors(0), &[1, 2]);
        assert_eq!(und.neighbors(2), &[0, 1]);
        assert_eq!(und.neighbors(3), &[] as &[u32], "self loop dropped");
        assert_eq!(und.neighbors(4), &[] as &[u32]);
        assert_eq!(und.degree(1), 2);
        // Symmetric: v in N(u) iff u in N(v).
        for u in 0..und.num_vertices() {
            for &v in und.neighbors(u) {
                assert!(und.neighbors(v as usize).contains(&(u as u32)));
            }
        }
    }

    #[test]
    fn empty_graph_works() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.undirected().num_vertices(), 0);
    }
}
