//! Canonical JSON writer: byte-deterministic serialization for every
//! machine-readable surface (`pprank --json`, run records, the service
//! API's record payloads).
//!
//! Two rules make the output canonical:
//!
//! * **Object keys render sorted** (bytewise), whatever order they were
//!   inserted in — so the same logical record is the same byte string no
//!   matter which code path built it. Arrays keep insertion order; their
//!   order is part of the data.
//! * **Numbers render via Rust's shortest-roundtrip formatting** and
//!   strings through one escaping routine, so there is exactly one
//!   spelling of every value.
//!
//! This matters here because run records are diffed, cached by content
//! hash, and committed as fixtures: a benchmark suite whose own reports
//! are non-reproducible would fail its own determinism bar. Analogue of
//! the kernel-side invariant enforced by `ppbench-analyze`'s
//! `hash-iteration` rule.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes `s` into JSON string syntax, including the surrounding quotes.
///
/// Escapes the two mandatory characters (`"` and `\`), the named control
/// escapes, and all other control characters as `\u00XX`. Everything
/// else — including non-ASCII — passes through as UTF-8.
pub fn escape_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                // write! to a String cannot fail; ignore the Ok.
                let _ignored = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an `f64` the canonical way: shortest string that round-trips,
/// with the JSON-illegal specials mapped to `null`.
pub fn format_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A JSON object whose keys always render in sorted order.
#[derive(Debug, Default, Clone)]
pub struct JsonObject {
    // Key → pre-rendered value. BTreeMap is the sorting.
    fields: BTreeMap<String, String>,
}

impl JsonObject {
    /// An empty object (`{}`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a string field (escaped).
    pub fn set_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.fields.insert(key.to_string(), escape_string(value));
        self
    }

    /// Sets an unsigned integer field.
    pub fn set_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.fields.insert(key.to_string(), value.to_string());
        self
    }

    /// Sets a float field (canonical formatting; non-finite → `null`).
    pub fn set_f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.fields.insert(key.to_string(), format_f64(value));
        self
    }

    /// Sets a boolean field.
    pub fn set_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.fields.insert(key.to_string(), value.to_string());
        self
    }

    /// Sets a literal `null` field.
    pub fn set_null(&mut self, key: &str) -> &mut Self {
        self.fields.insert(key.to_string(), "null".to_string());
        self
    }

    /// Sets a field to already-rendered JSON (a nested object or array).
    pub fn set_raw(&mut self, key: &str, rendered: String) -> &mut Self {
        self.fields.insert(key.to_string(), rendered);
        self
    }

    /// Renders the object with keys in sorted order.
    pub fn render(&self) -> String {
        let mut out = String::from("{");
        for (i, (key, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&escape_string(key));
            out.push(':');
            out.push_str(value);
        }
        out.push('}');
        out
    }
}

/// A JSON array; elements keep insertion order (order is data).
#[derive(Debug, Default, Clone)]
pub struct JsonArray {
    elements: Vec<String>,
}

impl JsonArray {
    /// An empty array (`[]`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a nested object.
    pub fn push_obj(&mut self, obj: &JsonObject) -> &mut Self {
        self.elements.push(obj.render());
        self
    }

    /// Appends already-rendered JSON.
    pub fn push_raw(&mut self, rendered: String) -> &mut Self {
        self.elements.push(rendered);
        self
    }

    /// Renders the array.
    pub fn render(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.elements.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(e);
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_render_sorted_regardless_of_insertion_order() {
        let mut a = JsonObject::new();
        a.set_u64("zulu", 1)
            .set_str("alpha", "x")
            .set_bool("mid", true);
        let mut b = JsonObject::new();
        b.set_bool("mid", true)
            .set_u64("zulu", 1)
            .set_str("alpha", "x");
        assert_eq!(a.render(), b.render());
        assert_eq!(a.render(), "{\"alpha\":\"x\",\"mid\":true,\"zulu\":1}");
    }

    #[test]
    fn strings_escape_quotes_backslashes_and_controls() {
        assert_eq!(escape_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(escape_string("a\\b"), "\"a\\\\b\"");
        assert_eq!(escape_string("a\nb\t"), "\"a\\nb\\t\"");
        assert_eq!(escape_string("\u{01}"), "\"\\u0001\"");
        assert_eq!(escape_string("π"), "\"π\"");
    }

    #[test]
    fn floats_are_shortest_roundtrip_and_specials_are_null() {
        assert_eq!(format_f64(0.1), "0.1");
        assert_eq!(format_f64(1.0), "1");
        assert_eq!(format_f64(f64::NAN), "null");
        assert_eq!(format_f64(f64::INFINITY), "null");
        let rendered = format_f64(1.0 / 3.0);
        let back: f64 = rendered.parse().expect("roundtrips");
        assert_eq!(back, 1.0 / 3.0);
    }

    #[test]
    fn arrays_keep_insertion_order() {
        let mut arr = JsonArray::new();
        let mut o = JsonObject::new();
        o.set_u64("k", 2);
        arr.push_raw("1".into())
            .push_obj(&o)
            .push_raw("null".into());
        assert_eq!(arr.render(), "[1,{\"k\":2},null]");
    }

    #[test]
    fn nested_objects_render_in_place() {
        let mut inner = JsonObject::new();
        inner.set_f64("seconds", 0.25);
        let mut outer = JsonObject::new();
        outer.set_raw("timing", inner.render()).set_null("error");
        assert_eq!(
            outer.render(),
            "{\"error\":null,\"timing\":{\"seconds\":0.25}}"
        );
    }
}
