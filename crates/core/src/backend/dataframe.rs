//! The columnar backend — the comparison's "Python with Pandas".
//!
//! Kernels are expressed as whole-column operations on `ppbench-frame`:
//! `read_csv`-style scans, `sort_values`-style argsort+gather,
//! `value_counts`-style group-by. Like a real Pandas implementation, the
//! sparse-matrix work of kernels 2–3 hands off to a linear-algebra kernel
//! library (our `ppbench-sparse`, playing the role scipy.sparse plays for
//! Pandas), but the *degree computation, masking and filtering* — the parts
//! the paper's kernel 2 actually specifies — run columnar.

use std::path::Path;

use ppbench_frame::{frame_from_edges, read_edge_tsv, write_edge_tsv};
use ppbench_gen::EdgeGenerator;
use ppbench_io::Manifest;
use ppbench_sparse::{graphblas, ops, Coo, Csr};

use crate::backend::{require_sorted, Backend, Kernel2Output};
use crate::config::PipelineConfig;
use crate::error::Result;
use crate::kernel2::FilterStats;
use crate::{kernel0, kernel3};

/// Columnar implementation of the four kernels.
#[derive(Debug, Clone, Copy, Default)]
pub struct DataframeBackend;

impl Backend for DataframeBackend {
    fn name(&self) -> &'static str {
        "dataframe"
    }

    fn kernel0(&self, cfg: &PipelineConfig, dir: &Path) -> Result<Manifest> {
        let generator = kernel0::build_generator(cfg);
        let frame = frame_from_edges(&generator.edges());
        Ok(write_edge_tsv(
            &frame,
            dir,
            cfg.num_files,
            Some(cfg.spec.scale()),
            Some(cfg.spec.num_vertices()),
            ppbench_io::SortState::Unsorted,
        )?)
    }

    fn kernel1(&self, cfg: &PipelineConfig, in_dir: &Path, out_dir: &Path) -> Result<Manifest> {
        let in_manifest = Manifest::load(in_dir)?;
        let frame = read_edge_tsv(in_dir)?;
        let sorted = match cfg.sort_key {
            ppbench_sort::SortKey::Start => frame.sort_by(&["u"])?,
            ppbench_sort::SortKey::StartEnd => frame.sort_by(&["u", "v"])?,
        };
        Ok(write_edge_tsv(
            &sorted,
            out_dir,
            cfg.num_files,
            in_manifest.scale,
            in_manifest.vertex_bound,
            cfg.sort_key.sort_state(),
        )?)
    }

    fn kernel2(&self, cfg: &PipelineConfig, in_dir: &Path) -> Result<Kernel2Output> {
        let manifest = Manifest::load(in_dir)?;
        require_sorted(&manifest, in_dir)?;
        let n = cfg.spec.num_vertices();
        let frame = read_edge_tsv(in_dir)?;
        let total_edges = frame.rows() as u64;

        // din = value_counts(v): the weighted in-degree, columnar.
        let din = frame.group_by_count("v", n)?;
        let max_in_degree = din.iter().copied().max().unwrap_or(0);
        let kill: Vec<bool> = din
            .iter()
            .map(|&d| (max_in_degree > 0 && d == max_in_degree) || d == 1)
            .collect();
        let supernode_columns = din
            .iter()
            .filter(|&&d| max_in_degree > 0 && d == max_in_degree)
            .count() as u64;
        let leaf_columns = din.iter().filter(|&&d| d == 1).count() as u64;

        // Boolean mask over rows: keep edges whose *end* is not killed.
        let ends = frame.column("v")?.as_u64()?;
        let keep: Vec<bool> = ends.iter().map(|&v| !kill[v as usize]).collect();
        let nnz_before = frame.distinct_rows(&["u", "v"])?;
        let filtered = frame.filter(&keep)?;

        // Assemble the count matrix from the filtered columns (the scipy
        // hand-off), then apply the shared diagonal/normalization steps.
        let us = filtered.column("u")?.as_u64()?;
        let vs = filtered.column("v")?.as_u64()?;
        let mut coo = Coo::<u64>::with_capacity(n, n, filtered.rows());
        for (&u, &v) in us.iter().zip(vs) {
            coo.push(u, v, 1);
        }
        let mut counts = coo.compress();

        let mut diagonal_repairs = 0u64;
        if cfg.add_diagonal_to_empty {
            let empty = ops::empty_rows(&counts);
            diagonal_repairs = empty.iter().filter(|&&e| e).count() as u64;
            counts = ops::add_diagonal_where(&counts, |i| empty[i as usize], 1);
        }
        let matrix = ops::normalize_rows(&counts);
        let dangling_rows = ops::empty_rows(&matrix).iter().filter(|&&e| e).count() as u64;

        let stats = FilterStats {
            total_edge_count: total_edges,
            nnz_before,
            max_in_degree,
            supernode_columns,
            leaf_columns,
            nnz_after: matrix.nnz(),
            dangling_rows,
            diagonal_repairs,
        };
        Ok(Kernel2Output { matrix, stats })
    }

    fn kernel3(&self, cfg: &PipelineConfig, matrix: &Csr<f64>) -> Result<kernel3::PageRankRun> {
        // Columnar/array style: the update is written in whole-vector
        // operations over the GraphBLAS layer (vxm visits entries in
        // row-major order, so results match the serial backends bit for
        // bit).
        let dangling = ops::empty_rows(matrix);
        Ok(kernel3::run(
            kernel3::init_ranks(cfg.spec.num_vertices(), cfg.seed),
            |r| graphblas::vxm::<graphblas::PlusTimes>(r, matrix),
            &dangling,
            &cfg.pagerank_options(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::OptimizedBackend;
    use ppbench_io::tempdir::TempDir;

    fn cfg(scale: u32) -> PipelineConfig {
        PipelineConfig::builder()
            .scale(scale)
            .edge_factor(8)
            .seed(3)
            .num_files(2)
            .build()
    }

    #[test]
    fn dataframe_kernel0_matches_optimized_stream() {
        let td = TempDir::new("ppbench-df").unwrap();
        let cfg = cfg(5);
        let m_df = DataframeBackend.kernel0(&cfg, &td.join("df")).unwrap();
        let m_opt = OptimizedBackend.kernel0(&cfg, &td.join("opt")).unwrap();
        assert!(m_df.digest.same_stream(&m_opt.digest));
    }

    #[test]
    fn dataframe_sort_is_stable() {
        let td = TempDir::new("ppbench-df").unwrap();
        let cfg = cfg(5);
        DataframeBackend.kernel0(&cfg, &td.join("k0")).unwrap();
        let m_df = DataframeBackend
            .kernel1(&cfg, &td.join("k0"), &td.join("k1d"))
            .unwrap();
        let m_opt = OptimizedBackend
            .kernel1(&cfg, &td.join("k0"), &td.join("k1o"))
            .unwrap();
        assert!(
            m_df.digest.same_stream(&m_opt.digest),
            "argsort must be stable"
        );
    }

    #[test]
    fn dataframe_chain_matches_optimized() {
        let td = TempDir::new("ppbench-df").unwrap();
        let cfg = cfg(6);
        DataframeBackend.kernel0(&cfg, &td.join("k0")).unwrap();
        DataframeBackend
            .kernel1(&cfg, &td.join("k0"), &td.join("k1"))
            .unwrap();
        let k2d = DataframeBackend.kernel2(&cfg, &td.join("k1")).unwrap();
        let k2o = OptimizedBackend.kernel2(&cfg, &td.join("k1")).unwrap();
        assert_eq!(k2d.matrix, k2o.matrix);
        assert_eq!(k2d.stats, k2o.stats);
        let rd = DataframeBackend.kernel3(&cfg, &k2d.matrix).unwrap().ranks;
        let ro = OptimizedBackend.kernel3(&cfg, &k2o.matrix).unwrap().ranks;
        assert_eq!(rd, ro);
    }

    #[test]
    fn diagonal_option_respected() {
        let td = TempDir::new("ppbench-df").unwrap();
        let cfg = PipelineConfig::builder()
            .scale(5)
            .edge_factor(4)
            .seed(3)
            .add_diagonal_to_empty(true)
            .build();
        DataframeBackend.kernel0(&cfg, &td.join("k0")).unwrap();
        DataframeBackend
            .kernel1(&cfg, &td.join("k0"), &td.join("k1"))
            .unwrap();
        let k2 = DataframeBackend.kernel2(&cfg, &td.join("k1")).unwrap();
        assert_eq!(k2.stats.dangling_rows, 0);
        let k2o = OptimizedBackend.kernel2(&cfg, &td.join("k1")).unwrap();
        assert_eq!(k2.matrix, k2o.matrix);
        assert_eq!(k2.stats, k2o.stats);
    }
}
