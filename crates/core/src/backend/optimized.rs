//! The tuned native backend — the comparison's "C++".
//!
//! Uses every fast path the substrates offer: chunked streaming generation,
//! the hand-rolled integer formatter/parser inside `ppbench-io`'s buffered
//! writer/reader, LSD radix sort (or the out-of-core sorter beyond the
//! memory budget), the sorted-input CSR construction fast path, and
//! buffer-reusing scatter SpMV.

use std::path::Path;

use ppbench_io::Manifest;
use ppbench_sort::Algorithm;
use ppbench_sparse::{spmv, Csr};

use crate::backend::{Backend, Kernel2Output};
use crate::config::PipelineConfig;
use crate::error::Result;
use crate::{kernel0, kernel1, kernel3};

/// Tuned native implementation of the four kernels.
#[derive(Debug, Clone, Copy, Default)]
pub struct OptimizedBackend;

impl Backend for OptimizedBackend {
    fn name(&self) -> &'static str {
        "optimized"
    }

    fn kernel0(&self, cfg: &PipelineConfig, dir: &Path) -> Result<Manifest> {
        let generator = kernel0::build_generator(cfg);
        kernel0::write_streamed(&generator, cfg, dir)
    }

    fn kernel1(&self, cfg: &PipelineConfig, in_dir: &Path, out_dir: &Path) -> Result<Manifest> {
        kernel1::sort_file_set(
            in_dir,
            out_dir,
            cfg.num_files,
            cfg.sort_key,
            Algorithm::Radix,
            cfg.sort_budget_bytes,
        )
    }

    fn kernel2(&self, cfg: &PipelineConfig, in_dir: &Path) -> Result<Kernel2Output> {
        crate::backend::kernel2_streamed(cfg, in_dir)
    }

    fn kernel3(&self, cfg: &PipelineConfig, matrix: &Csr<f64>) -> Result<kernel3::PageRankRun> {
        // Scatter into the iteration buffer, then apply damping+teleport in
        // place — `run_into` ping-pongs the two rank buffers, so the whole
        // loop performs zero O(N) allocation after setup. The epilogue
        // arithmetic lives in `kernel3::apply_epilogue`, shared with
        // `step_with` expression-for-expression so serial backends stay
        // bit-identical.
        let dangling = kernel3::DanglingInfo::from_mask(&ppbench_sparse::ops::empty_rows(matrix));
        let r0 = kernel3::init_ranks(cfg.spec.num_vertices(), cfg.seed);
        Ok(kernel3::run_into(
            r0,
            |r, next, coeffs| {
                spmv::vxm_into(r, matrix, next);
                kernel3::apply_epilogue(r, next, coeffs)
            },
            &dangling,
            &cfg.pagerank_options(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppbench_io::tempdir::TempDir;
    use ppbench_io::EdgeReader;

    fn cfg(scale: u32) -> PipelineConfig {
        PipelineConfig::builder()
            .scale(scale)
            .edge_factor(8)
            .seed(3)
            .num_files(2)
            .build()
    }

    #[test]
    fn kernel0_writes_expected_count() {
        let td = TempDir::new("ppbench-opt").unwrap();
        let cfg = cfg(6);
        let m = OptimizedBackend.kernel0(&cfg, td.path()).unwrap();
        assert_eq!(m.edges, cfg.spec.num_edges());
        assert_eq!(m.scale, Some(6));
        assert_eq!(m.files.len(), 2);
    }

    #[test]
    fn kernel1_sorts_kernel0_output() {
        let td = TempDir::new("ppbench-opt").unwrap();
        let cfg = cfg(6);
        OptimizedBackend.kernel0(&cfg, &td.join("k0")).unwrap();
        let m = OptimizedBackend
            .kernel1(&cfg, &td.join("k0"), &td.join("k1"))
            .unwrap();
        assert!(m.sort_state.is_sorted_by_start());
        let (_, edges) = EdgeReader::read_dir_all(&td.join("k1")).unwrap();
        assert!(edges.windows(2).all(|w| w[0].u <= w[1].u));
    }

    #[test]
    fn kernel2_rejects_unsorted_input() {
        let td = TempDir::new("ppbench-opt").unwrap();
        let cfg = cfg(5);
        OptimizedBackend.kernel0(&cfg, &td.join("k0")).unwrap();
        let err = OptimizedBackend.kernel2(&cfg, &td.join("k0")).unwrap_err();
        assert!(err.to_string().contains("sorted"), "{err}");
    }

    #[test]
    fn full_chain_produces_plausible_ranks() {
        let td = TempDir::new("ppbench-opt").unwrap();
        let cfg = cfg(7);
        OptimizedBackend.kernel0(&cfg, &td.join("k0")).unwrap();
        OptimizedBackend
            .kernel1(&cfg, &td.join("k0"), &td.join("k1"))
            .unwrap();
        let k2 = OptimizedBackend.kernel2(&cfg, &td.join("k1")).unwrap();
        assert_eq!(k2.stats.total_edge_count, cfg.spec.num_edges());
        let ranks = OptimizedBackend.kernel3(&cfg, &k2.matrix).unwrap().ranks;
        assert_eq!(ranks.len() as u64, cfg.spec.num_vertices());
        let mass: f64 = ranks.iter().sum();
        assert!(mass > 0.0 && mass <= 1.0 + 1e-9, "mass {mass}");
    }
}
