//! The GraphBLAS backend — the paper's §V reference-implementation wish:
//! "implementations using the GraphBLAS standard would allow comparison of
//! the GraphBLAS capabilities with other technologies."
//!
//! Every kernel is phrased in GraphBLAS verbs over `ppbench_sparse`'s
//! semiring layer:
//!
//! * **K1** is `GrB_Matrix_build` + `GrB_Matrix_extractTuples`: building
//!   the matrix *is* the sort (CSR construction orders tuples by (row,
//!   col)), and extraction replays each entry with its multiplicity. The
//!   output is therefore sorted by (start, end) — the §V "sort end
//!   vertices too" variant — which still satisfies kernel 2's
//!   sorted-by-start contract and preserves the edge multiset exactly.
//! * **K2** computes the in-degree as the semiring product `din = 𝟙 ⊕.⊗ A`
//!   (a `vxm` with the all-ones vector over plus-times), masks with
//!   `GrB_select`, and normalizes rows.
//! * **K3** is the semiring `vxm` iteration, identical in entry-visit
//!   order to the other serial backends, so the ranks agree bit for bit.

use std::path::Path;

use ppbench_io::{Edge, EdgeReader, EdgeWriter, Manifest};
use ppbench_sparse::{graphblas, ops, Coo, Csr};

use crate::backend::{require_sorted, Backend, Kernel2Output};
use crate::config::PipelineConfig;
use crate::error::Result;
use crate::kernel2::FilterStats;
use crate::{kernel0, kernel3};

/// GraphBLAS-verb implementation of the four kernels.
#[derive(Debug, Clone, Copy, Default)]
pub struct GraphBlasBackend;

impl GraphBlasBackend {
    /// `GrB_Matrix_build`: assemble the count matrix from an edge stream.
    fn build_matrix(&self, n: u64, edges: impl IntoIterator<Item = Edge>) -> Csr<u64> {
        Coo::<u64>::from_edges(n, edges.into_iter().map(|e| (e.u, e.v))).compress()
    }
}

impl Backend for GraphBlasBackend {
    fn name(&self) -> &'static str {
        "graphblas"
    }

    fn kernel0(&self, cfg: &PipelineConfig, dir: &Path) -> Result<Manifest> {
        // I/O is outside the GraphBLAS standard; the shared writer streams
        // the generated tuples.
        let generator = kernel0::build_generator(cfg);
        kernel0::write_streamed(&generator, cfg, dir)
    }

    fn kernel1(&self, cfg: &PipelineConfig, in_dir: &Path, out_dir: &Path) -> Result<Manifest> {
        // Build + extractTuples: matrix construction sorts by (row, col);
        // extraction replays each stored entry `count` times, preserving
        // the multiset. GraphBLAS has no notion of "sort by start only",
        // so this backend always produces the (start, end) order — a
        // superset of every kernel-2 input contract.
        let (manifest, iter) = EdgeReader::open_dir(in_dir)?;
        let edges: Vec<Edge> = iter.collect::<ppbench_io::Result<_>>()?;
        let matrix = self.build_matrix(cfg.spec.num_vertices(), edges);
        let mut writer = EdgeWriter::create(out_dir, "edges", cfg.num_files, manifest.edges)?;
        for (u, v, count) in matrix.iter() {
            for _ in 0..count {
                writer.write(Edge::new(u, v))?;
            }
        }
        Ok(writer.finish(
            manifest.scale,
            manifest.vertex_bound,
            ppbench_io::SortState::ByStartEnd,
        )?)
    }

    fn kernel2(&self, cfg: &PipelineConfig, in_dir: &Path) -> Result<Kernel2Output> {
        let (manifest, iter) = EdgeReader::open_dir(in_dir)?;
        require_sorted(&manifest, in_dir)?;
        let n = cfg.spec.num_vertices();
        let edges: Vec<Edge> = iter.collect::<ppbench_io::Result<_>>()?;
        let total_edge_count = edges.len() as u64;
        let counts = self.build_matrix(n, edges);

        // din = 𝟙 ⊕.⊗ A over plus-times — the GraphBLAS way to reduce
        // columns. (Counts convert exactly to f64 far beyond any benchmark
        // scale.)
        let a_f64 = counts.map(|_, _, v| v as f64);
        let ones = vec![1.0f64; n as usize];
        let din_f = graphblas::vxm::<graphblas::PlusTimes>(&ones, &a_f64);
        let din: Vec<u64> = din_f.iter().map(|&d| d as u64).collect();
        let max_in_degree = din.iter().copied().max().unwrap_or(0);
        let kill = |c: u64| {
            let d = din[c as usize];
            (max_in_degree > 0 && d == max_in_degree) || d == 1
        };
        let supernode_columns = din
            .iter()
            .filter(|&&d| max_in_degree > 0 && d == max_in_degree)
            .count() as u64;
        let leaf_columns = din.iter().filter(|&&d| d == 1).count() as u64;

        // GrB_select: keep entries whose column survives.
        let mut filtered = graphblas::select(&counts, |_, c, _| !kill(c));

        let mut diagonal_repairs = 0u64;
        if cfg.add_diagonal_to_empty {
            let empty = ops::empty_rows(&filtered);
            diagonal_repairs = empty.iter().filter(|&&e| e).count() as u64;
            filtered = ops::add_diagonal_where(&filtered, |i| empty[i as usize], 1);
        }
        let matrix = ops::normalize_rows(&filtered);
        let dangling_rows = ops::empty_rows(&matrix).iter().filter(|&&e| e).count() as u64;

        let stats = FilterStats {
            total_edge_count,
            nnz_before: counts.nnz(),
            max_in_degree,
            supernode_columns,
            leaf_columns,
            nnz_after: matrix.nnz(),
            dangling_rows,
            diagonal_repairs,
        };
        Ok(Kernel2Output { matrix, stats })
    }

    fn kernel3(&self, cfg: &PipelineConfig, matrix: &Csr<f64>) -> Result<kernel3::PageRankRun> {
        let dangling = ops::empty_rows(matrix);
        Ok(kernel3::run(
            kernel3::init_ranks(cfg.spec.num_vertices(), cfg.seed),
            |r| graphblas::vxm::<graphblas::PlusTimes>(r, matrix),
            &dangling,
            &cfg.pagerank_options(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::OptimizedBackend;
    use ppbench_io::tempdir::TempDir;

    fn cfg(scale: u32) -> PipelineConfig {
        PipelineConfig::builder()
            .scale(scale)
            .edge_factor(8)
            .seed(3)
            .num_files(2)
            .build()
    }

    #[test]
    fn kernel1_build_extract_sorts_and_preserves_multiset() {
        let td = TempDir::new("ppbench-grb").unwrap();
        let cfg = cfg(6);
        GraphBlasBackend.kernel0(&cfg, &td.join("k0")).unwrap();
        let m = GraphBlasBackend
            .kernel1(&cfg, &td.join("k0"), &td.join("k1"))
            .unwrap();
        assert_eq!(m.sort_state, ppbench_io::SortState::ByStartEnd);
        let m0 = Manifest::load(&td.join("k0")).unwrap();
        assert!(
            m.digest.same_multiset(&m0.digest),
            "extractTuples lost duplicates"
        );
        let (_, edges) = EdgeReader::read_dir_all(&td.join("k1")).unwrap();
        assert!(edges
            .windows(2)
            .all(|w| (w[0].u, w[0].v) <= (w[1].u, w[1].v)));
    }

    #[test]
    fn kernel2_matches_optimized_backend() {
        let td = TempDir::new("ppbench-grb").unwrap();
        let cfg = cfg(6);
        GraphBlasBackend.kernel0(&cfg, &td.join("k0")).unwrap();
        GraphBlasBackend
            .kernel1(&cfg, &td.join("k0"), &td.join("k1"))
            .unwrap();
        let grb = GraphBlasBackend.kernel2(&cfg, &td.join("k1")).unwrap();
        let opt = OptimizedBackend.kernel2(&cfg, &td.join("k1")).unwrap();
        assert_eq!(grb.matrix, opt.matrix);
        assert_eq!(grb.stats, opt.stats);
    }

    #[test]
    fn kernel3_bit_identical_to_optimized() {
        let td = TempDir::new("ppbench-grb").unwrap();
        let cfg = cfg(6);
        OptimizedBackend.kernel0(&cfg, &td.join("k0")).unwrap();
        OptimizedBackend
            .kernel1(&cfg, &td.join("k0"), &td.join("k1"))
            .unwrap();
        let k2 = OptimizedBackend.kernel2(&cfg, &td.join("k1")).unwrap();
        let grb = GraphBlasBackend.kernel3(&cfg, &k2.matrix).unwrap();
        let opt = OptimizedBackend.kernel3(&cfg, &k2.matrix).unwrap();
        assert_eq!(grb.ranks, opt.ranks);
    }

    #[test]
    fn semiring_in_degree_matches_col_sums() {
        let td = TempDir::new("ppbench-grb").unwrap();
        let cfg = cfg(6);
        GraphBlasBackend.kernel0(&cfg, &td.join("k0")).unwrap();
        GraphBlasBackend
            .kernel1(&cfg, &td.join("k0"), &td.join("k1"))
            .unwrap();
        let (_, iter) = EdgeReader::open_dir(&td.join("k1")).unwrap();
        let edges: Vec<Edge> = iter.map(|r| r.unwrap()).collect();
        let counts = GraphBlasBackend.build_matrix(cfg.spec.num_vertices(), edges);
        let direct = ops::col_sums(&counts);
        let a = counts.map(|_, _, v| v as f64);
        let ones = vec![1.0; cfg.spec.num_vertices() as usize];
        let via_semiring = graphblas::vxm::<graphblas::PlusTimes>(&ones, &a);
        for (d, s) in direct.iter().zip(&via_semiring) {
            assert_eq!(*d, *s as u64);
        }
    }
}
