//! Pipeline backends: the paper's "same spec, different execution style"
//! axis.
//!
//! The paper implements the identical mathematical kernels in C++, Python,
//! Python+Pandas, Matlab, Octave and Julia and compares them on one
//! machine. This workspace reproduces that axis as four [`Backend`]
//! implementations:
//!
//! | Backend | Stands in for | Style |
//! |---|---|---|
//! | [`OptimizedBackend`] | C++ | hand-rolled parsing/formatting, radix sort, CSR scatter |
//! | [`NaiveBackend`] | Python | per-line `String` processing, `BTreeMap` assembly, triplet-loop SpMV |
//! | [`DataframeBackend`] | Python + Pandas / vectorized Matlab | whole-column operations on `ppbench-frame` |
//! | [`ParallelBackend`] | the paper's future work | rayon generation/sort and gather-form SpMV |
//! | [`GraphBlasBackend`] | the paper's §V GraphBLAS reference wish | matrix build/extract, semiring vxm, select |
//!
//! All four must produce the same ranks (bit-identical for the serial
//! three, within floating-point reassociation for the parallel one) — the
//! cross-backend integration tests enforce it.

mod dataframe;
mod graphblas_backend;
mod naive;
mod optimized;
mod parallel;

pub use dataframe::DataframeBackend;
pub use graphblas_backend::GraphBlasBackend;
pub use naive::NaiveBackend;
pub use optimized::OptimizedBackend;
pub use parallel::ParallelBackend;

use std::path::Path;

use ppbench_io::Manifest;
use ppbench_sparse::Csr;

use crate::config::PipelineConfig;
use crate::error::Result;
use crate::kernel2::FilterStats;

/// Output of kernel 2: the row-stochastic matrix kernel 3 consumes, plus
/// the filter statistics.
#[derive(Debug, Clone)]
pub struct Kernel2Output {
    /// Row-normalized adjacency matrix.
    pub matrix: Csr<f64>,
    /// What the filter did.
    pub stats: FilterStats,
}

/// One implementation style of the four benchmark kernels.
///
/// Each kernel reads its input from / writes its output to the locations
/// given, so kernels from *different* backends compose (the file formats
/// and manifests are shared).
pub trait Backend: Send + Sync {
    /// Stable name used in reports and CLI flags.
    fn name(&self) -> &'static str;

    /// Kernel 0: generate the configured graph and write it under `dir`.
    fn kernel0(&self, cfg: &PipelineConfig, dir: &Path) -> Result<Manifest>;

    /// Kernel 1: read `in_dir`, sort by the configured key, write `out_dir`.
    fn kernel1(&self, cfg: &PipelineConfig, in_dir: &Path, out_dir: &Path) -> Result<Manifest>;

    /// Kernel 2: read the sorted files and produce the filtered,
    /// normalized matrix.
    fn kernel2(&self, cfg: &PipelineConfig, in_dir: &Path) -> Result<Kernel2Output>;

    /// Kernel 3: run the configured PageRank iterations (with the
    /// configured dangling strategy and optional convergence stopping).
    fn kernel3(
        &self,
        cfg: &PipelineConfig,
        matrix: &Csr<f64>,
    ) -> Result<crate::kernel3::PageRankRun>;

    /// Fused kernels 1+2: build the CSR directly from the sorted-run merge
    /// stream of `k0_dir`'s edges, spilling runs under `scratch_dir`.
    ///
    /// The default implementation is [`crate::fused::kernel12`] — shared by
    /// all backends because the fused data path *is* the implementation;
    /// its output is bit-identical to `kernel1` + `kernel2` composed.
    fn kernel12_fused(
        &self,
        cfg: &PipelineConfig,
        k0_dir: &Path,
        scratch_dir: &Path,
    ) -> Result<crate::fused::FusedOutcome> {
        crate::fused::kernel12(cfg, k0_dir, scratch_dir)
    }
}

/// Shared streaming kernel-2 body: read a sorted file set, verify the
/// manifest's contracts (digest and claimed sort order), accumulate counts
/// straight into CSR with no intermediate edge vector, and funnel through
/// [`kernel2::filter_matrix`]. The optimized and parallel backends both
/// delegate here — their kernel-2 data paths are identical, only kernels
/// 0/1/3 differ.
pub(crate) fn kernel2_streamed(cfg: &PipelineConfig, in_dir: &Path) -> Result<Kernel2Output> {
    let (manifest, iter) = ppbench_io::EdgeReader::open_dir(in_dir)?;
    require_sorted(&manifest, in_dir)?;
    // Stream the sorted edges straight into CSR construction while checking
    // the manifest's contracts: the digest (catches tampered/truncated
    // files) and the sort order (catches a forged sort state) both surface
    // as errors, not silent bad math.
    let mut digest = ppbench_io::checksum::EdgeDigest::new();
    let mut stream_err: Option<crate::Error> = None;
    let mut prev_start: Option<u64> = None;
    let counts = {
        let digest = &mut digest;
        let stream_err = &mut stream_err;
        let prev_start = &mut prev_start;
        Csr::<u64>::from_sorted_edge_iter(
            cfg.spec.num_vertices(),
            iter.map_while(move |r| match r {
                Ok(e) => {
                    if let Some(p) = prev_start.filter(|&p| p > e.u) {
                        *stream_err = Some(crate::Error::Contract(format!(
                            "claims sorted order but start {} follows {p}",
                            e.u
                        )));
                        return None;
                    }
                    *prev_start = Some(e.u);
                    digest.update(e);
                    Some((e.u, e.v))
                }
                Err(e) => {
                    *stream_err = Some(e.into());
                    None
                }
            }),
        )
    };
    if let Some(e) = stream_err {
        return Err(e);
    }
    if !digest.same_stream(&manifest.digest) {
        return Err(crate::Error::Contract(format!(
            "{}: edge stream does not match manifest digest",
            in_dir.display()
        )));
    }
    let (matrix, stats) = crate::kernel2::filter_matrix(&counts, cfg.add_diagonal_to_empty);
    Ok(Kernel2Output { matrix, stats })
}

/// Backend selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Variant {
    /// Tuned native implementation (the "C++" of the comparison).
    #[default]
    Optimized,
    /// Line-at-a-time interpreter style (the "Python").
    Naive,
    /// Columnar dataframe style (the "Pandas").
    Dataframe,
    /// rayon data-parallel (the paper's future work).
    Parallel,
    /// GraphBLAS-verb implementation (the paper's §V reference wish).
    GraphBlas,
}

impl Variant {
    /// Instantiates the backend.
    pub fn backend(self) -> Box<dyn Backend> {
        match self {
            Variant::Optimized => Box::new(OptimizedBackend),
            Variant::Naive => Box::new(NaiveBackend),
            Variant::Dataframe => Box::new(DataframeBackend),
            Variant::Parallel => Box::new(ParallelBackend),
            Variant::GraphBlas => Box::new(GraphBlasBackend),
        }
    }

    /// Stable name.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Optimized => "optimized",
            Variant::Naive => "naive",
            Variant::Dataframe => "dataframe",
            Variant::Parallel => "parallel",
            Variant::GraphBlas => "graphblas",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "optimized" | "opt" => Some(Self::Optimized),
            "naive" => Some(Self::Naive),
            "dataframe" | "df" => Some(Self::Dataframe),
            "parallel" | "par" => Some(Self::Parallel),
            "graphblas" | "grb" => Some(Self::GraphBlas),
            _ => None,
        }
    }

    /// All variants, in the order reports list them.
    pub const ALL: [Variant; 5] = [
        Variant::Optimized,
        Variant::Naive,
        Variant::Dataframe,
        Variant::Parallel,
        Variant::GraphBlas,
    ];
}

/// Shared contract check: kernel 2 requires kernel-1-sorted input.
pub(crate) fn require_sorted(manifest: &Manifest, dir: &Path) -> Result<()> {
    if !manifest.sort_state.is_sorted_by_start() {
        return Err(crate::Error::Contract(format!(
            "kernel 2 requires input sorted by start vertex, but {} is {:?}",
            dir.display(),
            manifest.sort_state
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_names_roundtrip() {
        for v in Variant::ALL {
            assert_eq!(Variant::parse(v.name()), Some(v));
            assert_eq!(v.backend().name(), v.name());
        }
        assert_eq!(Variant::parse("cobol"), None);
    }
}
