//! The line-at-a-time backend — the comparison's "plain Python".
//!
//! Deliberately written the way a straightforward scripting-language
//! implementation works: every edge formatted with `format!` (allocating a
//! `String` per line), parsed with `str::split` + `str::parse`, sorted with
//! the standard library's stable sort (CPython's sort is stable timsort),
//! the matrix assembled through a `BTreeMap` (a dict keyed by `(u, v)`),
//! and the SpMV expressed as a loop over a triplet list. The *math* is
//! identical to the optimized backend — the triplet loop visits entries in
//! the same row-major order, so even the floating-point results agree bit
//! for bit. Only the constant factors differ, which is precisely what the
//! paper's Figures 4–7 measure.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

use ppbench_gen::EdgeGenerator;
use ppbench_io::checksum::EdgeDigest;
use ppbench_io::{Edge, Error as IoError, Manifest, SortState};
use ppbench_sparse::{Coo, Csr};

use crate::backend::{require_sorted, Backend, Kernel2Output};
use crate::config::PipelineConfig;
use crate::error::{Error, Result};
use crate::{kernel0, kernel2, kernel3};

/// Interpreter-style implementation of the four kernels.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveBackend;

/// Writes edges the scripting way — one `format!`-ed line at a time — while
/// still producing the shared manifest so other backends can consume the
/// output.
fn write_naively(
    dir: &Path,
    edges: &[Edge],
    num_files: usize,
    scale: Option<u32>,
    vertex_bound: Option<u64>,
    sort_state: SortState,
) -> Result<Manifest> {
    std::fs::create_dir_all(dir).map_err(|e| IoError::io(dir, e))?;
    let per_file = (edges.len() as u64).div_ceil(num_files as u64).max(1);
    let mut digest = EdgeDigest::new();
    let mut files = Vec::with_capacity(num_files);
    for i in 0..num_files {
        let name = format!("edges-{i:05}.tsv");
        let path = dir.join(&name);
        let mut f = std::io::BufWriter::new(
            std::fs::File::create(&path).map_err(|e| IoError::io(&path, e))?,
        );
        let lo = (i as u64 * per_file).min(edges.len() as u64) as usize;
        let hi = ((i as u64 + 1) * per_file).min(edges.len() as u64) as usize;
        for &e in &edges[lo..hi] {
            let line = format!("{}\t{}\n", e.u, e.v); // the allocating way
            f.write_all(line.as_bytes())
                .map_err(|err| IoError::io(&path, err))?;
            digest.update(e);
        }
        f.flush().map_err(|err| IoError::io(&path, err))?;
        files.push(ppbench_io::FileEntry {
            name,
            edges: (hi - lo) as u64,
        });
    }
    let manifest = Manifest {
        scale,
        vertex_bound,
        edges: edges.len() as u64,
        sort_state,
        encoding: ppbench_io::EdgeEncoding::Text,
        digest,
        files,
    };
    manifest.save(dir)?;
    Ok(manifest)
}

/// Reads every edge of a file set the scripting way: line strings, `split`,
/// `parse`.
fn read_naively(dir: &Path) -> Result<(Manifest, Vec<Edge>)> {
    let manifest = Manifest::load(dir)?;
    let mut edges = Vec::with_capacity(manifest.edges as usize);
    for path in manifest.file_paths(dir) {
        let file = std::fs::File::open(&path).map_err(|e| IoError::io(&path, e))?;
        for (lineno, line) in BufReader::new(file).lines().enumerate() {
            let line = line.map_err(|e| IoError::io(&path, e))?;
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split('\t');
            let parse = |s: Option<&str>| -> Result<u64> {
                s.and_then(|t| t.parse::<u64>().ok()).ok_or_else(|| {
                    Error::Storage(IoError::parse(&path, lineno as u64 + 1, "bad edge line"))
                })
            };
            let u = parse(parts.next())?;
            let v = parse(parts.next())?;
            if parts.next().is_some() {
                return Err(Error::Storage(IoError::parse(
                    &path,
                    lineno as u64 + 1,
                    "trailing fields",
                )));
            }
            edges.push(Edge::new(u, v));
        }
    }
    Ok((manifest, edges))
}

impl Backend for NaiveBackend {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn kernel0(&self, cfg: &PipelineConfig, dir: &Path) -> Result<Manifest> {
        let generator = kernel0::build_generator(cfg);
        let edges = generator.edges();
        write_naively(
            dir,
            &edges,
            cfg.num_files,
            Some(cfg.spec.scale()),
            Some(cfg.spec.num_vertices()),
            SortState::Unsorted,
        )
    }

    fn kernel1(&self, cfg: &PipelineConfig, in_dir: &Path, out_dir: &Path) -> Result<Manifest> {
        let (manifest, mut edges) = read_naively(in_dir)?;
        match cfg.sort_key {
            ppbench_sort::SortKey::Start => edges.sort_by_key(|e| e.u),
            ppbench_sort::SortKey::StartEnd => edges.sort_by_key(|e| (e.u, e.v)),
        }
        write_naively(
            out_dir,
            &edges,
            cfg.num_files,
            manifest.scale,
            manifest.vertex_bound,
            cfg.sort_key.sort_state(),
        )
    }

    fn kernel2(&self, cfg: &PipelineConfig, in_dir: &Path) -> Result<Kernel2Output> {
        let (manifest, edges) = read_naively(in_dir)?;
        require_sorted(&manifest, in_dir)?;
        // The dict-of-counts assembly.
        let mut counts: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        for e in &edges {
            *counts.entry((e.u, e.v)).or_insert(0) += 1;
        }
        let n = cfg.spec.num_vertices();
        let mut coo = Coo::with_capacity(n, n, counts.len());
        for (&(u, v), &c) in &counts {
            coo.push(u, v, c);
        }
        let (matrix, stats) = kernel2::filter_matrix(&coo.compress(), cfg.add_diagonal_to_empty);
        Ok(Kernel2Output { matrix, stats })
    }

    fn kernel3(&self, cfg: &PipelineConfig, matrix: &Csr<f64>) -> Result<kernel3::PageRankRun> {
        // The scripting-style SpMV: a plain loop over a triplet list.
        // Entries are visited in the same row-major order the optimized
        // scatter uses, so results agree bit for bit.
        let triplets: Vec<(u64, u64, f64)> = matrix.iter().collect();
        let n = cfg.spec.num_vertices() as usize;
        let multiply = |r: &[f64]| {
            let mut out = vec![0.0; n];
            for &(u, v, w) in &triplets {
                out[v as usize] += r[u as usize] * w;
            }
            out
        };
        let dangling = ppbench_sparse::ops::empty_rows(matrix);
        Ok(kernel3::run(
            kernel3::init_ranks(cfg.spec.num_vertices(), cfg.seed),
            multiply,
            &dangling,
            &cfg.pagerank_options(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::OptimizedBackend;
    use ppbench_io::tempdir::TempDir;
    use ppbench_io::EdgeReader;

    fn cfg(scale: u32) -> PipelineConfig {
        PipelineConfig::builder()
            .scale(scale)
            .edge_factor(8)
            .seed(3)
            .num_files(2)
            .build()
    }

    #[test]
    fn naive_files_readable_by_fast_reader() {
        let td = TempDir::new("ppbench-naive").unwrap();
        let cfg = cfg(5);
        let m = NaiveBackend.kernel0(&cfg, td.path()).unwrap();
        let (m2, edges) = EdgeReader::read_dir_all(td.path()).unwrap();
        assert_eq!(m2.digest, m.digest);
        assert_eq!(edges.len() as u64, cfg.spec.num_edges());
    }

    #[test]
    fn naive_kernel0_matches_optimized_stream() {
        // Same config ⇒ identical edge stream regardless of backend.
        let td = TempDir::new("ppbench-naive").unwrap();
        let cfg = cfg(5);
        let m_naive = NaiveBackend.kernel0(&cfg, &td.join("naive")).unwrap();
        let m_opt = OptimizedBackend.kernel0(&cfg, &td.join("opt")).unwrap();
        assert!(m_naive.digest.same_stream(&m_opt.digest));
    }

    #[test]
    fn naive_sort_is_stable_like_radix() {
        let td = TempDir::new("ppbench-naive").unwrap();
        let cfg = cfg(5);
        NaiveBackend.kernel0(&cfg, &td.join("k0")).unwrap();
        let m_naive = NaiveBackend
            .kernel1(&cfg, &td.join("k0"), &td.join("k1n"))
            .unwrap();
        let m_opt = OptimizedBackend
            .kernel1(&cfg, &td.join("k0"), &td.join("k1o"))
            .unwrap();
        // Both stable sorts on the same input: identical streams.
        assert!(m_naive.digest.same_stream(&m_opt.digest));
    }

    #[test]
    fn naive_chain_bit_identical_to_optimized() {
        let td = TempDir::new("ppbench-naive").unwrap();
        let cfg = cfg(6);
        NaiveBackend.kernel0(&cfg, &td.join("k0")).unwrap();
        NaiveBackend
            .kernel1(&cfg, &td.join("k0"), &td.join("k1"))
            .unwrap();
        let k2n = NaiveBackend.kernel2(&cfg, &td.join("k1")).unwrap();
        let k2o = OptimizedBackend.kernel2(&cfg, &td.join("k1")).unwrap();
        assert_eq!(k2n.matrix, k2o.matrix, "assembled matrices differ");
        assert_eq!(k2n.stats, k2o.stats);
        let rn = NaiveBackend.kernel3(&cfg, &k2n.matrix).unwrap().ranks;
        let ro = OptimizedBackend.kernel3(&cfg, &k2o.matrix).unwrap().ranks;
        assert_eq!(rn, ro, "serial backends must agree bit for bit");
    }

    #[test]
    fn malformed_line_reported_with_position() {
        let td = TempDir::new("ppbench-naive").unwrap();
        let cfg = cfg(4);
        NaiveBackend.kernel0(&cfg, td.path()).unwrap();
        // Corrupt the first file.
        let m = Manifest::load(td.path()).unwrap();
        let path = td.path().join(&m.files[0].name);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("not\tanedge\n");
        std::fs::write(&path, text).unwrap();
        let err = read_naively(td.path()).unwrap_err();
        assert!(err.to_string().contains("bad edge line"), "{err}");
    }
}
