//! The rayon-parallel backend — the paper's stated future work.
//!
//! "It is expected that measurements of Kernel 3 in a parallel
//! implementation will show a wider dispersion in performance between the
//! languages" (§IV). This backend parallelizes what the paper's
//! decomposition discussion describes: chunked deterministic generation,
//! parallel sort, and the gather-form SpMV where "each processor would
//! compute its own value of r".
//!
//! Output is identical to the serial backends except kernel 3, where the
//! gather form reassociates floating-point sums (bounded by a few ulps per
//! entry — the integration tests pin the tolerance).

use std::path::Path;

use ppbench_io::Manifest;
use ppbench_sort::Algorithm;
use ppbench_sparse::{spmv, Csr, Csr32};

use crate::backend::{Backend, Kernel2Output};
use crate::config::PipelineConfig;
use crate::error::Result;
use crate::{kernel0, kernel1, kernel3};

/// rayon-parallel implementation of the four kernels.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelBackend;

impl Backend for ParallelBackend {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn kernel0(&self, cfg: &PipelineConfig, dir: &Path) -> Result<Manifest> {
        let generator = kernel0::build_generator(cfg);
        // Deterministic sharded generation + one writer per output file:
        // identical bytes and digest to the serial stream, with peak
        // resident memory of O(chunk × threads) instead of the full edge
        // list.
        kernel0::write_sharded(&generator, cfg, dir)
    }

    fn kernel1(&self, cfg: &PipelineConfig, in_dir: &Path, out_dir: &Path) -> Result<Manifest> {
        kernel1::sort_file_set(
            in_dir,
            out_dir,
            cfg.num_files,
            cfg.sort_key,
            Algorithm::Parallel,
            cfg.sort_budget_bytes,
        )
    }

    fn kernel2(&self, cfg: &PipelineConfig, in_dir: &Path) -> Result<Kernel2Output> {
        crate::backend::kernel2_streamed(cfg, in_dir)
    }

    fn kernel3(&self, cfg: &PipelineConfig, matrix: &Csr<f64>) -> Result<kernel3::PageRankRun> {
        // Precompute the transpose once (gather layout) and partition its
        // rows into chunks of ~equal nonzero count, so one hub vertex of
        // the power-law graph cannot serialize a whole chunk. Each
        // iteration is then a single fused sweep — gather, epilogue, and
        // L1-delta accumulation in one pass over the output buffer
        // (`spmv::step_fused`), ping-ponged by `kernel3::run_into` with
        // zero O(N) allocation per iteration. Column indices narrow to
        // `u32` whenever the vertex count fits (every paper scale),
        // halving index bandwidth.
        let at = matrix.transpose();
        let dangling = kernel3::DanglingInfo::from_mask(&ppbench_sparse::ops::empty_rows(matrix));
        let r0 = kernel3::init_ranks(cfg.spec.num_vertices(), cfg.seed);
        let opts = cfg.pagerank_options();
        let chunks = rayon::current_num_threads().max(1);
        let boundaries = spmv::balanced_boundaries(at.row_ptr(), chunks);
        Ok(match Csr32::try_from_wide(&at) {
            Some(narrow) => kernel3::run_into(
                r0,
                |r, next, coeffs| spmv::step_fused(r, &narrow.view(), next, coeffs, &boundaries),
                &dangling,
                &opts,
            ),
            None => kernel3::run_into(
                r0,
                |r, next, coeffs| spmv::step_fused(r, &at.view(), next, coeffs, &boundaries),
                &dangling,
                &opts,
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::OptimizedBackend;
    use ppbench_io::tempdir::TempDir;

    fn cfg(scale: u32) -> PipelineConfig {
        PipelineConfig::builder()
            .scale(scale)
            .edge_factor(8)
            .seed(3)
            .num_files(2)
            .build()
    }

    #[test]
    fn parallel_kernel0_identical_to_serial() {
        let td = TempDir::new("ppbench-par").unwrap();
        let cfg = cfg(6);
        let m_par = ParallelBackend.kernel0(&cfg, &td.join("par")).unwrap();
        let m_opt = OptimizedBackend.kernel0(&cfg, &td.join("opt")).unwrap();
        assert!(m_par.digest.same_stream(&m_opt.digest));
    }

    #[test]
    fn parallel_sort_correct_even_if_unstable() {
        let td = TempDir::new("ppbench-par").unwrap();
        let cfg = cfg(6);
        ParallelBackend.kernel0(&cfg, &td.join("k0")).unwrap();
        let m = ParallelBackend
            .kernel1(&cfg, &td.join("k0"), &td.join("k1"))
            .unwrap();
        assert!(m.sort_state.is_sorted_by_start());
        // Multiset preserved vs input (stream may differ from stable sorts).
        let m0 = Manifest::load(&td.join("k0")).unwrap();
        assert!(m.digest.same_multiset(&m0.digest));
    }

    #[test]
    fn parallel_kernel2_matrix_identical() {
        // The matrix does not depend on edge order within a start vertex,
        // so even after an unstable parallel sort it matches.
        let td = TempDir::new("ppbench-par").unwrap();
        let cfg = cfg(6);
        ParallelBackend.kernel0(&cfg, &td.join("k0")).unwrap();
        ParallelBackend
            .kernel1(&cfg, &td.join("k0"), &td.join("k1p"))
            .unwrap();
        OptimizedBackend
            .kernel1(&cfg, &td.join("k0"), &td.join("k1o"))
            .unwrap();
        let k2p = ParallelBackend.kernel2(&cfg, &td.join("k1p")).unwrap();
        let k2o = OptimizedBackend.kernel2(&cfg, &td.join("k1o")).unwrap();
        assert_eq!(k2p.matrix, k2o.matrix);
        assert_eq!(k2p.stats, k2o.stats);
    }

    #[test]
    fn parallel_kernel3_agrees_within_float_tolerance() {
        // The acceptance bar for the balanced-fused path: within 1e-12 L1
        // of the serial backend at scale 7 under every dangling strategy.
        let td = TempDir::new("ppbench-par").unwrap();
        let base = cfg(7);
        OptimizedBackend.kernel0(&base, &td.join("k0")).unwrap();
        OptimizedBackend
            .kernel1(&base, &td.join("k0"), &td.join("k1"))
            .unwrap();
        let k2 = OptimizedBackend.kernel2(&base, &td.join("k1")).unwrap();
        for strategy in [
            kernel3::DanglingStrategy::Omit,
            kernel3::DanglingStrategy::Redistribute,
            kernel3::DanglingStrategy::Sink,
        ] {
            let cfg = PipelineConfig::builder()
                .scale(7)
                .edge_factor(8)
                .seed(3)
                .num_files(2)
                .dangling(strategy)
                .build();
            let r_par = ParallelBackend.kernel3(&cfg, &k2.matrix).unwrap().ranks;
            let r_opt = OptimizedBackend.kernel3(&cfg, &k2.matrix).unwrap().ranks;
            let dist = ppbench_sparse::vector::l1_distance(&r_par, &r_opt);
            assert!(dist < 1e-12, "{strategy:?} gather/scatter L1 gap {dist}");
        }
    }
}
