//! Workload selection — what runs in the kernel-3 slot.
//!
//! The paper measures the pipeline with PageRank in kernel 3; the GAP
//! Benchmark Suite argues a credible graph benchmark needs more than one
//! data-access pattern. A [`Workload`] picks which analytic consumes the
//! kernel-2 matrix: the spec's PageRank (default), or one of the
//! `ppbench-algo` kernels (BFS, connected components, SSSP, triangle
//! counting). Kernels 0–2 are identical in every case — the workload only
//! swaps the compute stage, so per-workload timings are directly
//! comparable over the same data.
//!
//! The `variant` axis keeps its meaning: [`crate::Variant::Naive`] runs
//! the workload's serial oracle, every other variant its optimized
//! implementation — the same style split the PageRank backends encode.

use ppbench_algo::{bfs, cc, sssp, tc, Graph};
use ppbench_sparse::Csr;

use crate::backend::Variant;
use crate::config::PipelineConfig;
use crate::error::{Error, Result};

/// Number of work chunks the optimized workload kernels decompose into.
/// Fixed (not derived from the machine) so results and work decomposition
/// are environment-independent; the chunks execute on however many pool
/// threads exist.
pub const WORKLOAD_CHUNKS: usize = 64;

/// The analytic that runs in the kernel-3 slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Workload {
    /// The spec's 20-iteration PageRank (the default).
    #[default]
    PageRank,
    /// Direction-optimizing breadth-first search from a seeded source.
    Bfs,
    /// Connected components of the undirected view.
    Cc,
    /// Delta-stepping single-source shortest paths over derived weights.
    Sssp,
    /// Triangle count of the undirected view.
    Tc,
}

impl Workload {
    /// Every workload, in CLI/documentation order.
    pub const ALL: [Workload; 5] = [
        Workload::PageRank,
        Workload::Bfs,
        Workload::Cc,
        Workload::Sssp,
        Workload::Tc,
    ];

    /// Stable name used by the CLI, the serve API, and run records.
    pub fn name(self) -> &'static str {
        match self {
            Workload::PageRank => "pagerank",
            Workload::Bfs => "bfs",
            Workload::Cc => "cc",
            Workload::Sssp => "sssp",
            Workload::Tc => "tc",
        }
    }

    /// Parses a [`Workload::name`]; `None` for unknown names.
    pub fn parse(s: &str) -> Option<Workload> {
        Workload::ALL.into_iter().find(|w| w.name() == s)
    }
}

/// Outcome of an analytics (non-PageRank) workload run.
#[derive(Debug, Clone)]
pub struct AlgoOutcome {
    /// The per-vertex output vector — BFS depths or CC labels widened to
    /// `u64`, SSSP distances, or the single-element triangle count.
    pub values: Vec<u64>,
    /// Headline statistic (see `stat_name`).
    pub stat: u64,
    /// What `stat` counts: `"reached"` (BFS/SSSP), `"components"` (CC),
    /// `"triangles"` (TC).
    pub stat_name: &'static str,
    /// Source vertex, for the traversal workloads.
    pub source: Option<u64>,
    /// FNV-1a fingerprint of `values` — the cross-run determinism handle.
    pub checksum: u64,
    /// Work items for the timing rate (directed edges examined bound:
    /// `m`, matching the paper's edges/second metric).
    pub work_items: u64,
}

/// Runs the configured analytics workload on the kernel-2 matrix pattern.
///
/// # Errors
///
/// [`Error::Contract`] when called with [`Workload::PageRank`] (that path
/// belongs to the backends) or when the matrix cannot be adapted (vertex
/// ids beyond `u32`).
pub fn run_algo(cfg: &PipelineConfig, matrix: &Csr<f64>) -> Result<AlgoOutcome> {
    let graph = Graph::from_adjacency(matrix.rows(), matrix.row_ptr(), matrix.col_indices())
        .map_err(Error::Contract)?;
    let serial = cfg.variant == Variant::Naive;
    let chunks = WORKLOAD_CHUNKS;
    let m = graph.num_edges() as u64;
    let (values, stat, stat_name, source) = match cfg.workload {
        Workload::PageRank => {
            return Err(Error::Contract(
                "pagerank runs through the kernel-3 backends, not run_algo".to_string(),
            ))
        }
        Workload::Bfs => {
            let src = ppbench_algo::pick_source(&graph, cfg.seed);
            let depths = if serial {
                bfs::bfs_serial(&graph, src)
            } else {
                bfs::bfs(&graph, src, chunks)
            };
            let reached = depths
                .iter()
                .filter(|&&d| d != ppbench_algo::UNREACHED)
                .count() as u64;
            let values: Vec<u64> = depths.into_iter().map(u64::from).collect();
            (values, reached, "reached", Some(u64::from(src)))
        }
        Workload::Cc => {
            let labels = if serial {
                cc::cc_serial(&graph)
            } else {
                cc::cc(&graph, chunks)
            };
            let components = labels
                .iter()
                .enumerate()
                .filter(|&(v, &l)| v as u32 == l)
                .count() as u64;
            let values: Vec<u64> = labels.into_iter().map(u64::from).collect();
            (values, components, "components", None)
        }
        Workload::Sssp => {
            let src = ppbench_algo::pick_source(&graph, cfg.seed);
            let dists = if serial {
                sssp::sssp_serial(&graph, src, cfg.seed)
            } else {
                sssp::sssp(&graph, src, cfg.seed, chunks)
            };
            let reached = dists
                .iter()
                .filter(|&&d| d != ppbench_algo::UNREACHED_DIST)
                .count() as u64;
            (dists, reached, "reached", Some(u64::from(src)))
        }
        Workload::Tc => {
            let count = if serial {
                tc::tc_serial(&graph)
            } else {
                tc::tc(&graph, chunks)
            };
            (vec![count], count, "triangles", None)
        }
    };
    let checksum = ppbench_algo::checksum_u64s(&values);
    Ok(AlgoOutcome {
        values,
        stat,
        stat_name,
        source,
        checksum,
        work_items: m.max(1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for w in Workload::ALL {
            assert_eq!(Workload::parse(w.name()), Some(w));
        }
        assert_eq!(Workload::parse("page-rank"), None);
        assert_eq!(Workload::parse(""), None);
        assert_eq!(Workload::default(), Workload::PageRank);
    }

    fn matrix() -> Csr<f64> {
        // 0→1, 1→2, 2→0 cycle plus 3 isolated.
        let mut coo = ppbench_sparse::Coo::<f64>::new(4, 4);
        coo.push(0, 1, 1.0);
        coo.push(1, 2, 1.0);
        coo.push(2, 0, 1.0);
        coo.compress()
    }

    #[test]
    fn pagerank_is_not_dispatched_here() {
        let cfg = PipelineConfig::builder().build();
        assert!(matches!(run_algo(&cfg, &matrix()), Err(Error::Contract(_))));
    }

    #[test]
    fn every_algo_workload_runs_on_a_small_matrix() {
        for w in [Workload::Bfs, Workload::Cc, Workload::Sssp, Workload::Tc] {
            for variant in [Variant::Optimized, Variant::Naive] {
                let cfg = PipelineConfig::builder()
                    .workload(w)
                    .variant(variant)
                    .seed(3)
                    .build();
                let out = run_algo(&cfg, &matrix()).unwrap();
                match w {
                    Workload::Bfs | Workload::Sssp => {
                        assert_eq!(out.values.len(), 4);
                        assert_eq!(out.stat, 3, "cycle reaches all three members");
                        assert!(out.source.is_some());
                    }
                    Workload::Cc => {
                        assert_eq!(out.values.len(), 4);
                        assert_eq!(out.stat, 2, "cycle component + isolated vertex");
                    }
                    Workload::Tc => {
                        assert_eq!(
                            out.values,
                            vec![1],
                            "the directed 3-cycle symmetrizes to one triangle"
                        );
                    }
                    Workload::PageRank => unreachable!(),
                }
            }
        }
    }

    #[test]
    fn naive_and_optimized_agree_bitwise() {
        for w in [Workload::Bfs, Workload::Cc, Workload::Sssp, Workload::Tc] {
            let opt = run_algo(
                &PipelineConfig::builder().workload(w).seed(9).build(),
                &matrix(),
            )
            .unwrap();
            let naive = run_algo(
                &PipelineConfig::builder()
                    .workload(w)
                    .seed(9)
                    .variant(Variant::Naive)
                    .build(),
                &matrix(),
            )
            .unwrap();
            assert_eq!(opt.values, naive.values, "{}", w.name());
            assert_eq!(opt.checksum, naive.checksum);
        }
    }
}
