//! Results of a pipeline run: per-kernel timings, statistics and metrics.

use ppbench_io::checksum::EdgeDigest;
use ppbench_io::SortState;

use crate::kernel2::FilterStats;
use crate::timing::KernelTiming;
use crate::validate::ValidationReport;

/// Kernel 0 (generate + write) outcome. The spec leaves kernel 0 untimed;
/// the timing is recorded anyway because the paper's Figure 4 plots it.
#[derive(Debug, Clone)]
pub struct Kernel0Result {
    /// Wall-clock and edges/second for generate+write.
    pub timing: KernelTiming,
    /// Edges written.
    pub edges: u64,
    /// Files written.
    pub files: usize,
    /// Stream digest of what was written.
    pub digest: EdgeDigest,
}

/// Kernel 1 (sort) outcome.
#[derive(Debug, Clone)]
pub struct Kernel1Result {
    /// Wall-clock and edges/second (the official kernel-1 metric).
    pub timing: KernelTiming,
    /// Digest of the sorted stream.
    pub digest: EdgeDigest,
    /// Sort order established.
    pub sort_state: SortState,
    /// Whether the out-of-core path ran.
    pub out_of_core: bool,
}

/// Kernel 2 (filter) outcome.
#[derive(Debug, Clone)]
pub struct Kernel2Result {
    /// Wall-clock and edges/second (the official kernel-2 metric).
    pub timing: KernelTiming,
    /// Filter statistics (super-node/leaf columns, dangling rows, …).
    pub stats: FilterStats,
}

/// Kernel 3 (PageRank) outcome.
#[derive(Debug, Clone)]
pub struct Kernel3Result {
    /// Wall-clock; the work-item count is `iterations × M`, so
    /// [`KernelTiming::rate`] is the paper's "edges processed per second".
    pub timing: KernelTiming,
    /// The final rank vector (not normalized; see `mass`).
    pub ranks: Vec<f64>,
    /// L1 mass retained (1.0 without dangling leakage).
    pub mass: f64,
    /// Iterations actually performed (equals the configured count unless a
    /// convergence tolerance stopped the run early).
    pub iterations: u32,
    /// L1 change of the final iteration (∞ until one iteration has run;
    /// only tracked when a tolerance is configured, else the last measured
    /// value or ∞).
    pub final_delta: f64,
}

impl Kernel3Result {
    /// The `k` highest-ranked vertices as `(vertex, rank)` pairs,
    /// descending.
    pub fn top_k(&self, k: usize) -> Vec<(u64, f64)> {
        let mut pairs: Vec<(u64, f64)> = self
            .ranks
            .iter()
            .enumerate()
            .map(|(i, &r)| (i as u64, r))
            .collect();
        pairs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs.truncate(k);
        pairs
    }
}

/// Analytics-workload (kernel-3 slot, non-PageRank) outcome.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Workload name (`"bfs"`, `"cc"`, `"sssp"`, `"tc"`).
    pub workload: &'static str,
    /// Wall-clock; work items are `M` so [`KernelTiming::rate`] stays the
    /// paper's edges/second.
    pub timing: KernelTiming,
    /// Length of the output vector (vertex count; 1 for TC).
    pub output_len: usize,
    /// Headline statistic (see `stat_name`).
    pub stat: u64,
    /// What `stat` counts: `"reached"`, `"components"`, or `"triangles"`.
    pub stat_name: &'static str,
    /// Source vertex, for the traversal workloads.
    pub source: Option<u64>,
    /// FNV-1a fingerprint of the output vector — the determinism handle
    /// run records and benches compare.
    pub checksum: u64,
}

/// Complete outcome of a pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// One-line description of the configuration that ran.
    pub config: String,
    /// Scale factor.
    pub scale: u32,
    /// Edge count `M`.
    pub edges: u64,
    /// Backend name.
    pub variant: &'static str,
    /// Name of the kernel-3-slot workload that ran (or would run).
    pub workload: &'static str,
    /// Kernel 0 outcome (`None` if the run stopped before it).
    pub kernel0: Option<Kernel0Result>,
    /// Kernel 1 outcome.
    pub kernel1: Option<Kernel1Result>,
    /// Kernel 2 outcome.
    pub kernel2: Option<Kernel2Result>,
    /// Kernel 3 outcome (PageRank workload only).
    pub kernel3: Option<Kernel3Result>,
    /// Analytics-workload outcome (non-PageRank workloads only).
    pub algo: Option<WorkloadResult>,
    /// Validation report, when validation ran.
    pub validation: Option<ValidationReport>,
}

impl PipelineResult {
    /// Multi-line human-readable summary in the shape of the paper's
    /// per-kernel reporting.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("pipeline: {}\n", self.config));
        if let Some(k) = &self.kernel0 {
            out.push_str(&format!(
                "  K0 generate: {} ({} edges, {} files) [untimed by spec]\n",
                k.timing, k.edges, k.files
            ));
        }
        if let Some(k) = &self.kernel1 {
            out.push_str(&format!(
                "  K1 sort:     {}{}\n",
                k.timing,
                if k.out_of_core { " [out-of-core]" } else { "" }
            ));
        }
        if let Some(k) = &self.kernel2 {
            out.push_str(&format!(
                "  K2 filter:   {} (nnz {} -> {}, supernode cols {}, leaf cols {})\n",
                k.timing,
                k.stats.nnz_before,
                k.stats.nnz_after,
                k.stats.supernode_columns,
                k.stats.leaf_columns
            ));
        }
        if let Some(k) = &self.kernel3 {
            out.push_str(&format!(
                "  K3 pagerank: {} (mass {:.6})\n",
                k.timing, k.mass
            ));
        }
        if let Some(k) = &self.algo {
            out.push_str(&format!(
                "  K3 {}: {} ({} {}, checksum {:016x})\n",
                k.workload, k.timing, k.stat, k.stat_name, k.checksum
            ));
        }
        if let Some(v) = &self.validation {
            out.push_str(&format!("  validation:  {}\n", v.summary_line()));
        }
        out
    }

    /// CSV header matching [`PipelineResult::csv_row`].
    pub fn csv_header() -> &'static str {
        "variant,scale,edges,k0_secs,k0_eps,k1_secs,k1_eps,k2_secs,k2_eps,k3_secs,k3_eps"
    }

    /// One CSV row of the run's timings and rates (empty fields for kernels
    /// that did not run).
    pub fn csv_row(&self) -> String {
        fn cell(t: Option<&KernelTiming>) -> String {
            t.map_or(",".to_string(), |t| {
                format!("{:.6},{:.1}", t.seconds, t.rate())
            })
        }
        format!(
            "{},{},{},{},{},{},{}",
            self.variant,
            self.scale,
            self.edges,
            cell(self.kernel0.as_ref().map(|k| &k.timing)),
            cell(self.kernel1.as_ref().map(|k| &k.timing)),
            cell(self.kernel2.as_ref().map(|k| &k.timing)),
            cell(self.kernel3.as_ref().map(|k| &k.timing)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k3(ranks: Vec<f64>) -> Kernel3Result {
        let mass = ranks.iter().sum();
        Kernel3Result {
            timing: KernelTiming::new(1.0, 100),
            ranks,
            mass,
            iterations: 20,
            final_delta: f64::INFINITY,
        }
    }

    #[test]
    fn top_k_orders_descending_with_stable_ties() {
        let r = k3(vec![0.1, 0.4, 0.4, 0.05, 0.05]);
        let top = r.top_k(3);
        assert_eq!(top[0].0, 1, "tie at 0.4 broken by lower vertex id");
        assert_eq!(top[1].0, 2);
        assert_eq!(top[2].0, 0);
    }

    #[test]
    fn top_k_truncates_and_handles_oversize() {
        let r = k3(vec![0.5, 0.5]);
        assert_eq!(r.top_k(10).len(), 2);
        assert_eq!(r.top_k(0).len(), 0);
    }

    #[test]
    fn summary_mentions_all_present_kernels() {
        let result = PipelineResult {
            config: "test".into(),
            scale: 4,
            edges: 64,
            variant: "optimized",
            workload: "pagerank",
            kernel0: None,
            kernel1: None,
            kernel2: None,
            kernel3: Some(k3(vec![1.0])),
            algo: None,
            validation: None,
        };
        let s = result.summary();
        assert!(s.contains("K3 pagerank"), "{s}");
        assert!(!s.contains("K0"), "{s}");
    }

    #[test]
    fn summary_reports_algo_workloads() {
        let result = PipelineResult {
            config: "test".into(),
            scale: 4,
            edges: 64,
            variant: "optimized",
            workload: "bfs",
            kernel0: None,
            kernel1: None,
            kernel2: None,
            kernel3: None,
            algo: Some(WorkloadResult {
                workload: "bfs",
                timing: KernelTiming::new(0.5, 64),
                output_len: 16,
                stat: 12,
                stat_name: "reached",
                source: Some(3),
                checksum: 0xdead_beef,
            }),
            validation: None,
        };
        let s = result.summary();
        assert!(s.contains("K3 bfs"), "{s}");
        assert!(s.contains("12 reached"), "{s}");
        assert!(!s.contains("pagerank"), "{s}");
    }

    #[test]
    fn csv_row_has_fixed_field_count() {
        let result = PipelineResult {
            config: "test".into(),
            scale: 4,
            edges: 64,
            variant: "naive",
            workload: "pagerank",
            kernel0: None,
            kernel1: None,
            kernel2: None,
            kernel3: Some(k3(vec![1.0])),
            algo: None,
            validation: None,
        };
        let header_fields = PipelineResult::csv_header().split(',').count();
        let row_fields = result.csv_row().split(',').count();
        assert_eq!(header_fields, row_fields);
    }
}
