//! The PageRank Pipeline Benchmark: kernels 0–3, pipeline orchestration,
//! timing, and validation.
//!
//! The benchmark (Dreher et al., IPPS 2016) is four mathematically specified
//! kernels run as a pipeline, each fully completing before the next begins:
//!
//! * **Kernel 0 — Generate.** Emit `M = k·2^S` edges of an approximately
//!   power-law graph (Graph500 generator) and write them to files as
//!   tab-separated vertex pairs. Untimed in the official metric, measured
//!   anyway for the paper's Figure 4.
//! * **Kernel 1 — Sort.** Read the files, sort edges by start vertex,
//!   rewrite them. Metric: edges/second.
//! * **Kernel 2 — Filter.** Read the sorted files, assemble the `N×N`
//!   adjacency matrix (duplicates accumulate), compute in-degrees, zero the
//!   max-in-degree column(s) (super-node) and in-degree-1 columns (leaves),
//!   and divide each row by its out-degree. Metric: edges/second.
//! * **Kernel 3 — PageRank.** 20 iterations of
//!   `r ← c·(r·A) + (1−c)·sum(r)/N`, `c = 0.85`. Metric: 20·edges/second.
//!
//! The paper evaluates the same spec implemented in six languages; this
//! crate reproduces that axis as four [`backend`]s — [`Variant::Optimized`]
//! (tuned native), [`Variant::Naive`] (line-at-a-time interpreter style),
//! [`Variant::Dataframe`] (columnar, on `ppbench-frame`), and
//! [`Variant::Parallel`] (rayon, the paper's stated future work) — all of
//! which must produce *identical ranks* up to floating-point reassociation,
//! which [`validate`] checks.
//!
//! # Quickstart
//!
//! ```
//! use ppbench_core::{Pipeline, PipelineConfig};
//!
//! let cfg = PipelineConfig::builder().scale(7).seed(42).build();
//! let dir = std::env::temp_dir().join(format!("ppbench-core-doc-{}", std::process::id()));
//! let result = Pipeline::new(cfg, &dir).run().unwrap();
//! println!("{}", result.summary());
//! std::fs::remove_dir_all(&dir).ok();
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod backend;
mod config;
mod error;
pub mod fused;
pub mod json;
pub mod kernel0;
pub mod kernel1;
pub mod kernel2;
pub mod kernel3;
pub mod model;
mod pipeline;
pub mod rank;
pub mod report;
mod results;
pub mod table;
mod timing;
pub mod validate;
pub mod workload;

pub use backend::Variant;
pub use config::{PipelineConfig, PipelineConfigBuilder, ValidationLevel};
pub use error::{Error, Result};
pub use fused::FusedOutcome;
pub use kernel3::DanglingStrategy;
pub use pipeline::{NoopObserver, Pipeline, PipelineObserver};
pub use report::RunRecord;
pub use results::{Kernel0Result, Kernel1Result, Kernel2Result, Kernel3Result, PipelineResult};
pub use timing::{timed, KernelTiming, Stopwatch};
pub use workload::Workload;

/// The damping factor `c` fixed by the benchmark specification.
pub const DAMPING: f64 = 0.85;

/// The iteration count fixed by the benchmark specification.
pub const ITERATIONS: u32 = 20;
