//! Kernel 0 — Generate Graph: shared machinery.
//!
//! "Kernel 0 generates a list of edges from an approximately power-law graph
//! using the Graph500 graph generator […] After the edges are generated they
//! are written to files on non-volatile storage as pairs of tab separated
//! numeric strings." The generation itself is untimed by the spec; the
//! write is what Figure 4 measures.

use ppbench_gen::{EdgeGenerator, GeneratorKind, Kronecker};

use crate::config::PipelineConfig;

/// Builds the configured edge generator, honoring the vertex-permutation
/// and edge-shuffle toggles (which only the Kronecker generator has — the
/// alternatives are deterministic by design).
pub fn build_generator(cfg: &PipelineConfig) -> Box<dyn EdgeGenerator + Send + Sync> {
    match cfg.generator {
        GeneratorKind::Kronecker => {
            let mut g = Kronecker::new(cfg.spec, cfg.seed);
            if !cfg.permute_vertices {
                g = g.without_vertex_permutation();
            }
            if cfg.shuffle_edges {
                g = g.with_edge_shuffle();
            }
            Box::new(g)
        }
        other => other.build(cfg.spec, cfg.seed),
    }
}

/// Chunk size used when streaming generation into the writer; large enough
/// to amortize per-chunk overhead, small enough to keep the resident buffer
/// modest.
pub const GENERATION_CHUNK: u64 = 1 << 16;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PipelineConfig;
    use ppbench_gen::degree;

    fn cfg(scale: u32) -> PipelineConfig {
        PipelineConfig::builder()
            .scale(scale)
            .edge_factor(4)
            .seed(5)
            .build()
    }

    #[test]
    fn generator_respects_spec() {
        let cfg = cfg(6);
        let g = build_generator(&cfg);
        assert_eq!(g.spec(), cfg.spec);
        assert_eq!(g.edges().len() as u64, cfg.spec.num_edges());
    }

    #[test]
    fn permute_toggle_changes_labels() {
        let base = cfg(8);
        let permuted = build_generator(&base).edges();
        let mut no_perm_cfg = PipelineConfig::builder()
            .scale(8)
            .edge_factor(4)
            .seed(5)
            .permute_vertices(false)
            .build();
        no_perm_cfg.validation = base.validation;
        let raw = build_generator(&no_perm_cfg).edges();
        assert_ne!(permuted, raw);
        // Raw R-MAT concentrates on vertex 0.
        let din = degree::in_degrees(&raw, 256);
        let argmax = (0..256).max_by_key(|&i| din[i as usize]).unwrap();
        assert_eq!(argmax, 0);
    }

    #[test]
    fn alternative_generators_selectable() {
        for kind in ppbench_gen::GeneratorKind::ALL {
            let cfg = PipelineConfig::builder()
                .scale(5)
                .edge_factor(2)
                .generator(kind)
                .build();
            let g = build_generator(&cfg);
            assert_eq!(g.edges().len(), 64);
        }
    }
}
