//! Kernel 0 — Generate Graph: shared machinery.
//!
//! "Kernel 0 generates a list of edges from an approximately power-law graph
//! using the Graph500 graph generator […] After the edges are generated they
//! are written to files on non-volatile storage as pairs of tab separated
//! numeric strings." The generation itself is untimed by the spec; the
//! write is what Figure 4 measures.

use std::path::Path;

use ppbench_gen::{
    chunk_ranges, EdgeGenerator, GeneratorKind, Kronecker, LinearKronecker, RmatSampler,
};
use ppbench_io::checksum::EdgeDigest;
use ppbench_io::{EdgeEncoding, EdgeWriter, FileEntry, Manifest, ShardWriter, SortState};

use crate::config::PipelineConfig;
use crate::error::Result;

/// Builds the configured edge generator, honoring the vertex-permutation
/// and edge-shuffle toggles (which only the Kronecker generator has — the
/// alternatives are deterministic by design).
pub fn build_generator(cfg: &PipelineConfig) -> Box<dyn EdgeGenerator + Send + Sync> {
    match cfg.generator {
        GeneratorKind::Kronecker => match cfg.gen {
            RmatSampler::Faithful => {
                let mut g = Kronecker::new(cfg.spec, cfg.seed);
                if !cfg.permute_vertices {
                    g = g.without_vertex_permutation();
                }
                if cfg.shuffle_edges {
                    g = g.with_edge_shuffle();
                }
                Box::new(g)
            }
            RmatSampler::Linear => {
                let mut g = LinearKronecker::new(cfg.spec, cfg.seed);
                if !cfg.permute_vertices {
                    g = g.without_vertex_permutation();
                }
                if cfg.shuffle_edges {
                    g = g.with_edge_shuffle();
                }
                Box::new(g)
            }
        },
        other => other.build(cfg.spec, cfg.seed),
    }
}

/// Chunk size used when streaming generation into the writer; large enough
/// to amortize per-chunk overhead, small enough to keep the resident buffer
/// modest.
pub const GENERATION_CHUNK: u64 = 1 << 16;

/// Streams the full edge stream serially through one [`EdgeWriter`],
/// materializing at most [`GENERATION_CHUNK`] edges at a time.
///
/// The shared kernel-0 body of the serial native backends.
pub fn write_streamed(
    generator: &dyn EdgeGenerator,
    cfg: &PipelineConfig,
    dir: &Path,
) -> Result<Manifest> {
    let m = cfg.spec.num_edges();
    let mut writer = EdgeWriter::create(dir, "edges", cfg.num_files, m)?;
    let mut chunk = Vec::new();
    for (lo, hi) in chunk_ranges(0, m, GENERATION_CHUNK) {
        generator.edges_into(&mut chunk, lo, hi);
        writer.write_all(&chunk)?;
    }
    Ok(writer.finish(
        Some(cfg.spec.scale()),
        Some(cfg.spec.num_vertices()),
        SortState::Unsorted,
    )?)
}

/// Ingests an on-disk plain TSV edge list (`u<TAB>v` per line, `#`
/// comments allowed) as the kernel-0 output, in place of the generator:
/// the edges are rewritten into `dir` in the standard kernel-file layout
/// so kernels 1–3 run unchanged on real-world graphs.
///
/// Vertex ids must lie below the configured `2^scale` bound — the
/// downstream kernels size the adjacency matrix from the spec — and the
/// edge count becomes whatever the file holds (recorded in the manifest;
/// callers must take `M` from there, not from the spec).
///
/// # Errors
///
/// Parse/I/O failures from the TSV reader, or [`crate::Error::Contract`]
/// when a vertex id is out of range or the file holds no edges.
pub fn ingest_tsv(cfg: &PipelineConfig, path: &Path, dir: &Path) -> Result<Manifest> {
    let frame = ppbench_frame::read_plain_tsv(path)?;
    let edges = ppbench_frame::frame_to_edges(&frame)?;
    if edges.is_empty() {
        return Err(crate::Error::Contract(format!(
            "input TSV {} holds no edges",
            path.display()
        )));
    }
    let n = cfg.spec.num_vertices();
    if let Some(e) = edges.iter().find(|e| e.u >= n || e.v >= n) {
        return Err(crate::Error::Contract(format!(
            "input TSV {} has edge ({}, {}) outside the scale-{} vertex bound {}",
            path.display(),
            e.u,
            e.v,
            cfg.spec.scale(),
            n
        )));
    }
    let mut writer = EdgeWriter::create(dir, "edges", cfg.num_files, edges.len() as u64)?;
    writer.write_all(&edges)?;
    Ok(writer.finish(Some(cfg.spec.scale()), Some(n), SortState::Unsorted)?)
}

/// Generates and writes the edge stream through `cfg.num_files` parallel
/// [`ShardWriter`]s, one per output file, each streaming its contiguous
/// slice of the stream in [`GENERATION_CHUNK`] pieces.
///
/// Peak resident memory is O(chunk × threads) instead of the whole edge
/// list. Shard `i` covers stream positions `[i·cap, (i+1)·cap)` with
/// `cap = ⌈M / num_files⌉` — exactly the file layout [`EdgeWriter`]
/// produces — and the per-shard digests are folded in file order with
/// [`EdgeDigest::concat`], so the resulting file set (bytes, manifest, and
/// digest) is identical to a serial [`write_streamed`] pass.
pub fn write_sharded(
    generator: &(dyn EdgeGenerator + Sync),
    cfg: &PipelineConfig,
    dir: &Path,
) -> Result<Manifest> {
    use rayon::prelude::*;
    let m = cfg.spec.num_edges();
    let num_files = cfg.num_files;
    let cap = m.div_ceil(num_files as u64).max(1);
    let shards: Vec<usize> = (0..num_files).collect();
    let parts: Vec<ppbench_io::Result<(FileEntry, EdgeDigest)>> = shards
        .into_par_iter()
        .map(|i| {
            let lo = (i as u64).saturating_mul(cap).min(m);
            let hi = lo.saturating_add(cap).min(m);
            let mut w = ShardWriter::create(dir, "edges", i, EdgeEncoding::Text, true)?;
            let mut chunk = Vec::new();
            for (clo, chi) in chunk_ranges(lo, hi, GENERATION_CHUNK) {
                generator.edges_into(&mut chunk, clo, chi);
                w.write_all(&chunk)?;
            }
            w.finish()
        })
        .collect();
    let mut digest = EdgeDigest::new();
    let mut files = Vec::with_capacity(num_files);
    for part in parts {
        let (entry, shard_digest) = part?;
        digest = digest.concat(&shard_digest);
        files.push(entry);
    }
    let manifest = Manifest {
        scale: Some(cfg.spec.scale()),
        vertex_bound: Some(cfg.spec.num_vertices()),
        edges: digest.count,
        sort_state: SortState::Unsorted,
        encoding: EdgeEncoding::Text,
        digest,
        files,
    };
    ppbench_io::publish_manifest(dir, &manifest, true)?;
    Ok(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PipelineConfig;
    use ppbench_gen::degree;

    fn cfg(scale: u32) -> PipelineConfig {
        PipelineConfig::builder()
            .scale(scale)
            .edge_factor(4)
            .seed(5)
            .build()
    }

    #[test]
    fn generator_respects_spec() {
        let cfg = cfg(6);
        let g = build_generator(&cfg);
        assert_eq!(g.spec(), cfg.spec);
        assert_eq!(g.edges().len() as u64, cfg.spec.num_edges());
    }

    #[test]
    fn permute_toggle_changes_labels() {
        let base = cfg(8);
        let permuted = build_generator(&base).edges();
        let mut no_perm_cfg = PipelineConfig::builder()
            .scale(8)
            .edge_factor(4)
            .seed(5)
            .permute_vertices(false)
            .build();
        no_perm_cfg.validation = base.validation;
        let raw = build_generator(&no_perm_cfg).edges();
        assert_ne!(permuted, raw);
        // Raw R-MAT concentrates on vertex 0.
        let din = degree::in_degrees(&raw, 256);
        let argmax = (0..256).max_by_key(|&i| din[i as usize]).unwrap();
        assert_eq!(argmax, 0);
    }

    #[test]
    fn sharded_write_identical_to_streamed() {
        // Bytes, file layout, manifest, and digest must all agree — the
        // sharded path is a pure parallelization, not a different format.
        let td = ppbench_io::tempdir::TempDir::new("ppbench-k0").unwrap();
        for num_files in [1, 3, 7] {
            let cfg = PipelineConfig::builder()
                .scale(6)
                .edge_factor(4)
                .seed(5)
                .num_files(num_files)
                .build();
            let g = build_generator(&cfg);
            let serial_dir = td.join(&format!("serial-{num_files}"));
            let sharded_dir = td.join(&format!("sharded-{num_files}"));
            let m_serial = write_streamed(&g, &cfg, &serial_dir).unwrap();
            let m_sharded = write_sharded(&g, &cfg, &sharded_dir).unwrap();
            assert_eq!(m_serial.files, m_sharded.files, "{num_files} files");
            assert!(m_serial.digest.same_stream(&m_sharded.digest));
            for f in &m_serial.files {
                let a = std::fs::read(serial_dir.join(&f.name)).unwrap();
                let b = std::fs::read(sharded_dir.join(&f.name)).unwrap();
                assert_eq!(a, b, "{} differs with {num_files} files", f.name);
            }
            assert_eq!(
                std::fs::read(serial_dir.join(ppbench_io::MANIFEST_NAME)).unwrap(),
                std::fs::read(sharded_dir.join(ppbench_io::MANIFEST_NAME)).unwrap(),
            );
        }
    }

    #[test]
    fn sharded_write_handles_more_files_than_edges() {
        let td = ppbench_io::tempdir::TempDir::new("ppbench-k0").unwrap();
        let cfg = PipelineConfig::builder()
            .scale(1)
            .edge_factor(1)
            .num_files(5)
            .build();
        let g = build_generator(&cfg);
        let m = write_sharded(&g, &cfg, td.path()).unwrap();
        assert_eq!(m.edges, 2);
        assert_eq!(m.files.len(), 5);
        let (back_m, back) = ppbench_io::EdgeReader::read_dir_all(td.path()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back_m.edges, 2);
    }

    #[test]
    fn ingest_tsv_replaces_the_generator() {
        let td = ppbench_io::tempdir::TempDir::new("ppbench-k0").unwrap();
        let tsv = td.join("real.tsv");
        std::fs::write(&tsv, "# comment\n0\t1\n1\t2\n2\t0\n2\t0\n").unwrap();
        let cfg = PipelineConfig::builder().scale(2).num_files(2).build();
        let out = td.join("ingested");
        let manifest = ingest_tsv(&cfg, &tsv, &out).unwrap();
        assert_eq!(
            manifest.edges, 4,
            "duplicates are kept (kernel 2 sums them)"
        );
        assert_eq!(manifest.files.len(), 2);
        let (_, back) = ppbench_io::EdgeReader::read_dir_all(&out).unwrap();
        assert_eq!(back.len(), 4);
        assert_eq!(back[0], ppbench_io::Edge::new(0, 1));
    }

    #[test]
    fn ingest_tsv_rejects_out_of_bound_vertices_and_empty_files() {
        let td = ppbench_io::tempdir::TempDir::new("ppbench-k0").unwrap();
        let tsv = td.join("big.tsv");
        std::fs::write(&tsv, "0\t4\n").unwrap();
        let cfg = PipelineConfig::builder().scale(2).build(); // bound = 4
        let err = ingest_tsv(&cfg, &tsv, &td.join("x")).unwrap_err();
        assert!(matches!(err, crate::Error::Contract(_)), "{err}");
        assert!(err.to_string().contains("vertex bound"), "{err}");
        let empty = td.join("empty.tsv");
        std::fs::write(&empty, "# only comments\n").unwrap();
        let err = ingest_tsv(&cfg, &empty, &td.join("y")).unwrap_err();
        assert!(err.to_string().contains("no edges"), "{err}");
    }

    #[test]
    fn gen_axis_selects_the_linear_sampler() {
        // Same seed, different sampler ⇒ different (equally sized) streams;
        // the linear stream matches the LinearKronecker directly.
        let faithful_cfg = cfg(8);
        let linear_cfg = PipelineConfig::builder()
            .scale(8)
            .edge_factor(4)
            .seed(5)
            .gen(ppbench_gen::RmatSampler::Linear)
            .build();
        let faithful = build_generator(&faithful_cfg).edges();
        let linear = build_generator(&linear_cfg).edges();
        assert_eq!(faithful.len(), linear.len());
        assert_ne!(
            faithful, linear,
            "samplers must consume randomness differently"
        );
        assert_eq!(
            linear,
            ppbench_gen::LinearKronecker::new(linear_cfg.spec, 5).edges()
        );
        // Toggles apply to the linear sampler too.
        let raw_cfg = PipelineConfig::builder()
            .scale(8)
            .edge_factor(4)
            .seed(5)
            .gen(ppbench_gen::RmatSampler::Linear)
            .permute_vertices(false)
            .build();
        let raw = build_generator(&raw_cfg).edges();
        assert_ne!(raw, linear);
        let din = degree::in_degrees(&raw, 256);
        let argmax = (0..256).max_by_key(|&i| din[i as usize]).unwrap();
        assert_eq!(argmax, 0, "unpermuted linear hub must be vertex 0");
    }

    #[test]
    fn linear_sharded_write_identical_to_streamed() {
        // The digest-chain/file-layout identity must hold for the linear
        // sampler across shard counts, exactly as for the faithful one.
        let td = ppbench_io::tempdir::TempDir::new("ppbench-k0").unwrap();
        let mut manifests = Vec::new();
        for num_files in [1, 3, 7] {
            let cfg = PipelineConfig::builder()
                .scale(6)
                .edge_factor(4)
                .seed(5)
                .num_files(num_files)
                .gen(ppbench_gen::RmatSampler::Linear)
                .build();
            let g = build_generator(&cfg);
            let serial_dir = td.join(&format!("lin-serial-{num_files}"));
            let sharded_dir = td.join(&format!("lin-sharded-{num_files}"));
            let m_serial = write_streamed(&g, &cfg, &serial_dir).unwrap();
            let m_sharded = write_sharded(&g, &cfg, &sharded_dir).unwrap();
            assert_eq!(m_serial.files, m_sharded.files, "{num_files} files");
            assert!(m_serial.digest.same_stream(&m_sharded.digest));
            for f in &m_serial.files {
                let a = std::fs::read(serial_dir.join(&f.name)).unwrap();
                let b = std::fs::read(sharded_dir.join(&f.name)).unwrap();
                assert_eq!(a, b, "{} differs with {num_files} files", f.name);
            }
            manifests.push(m_serial);
        }
        // And the stream digest is independent of the shard count.
        assert!(manifests[0].digest.same_stream(&manifests[1].digest));
        assert!(manifests[0].digest.same_stream(&manifests[2].digest));
    }

    #[test]
    fn alternative_generators_selectable() {
        for kind in ppbench_gen::GeneratorKind::ALL {
            let cfg = PipelineConfig::builder()
                .scale(5)
                .edge_factor(2)
                .generator(kind)
                .build();
            let g = build_generator(&cfg);
            assert_eq!(g.edges().len(), 64);
        }
    }
}
