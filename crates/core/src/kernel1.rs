//! Kernel 1 — Sort: shared machinery.
//!
//! "Kernel 1 reads in the files generated in kernel 0, sorts the edges by
//! start vertex and writes the sorted edges to files on non-volatile
//! storage using the same format." The in-memory/out-of-core decision the
//! paper discusses is made here: when a memory budget is configured and the
//! edge count exceeds it, the external merge sorter runs; otherwise the
//! whole list is sorted in RAM with the backend's algorithm of choice.

use std::path::Path;

use ppbench_io::{EdgeReader, EdgeWriter, Manifest};
use ppbench_sort::{Algorithm, ExternalSorter, SortKey};

use crate::error::Result;

/// Sorts the edge file set at `in_dir` into a new file set at `out_dir`.
///
/// * `algorithm` — in-memory algorithm (ignored on the out-of-core path,
///   which always uses stable radix runs).
/// * `budget` — maximum edges held in memory; `None` means unbounded.
///
/// Returns the output manifest.
pub fn sort_file_set(
    in_dir: &Path,
    out_dir: &Path,
    num_files: usize,
    key: SortKey,
    algorithm: Algorithm,
    budget: Option<usize>,
) -> Result<Manifest> {
    let (in_manifest, iter) = EdgeReader::open_dir(in_dir)?;
    // `Some` only when the input exceeds the in-memory budget.
    let spill_budget = budget.filter(|&b| in_manifest.edges > b as u64);

    let mut writer = EdgeWriter::create(out_dir, "edges", num_files, in_manifest.edges)?;
    if let Some(budget_edges) = spill_budget {
        let scratch = out_dir.join("sort-scratch");
        let sorter = ExternalSorter::new(&scratch, budget_edges, key)?;
        sorter.sort(iter, |e| writer.write(e))?;
        // ppbench: allow(discarded-result, reason = "best-effort scratch cleanup; the sorted output is already written and a leftover dir is harmless")
        let _ = std::fs::remove_dir_all(&scratch);
    } else {
        let mut edges = Vec::with_capacity(in_manifest.edges as usize);
        for e in iter {
            edges.push(e?);
        }
        algorithm.sort(&mut edges, key, in_manifest.vertex_bound);
        writer.write_all(&edges)?;
    }
    let manifest = writer.finish(
        in_manifest.scale,
        in_manifest.vertex_bound,
        key.sort_state(),
    )?;
    Ok(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppbench_io::tempdir::TempDir;
    use ppbench_io::{Edge, SortState};

    fn write_input(dir: &Path, edges: &[Edge]) {
        ppbench_io::write_edges(
            dir,
            "edges",
            2,
            edges,
            Some(4),
            Some(16),
            SortState::Unsorted,
        )
        .unwrap();
    }

    fn scrambled(n: u64) -> Vec<Edge> {
        (0..n)
            .map(|i| Edge::new((i * 7 + 3) % 16, (i * 5) % 16))
            .collect()
    }

    #[test]
    fn in_memory_path_sorts_and_preserves_multiset() {
        let td = TempDir::new("ppbench-k1").unwrap();
        let edges = scrambled(500);
        write_input(&td.join("in"), &edges);
        let m = sort_file_set(
            &td.join("in"),
            &td.join("out"),
            3,
            SortKey::Start,
            Algorithm::Radix,
            None,
        )
        .unwrap();
        assert_eq!(m.edges, 500);
        assert_eq!(m.files.len(), 3);
        assert!(m.sort_state.is_sorted_by_start());
        let (_, got) = EdgeReader::read_dir_all(&td.join("out")).unwrap();
        assert!(got.windows(2).all(|w| w[0].u <= w[1].u));
        // The input digest's multiset component must be preserved.
        let in_manifest = Manifest::load(&td.join("in")).unwrap();
        assert!(m.digest.same_multiset(&in_manifest.digest));
    }

    #[test]
    fn out_of_core_path_matches_in_memory() {
        let td = TempDir::new("ppbench-k1").unwrap();
        let edges = scrambled(400);
        write_input(&td.join("in"), &edges);
        let m_mem = sort_file_set(
            &td.join("in"),
            &td.join("mem"),
            1,
            SortKey::Start,
            Algorithm::Radix,
            None,
        )
        .unwrap();
        let m_ext = sort_file_set(
            &td.join("in"),
            &td.join("ext"),
            1,
            SortKey::Start,
            Algorithm::Radix,
            Some(32),
        )
        .unwrap();
        // Stable radix in memory and stable external sort agree exactly.
        assert!(m_mem.digest.same_stream(&m_ext.digest));
        // Scratch space cleaned up.
        assert!(!td.join("ext").join("sort-scratch").exists());
    }

    #[test]
    fn start_end_key_orders_ends_within_start() {
        let td = TempDir::new("ppbench-k1").unwrap();
        write_input(&td.join("in"), &scrambled(200));
        sort_file_set(
            &td.join("in"),
            &td.join("out"),
            1,
            SortKey::StartEnd,
            Algorithm::Std,
            None,
        )
        .unwrap();
        let (m, got) = EdgeReader::read_dir_all(&td.join("out")).unwrap();
        assert_eq!(m.sort_state, SortState::ByStartEnd);
        assert!(got.windows(2).all(|w| (w[0].u, w[0].v) <= (w[1].u, w[1].v)));
    }

    #[test]
    fn missing_input_is_an_error() {
        let td = TempDir::new("ppbench-k1").unwrap();
        let r = sort_file_set(
            &td.join("nothing"),
            &td.join("out"),
            1,
            SortKey::Start,
            Algorithm::Radix,
            None,
        );
        assert!(r.is_err());
    }
}
