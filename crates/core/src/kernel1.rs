//! Kernel 1 — Sort: shared machinery.
//!
//! "Kernel 1 reads in the files generated in kernel 0, sorts the edges by
//! start vertex and writes the sorted edges to files on non-volatile
//! storage using the same format." The in-memory/out-of-core decision the
//! paper discusses is made here: when a memory budget is configured and the
//! input's in-memory footprint (16 bytes per edge) exceeds it, the
//! pipelined external sorter runs — parsing, run sorting, and output
//! writing on separate threads; otherwise the whole list is sorted in RAM
//! with the backend's algorithm of choice.
//!
//! Both paths treat the input manifest as untrusted on-disk data: its edge
//! count is bounded against the actual file bytes before any allocation,
//! and the stream read back is digest-verified against the manifest before
//! the sorted output is committed.

use std::path::Path;

use ppbench_io::{checksum::EdgeDigest, EdgeReader, EdgeWriter, Manifest, BYTES_PER_EDGE};
use ppbench_sort::{pipelined_sort, Algorithm, SortKey};

use crate::error::{Error, Result};

/// Sorts the edge file set at `in_dir` into a new file set at `out_dir`.
///
/// * `algorithm` — in-memory algorithm (ignored on the out-of-core path,
///   which always uses stable radix runs).
/// * `budget_bytes` — maximum bytes of edges held in memory (at
///   [`BYTES_PER_EDGE`] per edge); `None` means unbounded.
///
/// Returns the output manifest.
pub fn sort_file_set(
    in_dir: &Path,
    out_dir: &Path,
    num_files: usize,
    key: SortKey,
    algorithm: Algorithm,
    budget_bytes: Option<u64>,
) -> Result<Manifest> {
    let (in_manifest, iter) = EdgeReader::open_dir(in_dir)?;
    // The manifest's edge count is untrusted: a corrupt or hostile value
    // (`edges: u64::MAX`) must drive neither an allocation nor a spill
    // decision. Bound it by what the files' bytes could possibly encode.
    let disk_cap = in_manifest.max_edges_on_disk(in_dir);
    if in_manifest.edges > disk_cap {
        return Err(Error::Contract(format!(
            "{}: manifest claims {} edges but its files hold at most {disk_cap}",
            in_dir.display(),
            in_manifest.edges
        )));
    }
    let in_bytes = in_manifest.edges.saturating_mul(BYTES_PER_EDGE as u64);
    // `Some` only when the input exceeds the in-memory budget.
    let spill_budget = budget_bytes.filter(|&b| in_bytes > b);

    let mut writer = EdgeWriter::create(out_dir, "edges", num_files, in_manifest.edges)?;
    if let Some(bytes) = spill_budget {
        let budget_edges = usize::try_from(bytes / BYTES_PER_EDGE as u64)
            .unwrap_or(usize::MAX)
            .max(1);
        let scratch = out_dir.join("sort-scratch");
        let stats = pipelined_sort(&scratch, budget_edges, key, iter, |e| writer.write(e))?;
        // ppbench: allow(discarded-result, reason = "best-effort scratch cleanup; the sorted output is already written and a leftover dir is harmless")
        let _ = std::fs::remove_dir_all(&scratch);
        if !stats.input_digest.same_stream(&in_manifest.digest) {
            return Err(Error::Contract(format!(
                "{}: edge stream does not match manifest digest \
                 (read {} edges, manifest says {})",
                in_dir.display(),
                stats.input_digest.count,
                in_manifest.edges
            )));
        }
    } else {
        let mut edges = Vec::with_capacity(in_manifest.edges as usize);
        let mut digest = EdgeDigest::new();
        for e in iter {
            let e = e?;
            digest.update(e);
            edges.push(e);
        }
        // Verify before sorting: bad input must never be laundered into a
        // plausible-looking sorted file set.
        if !digest.same_stream(&in_manifest.digest) {
            return Err(Error::Contract(format!(
                "{}: edge stream does not match manifest digest \
                 (read {} edges, manifest says {})",
                in_dir.display(),
                digest.count,
                in_manifest.edges
            )));
        }
        algorithm.sort(&mut edges, key, in_manifest.vertex_bound);
        writer.write_all(&edges)?;
    }
    let manifest = writer.finish(
        in_manifest.scale,
        in_manifest.vertex_bound,
        key.sort_state(),
    )?;
    Ok(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppbench_io::tempdir::TempDir;
    use ppbench_io::{Edge, SortState};

    fn write_input(dir: &Path, edges: &[Edge]) {
        ppbench_io::write_edges(
            dir,
            "edges",
            2,
            edges,
            Some(4),
            Some(16),
            SortState::Unsorted,
        )
        .unwrap();
    }

    fn scrambled(n: u64) -> Vec<Edge> {
        (0..n)
            .map(|i| Edge::new((i * 7 + 3) % 16, (i * 5) % 16))
            .collect()
    }

    #[test]
    fn in_memory_path_sorts_and_preserves_multiset() {
        let td = TempDir::new("ppbench-k1").unwrap();
        let edges = scrambled(500);
        write_input(&td.join("in"), &edges);
        let m = sort_file_set(
            &td.join("in"),
            &td.join("out"),
            3,
            SortKey::Start,
            Algorithm::Radix,
            None,
        )
        .unwrap();
        assert_eq!(m.edges, 500);
        assert_eq!(m.files.len(), 3);
        assert!(m.sort_state.is_sorted_by_start());
        let (_, got) = EdgeReader::read_dir_all(&td.join("out")).unwrap();
        assert!(got.windows(2).all(|w| w[0].u <= w[1].u));
        // The input digest's multiset component must be preserved.
        let in_manifest = Manifest::load(&td.join("in")).unwrap();
        assert!(m.digest.same_multiset(&in_manifest.digest));
    }

    #[test]
    fn out_of_core_path_matches_in_memory() {
        let td = TempDir::new("ppbench-k1").unwrap();
        let edges = scrambled(400);
        write_input(&td.join("in"), &edges);
        let m_mem = sort_file_set(
            &td.join("in"),
            &td.join("mem"),
            1,
            SortKey::Start,
            Algorithm::Radix,
            None,
        )
        .unwrap();
        let m_ext = sort_file_set(
            &td.join("in"),
            &td.join("ext"),
            1,
            SortKey::Start,
            Algorithm::Radix,
            Some(32 * BYTES_PER_EDGE as u64),
        )
        .unwrap();
        // Stable radix in memory and stable external sort agree exactly.
        assert!(m_mem.digest.same_stream(&m_ext.digest));
        // Scratch space cleaned up.
        assert!(!td.join("ext").join("sort-scratch").exists());
    }

    #[test]
    fn budget_is_in_bytes_not_edges() {
        // 100 edges = 1600 bytes. A 1599-byte budget must spill; a
        // 1600-byte budget must not (footprint == budget is within it).
        let td = TempDir::new("ppbench-k1").unwrap();
        let edges = scrambled(100);
        write_input(&td.join("in"), &edges);
        sort_file_set(
            &td.join("in"),
            &td.join("tight"),
            1,
            SortKey::Start,
            Algorithm::Radix,
            Some(1599),
        )
        .unwrap();
        sort_file_set(
            &td.join("in"),
            &td.join("exact"),
            1,
            SortKey::Start,
            Algorithm::Radix,
            Some(1600),
        )
        .unwrap();
        let (_, a) = EdgeReader::read_dir_all(&td.join("tight")).unwrap();
        let (_, b) = EdgeReader::read_dir_all(&td.join("exact")).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn start_end_key_orders_ends_within_start() {
        let td = TempDir::new("ppbench-k1").unwrap();
        write_input(&td.join("in"), &scrambled(200));
        sort_file_set(
            &td.join("in"),
            &td.join("out"),
            1,
            SortKey::StartEnd,
            Algorithm::Std,
            None,
        )
        .unwrap();
        let (m, got) = EdgeReader::read_dir_all(&td.join("out")).unwrap();
        assert_eq!(m.sort_state, SortState::ByStartEnd);
        assert!(got.windows(2).all(|w| (w[0].u, w[0].v) <= (w[1].u, w[1].v)));
    }

    #[test]
    fn missing_input_is_an_error() {
        let td = TempDir::new("ppbench-k1").unwrap();
        let r = sort_file_set(
            &td.join("nothing"),
            &td.join("out"),
            1,
            SortKey::Start,
            Algorithm::Radix,
            None,
        );
        assert!(r.is_err());
    }

    #[test]
    fn hostile_manifest_edge_count_rejected_before_allocating() {
        // A manifest claiming u64::MAX edges used to drive
        // `Vec::with_capacity(u64::MAX)` — an immediate abort. It must now
        // surface as a contract error bounded by the bytes on disk.
        let td = TempDir::new("ppbench-k1").unwrap();
        write_input(&td.join("in"), &scrambled(10));
        // Forge an internally consistent manifest (per-file sums and digest
        // count agree with the claimed total) so only the bytes-on-disk
        // bound can catch it.
        let mut m = Manifest::load(&td.join("in")).unwrap();
        m.edges = u64::MAX;
        m.digest.count = u64::MAX;
        m.files[0].edges = u64::MAX - m.files[1].edges;
        m.save(&td.join("in")).unwrap();
        for budget in [None, Some(64)] {
            let err = sort_file_set(
                &td.join("in"),
                &td.join("out"),
                1,
                SortKey::Start,
                Algorithm::Radix,
                budget,
            )
            .unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("at most"), "{msg}");
        }
    }
}
