//! Simple hardware performance models for the four kernels.
//!
//! The paper argues that "the computations are simple enough that
//! performance predictions can be made based on simple computing hardware
//! models" and promises "a more detailed analysis of each of the kernels
//! with respect to standard models of parallel computation and
//! communication" as future work (§V). This module is that analysis for the
//! serial pipeline: each kernel is decomposed into streaming, parsing,
//! formatting, random-access and storage phases; a [`HardwareModel`] holds
//! the machine's sustained rate for each phase; and [`predict_all`] combines
//! them into a per-kernel time prediction with the dominant term named.
//!
//! The model deliberately stays first-order (no cache hierarchy, no
//! overlap): its purpose is the paper's — sanity-check measured numbers
//! against what the hardware should deliver, and expose which resource each
//! kernel actually stresses. `HardwareModel::calibrate()` measures the
//! rates on the running machine with sub-second microbenchmarks.

use ppbench_gen::GraphSpec;

/// Sustained hardware rates, all in units per second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardwareModel {
    /// Sequential memory streaming (bytes/s) — large copies.
    pub stream_bytes_per_s: f64,
    /// Decimal text parsing (bytes/s of input text).
    pub parse_bytes_per_s: f64,
    /// Decimal text formatting (bytes/s of output text).
    pub format_bytes_per_s: f64,
    /// Dependent random memory accesses (accesses/s) — hash/scatter work.
    pub random_access_per_s: f64,
    /// File write throughput (bytes/s), page-cache included.
    pub storage_write_bytes_per_s: f64,
    /// File read throughput (bytes/s), page-cache included.
    pub storage_read_bytes_per_s: f64,
}

impl HardwareModel {
    /// A conservative 2015-era workstation (the paper's Xeon E5-2650 with a
    /// Lustre filesystem), for offline predictions.
    pub fn paper_era() -> Self {
        Self {
            stream_bytes_per_s: 8e9,
            parse_bytes_per_s: 300e6,
            format_bytes_per_s: 400e6,
            random_access_per_s: 30e6,
            storage_write_bytes_per_s: 500e6,
            storage_read_bytes_per_s: 1e9,
        }
    }

    /// Measures the rates on the running machine. Costs well under a
    /// second; rates are rough (±2×) by design — this is a *simple* model.
    pub fn calibrate() -> Self {
        Self {
            stream_bytes_per_s: measure_stream(),
            parse_bytes_per_s: measure_parse(),
            format_bytes_per_s: measure_format(),
            random_access_per_s: measure_random_access(),
            storage_write_bytes_per_s: measure_storage_write(),
            // Reads of just-written files come from page cache; model them
            // as streaming.
            storage_read_bytes_per_s: measure_stream(),
        }
    }
}

/// Average encoded bytes per edge line at a given scale (two decimal ids of
/// roughly `log10(2^scale)` digits, tab, newline).
pub fn avg_line_bytes(spec: &GraphSpec) -> f64 {
    // Vertex ids are roughly uniform in digit count near the top of the
    // range; approximate by the digit count of N.
    let digits = (spec.num_vertices() as f64).log10().ceil().max(1.0);
    2.0 * digits + 2.0
}

/// A predicted kernel cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Kernel number (0–3).
    pub kernel: u8,
    /// Predicted wall-clock seconds.
    pub seconds: f64,
    /// Predicted edges/second in the paper's metric (kernel 3 counts
    /// iterations × M).
    pub edges_per_second: f64,
    /// Cost breakdown: phase name → seconds.
    pub breakdown: Vec<(&'static str, f64)>,
}

impl Prediction {
    fn from_breakdown(kernel: u8, work_items: f64, breakdown: Vec<(&'static str, f64)>) -> Self {
        let seconds: f64 = breakdown.iter().map(|(_, s)| s).sum();
        Self {
            kernel,
            seconds,
            edges_per_second: work_items / seconds,
            breakdown,
        }
    }

    /// The phase dominating the prediction.
    pub fn dominant(&self) -> &'static str {
        self.breakdown
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(n, _)| *n)
            .unwrap_or("none")
    }
}

/// Predicts kernel 0 (generate + format + write).
pub fn predict_kernel0(spec: &GraphSpec, hw: &HardwareModel) -> Prediction {
    let m = spec.num_edges() as f64;
    let text_bytes = m * avg_line_bytes(spec);
    // Generation: 2 uniform draws per scale bit per edge; a draw plus bit
    // twiddling is a handful of streaming-speed operations — model as 32
    // streamed bytes per draw.
    let gen_bytes = m * 2.0 * spec.scale() as f64 * 32.0;
    Prediction::from_breakdown(
        0,
        m,
        vec![
            ("generate", gen_bytes / hw.stream_bytes_per_s),
            ("format", text_bytes / hw.format_bytes_per_s),
            ("write", text_bytes / hw.storage_write_bytes_per_s),
        ],
    )
}

/// Predicts kernel 1 (read + parse + radix sort + format + write).
pub fn predict_kernel1(spec: &GraphSpec, hw: &HardwareModel) -> Prediction {
    let m = spec.num_edges() as f64;
    let text_bytes = m * avg_line_bytes(spec);
    // LSD radix: one histogram pass plus ceil(scale/8) permute passes, each
    // moving 16 bytes per edge in and out.
    let passes = 1.0 + (spec.scale() as f64 / 8.0).ceil();
    let sort_bytes = m * 16.0 * 2.0 * passes;
    Prediction::from_breakdown(
        1,
        m,
        vec![
            ("read", text_bytes / hw.storage_read_bytes_per_s),
            ("parse", text_bytes / hw.parse_bytes_per_s),
            ("sort", sort_bytes / hw.stream_bytes_per_s),
            ("format", text_bytes / hw.format_bytes_per_s),
            ("write", text_bytes / hw.storage_write_bytes_per_s),
        ],
    )
}

/// Predicts kernel 2 (read + parse + matrix build + degree/normalize).
///
/// `nnz` is the distinct-edge count (≤ M); pass the measured value or an
/// estimate such as `0.8 × M`.
pub fn predict_kernel2(spec: &GraphSpec, nnz: f64, hw: &HardwareModel) -> Prediction {
    let m = spec.num_edges() as f64;
    let text_bytes = m * avg_line_bytes(spec);
    // Sorted-input construction streams the edges once (group/dedup) and
    // writes nnz entries; column sums then do one *random* access per
    // stored entry (the in-degree scatter).
    let build_bytes = m * 16.0 + nnz * 16.0;
    Prediction::from_breakdown(
        2,
        m,
        vec![
            ("read", text_bytes / hw.storage_read_bytes_per_s),
            ("parse", text_bytes / hw.parse_bytes_per_s),
            ("build", build_bytes / hw.stream_bytes_per_s),
            ("degree-scatter", nnz / hw.random_access_per_s),
            ("normalize", nnz * 16.0 / hw.stream_bytes_per_s),
        ],
    )
}

/// Predicts kernel 3 (`iterations` scatter SpMVs).
pub fn predict_kernel3(
    spec: &GraphSpec,
    nnz: f64,
    iterations: u32,
    hw: &HardwareModel,
) -> Prediction {
    let it = iterations as f64;
    // Each SpMV entry is one random write into the output vector plus a
    // streamed read of the entry (12–16 bytes).
    Prediction::from_breakdown(
        3,
        spec.num_edges() as f64 * it,
        vec![
            ("spmv-scatter", it * nnz / hw.random_access_per_s),
            ("spmv-stream", it * nnz * 16.0 / hw.stream_bytes_per_s),
            (
                "teleport",
                it * spec.num_vertices() as f64 * 16.0 / hw.stream_bytes_per_s,
            ),
        ],
    )
}

/// Predicts all four kernels at once.
pub fn predict_all(
    spec: &GraphSpec,
    nnz: f64,
    iterations: u32,
    hw: &HardwareModel,
) -> [Prediction; 4] {
    [
        predict_kernel0(spec, hw),
        predict_kernel1(spec, hw),
        predict_kernel2(spec, nnz, hw),
        predict_kernel3(spec, nnz, iterations, hw),
    ]
}

/// Predicted communication volume (bytes) for the distributed
/// decomposition the paper sketches in §IV, per kernel:
///
/// * kernel 1 — all-to-all shuffle: `(W−1)/W` of the `M` 16-byte edges
///   cross rank boundaries in expectation (hash/range partition of a
///   well-mixed stream);
/// * kernel 2 — in-degree aggregation: a gather + broadcast all-reduce of
///   `N` 8-byte counters (`2·(W−1)·8N`), plus the `N`-byte elimination
///   mask broadcast to `W−1` ranks;
/// * kernel 3 — the same all-reduce over `N` doubles, once per iteration.
///
/// `ppbench-dist` measures the real volumes; its tests pin them to these
/// formulas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommPrediction {
    /// Kernel-1 shuffle bytes.
    pub k1_shuffle: f64,
    /// Kernel-2 aggregation + broadcast bytes.
    pub k2_aggregate: f64,
    /// Kernel-3 reduction bytes across all iterations.
    pub k3_reduce: f64,
}

/// Predicts the communication volume of a `workers`-rank run.
///
/// # Panics
///
/// Panics if `workers == 0`.
pub fn predict_comm(spec: &GraphSpec, iterations: u32, workers: usize) -> CommPrediction {
    assert!(workers > 0, "need at least one worker");
    let w = workers as f64;
    let m = spec.num_edges() as f64;
    let n = spec.num_vertices() as f64;
    let allreduce = |elem_bytes: f64| 2.0 * (w - 1.0) * n * elem_bytes;
    CommPrediction {
        k1_shuffle: (w - 1.0) / w * m * 16.0,
        k2_aggregate: allreduce(8.0) + (w - 1.0) * n,
        k3_reduce: iterations as f64 * allreduce(8.0),
    }
}

// --- calibration microbenchmarks -----------------------------------------

/// Wall-clock budget per calibration probe.
const BUDGET_SECS: f64 = 0.05;

fn measure_stream() -> f64 {
    let n = 16 << 20; // 16 MiB
    let src = vec![0xA5u8; n];
    let mut dst = vec![0u8; n];
    let sw = crate::timing::Stopwatch::start();
    let mut reps = 0u32;
    while sw.elapsed_secs() < BUDGET_SECS {
        dst.copy_from_slice(&src);
        std::hint::black_box(&dst);
        reps += 1;
    }
    (n as f64 * reps as f64 * 2.0) / sw.elapsed_secs()
}

fn measure_parse() -> f64 {
    let lines: Vec<Vec<u8>> = (0..4096u64)
        .map(|i| format!("{}\t{}", i * 7919 % 1_000_000, i * 104729 % 1_000_000).into_bytes())
        .collect();
    let bytes: usize = lines.iter().map(|l| l.len() + 1).sum();
    let sw = crate::timing::Stopwatch::start();
    let mut reps = 0u32;
    let mut acc = 0u64;
    while sw.elapsed_secs() < BUDGET_SECS {
        for l in &lines {
            // The probe lines were formatted two statements up, so a
            // decode failure is unreachable; skipping keeps the loop hot.
            let Ok(e) = ppbench_io::format::decode_line(l) else {
                continue;
            };
            acc = acc.wrapping_add(e.u);
        }
        reps += 1;
    }
    std::hint::black_box(acc);
    (bytes as f64 * reps as f64) / sw.elapsed_secs()
}

fn measure_format() -> f64 {
    let mut out = Vec::with_capacity(4096 * 16);
    let sw = crate::timing::Stopwatch::start();
    let mut reps = 0u32;
    let mut bytes = 0usize;
    while sw.elapsed_secs() < BUDGET_SECS {
        out.clear();
        for i in 0..4096u64 {
            ppbench_io::format::encode_line(
                ppbench_io::Edge::new(i * 7919 % 1_000_000, i),
                &mut out,
            );
        }
        bytes = out.len();
        std::hint::black_box(&out);
        reps += 1;
    }
    (bytes as f64 * reps as f64) / sw.elapsed_secs()
}

fn measure_random_access() -> f64 {
    // Pointer-chase through a shuffled permutation bigger than L2.
    let n = 1 << 21; // 2M u32 = 8 MiB
    let mut next: Vec<u32> = (0..n as u32).collect();
    // Deterministic shuffle via an LCG walk.
    let mut j = 0usize;
    for i in (1..n).rev() {
        j = (j
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407))
            % (i + 1);
        next.swap(i, j);
    }
    let sw = crate::timing::Stopwatch::start();
    let mut idx = 0u32;
    let mut hops = 0u64;
    while sw.elapsed_secs() < BUDGET_SECS {
        for _ in 0..4096 {
            idx = next[idx as usize];
        }
        hops += 4096;
    }
    std::hint::black_box(idx);
    hops as f64 / sw.elapsed_secs()
}

fn measure_storage_write() -> f64 {
    let Ok(td) = ppbench_io::tempdir::TempDir::new("ppbench-calibrate") else {
        return 500e6; // fall back to the paper-era default
    };
    let chunk = vec![0x42u8; 1 << 20];
    let path = td.join("probe.bin");
    let sw = crate::timing::Stopwatch::start();
    let mut written = 0u64;
    {
        use std::io::Write;
        let Ok(mut f) = std::fs::File::create(&path) else {
            return 500e6;
        };
        while sw.elapsed_secs() < BUDGET_SECS {
            if f.write_all(&chunk).is_err() {
                break;
            }
            written += chunk.len() as u64;
        }
        // ppbench: allow(discarded-result, reason = "calibration probe; a failed flush only blurs a rate that is ±2x by design")
        let _ = f.flush();
    }
    (written as f64).max(1.0) / sw.elapsed_secs()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> GraphSpec {
        GraphSpec::with_scale(16)
    }

    #[test]
    fn predictions_are_finite_and_positive() {
        let hw = HardwareModel::paper_era();
        for p in predict_all(&spec(), 0.8 * spec().num_edges() as f64, 20, &hw) {
            assert!(
                p.seconds.is_finite() && p.seconds > 0.0,
                "kernel {}",
                p.kernel
            );
            assert!(p.edges_per_second > 0.0);
            assert!(!p.breakdown.is_empty());
            assert!(!p.dominant().is_empty());
        }
    }

    #[test]
    fn predicted_time_grows_with_scale() {
        let hw = HardwareModel::paper_era();
        let small = predict_kernel1(&GraphSpec::with_scale(16), &hw);
        let large = predict_kernel1(&GraphSpec::with_scale(20), &hw);
        assert!(
            large.seconds > 10.0 * small.seconds,
            "16x data should cost >10x"
        );
    }

    #[test]
    fn kernel3_rate_exceeds_file_kernel_rates() {
        // The paper's figures show K3 running ~100x faster in edges/sec than
        // the file kernels; the model must reproduce that ordering.
        let hw = HardwareModel::paper_era();
        let nnz = 0.8 * spec().num_edges() as f64;
        let k1 = predict_kernel1(&spec(), &hw);
        let k3 = predict_kernel3(&spec(), nnz, 20, &hw);
        assert!(
            k3.edges_per_second > 3.0 * k1.edges_per_second,
            "K3 {:.2e} should beat K1 {:.2e}",
            k3.edges_per_second,
            k1.edges_per_second
        );
    }

    #[test]
    fn file_kernels_are_io_or_parse_bound() {
        let hw = HardwareModel::paper_era();
        let k1 = predict_kernel1(&spec(), &hw);
        assert!(
            ["read", "parse", "write", "format"].contains(&k1.dominant()),
            "kernel 1 dominated by {}",
            k1.dominant()
        );
        let k3 = predict_kernel3(&spec(), 0.8 * spec().num_edges() as f64, 20, &hw);
        assert_eq!(k3.dominant(), "spmv-scatter", "kernel 3 is latency bound");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let hw = HardwareModel::paper_era();
        let p = predict_kernel2(&spec(), 1e6, &hw);
        let sum: f64 = p.breakdown.iter().map(|(_, s)| s).sum();
        assert!((sum - p.seconds).abs() < 1e-12);
    }

    #[test]
    fn calibration_runs_and_returns_positive_rates() {
        let hw = HardwareModel::calibrate();
        assert!(
            hw.stream_bytes_per_s > 1e8,
            "stream {:.2e}",
            hw.stream_bytes_per_s
        );
        assert!(
            hw.parse_bytes_per_s > 1e6,
            "parse {:.2e}",
            hw.parse_bytes_per_s
        );
        assert!(
            hw.format_bytes_per_s > 1e6,
            "format {:.2e}",
            hw.format_bytes_per_s
        );
        assert!(
            hw.random_access_per_s > 1e5,
            "random {:.2e}",
            hw.random_access_per_s
        );
        assert!(hw.storage_write_bytes_per_s > 1e6);
    }

    #[test]
    fn comm_prediction_shapes() {
        let spec = GraphSpec::with_scale(12);
        let single = predict_comm(&spec, 20, 1);
        assert_eq!(single.k1_shuffle, 0.0);
        assert_eq!(single.k3_reduce, 0.0);
        let four = predict_comm(&spec, 20, 4);
        assert!(four.k1_shuffle > 0.0);
        // K3 traffic dominates K2 by roughly the iteration count.
        assert!(four.k3_reduce > 10.0 * four.k2_aggregate);
        // More workers, more traffic.
        let eight = predict_comm(&spec, 20, 8);
        assert!(eight.k3_reduce > four.k3_reduce);
    }

    #[test]
    fn avg_line_bytes_tracks_digits() {
        // Scale 16: N = 65536 (5 digits) → 12 bytes/line.
        assert_eq!(avg_line_bytes(&GraphSpec::with_scale(16)), 12.0);
        // Scale 20: N = 1,048,576 (7 digits) → 16.
        assert_eq!(avg_line_bytes(&GraphSpec::with_scale(20)), 16.0);
    }
}
