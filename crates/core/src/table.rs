//! Reproduction of the paper's Table II ("Benchmark Run Sizes").
//!
//! The table lists, per scale factor 16–22: maximum vertices, maximum
//! edges, and the approximate memory footprint. The printed memory column
//! is consistent with **24 bytes/edge in decimal units** (25 MB at scale 16
//! … 1.6 GB at scale 22) even though the surrounding text says "16 bytes
//! per edge" — we reproduce the table's numbers and record the discrepancy
//! in EXPERIMENTS.md.

use ppbench_gen::GraphSpec;

/// Bytes/edge that reproduces the paper's printed memory column.
pub const TABLE2_BYTES_PER_EDGE: u64 = 24;

/// One row of Table II.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSizeRow {
    /// Scale factor S.
    pub scale: u32,
    /// N = 2^S.
    pub max_vertices: u64,
    /// M = 16·N.
    pub max_edges: u64,
    /// Approximate footprint in bytes (at [`TABLE2_BYTES_PER_EDGE`]).
    pub memory_bytes: u64,
}

impl RunSizeRow {
    /// Builds the row for one scale.
    pub fn for_scale(scale: u32) -> Self {
        let spec = GraphSpec::with_scale(scale);
        Self {
            scale,
            max_vertices: spec.num_vertices(),
            max_edges: spec.num_edges(),
            memory_bytes: spec.memory_bytes(TABLE2_BYTES_PER_EDGE),
        }
    }
}

/// The rows of Table II for an inclusive scale range.
pub fn run_sizes(scales: std::ops::RangeInclusive<u32>) -> Vec<RunSizeRow> {
    scales.map(RunSizeRow::for_scale).collect()
}

/// Formats a count the way the paper's table does (decimal truncation to
/// K/M/G: 65,536 → "65K", 4,194,304 → "4M").
pub fn humanize_count(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{}G", n / 1_000_000_000)
    } else if n >= 1_000_000 {
        format!("{}M", n / 1_000_000)
    } else if n >= 1_000 {
        format!("{}K", n / 1_000)
    } else {
        n.to_string()
    }
}

/// Formats a byte count the way the paper's memory column does
/// (decimal MB/GB, one decimal place for GB).
pub fn humanize_bytes(bytes: u64) -> String {
    if bytes >= 1_000_000_000 {
        format!("{:.1}GB", bytes as f64 / 1e9)
    } else {
        format!("{}MB", bytes / 1_000_000)
    }
}

/// Renders Table II as aligned text.
pub fn render_table2(scales: std::ops::RangeInclusive<u32>) -> String {
    let mut out = String::from("Scale  Max Vertices  Max Edges  ~Memory\n");
    for row in run_sizes(scales) {
        out.push_str(&format!(
            "{:<6} {:<13} {:<10} {}\n",
            row.scale,
            humanize_count(row.max_vertices),
            humanize_count(row.max_edges),
            humanize_bytes(row.memory_bytes),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full Table II from the paper, verbatim.
    #[test]
    fn reproduces_paper_table2_exactly() {
        let expected = [
            (16, "65K", "1M", "25MB"),
            (17, "131K", "2M", "50MB"),
            (18, "262K", "4M", "100MB"),
            (19, "524K", "8M", "201MB"),
            (20, "1M", "16M", "402MB"),
            (21, "2M", "33M", "805MB"),
            (22, "4M", "67M", "1.6GB"),
        ];
        for (scale, vertices, edges, memory) in expected {
            let row = RunSizeRow::for_scale(scale);
            assert_eq!(
                humanize_count(row.max_vertices),
                vertices,
                "scale {scale} vertices"
            );
            assert_eq!(humanize_count(row.max_edges), edges, "scale {scale} edges");
            assert_eq!(
                humanize_bytes(row.memory_bytes),
                memory,
                "scale {scale} memory"
            );
        }
    }

    #[test]
    fn humanize_count_boundaries() {
        assert_eq!(humanize_count(0), "0");
        assert_eq!(humanize_count(999), "999");
        assert_eq!(humanize_count(1_000), "1K");
        assert_eq!(humanize_count(999_999), "999K");
        assert_eq!(humanize_count(1_000_000), "1M");
        assert_eq!(humanize_count(2_500_000_000), "2G");
    }

    #[test]
    fn render_contains_all_rows() {
        let table = render_table2(16..=22);
        assert_eq!(table.lines().count(), 8); // header + 7 rows
        assert!(table.contains("1.6GB"), "{table}");
    }

    #[test]
    fn run_sizes_range() {
        let rows = run_sizes(16..=18);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].scale, 16);
        assert_eq!(rows[2].max_edges, 4_194_304);
    }
}
