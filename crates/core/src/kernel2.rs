//! Kernel 2 — Filter: shared mathematical steps.
//!
//! From the spec (§IV.C), in Matlab notation:
//!
//! ```text
//! A   = sparse(u, v, 1, N, N)      % duplicates accumulate
//! din = sum(A, 1)                  % in-degree (weighted by multiplicity)
//! A(:, din == max(din)) = 0        % kill the super-node column(s)
//! A(:, din == 1)        = 0        % kill the leaf columns
//! dout = sum(A, 2)
//! A(i, :) = A(i, :) ./ dout(i)     % for rows with dout > 0
//! ```
//!
//! All four backends funnel their assembled count matrix through
//! [`filter_matrix`] so the *policy* is defined once; what differs between
//! backends is how the matrix gets assembled from the files.

use ppbench_sparse::{ops, Csr};

/// Statistics recorded by the filter stage (part of the validation outputs
/// the paper's §V asks about).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterStats {
    /// Sum of all matrix values before filtering — must equal M.
    pub total_edge_count: u64,
    /// Stored entries before filtering (≤ M because duplicates collapse).
    pub nnz_before: usize,
    /// The maximum weighted in-degree.
    pub max_in_degree: u64,
    /// Columns zeroed as super-nodes (`din == max(din)`).
    pub supernode_columns: u64,
    /// Columns zeroed as leaves (`din == 1`).
    pub leaf_columns: u64,
    /// Stored entries after filtering and normalization.
    pub nnz_after: usize,
    /// Rows with no out-edges after filtering (dangling states).
    pub dangling_rows: u64,
    /// Diagonal entries added by the §V repair option (0 when disabled).
    pub diagonal_repairs: u64,
}

/// Applies the kernel-2 filtering policy to an assembled count matrix and
/// normalizes rows, returning the row-stochastic matrix and statistics.
///
/// With `add_diagonal_to_empty`, rows left with no out-edges get a unit
/// diagonal entry *before* normalization (the paper's §V "should a diagonal
/// entry be added to empty rows/columns to allow the PageRank algorithm to
/// converge?" option) — those rows then hold all their mass in place
/// instead of leaking it.
pub fn filter_matrix(counts: &Csr<u64>, add_diagonal_to_empty: bool) -> (Csr<f64>, FilterStats) {
    let din = ops::col_sums(counts);
    let max_in_degree = din.iter().copied().max().unwrap_or(0);

    // max(din) of an all-empty matrix is 0; guard so we do not flag every
    // empty column as "the super-node".
    let mask: Vec<bool> = din
        .iter()
        .map(|&d| (max_in_degree > 0 && d == max_in_degree) || d == 1)
        .collect();
    let supernode_columns = din
        .iter()
        .filter(|&&d| max_in_degree > 0 && d == max_in_degree)
        .count() as u64;
    let leaf_columns = din.iter().filter(|&&d| d == 1).count() as u64;

    let mut filtered = ops::zero_columns(counts, &mask);

    let mut diagonal_repairs = 0u64;
    if add_diagonal_to_empty {
        let empty = ops::empty_rows(&filtered);
        diagonal_repairs = empty.iter().filter(|&&e| e).count() as u64;
        filtered = ops::add_diagonal_where(&filtered, |i| empty[i as usize], 1);
    }

    let normalized = ops::normalize_rows(&filtered);
    let dangling_rows = ops::empty_rows(&normalized).iter().filter(|&&e| e).count() as u64;

    let stats = FilterStats {
        total_edge_count: counts.value_sum(),
        nnz_before: counts.nnz(),
        max_in_degree,
        supernode_columns,
        leaf_columns,
        nnz_after: normalized.nnz(),
        dangling_rows,
        diagonal_repairs,
    };
    (normalized, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppbench_sparse::Coo;

    /// Graph: 0→1 ×3 (1 is the super-node), 2→3 (3 is a leaf), 1→0, 3→0,
    /// 0→0. N = 5; vertex 4 untouched.
    fn counts() -> Csr<u64> {
        let mut coo = Coo::new(5, 5);
        for _ in 0..3 {
            coo.push(0, 1, 1);
        }
        coo.push(2, 3, 1);
        coo.push(1, 0, 1);
        coo.push(3, 0, 1);
        coo.push(0, 0, 1);
        coo.compress()
    }

    #[test]
    fn spec_example_filters_supernode_and_leaves() {
        let (a, stats) = filter_matrix(&counts(), false);
        assert_eq!(stats.total_edge_count, 7);
        assert_eq!(stats.nnz_before, 5);
        // din = [2 (0→0,1→0,3→0 → actually 3?), ...] — compute: col 0 gets
        // 1→0, 3→0, 0→0 = 3; col 1 gets 3 (multiplicity); col 3 gets 1.
        assert_eq!(stats.max_in_degree, 3);
        // Both col 0 and col 1 hit the max ⇒ both are super-node columns.
        assert_eq!(stats.supernode_columns, 2);
        assert_eq!(stats.leaf_columns, 1); // col 3
                                           // Surviving entries: none of (·,0), (·,1), (·,3) ⇒ nothing left.
        assert_eq!(stats.nnz_after, 0);
        assert_eq!(a.nnz(), 0);
        assert_eq!(stats.dangling_rows, 5);
    }

    #[test]
    fn normalization_is_row_stochastic() {
        // No duplicate max tie: column 1 in-degree 3 (max), column 2 gets 2,
        // col 0 gets 2, no leaves.
        let mut coo = Coo::new(4, 4);
        for _ in 0..3 {
            coo.push(0, 1, 1);
        }
        for (u, v) in [(1, 2), (3, 2), (2, 0), (3, 0)] {
            coo.push(u, v, 1);
        }
        let (a, stats) = filter_matrix(&coo.compress(), false);
        assert_eq!(stats.supernode_columns, 1);
        assert_eq!(stats.leaf_columns, 0);
        for (r, &s) in ppbench_sparse::ops::row_sums(&a).iter().enumerate() {
            if a.row_nnz(r as u64) > 0 {
                assert!((s - 1.0).abs() < 1e-12, "row {r} sums to {s}");
            }
        }
        // Column 1 is gone.
        assert_eq!(ppbench_sparse::ops::col_sums(&a)[1], 0.0);
    }

    #[test]
    fn diagonal_repair_eliminates_dangling_rows() {
        let (plain, stats_plain) = filter_matrix(&counts(), false);
        assert!(stats_plain.dangling_rows > 0);
        let (repaired, stats_rep) = filter_matrix(&counts(), true);
        assert_eq!(stats_rep.dangling_rows, 0);
        assert_eq!(stats_rep.diagonal_repairs, 5);
        // Repaired rows are self-loops with weight 1.
        assert_eq!(repaired.get(4, 4), Some(1.0));
        drop(plain);
    }

    #[test]
    fn empty_matrix_is_handled() {
        let empty = Coo::<u64>::new(3, 3).compress();
        let (a, stats) = filter_matrix(&empty, false);
        assert_eq!(a.nnz(), 0);
        assert_eq!(stats.max_in_degree, 0);
        assert_eq!(stats.supernode_columns, 0);
        assert_eq!(stats.leaf_columns, 0);
    }

    #[test]
    fn duplicates_collapse_but_mass_is_preserved() {
        let mut coo = Coo::new(3, 3);
        for _ in 0..4 {
            coo.push(0, 2, 1); // multiplicity 4
        }
        coo.push(1, 2, 1);
        let counts = coo.compress();
        assert_eq!(counts.nnz(), 2);
        assert_eq!(counts.value_sum(), 5);
        let (_, stats) = filter_matrix(&counts, false);
        assert_eq!(stats.total_edge_count, 5);
        assert_eq!(stats.nnz_before, 2);
    }
}
