//! Pipeline configuration.
//!
//! Every knob the benchmark specification exposes — plus every option the
//! paper's §V "community feedback" list raises — lives here, so a single
//! config value describes a run completely and two runs with equal configs
//! are bit-identical (up to the floating-point reassociation of the
//! parallel backend).

use std::path::PathBuf;

use ppbench_gen::{GeneratorKind, GraphSpec, RmatSampler};
use ppbench_sort::SortKey;

use crate::backend::Variant;
use crate::kernel3::{DanglingStrategy, PageRankOptions};
use crate::workload::Workload;
use crate::{DAMPING, ITERATIONS};

/// How much checking the pipeline performs after the kernels finish.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValidationLevel {
    /// No validation (pure benchmark timing).
    None,
    /// Cheap invariants: digests between kernels, adjacency mass, row
    /// stochasticity, rank-vector sanity. The default.
    #[default]
    Invariants,
    /// Invariants plus the paper's eigenvector check: compare kernel 3's
    /// output against the dominant eigenvector of `c·Aᵀ + (1−c)/N·𝟙`
    /// computed by matrix-free power iteration.
    Eigenvector,
}

/// Complete description of a pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Graph size: scale and edge factor.
    pub spec: GraphSpec,
    /// Master seed; all randomness (generation, permutations, PageRank
    /// init) derives from it deterministically.
    pub seed: u64,
    /// Number of files kernel 0 and kernel 1 write (the spec's free
    /// parameter).
    pub num_files: usize,
    /// Which generator kernel 0 uses (§V: "should a more deterministic
    /// generator be used?").
    pub generator: GeneratorKind,
    /// Which R-MAT sampling algorithm realizes the Kronecker generator:
    /// the faithful Graph500 coin-flip port or the linear-work block
    /// sampler. The two emit different (equally distributed) streams for
    /// the same seed, so the choice is canonical-hash-bearing. Ignored by
    /// non-Kronecker generators.
    pub gen: RmatSampler,
    /// Whether kernel 0 permutes vertex labels (Graph500's `randperm(N)`).
    pub permute_vertices: bool,
    /// Whether kernel 0 shuffles edge order (Graph500's `randperm(M)`).
    pub shuffle_edges: bool,
    /// Which implementation style runs the kernels.
    pub variant: Variant,
    /// Sort key for kernel 1 (§V: "should the end vertices also be
    /// sorted?").
    pub sort_key: SortKey,
    /// In-memory budget for kernel 1 in **bytes** (16 bytes per resident
    /// edge); when the input's footprint exceeds it the out-of-core
    /// pipelined external sorter is used instead. `None` = always in
    /// memory.
    pub sort_budget_bytes: Option<u64>,
    /// §V option: add a diagonal entry to empty rows/columns so the chain
    /// has no dangling states.
    pub add_diagonal_to_empty: bool,
    /// PageRank damping factor (`c`, 0.85 in the spec).
    pub damping: f64,
    /// Number of PageRank iterations (20 in the spec).
    pub iterations: u32,
    /// Dangling-row treatment in kernel 3 (the spec omits the correction;
    /// the appendix names the alternatives).
    pub dangling: DanglingStrategy,
    /// Optional convergence tolerance: stop kernel 3 early once the L1
    /// change per iteration drops below it (the "real application" mode
    /// §IV.D describes before fixing the iteration count).
    pub convergence_tolerance: Option<f64>,
    /// Post-run validation level.
    pub validation: ValidationLevel,
    /// What runs in the kernel-3 slot: the spec's PageRank (default) or
    /// one of the GAP-style analytics workloads.
    pub workload: Workload,
    /// Optional on-disk TSV edge list to ingest in place of the kernel-0
    /// generator; kernels 1–3 run unchanged on the ingested data.
    pub input_tsv: Option<PathBuf>,
    /// Fuse kernels 1 and 2: build the CSR directly from the sorted-run
    /// merge stream instead of materializing the sorted edge files. The
    /// resulting matrix and filter statistics are bit-identical to the
    /// staged path; only the data movement differs.
    pub fused: bool,
}

impl PipelineConfig {
    /// Starts a builder with the spec's defaults.
    pub fn builder() -> PipelineConfigBuilder {
        PipelineConfigBuilder::default()
    }

    /// The kernel-3 options implied by this configuration.
    pub fn pagerank_options(&self) -> PageRankOptions {
        PageRankOptions {
            damping: self.damping,
            max_iterations: self.iterations,
            dangling: self.dangling,
            tolerance: self.convergence_tolerance,
        }
    }

    /// Every field as a canonical `(key, value)` pair, sorted by key.
    ///
    /// This is the identity of a run for caching purposes: two configs
    /// with equal canonical fields produce bit-identical results (up to the
    /// floating-point reassociation of the parallel backend). Floats are
    /// rendered via their IEEE-754 bit patterns so the encoding is exact,
    /// and the fixed key sort makes the form independent of the order in
    /// which a caller (builder chain, JSON body, CLI flags) supplied the
    /// fields.
    pub fn canonical_fields(&self) -> Vec<(&'static str, String)> {
        let f64_bits = |v: f64| format!("f64:{:016x}", v.to_bits());
        let mut fields = vec![
            (
                "add_diagonal_to_empty",
                self.add_diagonal_to_empty.to_string(),
            ),
            (
                "convergence_tolerance",
                self.convergence_tolerance
                    .map_or_else(|| "none".to_string(), f64_bits),
            ),
            ("damping", f64_bits(self.damping)),
            ("dangling", self.dangling.name().to_string()),
            ("edge_factor", self.spec.edge_factor().to_string()),
            ("fused", self.fused.to_string()),
            ("gen", self.gen.name().to_string()),
            ("generator", self.generator.name().to_string()),
            ("iterations", self.iterations.to_string()),
            ("num_files", self.num_files.to_string()),
            ("permute_vertices", self.permute_vertices.to_string()),
            ("scale", self.spec.scale().to_string()),
            ("seed", self.seed.to_string()),
            ("shuffle_edges", self.shuffle_edges.to_string()),
            (
                "sort_key",
                match self.sort_key {
                    SortKey::Start => "start".to_string(),
                    SortKey::StartEnd => "start-end".to_string(),
                },
            ),
            (
                "sort_budget_bytes",
                self.sort_budget_bytes
                    .map_or_else(|| "none".to_string(), |b| b.to_string()),
            ),
            (
                "validation",
                match self.validation {
                    ValidationLevel::None => "none".to_string(),
                    ValidationLevel::Invariants => "invariants".to_string(),
                    ValidationLevel::Eigenvector => "eigen".to_string(),
                },
            ),
            ("variant", self.variant.name().to_string()),
            ("workload", self.workload.name().to_string()),
            (
                // ppbench: allow(config-drift, reason = "deliberately absent from serve ACCEPTED_FIELDS: accepting a server-side path over HTTP would let clients probe the filesystem")
                "input_tsv",
                self.input_tsv
                    .as_ref()
                    .map_or_else(|| "none".to_string(), |p| p.display().to_string()),
            ),
        ];
        fields.sort_by_key(|(k, _)| *k);
        fields
    }

    /// Stable 64-bit hash of the canonical field list (FNV-1a over
    /// `key=value\n` lines). Equal configs hash equal regardless of how
    /// they were constructed; any changed field changes the hash.
    pub fn canonical_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        for (key, value) in self.canonical_fields() {
            eat(key.as_bytes());
            eat(b"=");
            eat(value.as_bytes());
            eat(b"\n");
        }
        h
    }

    /// Human-readable one-line description.
    pub fn describe(&self) -> String {
        format!(
            "{} | seed {} | {} files | gen {} | backend {} | {} iter, c={}",
            self.spec,
            self.seed,
            self.num_files,
            self.generator.name(),
            self.variant.name(),
            self.iterations,
            self.damping,
        )
    }
}

/// Builder for [`PipelineConfig`]; every setter has a spec-conformant
/// default.
#[derive(Debug, Clone)]
pub struct PipelineConfigBuilder {
    scale: u32,
    edge_factor: u64,
    seed: u64,
    num_files: usize,
    generator: GeneratorKind,
    gen: RmatSampler,
    permute_vertices: bool,
    shuffle_edges: bool,
    variant: Variant,
    sort_key: SortKey,
    sort_budget_bytes: Option<u64>,
    add_diagonal_to_empty: bool,
    damping: f64,
    iterations: u32,
    dangling: DanglingStrategy,
    convergence_tolerance: Option<f64>,
    validation: ValidationLevel,
    workload: Workload,
    input_tsv: Option<PathBuf>,
    fused: bool,
}

impl Default for PipelineConfigBuilder {
    fn default() -> Self {
        Self {
            scale: 16,
            edge_factor: ppbench_gen::DEFAULT_EDGE_FACTOR,
            seed: 1,
            num_files: 1,
            generator: GeneratorKind::Kronecker,
            gen: RmatSampler::Faithful,
            permute_vertices: true,
            shuffle_edges: false,
            variant: Variant::Optimized,
            sort_key: SortKey::Start,
            sort_budget_bytes: None,
            add_diagonal_to_empty: false,
            damping: DAMPING,
            iterations: ITERATIONS,
            dangling: DanglingStrategy::Omit,
            convergence_tolerance: None,
            validation: ValidationLevel::Invariants,
            workload: Workload::PageRank,
            input_tsv: None,
            fused: false,
        }
    }
}

impl PipelineConfigBuilder {
    /// Sets the Graph500 scale factor `S` (N = 2^S).
    pub fn scale(mut self, scale: u32) -> Self {
        self.scale = scale;
        self
    }

    /// Sets the edges-per-vertex factor `k` (spec default 16).
    pub fn edge_factor(mut self, k: u64) -> Self {
        self.edge_factor = k;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets how many files kernels 0 and 1 write.
    pub fn num_files(mut self, n: usize) -> Self {
        self.num_files = n;
        self
    }

    /// Selects the kernel-0 generator.
    pub fn generator(mut self, g: GeneratorKind) -> Self {
        self.generator = g;
        self
    }

    /// Selects the R-MAT sampling algorithm (faithful coin flips or the
    /// linear-work block sampler) for the Kronecker generator.
    pub fn gen(mut self, s: RmatSampler) -> Self {
        self.gen = s;
        self
    }

    /// Toggles the kernel-0 vertex-label permutation.
    pub fn permute_vertices(mut self, on: bool) -> Self {
        self.permute_vertices = on;
        self
    }

    /// Toggles the kernel-0 edge-order shuffle.
    pub fn shuffle_edges(mut self, on: bool) -> Self {
        self.shuffle_edges = on;
        self
    }

    /// Selects the implementation variant.
    pub fn variant(mut self, v: Variant) -> Self {
        self.variant = v;
        self
    }

    /// Selects the kernel-1 sort key.
    pub fn sort_key(mut self, k: SortKey) -> Self {
        self.sort_key = k;
        self
    }

    /// Caps kernel 1's in-memory buffer at `bytes` (16 bytes per resident
    /// edge), forcing the out-of-core path beyond it.
    pub fn sort_budget_bytes(mut self, bytes: u64) -> Self {
        self.sort_budget_bytes = Some(bytes);
        self
    }

    /// Enables the §V dangling-node diagonal repair in kernel 2.
    pub fn add_diagonal_to_empty(mut self, on: bool) -> Self {
        self.add_diagonal_to_empty = on;
        self
    }

    /// Overrides the damping factor.
    pub fn damping(mut self, c: f64) -> Self {
        self.damping = c;
        self
    }

    /// Overrides the PageRank iteration count.
    pub fn iterations(mut self, n: u32) -> Self {
        self.iterations = n;
        self
    }

    /// Selects the dangling-row strategy for kernel 3.
    pub fn dangling(mut self, d: DanglingStrategy) -> Self {
        self.dangling = d;
        self
    }

    /// Enables convergence-test stopping for kernel 3.
    pub fn convergence_tolerance(mut self, tol: f64) -> Self {
        self.convergence_tolerance = Some(tol);
        self
    }

    /// Sets the validation level.
    pub fn validation(mut self, v: ValidationLevel) -> Self {
        self.validation = v;
        self
    }

    /// Selects the kernel-3-slot workload (PageRank or a GAP analytic).
    pub fn workload(mut self, w: Workload) -> Self {
        self.workload = w;
        self
    }

    /// Feeds kernels 1–3 from an on-disk TSV edge list instead of the
    /// kernel-0 generator.
    pub fn input_tsv(mut self, path: impl Into<PathBuf>) -> Self {
        self.input_tsv = Some(path.into());
        self
    }

    /// Fuses kernels 1 and 2 into a single streaming pass (CSR built
    /// straight from the sorted-run merge; bit-identical output).
    pub fn fused(mut self, on: bool) -> Self {
        self.fused = on;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical values (zero files, damping outside (0, 1),
    /// zero iterations) — these are programming errors, not runtime data.
    pub fn build(self) -> PipelineConfig {
        assert!(self.num_files >= 1, "num_files must be at least 1");
        assert!(
            self.damping > 0.0 && self.damping < 1.0,
            "damping must lie strictly between 0 and 1"
        );
        assert!(
            self.iterations >= 1,
            "at least one PageRank iteration required"
        );
        PipelineConfig {
            spec: GraphSpec::new(self.scale, self.edge_factor),
            seed: self.seed,
            num_files: self.num_files,
            generator: self.generator,
            gen: self.gen,
            permute_vertices: self.permute_vertices,
            shuffle_edges: self.shuffle_edges,
            variant: self.variant,
            sort_key: self.sort_key,
            sort_budget_bytes: self.sort_budget_bytes,
            add_diagonal_to_empty: self.add_diagonal_to_empty,
            damping: self.damping,
            iterations: self.iterations,
            dangling: self.dangling,
            convergence_tolerance: self.convergence_tolerance,
            validation: self.validation,
            workload: self.workload,
            input_tsv: self.input_tsv,
            fused: self.fused,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_spec() {
        let cfg = PipelineConfig::builder().build();
        assert_eq!(cfg.spec.scale(), 16);
        assert_eq!(cfg.spec.edge_factor(), 16);
        assert_eq!(cfg.damping, 0.85);
        assert_eq!(cfg.iterations, 20);
        assert_eq!(cfg.sort_key, SortKey::Start);
        assert!(cfg.permute_vertices);
        assert!(!cfg.shuffle_edges);
        assert!(!cfg.add_diagonal_to_empty);
        assert_eq!(cfg.workload, Workload::PageRank);
        assert_eq!(cfg.gen, RmatSampler::Faithful);
        assert!(cfg.input_tsv.is_none());
        assert!(!cfg.fused);
    }

    #[test]
    fn workloads_never_share_a_cache_identity() {
        // The serve cache keys on canonical_hash; a BFS run and a PageRank
        // run over the same graph config must never collide.
        let hashes: Vec<u64> = Workload::ALL
            .iter()
            .map(|&w| {
                PipelineConfig::builder()
                    .scale(9)
                    .seed(7)
                    .workload(w)
                    .build()
                    .canonical_hash()
            })
            .collect();
        let unique: std::collections::HashSet<u64> = hashes.iter().copied().collect();
        assert_eq!(unique.len(), Workload::ALL.len());
    }

    #[test]
    fn builder_setters_apply() {
        let cfg = PipelineConfig::builder()
            .scale(8)
            .edge_factor(4)
            .seed(99)
            .num_files(3)
            .variant(Variant::Naive)
            .sort_key(SortKey::StartEnd)
            .sort_budget_bytes(1000)
            .add_diagonal_to_empty(true)
            .damping(0.9)
            .iterations(5)
            .validation(ValidationLevel::Eigenvector)
            .build();
        assert_eq!(cfg.spec.num_vertices(), 256);
        assert_eq!(cfg.spec.num_edges(), 1024);
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.num_files, 3);
        assert_eq!(cfg.variant, Variant::Naive);
        assert_eq!(cfg.sort_key, SortKey::StartEnd);
        assert_eq!(cfg.sort_budget_bytes, Some(1000));
        assert!(cfg.add_diagonal_to_empty);
        assert_eq!(cfg.damping, 0.9);
        assert_eq!(cfg.iterations, 5);
        assert_eq!(cfg.validation, ValidationLevel::Eigenvector);
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn damping_must_be_in_unit_interval() {
        let _ = PipelineConfig::builder().damping(1.0).build();
    }

    #[test]
    #[should_panic(expected = "num_files")]
    fn zero_files_rejected() {
        let _ = PipelineConfig::builder().num_files(0).build();
    }

    #[test]
    fn canonical_hash_is_setter_order_independent() {
        let a = PipelineConfig::builder().scale(9).seed(7).build();
        let b = PipelineConfig::builder().seed(7).scale(9).build();
        assert_eq!(a.canonical_hash(), b.canonical_hash());
        assert_eq!(a.canonical_fields(), b.canonical_fields());
    }

    #[test]
    fn canonical_fields_are_sorted_and_complete() {
        let fields = PipelineConfig::builder().build().canonical_fields();
        let keys: Vec<&str> = fields.iter().map(|(k, _)| *k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "keys must come out sorted");
        assert_eq!(keys.len(), 20, "one entry per PipelineConfig field");
    }

    #[test]
    fn canonical_hash_distinguishes_every_axis() {
        let base = || PipelineConfig::builder().scale(9).seed(7);
        let reference = base().build().canonical_hash();
        let variations = [
            base().scale(10).build(),
            base().seed(8).build(),
            base().edge_factor(4).build(),
            base().num_files(2).build(),
            base().variant(Variant::Naive).build(),
            base().generator(GeneratorKind::PerfectPowerLaw).build(),
            base().gen(RmatSampler::Linear).build(),
            base().sort_key(SortKey::StartEnd).build(),
            base().sort_budget_bytes(100).build(),
            base().add_diagonal_to_empty(true).build(),
            base().damping(0.9).build(),
            base().iterations(10).build(),
            base().dangling(DanglingStrategy::Sink).build(),
            base().convergence_tolerance(1e-9).build(),
            base().permute_vertices(false).build(),
            base().shuffle_edges(true).build(),
            base().validation(ValidationLevel::None).build(),
            base().workload(Workload::Bfs).build(),
            base().input_tsv("/tmp/edges.tsv").build(),
            base().fused(true).build(),
        ];
        let mut hashes: Vec<u64> = variations.iter().map(|c| c.canonical_hash()).collect();
        hashes.push(reference);
        let unique: std::collections::HashSet<u64> = hashes.iter().copied().collect();
        assert_eq!(
            unique.len(),
            hashes.len(),
            "every axis must change the hash"
        );
    }

    #[test]
    fn describe_mentions_key_facts() {
        let d = PipelineConfig::builder().scale(5).build().describe();
        assert!(d.contains("scale 5"), "{d}");
        assert!(d.contains("optimized"), "{d}");
    }
}
