//! Fused kernels 1+2: CSR built straight off the sorted-run merge stream.
//!
//! The staged pipeline moves every edge through disk three times: kernel 1
//! reads kernel 0's shards, sorts, and writes a sorted file set; kernel 2
//! reads that set back to assemble the count matrix. The fused path removes
//! the middle copy entirely:
//!
//! 1. **Route + run generation** (kernel-1 timing): kernel 0's shards are
//!    streamed once through reused read buffers; each edge is routed by its
//!    start vertex into one of `B` contiguous vertex-range buckets (`B` =
//!    worker count), where a [`RunWriter`] accumulates it and spills sorted
//!    `(start, end)` runs under the bucket's own memory budget. No
//!    intermediate `Vec<Edge>` of the input is ever materialized.
//! 2. **Merge → CSR** (kernel-2 timing): the buckets' sealed [`RunSet`]s
//!    are merged *in parallel* — each worker drains its bucket's
//!    [`MergeStream`] directly into a [`CsrStreamBuilder`] row segment,
//!    deduplicating and accumulating counts on the fly. The segments
//!    concatenate into the full count matrix, which funnels through
//!    [`kernel2::filter_matrix`] — the same single policy function the
//!    staged backends use, so matrix and [`FilterStats`] are bit-identical
//!    to the staged path for any thread count.
//!
//! Because buckets are contiguous vertex ranges and each bucket's merge
//! emits `(start, end)` order, concatenating the per-bucket streams in
//! bucket order reproduces exactly the globally sorted order — the
//! per-bucket [`EdgeDigest`]s concatenated in bucket order therefore equal
//! the digest of a staged `(start, end)` sort, and validation's
//! multiset-preservation check holds unchanged.
//!
//! [`RunWriter`]: ppbench_sort::RunWriter
//! [`RunSet`]: ppbench_sort::RunSet
//! [`MergeStream`]: ppbench_sort::MergeStream
//! [`CsrStreamBuilder`]: ppbench_sparse::CsrStreamBuilder
//! [`FilterStats`]: crate::kernel2::FilterStats

use std::path::Path;

use ppbench_io::{checksum::EdgeDigest, EdgeReader, BYTES_PER_EDGE};
use ppbench_sort::{ExternalSorter, RunSet, SortKey};
use ppbench_sparse::{Csr, CsrSegment, CsrStreamBuilder};
use rayon::prelude::*;

use crate::backend::Kernel2Output;
use crate::config::PipelineConfig;
use crate::error::{Error, Result};
use crate::kernel2;
use crate::results::{Kernel1Result, Kernel2Result};
use crate::timing::Stopwatch;

/// Everything the fused pass produces: the two kernel results the pipeline
/// records (timings split at the run-seal boundary) plus the kernel-2
/// output kernel 3 consumes.
#[derive(Debug)]
pub struct FusedOutcome {
    /// Kernel-1 result: routing + run generation + sealing.
    pub k1: Kernel1Result,
    /// Kernel-2 result: parallel merge, CSR assembly, filtering.
    pub k2: Kernel2Result,
    /// The row-stochastic matrix and filter statistics.
    pub output: Kernel2Output,
}

/// Runs the fused kernel-1+2 pass over the edge files in `k0_dir`, using
/// `scratch_dir` for spilled runs (removed before returning).
///
/// The input manifest is treated as untrusted: its edge count is bounded
/// against the bytes on disk, every vertex is bounds-checked against the
/// configured graph size before routing, and the consumed stream is
/// digest-verified against the manifest — corrupt shards surface as
/// [`Error::Contract`], never as bad math or a builder panic.
pub fn kernel12(cfg: &PipelineConfig, k0_dir: &Path, scratch_dir: &Path) -> Result<FusedOutcome> {
    // ---- Phase 1: route the input into per-vertex-range sorted runs ----
    let sw = Stopwatch::start();
    let (manifest, iter) = EdgeReader::open_dir(k0_dir)?;
    let disk_cap = manifest.max_edges_on_disk(k0_dir);
    if manifest.edges > disk_cap {
        return Err(Error::Contract(format!(
            "{}: manifest claims {} edges but its files hold at most {disk_cap}",
            k0_dir.display(),
            manifest.edges
        )));
    }
    let m = manifest.edges;
    let n = cfg.spec.num_vertices();
    let buckets = rayon::current_num_threads().max(1);
    // Even vertex-range bucket boundaries: bucket b owns rows
    // [bounds[b], bounds[b+1]).
    let bounds: Vec<u64> = (0..=buckets)
        .map(|b| ((u128::from(n) * b as u128) / buckets as u128) as u64)
        .collect();

    let in_bytes = m.saturating_mul(BYTES_PER_EDGE as u64);
    let spill_budget = cfg.sort_budget_bytes.filter(|&b| in_bytes > b);
    // Within the budget each bucket gets an even share; without one the
    // buffers simply never spill.
    let budget_edges = spill_budget.map_or(usize::MAX, |bytes| {
        usize::try_from(bytes / BYTES_PER_EDGE as u64 / buckets as u64)
            .unwrap_or(usize::MAX)
            .max(1)
    });

    let mut writers = Vec::with_capacity(buckets);
    for b in 0..buckets {
        let dir = scratch_dir.join(format!("fused-bucket-{b:03}"));
        // (start, end) runs make each bucket's merge emit exactly the order
        // CsrStreamBuilder needs for O(1) duplicate accumulation.
        writers.push(ExternalSorter::new(&dir, budget_edges, SortKey::StartEnd)?.run_writer()?);
    }

    let mut input_digest = EdgeDigest::new();
    for edge in iter {
        let e = edge?;
        if e.u >= n || e.v >= n {
            return Err(Error::Contract(format!(
                "{}: edge ({}, {}) exceeds the configured vertex bound {n}",
                k0_dir.display(),
                e.u,
                e.v
            )));
        }
        input_digest.update(e);
        let b = bounds.partition_point(|&lo| lo <= e.u) - 1;
        writers[b].push(e)?;
    }
    if !input_digest.same_stream(&manifest.digest) {
        return Err(Error::Contract(format!(
            "{}: edge stream does not match manifest digest \
             (read {} edges, manifest says {})",
            k0_dir.display(),
            input_digest.count,
            m
        )));
    }
    let mut sets: Vec<RunSet> = Vec::with_capacity(buckets);
    for w in writers {
        sets.push(w.finish()?);
    }
    let k1_timing = sw.finish(m);

    // ---- Phase 2: parallel per-bucket merge straight into CSR segments ----
    let sw = Stopwatch::start();
    let indexed: Vec<(usize, RunSet)> = sets.into_iter().enumerate().collect();
    let built: Vec<Result<(CsrSegment<u64>, EdgeDigest)>> = indexed
        .into_par_iter()
        .map(|(b, set)| {
            let (lo, hi) = (bounds[b], bounds[b + 1]);
            let mut builder = CsrStreamBuilder::<u64>::for_rows(n, lo, hi);
            let mut digest = EdgeDigest::new();
            for edge in set.into_stream()? {
                let e = edge?;
                digest.update(e);
                builder.push(e.u, e.v);
            }
            Ok((builder.finish_segment(), digest))
        })
        .collect();

    let mut segments = Vec::with_capacity(buckets);
    let mut sorted_digest = EdgeDigest::new();
    for r in built {
        let (seg, digest) = r?;
        sorted_digest = sorted_digest.concat(&digest);
        segments.push(seg);
    }
    if !sorted_digest.same_multiset(&manifest.digest) {
        return Err(Error::Contract(format!(
            "{}: merged stream does not preserve the input edge multiset",
            k0_dir.display()
        )));
    }
    let counts = Csr::<u64>::from_row_segments(n, segments);
    let (matrix, stats) = kernel2::filter_matrix(&counts, cfg.add_diagonal_to_empty);
    let k2_timing = sw.finish(m);

    // The MergeStreams already removed their run files; remove the (now
    // empty) bucket directories too, propagating failures — a scratch dir
    // that cannot be deleted is a real environment problem.
    for b in 0..buckets {
        let dir = scratch_dir.join(format!("fused-bucket-{b:03}"));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).map_err(|e| ppbench_io::Error::io(&dir, e))?;
        }
    }

    Ok(FusedOutcome {
        k1: Kernel1Result {
            timing: k1_timing,
            digest: sorted_digest,
            sort_state: SortKey::StartEnd.sort_state(),
            out_of_core: spill_budget.is_some(),
        },
        k2: Kernel2Result {
            timing: k2_timing,
            stats,
        },
        output: Kernel2Output { matrix, stats },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Backend, OptimizedBackend};
    use crate::kernel1;
    use ppbench_io::tempdir::TempDir;
    use ppbench_io::{Edge, Manifest, SortState};
    use ppbench_sort::Algorithm;

    fn cfg(scale: u32) -> PipelineConfig {
        PipelineConfig::builder()
            .scale(scale)
            .edge_factor(8)
            .seed(3)
            .num_files(2)
            .build()
    }

    /// Oracle: the staged path (kernel 1 then the shared streaming
    /// kernel 2) over the same input directory.
    fn staged(cfg: &PipelineConfig, k0: &Path, work: &Path) -> Kernel2Output {
        kernel1::sort_file_set(
            k0,
            work,
            1,
            SortKey::StartEnd,
            Algorithm::Radix,
            cfg.sort_budget_bytes,
        )
        .unwrap();
        crate::backend::kernel2_streamed(cfg, work).unwrap()
    }

    fn write_input(dir: &Path, edges: &[Edge], scale: u32) {
        ppbench_io::write_edges(
            dir,
            "edges",
            2,
            edges,
            Some(scale),
            Some(1 << scale),
            SortState::Unsorted,
        )
        .unwrap();
    }

    #[test]
    fn fused_matches_staged_on_generated_graph() {
        let td = TempDir::new("ppbench-fused").unwrap();
        let cfg = cfg(7);
        OptimizedBackend.kernel0(&cfg, &td.join("k0")).unwrap();
        let want = staged(&cfg, &td.join("k0"), &td.join("staged"));
        let got = kernel12(&cfg, &td.join("k0"), &td.join("scratch")).unwrap();
        assert_eq!(got.output.matrix, want.matrix);
        assert_eq!(got.output.stats, want.stats);
        assert_eq!(got.k2.stats, want.stats);
        assert_eq!(got.k1.sort_state, SortState::ByStartEnd);
        assert!(!got.k1.out_of_core);
        // The concatenated per-bucket digests equal the staged
        // (start, end)-sorted stream digest exactly — chain included.
        let staged_manifest = Manifest::load(&td.join("staged")).unwrap();
        assert!(got.k1.digest.same_stream(&staged_manifest.digest));
    }

    #[test]
    fn fused_spill_path_matches_and_cleans_scratch() {
        let td = TempDir::new("ppbench-fused").unwrap();
        let base = cfg(7);
        OptimizedBackend.kernel0(&base, &td.join("k0")).unwrap();
        let cfg = PipelineConfig::builder()
            .scale(7)
            .edge_factor(8)
            .seed(3)
            .num_files(2)
            .sort_budget_bytes(64 * ppbench_io::BYTES_PER_EDGE as u64)
            .build();
        let want = staged(&cfg, &td.join("k0"), &td.join("staged"));
        let got = kernel12(&cfg, &td.join("k0"), &td.join("scratch")).unwrap();
        assert_eq!(got.output.matrix, want.matrix);
        assert_eq!(got.output.stats, want.stats);
        assert!(got.k1.out_of_core);
        // Every bucket directory (and its spilled runs) is gone.
        let leftovers: Vec<_> = std::fs::read_dir(td.join("scratch"))
            .map(|d| d.collect())
            .unwrap_or_default();
        assert!(leftovers.is_empty(), "scratch not cleaned: {leftovers:?}");
    }

    #[test]
    fn fused_equals_staged_under_empty_duplicate_and_hub_inputs() {
        // The degenerate shapes that stress the streaming dedup: an empty
        // graph, one edge with maximal multiplicity, and a single hub row
        // owning every edge — swept across worker counts so bucket counts
        // 1, 2 and 4 all exercise the segment concatenation.
        let scale = 4u32;
        let empty: Vec<Edge> = vec![];
        let all_dup: Vec<Edge> = (0..64).map(|_| Edge::new(3, 9)).collect();
        let hub: Vec<Edge> = (0..64).map(|i| Edge::new(5, i % 16)).collect();
        for workers in [1usize, 2, 4] {
            rayon::ThreadPoolBuilder::new()
                .num_threads(workers)
                .build_global()
                .unwrap();
            for (name, edges) in [("empty", &empty), ("all-dup", &all_dup), ("hub", &hub)] {
                let td = TempDir::new("ppbench-fused").unwrap();
                write_input(&td.join("k0"), edges, scale);
                let cfg = PipelineConfig::builder().scale(scale).build();
                let want = staged(&cfg, &td.join("k0"), &td.join("staged"));
                let got = kernel12(&cfg, &td.join("k0"), &td.join("scratch")).unwrap();
                assert_eq!(got.output.matrix, want.matrix, "{name} @ {workers} workers");
                assert_eq!(got.output.stats, want.stats, "{name} @ {workers} workers");
            }
        }
        rayon::ThreadPoolBuilder::new().build_global().unwrap();
    }

    #[test]
    fn out_of_bound_vertex_is_a_contract_error_not_a_panic() {
        let td = TempDir::new("ppbench-fused").unwrap();
        // Vertex 17 exceeds scale 4's bound of 16; the writer is told a
        // larger bound so the corrupt shard parses cleanly.
        ppbench_io::write_edges(
            &td.join("k0"),
            "edges",
            1,
            &[Edge::new(1, 2), Edge::new(17, 0)],
            Some(4),
            Some(32),
            SortState::Unsorted,
        )
        .unwrap();
        let cfg = PipelineConfig::builder().scale(4).build();
        let err = kernel12(&cfg, &td.join("k0"), &td.join("scratch")).unwrap_err();
        assert!(matches!(err, Error::Contract(_)), "{err}");
        assert!(err.to_string().contains("vertex bound"), "{err}");
    }

    #[test]
    fn tampered_manifest_digest_is_rejected() {
        let td = TempDir::new("ppbench-fused").unwrap();
        let edges: Vec<Edge> = (0..32).map(|i| Edge::new(i % 16, (i * 3) % 16)).collect();
        write_input(&td.join("k0"), &edges, 4);
        let mut m = Manifest::load(&td.join("k0")).unwrap();
        m.digest.sum = m.digest.sum.wrapping_add(1);
        m.save(&td.join("k0")).unwrap();
        let cfg = PipelineConfig::builder().scale(4).build();
        let err = kernel12(&cfg, &td.join("k0"), &td.join("scratch")).unwrap_err();
        assert!(err.to_string().contains("digest"), "{err}");
    }

    #[test]
    fn hostile_manifest_edge_count_rejected_before_allocating() {
        let td = TempDir::new("ppbench-fused").unwrap();
        let edges: Vec<Edge> = (0..16).map(|i| Edge::new(i, i)).collect();
        write_input(&td.join("k0"), &edges, 4);
        let mut m = Manifest::load(&td.join("k0")).unwrap();
        m.edges = u64::MAX;
        m.digest.count = u64::MAX;
        m.files[0].edges = u64::MAX - m.files[1].edges;
        m.save(&td.join("k0")).unwrap();
        let cfg = PipelineConfig::builder().scale(4).build();
        let err = kernel12(&cfg, &td.join("k0"), &td.join("scratch")).unwrap_err();
        assert!(err.to_string().contains("at most"), "{err}");
    }
}
