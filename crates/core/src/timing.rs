//! Wall-clock timing and the benchmark's throughput metrics.

use std::time::Instant;

/// A simple wall-clock stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Elapsed seconds since start.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Stops and produces a [`KernelTiming`] for `work_items` processed.
    pub fn finish(self, work_items: u64) -> KernelTiming {
        KernelTiming::new(self.elapsed_secs(), work_items)
    }
}

/// Elapsed time plus the benchmark's "items per second" rate.
///
/// For kernels 1 and 2 the item count is `M` (edges); for kernel 3 it is
/// `20·M` (edges processed across all iterations), exactly as the paper
/// reports its figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelTiming {
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Work items the kernel processed.
    pub work_items: u64,
}

impl KernelTiming {
    /// Builds a timing record; a zero duration is clamped to a femtosecond
    /// so rates stay finite on trivially small inputs.
    pub fn new(seconds: f64, work_items: u64) -> Self {
        Self {
            seconds: seconds.max(1e-15),
            work_items,
        }
    }

    /// Items (edges) per second.
    pub fn rate(&self) -> f64 {
        self.work_items as f64 / self.seconds
    }
}

impl std::fmt::Display for KernelTiming {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}s ({:.3e} edges/s)", self.seconds, self.rate())
    }
}

/// Times a closure, returning its output and the elapsed seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let sw = Stopwatch::start();
    let out = f();
    (out, sw.elapsed_secs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_items_over_seconds() {
        let t = KernelTiming::new(2.0, 100);
        assert_eq!(t.rate(), 50.0);
    }

    #[test]
    fn zero_duration_clamped() {
        let t = KernelTiming::new(0.0, 10);
        assert!(t.rate().is_finite());
        assert!(t.rate() > 0.0);
    }

    #[test]
    fn stopwatch_measures_something() {
        let sw = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let t = sw.finish(1000);
        assert!(t.seconds >= 0.004, "measured {}", t.seconds);
        assert!(t.rate() > 0.0);
    }

    #[test]
    fn timed_returns_value_and_duration() {
        let (v, secs) = timed(|| 6 * 7);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn display_formats() {
        let s = KernelTiming::new(1.0, 1_000_000).to_string();
        assert!(s.contains("1.000s"), "{s}");
        assert!(s.contains("e6") || s.contains("1.000e6"), "{s}");
    }
}
